//! Quickstart: pre-train the model zoo (three statics + the BT
//! transformer), embed a pair of dirty duplicates with each model and
//! print the cosine similarities — the FastText-vs-GloVe typo contrast
//! of the paper's Fig. 3 in miniature —
//! then run the blocking stage: generate the D1 Clean-Clean analogue and
//! block it with each ANN backend, reporting pairs-completeness.
//!
//! Run with: `cargo run --release --example quickstart`

use embeddings4er::prelude::*;

fn main() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::fast(), 42);
    println!(
        "pre-trained {} models ({} static + {} dynamic) at scale {:?} (seed {})",
        zoo.models().len(),
        ModelCode::STATIC.len(),
        ModelCode::DYNAMIC.len(),
        zoo.scale(),
        zoo.seed()
    );

    let sentence = "golden palace grill 123 main street springfield";
    let sentence_typod = "goldn palace gril 123 main street springfeild";
    let word = "restaurant";
    let word_typod = "restaurnat";

    println!("\n  model        dim   init      cos(sentence, typo'd)  cos(word, typo'd)");
    for model in zoo.models() {
        let sent_cos = model.embed(sentence).cosine(&model.embed(sentence_typod));
        let word_cos = model.embed(word).cosine(&model.embed(word_typod));
        println!(
            "  {} {:<11} {:>3}  {:>8.1?}   {:.4}                 {:.4}",
            model.code(),
            format!("({})", model.code().full_name()),
            model.dim(),
            model.init_time(),
            sent_cos,
            word_cos
        );
    }
    println!("\nFastText embeds the typo'd word via its char-n-gram buckets;");
    println!("Word2Vec, GloVe and BERT (BT) — whose closed vocabulary has no");
    println!("subword fallback — drop every OOV token on the floor (cosine 0).");

    // Stage 2 — blocking. Generate the D1 restaurant analogue (known
    // ground truth), vectorize with FastText, and compare the exact scan
    // against both approximate indices at k = 10.
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let ft = zoo.get(ModelCode::FT);
    let cross = ds.id.profile().cross_product();
    println!(
        "\nblocking {} ({}x{} records, {} true matches, {} cross-product pairs):",
        ds.id,
        ds.left.len(),
        ds.right.len(),
        ds.ground_truth.len(),
        cross
    );
    println!("\n  backend           pairs-completeness   candidates  % of cross-product");
    let backends: [(&str, BlockerBackend); 3] = [
        ("exact (cosine)", BlockerBackend::Exact(Metric::Cosine)),
        (
            "hnsw (cosine)",
            BlockerBackend::Hnsw(HnswConfig {
                metric: Metric::Cosine,
                ..HnswConfig::default()
            }),
        ),
        (
            "hyperplane lsh",
            BlockerBackend::Lsh(LshConfig {
                tables: 16,
                probes: 4,
                ..LshConfig::default()
            }),
        ),
    ];
    let pipeline = Pipeline::new(ft.as_ref(), SerializationMode::SchemaAgnostic);
    for (name, backend) in backends {
        let config = TopKConfig::new(10).backend(backend);
        let outcome = pipeline.block(&ds.left, &ds.right, &config);
        let metrics = Metrics::of_candidates(&outcome.candidates(), &ds.ground_truth);
        println!(
            "  {name:<17} {:.3}                {:>6}      {:>5.1}%",
            metrics.recall,
            outcome.scored.len(),
            100.0 * outcome.scored.len() as f64 / cross as f64
        );
    }
    println!("\nTop-10 blocking keeps pairs-completeness near 1 while pruning");
    println!("~90% of the cross-product — the paper's Fig. 3/12 trade-off.");

    // Stage 3 — unsupervised matching. Resolve end to end: exact-cosine
    // top-10 blocking, then Unique Mapping Clustering threshold-swept
    // over the paper's δ grid (Fig. 15) against the ground truth.
    let config = ResolveConfig {
        blocking: TopKConfig::new(10).backend(BlockerBackend::Exact(Metric::Cosine)),
        ..ResolveConfig::default()
    };
    let outcome = pipeline.resolve(&ds.left, &ds.right, &ds.ground_truth, &config);
    let best = outcome.sweep.best().expect("paper grid is non-empty");
    println!(
        "\nmatching with UMC: best δ = {:.2} → {} matches, P {:.3} R {:.3} F1 {:.3}",
        outcome.best_delta,
        outcome.matches.len(),
        best.metrics.precision,
        best.metrics.recall,
        best.metrics.f1
    );
    println!("\nper-stage wall-clock (Pipeline::resolve):");
    println!("{}", outcome.report);
}
