//! Quickstart: pre-train the static model zoo, embed a pair of dirty
//! duplicates with each model and print the cosine similarities — the
//! FastText-vs-GloVe typo contrast of the paper's Fig. 3 in miniature.
//!
//! Run with: `cargo run --release --example quickstart`

use embeddings4er::prelude::*;

fn main() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::fast(), 42);
    println!(
        "pre-trained {} static models at scale {:?} (seed {})",
        zoo.models().len(),
        zoo.scale(),
        zoo.seed()
    );

    let sentence = "golden palace grill 123 main street springfield";
    let sentence_typod = "goldn palace gril 123 main street springfeild";
    let word = "restaurant";
    let word_typod = "restaurnat";

    println!("\n  model        dim   init      cos(sentence, typo'd)  cos(word, typo'd)");
    for model in zoo.models() {
        let sent_cos = model.embed(sentence).cosine(&model.embed(sentence_typod));
        let word_cos = model.embed(word).cosine(&model.embed(word_typod));
        println!(
            "  {} {:<11} {:>3}  {:>8.1?}   {:.4}                 {:.4}",
            model.code(),
            format!("({})", model.code().full_name()),
            model.dim(),
            model.init_time(),
            sent_cos,
            word_cos
        );
    }
    println!("\nFastText embeds the typo'd word via its char-n-gram buckets;");
    println!("Word2Vec and GloVe drop every OOV token on the floor (cosine 0).");
}
