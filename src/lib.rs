//! embeddings4er — end-to-end entity resolution with pre-trained-style
//! embeddings, reproducing "Pre-trained Embeddings for Entity Resolution:
//! An Experimental Analysis" (VLDB 2023). See DESIGN.md for the full
//! system inventory and ROADMAP.md for what has landed.
//!
//! The facade re-exports every subsystem crate and offers a [`prelude`]
//! plus the paper's Figure 1 pipeline: vectorization ([`vectorize`] /
//! [`vectorize_matrix`]) over a pre-trained [`ModelZoo`], embedding top-k
//! blocking ([`block`]) over the ANN indices, and unsupervised matching
//! ([`Pipeline::resolve`]): Unique Mapping Clustering (or any
//! [`matching::Clusterer`]) threshold-swept over the scored candidates.
//! The [`Pipeline`] builder runs every stage over columnar
//! [`core::EmbeddingMatrix`] storage — each collection embedded exactly
//! once, indices borrowing the matrix zero-copy — and returns a
//! [`eval::StageReport`] of per-stage wall-clock alongside the results.
//!
//! ```
//! use embeddings4er::prelude::*;
//!
//! let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
//! let model = zoo.get(ModelCode::FT);
//! let e = model.embed("golden palace grill 123 main street");
//! assert_eq!(e.dim(), model.dim());
//! ```

pub use er_blocking as blocking;
pub use er_core as core;
pub use er_datasets as datasets;
pub use er_embed as embed;
pub use er_eval as eval;
pub use er_index as index;
pub use er_matching as matching;
pub use er_serve as serve;
pub use er_tensor as tensor;
pub use er_text as text;
pub use er_tune as tune;

pub mod pipeline;

pub use pipeline::{vectorize_matrix, BlockOutcome, Pipeline, ResolveConfig, ResolveOutcome};

use er_blocking::TopKConfig;
use er_core::{Embedding, Entity, EntityId, SerializationMode};
use er_embed::LanguageModel;

/// Everything needed to drive the pipeline end to end.
pub mod prelude {
    pub use er_blocking::{
        dedup_candidates, dedup_scored, top_k_blocking, top_k_blocking_matrix,
        top_k_blocking_point, top_k_blocking_scored_matrix, BlockerBackend, TopKConfig,
    };
    pub use er_core::pq::PqConfig;
    pub use er_core::rng::rng;
    pub use er_core::{
        sort_by_id_pair, sort_by_score_desc, BackendParams, Embedding, EmbeddingMatrix, Entity,
        EntityId, ErError, GroundTruth, HnswParams, KernelTier, LshParams, OperatingPoint,
        QueryParams, Result, ScoredPair, SerializationMode,
    };
    pub use er_datasets::{CleanCleanDataset, DatasetId, DatasetProfile};
    pub use er_embed::{AnyModel, LanguageModel, ModelCode, ModelZoo, ZooConfig};
    pub use er_eval::{pearson, Metrics, StageReport};
    pub use er_index::{
        ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, IndexReader, LshConfig, Metric,
        MutableIndex, Neighbor, NnIndex, Quantization, ScanConfig,
    };
    pub use er_matching::{
        best_match_clustering, connected_components_clustering, kiraly_clustering,
        unique_mapping_clustering, Clusterer, SweepPoint, ThresholdSweep,
    };
    pub use er_serve::{
        unified_operating_point, CompactionPolicy, Hit, Resolver, SegmentSnapshot, ServeConfig,
        ShardStats, ShardedIndex,
    };
    pub use er_text::corpus::synthetic_corpus;
    pub use er_text::{normalize, tokenize, Corpus};
    pub use er_tune::{autotune, measure_point, CostModel, TuneOutcome, TunerConfig};

    pub use crate::{
        block, vectorize, vectorize_matrix, BlockOutcome, Pipeline, ResolveConfig, ResolveOutcome,
    };
}

pub use er_embed::{ModelCode, ModelZoo, ZooConfig};

/// Figure 1, stage 1: serialize each entity under `mode` and embed it with
/// `model`. Output order matches input order.
pub fn vectorize(
    model: &dyn LanguageModel,
    entities: &[Entity],
    mode: &SerializationMode,
) -> Vec<Embedding> {
    entities
        .iter()
        .map(|e| model.embed(&e.serialize(mode)))
        .collect()
}

/// Figure 1, stage 2: vectorize both collections under `mode` and run the
/// embedding top-k blocker — index the right side, query with the left,
/// return deduplicated `(left id, right id)` candidate pairs. For Dirty ER
/// pass the same collection twice with `config.dirty = true`.
///
/// Thin wrapper over [`Pipeline::block`] (which also returns the
/// per-stage [`eval::StageReport`], and embeds a shared Dirty-ER
/// collection once instead of twice); candidates are byte-identical.
pub fn block(
    model: &dyn LanguageModel,
    left: &[Entity],
    right: &[Entity],
    mode: &SerializationMode,
    config: &TopKConfig,
) -> Vec<(EntityId, EntityId)> {
    Pipeline::new(model, mode.clone())
        .block(left, right, config)
        .candidates()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn vectorize_embeds_every_entity() {
        let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
        let model = zoo.get(ModelCode::WC);
        let entities = vec![
            Entity::new(
                EntityId(0),
                vec![
                    ("name".into(), "golden palace".into()),
                    ("city".into(), "springfield".into()),
                ],
            ),
            Entity::new(EntityId(1), vec![("name".into(), "".into())]),
        ];
        let vecs = vectorize(
            model.as_ref(),
            &entities,
            &SerializationMode::SchemaAgnostic,
        );
        assert_eq!(vecs.len(), 2);
        assert_eq!(vecs[0].dim(), model.dim());
        assert!(vecs.iter().all(Embedding::is_finite));
    }
}
