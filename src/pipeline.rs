//! The Figure 1 pipeline driver: vectorize each collection **exactly
//! once** into a columnar [`EmbeddingMatrix`], hand the borrowed matrices
//! to the top-k blocker (zero-copy — the index never clones a row), and
//! record per-stage wall-clock plus item counts in a [`StageReport`].
//!
//! [`Pipeline::block`] fixes the Dirty-ER inefficiency of the free
//! [`crate::block`] function, which vectorized the collection twice when
//! the same slice was passed as both sides; the free function is now a
//! thin wrapper over this type, so both emit byte-identical candidates.

use er_blocking::{top_k_blocking_scored_matrix, TopKConfig};
use er_core::{EmbeddingMatrix, Entity, EntityId, GroundTruth, ScoredPair, SerializationMode};
use er_embed::LanguageModel;
use er_eval::StageReport;
use er_matching::{Clusterer, ThresholdSweep};

/// What [`Pipeline::block`] returns: the deduplicated *scored* candidate
/// pairs (the contract every matcher consumes — see
/// [`top_k_blocking_scored_matrix`]) and the per-stage timing report.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    /// Candidates with the similarity threaded out of the index, sorted by
    /// `(left, right)`.
    pub scored: Vec<ScoredPair>,
    pub report: StageReport,
}

impl BlockOutcome {
    /// The legacy unscored view: the same candidates, scores projected
    /// away, in the same order.
    pub fn candidates(&self) -> Vec<(EntityId, EntityId)> {
        self.scored.iter().map(|p| p.id_pair()).collect()
    }
}

/// Configuration of a full [`Pipeline::resolve`] run: blocking plus the
/// unsupervised matching stage swept over a δ grid.
#[derive(Debug, Clone)]
pub struct ResolveConfig {
    pub blocking: TopKConfig,
    /// The clusterer run at every δ (UMC is the paper's default, §4.3).
    pub clusterer: Clusterer,
    /// δ grid for the threshold sweep; `None` means the paper's
    /// 0.05..=0.95 grid of Fig. 15.
    pub deltas: Option<Vec<f32>>,
}

impl Default for ResolveConfig {
    fn default() -> Self {
        ResolveConfig {
            blocking: TopKConfig::default(),
            clusterer: Clusterer::UniqueMapping,
            deltas: None,
        }
    }
}

/// What [`Pipeline::resolve`] returns: the matches at the best-F1 δ, the
/// scored candidates they were clustered from, the full per-δ sweep, and
/// the stage timings (`vectorize*`, `block`, `sweep`, `match`).
#[derive(Debug, Clone)]
pub struct ResolveOutcome {
    /// The clusterer's matches at [`ResolveOutcome::best_delta`].
    pub matches: Vec<ScoredPair>,
    /// The scored candidate pairs blocking produced.
    pub candidates: Vec<ScoredPair>,
    /// The per-δ metrics curve (Fig. 15).
    pub sweep: ThresholdSweep,
    /// The best-F1 threshold of the sweep (lowest δ wins ties).
    pub best_delta: f32,
    pub report: StageReport,
    /// [`StageReport::to_json`] rendered to text — the machine-readable
    /// twin of `report`, ready to write next to a `BENCH_*.json` snapshot
    /// without the caller depending on `er-eval`'s JSON plumbing.
    pub report_json: String,
}

/// A configured vectorize → index → block run: one model, one
/// serialization mode, each collection embedded once.
pub struct Pipeline<'m> {
    model: &'m dyn LanguageModel,
    mode: SerializationMode,
}

impl<'m> Pipeline<'m> {
    pub fn new(model: &'m dyn LanguageModel, mode: SerializationMode) -> Pipeline<'m> {
        Pipeline { model, mode }
    }

    /// Vectorize a collection into columnar storage — the matrix-returning
    /// variant of [`crate::vectorize`], embedding rows in parallel across a
    /// scoped-thread pool. Row `i` holds entity `i`'s embedding, bit-equal
    /// to `model.embed(&entities[i].serialize(mode))`.
    pub fn vectorize(&self, entities: &[Entity]) -> EmbeddingMatrix {
        vectorize_matrix(self.model, entities, &self.mode)
    }

    /// Run vectorize + top-k blocking. For Dirty ER pass the same slice as
    /// both sides (with `config.dirty = true`): it is detected by identity
    /// and embedded once, not twice.
    pub fn block(&self, left: &[Entity], right: &[Entity], config: &TopKConfig) -> BlockOutcome {
        let mut report = StageReport::new();
        let shared = left.as_ptr() == right.as_ptr() && left.len() == right.len();
        let left_matrix = report.time(
            if shared {
                "vectorize"
            } else {
                "vectorize-left"
            },
            || {
                let m = self.vectorize(left);
                let rows = m.len();
                (m, rows)
            },
        );
        let right_matrix = if shared {
            None
        } else {
            Some(report.time("vectorize-right", || {
                let m = self.vectorize(right);
                let rows = m.len();
                (m, rows)
            }))
        };
        let left_ids: Vec<EntityId> = left.iter().map(|e| e.id).collect();
        let right_ids: Vec<EntityId> = right.iter().map(|e| e.id).collect();
        let scored = report.time("block", || {
            let c = top_k_blocking_scored_matrix(
                &left_ids,
                &left_matrix,
                &right_ids,
                right_matrix.as_ref().unwrap_or(&left_matrix),
                config,
            );
            let pairs = c.len();
            (c, pairs)
        });
        BlockOutcome { scored, report }
    }

    /// Vectorize + top-k blocking driven by a unified
    /// [`er_core::OperatingPoint`] instead of a legacy [`TopKConfig`] —
    /// the redesigned entry point ([`er_blocking::top_k_blocking_point`]'s
    /// pipeline twin). Fails (typed `Config` error) when the point fails
    /// validation.
    pub fn block_point(
        &self,
        left: &[Entity],
        right: &[Entity],
        point: &er_core::OperatingPoint,
    ) -> er_core::Result<BlockOutcome> {
        let config = TopKConfig::from_point(point)?;
        Ok(self.block(left, right, &config))
    }

    /// The autotuned [`Pipeline::resolve`]: vectorize both collections
    /// once, run the `er-tune` autotuner on the embedded matrices to pick
    /// the cheapest [`er_core::OperatingPoint`] meeting `goal`'s recall
    /// target, then block and match with the chosen point. The matching
    /// stage mirrors [`Pipeline::resolve`] with the paper defaults
    /// (Unique Mapping Clustering over the Fig. 15 δ grid); the report
    /// gains a `tune` stage (items = trials swept) between vectorization
    /// and blocking.
    pub fn resolve_tuned(
        &self,
        left: &[Entity],
        right: &[Entity],
        gt: &GroundTruth,
        goal: &er_core::OperatingPoint,
        tuner: &er_tune::TunerConfig,
    ) -> er_core::Result<(ResolveOutcome, er_tune::TuneOutcome)> {
        let mut report = StageReport::new();
        let shared = left.as_ptr() == right.as_ptr() && left.len() == right.len();
        let left_matrix = report.time(
            if shared {
                "vectorize"
            } else {
                "vectorize-left"
            },
            || {
                let m = self.vectorize(left);
                let rows = m.len();
                (m, rows)
            },
        );
        let right_matrix = if shared {
            None
        } else {
            Some(report.time("vectorize-right", || {
                let m = self.vectorize(right);
                let rows = m.len();
                (m, rows)
            }))
        };
        let right_ref = right_matrix.as_ref().unwrap_or(&left_matrix);
        let tune = report.time("tune", || {
            let outcome = er_tune::autotune(
                &left_matrix,
                right_ref,
                goal,
                tuner,
                &er_tune::CostModel::builtin(),
            );
            let trials = outcome.as_ref().map(|t| t.trials.len()).unwrap_or(0);
            (outcome, trials)
        })?;
        let config = TopKConfig::from_point(&tune.chosen)?;
        let left_ids: Vec<EntityId> = left.iter().map(|e| e.id).collect();
        let right_ids: Vec<EntityId> = right.iter().map(|e| e.id).collect();
        let candidates = report.time("block", || {
            let c = top_k_blocking_scored_matrix(
                &left_ids,
                &left_matrix,
                &right_ids,
                right_ref,
                &config,
            );
            let pairs = c.len();
            (c, pairs)
        });
        let sweep = report.time("sweep", || {
            let sweep = ThresholdSweep::run_with(
                &candidates,
                gt,
                Clusterer::UniqueMapping,
                &ThresholdSweep::paper_deltas(),
            );
            let points = sweep.points.len();
            (sweep, points)
        });
        let best_delta = sweep.best().map(|p| p.delta).unwrap_or(0.0);
        let matches = report.time("match", || {
            let matches = Clusterer::UniqueMapping.cluster(&candidates, best_delta);
            let count = matches.len();
            (matches, count)
        });
        let report_json = report.to_json().to_string();
        Ok((
            ResolveOutcome {
                matches,
                candidates,
                sweep,
                best_delta,
                report,
                report_json,
            },
            tune,
        ))
    }

    /// Run the full Figure 1 pipeline: vectorize → block → threshold-swept
    /// unsupervised matching, evaluated against `gt` at every δ. The
    /// returned matches are the clusterer's output at the sweep's best-F1
    /// δ, and the report gains `sweep` and `match` stages on top of the
    /// blocking stages (`sweep` items = δ grid points, `match` items =
    /// matches at the best δ).
    pub fn resolve(
        &self,
        left: &[Entity],
        right: &[Entity],
        gt: &GroundTruth,
        config: &ResolveConfig,
    ) -> ResolveOutcome {
        let BlockOutcome {
            scored: candidates,
            mut report,
        } = self.block(left, right, &config.blocking);
        let sweep = report.time("sweep", || {
            let deltas = config
                .deltas
                .clone()
                .unwrap_or_else(ThresholdSweep::paper_deltas);
            let sweep = ThresholdSweep::run_with(&candidates, gt, config.clusterer, &deltas);
            let points = sweep.points.len();
            (sweep, points)
        });
        let best_delta = sweep.best().map(|p| p.delta).unwrap_or(0.0);
        let matches = report.time("match", || {
            let matches = config.clusterer.cluster(&candidates, best_delta);
            let count = matches.len();
            (matches, count)
        });
        let report_json = report.to_json().to_string();
        ResolveOutcome {
            matches,
            candidates,
            sweep,
            best_delta,
            report,
            report_json,
        }
    }
}

/// Serialize and embed every entity into a fresh [`EmbeddingMatrix`],
/// fanning the rows out over `available_parallelism` scoped threads in
/// contiguous chunks. Each row is written independently, so the result is
/// bit-identical to the sequential loop regardless of thread count.
pub fn vectorize_matrix(
    model: &dyn LanguageModel,
    entities: &[Entity],
    mode: &SerializationMode,
) -> EmbeddingMatrix {
    let dim = model.dim();
    if entities.is_empty() || dim == 0 {
        return EmbeddingMatrix::new(dim);
    }
    let mut data = vec![0.0f32; entities.len() * dim];
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(entities.len());
    let chunk_rows = entities.len().div_ceil(workers);
    if workers <= 1 {
        embed_chunk(model, entities, mode, &mut data, dim);
    } else {
        std::thread::scope(|scope| {
            for (entity_chunk, data_chunk) in entities
                .chunks(chunk_rows)
                .zip(data.chunks_mut(chunk_rows * dim))
            {
                scope.spawn(move || embed_chunk(model, entity_chunk, mode, data_chunk, dim));
            }
        });
    }
    EmbeddingMatrix::from_flat(dim, data).expect("matrix sized as rows x dim")
}

fn embed_chunk(
    model: &dyn LanguageModel,
    entities: &[Entity],
    mode: &SerializationMode,
    data: &mut [f32],
    dim: usize,
) {
    for (entity, row) in entities.iter().zip(data.chunks_exact_mut(dim)) {
        model.embed_into(&entity.serialize(mode), row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::BlockerBackend;
    use er_core::Embedding;
    use er_embed::{ModelCode, ModelZoo, ZooConfig};
    use er_index::Metric;

    fn entities(n: u32, salt: &str) -> Vec<Entity> {
        (0..n)
            .map(|i| {
                Entity::new(
                    EntityId(i),
                    vec![
                        ("name".into(), format!("entity {salt} number {i}")),
                        ("city".into(), format!("springfield district {}", i % 4)),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matrix_vectorize_is_bit_identical_to_sequential() {
        let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
        let model = zoo.get(ModelCode::WC);
        let collection = entities(37, "alpha");
        let mode = SerializationMode::SchemaAgnostic;
        let matrix = vectorize_matrix(model.as_ref(), &collection, &mode);
        let sequential: Vec<Embedding> = crate::vectorize(model.as_ref(), &collection, &mode);
        assert_eq!(matrix.len(), collection.len());
        assert_eq!(matrix.dim(), model.dim());
        for (i, e) in sequential.iter().enumerate() {
            assert_eq!(
                matrix.row(i),
                e.as_slice(),
                "row {i} drifted from the sequential embed"
            );
        }
        assert!(vectorize_matrix(model.as_ref(), &[], &mode).is_empty());
    }

    #[test]
    fn pipeline_block_matches_the_free_function_and_reports_stages() {
        let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
        let model = zoo.get(ModelCode::FT);
        let left = entities(20, "left");
        let right = entities(18, "right");
        let mode = SerializationMode::SchemaAgnostic;
        let config = TopKConfig {
            k: 3,
            backend: BlockerBackend::Exact(Metric::Cosine),
            dirty: false,
            ..TopKConfig::default()
        };
        let outcome = Pipeline::new(model.as_ref(), mode.clone()).block(&left, &right, &config);
        let legacy = crate::block(model.as_ref(), &left, &right, &mode, &config);
        assert_eq!(outcome.candidates(), legacy);
        let stages: Vec<&str> = outcome
            .report
            .stages()
            .iter()
            .map(|s| s.stage.as_str())
            .collect();
        assert_eq!(stages, vec!["vectorize-left", "vectorize-right", "block"]);
        assert_eq!(outcome.report.get("vectorize-left").unwrap().items, 20);
        assert_eq!(
            outcome.report.get("block").unwrap().items,
            outcome.scored.len()
        );
    }

    #[test]
    fn dirty_er_embeds_the_shared_collection_once() {
        let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
        let model = zoo.get(ModelCode::WC);
        let collection = entities(16, "dirty");
        let mode = SerializationMode::SchemaAgnostic;
        let config = TopKConfig {
            k: 2,
            backend: BlockerBackend::Exact(Metric::Cosine),
            dirty: true,
            ..TopKConfig::default()
        };
        let pipeline = Pipeline::new(model.as_ref(), mode.clone());
        let outcome = pipeline.block(&collection, &collection, &config);
        // One vectorize stage, not two.
        let stages: Vec<&str> = outcome
            .report
            .stages()
            .iter()
            .map(|s| s.stage.as_str())
            .collect();
        assert_eq!(stages, vec!["vectorize", "block"]);
        // And the candidates still equal the double-embedding legacy path.
        let legacy = crate::block(model.as_ref(), &collection, &collection, &mode, &config);
        assert_eq!(outcome.candidates(), legacy);
        assert!(outcome.scored.iter().all(|p| p.left < p.right));
    }

    #[test]
    fn resolve_adds_sweep_and_match_stages_and_reuses_the_best_delta() {
        use er_core::GroundTruth;
        let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
        let model = zoo.get(ModelCode::FT);
        // Left and right are near-duplicates: i matches i.
        let left = entities(12, "alpha");
        let right = entities(12, "alpha");
        let gt = GroundTruth::clean_clean((0..12).map(|i| (EntityId(i), EntityId(i))));
        let config = ResolveConfig {
            blocking: TopKConfig::new(3).backend(BlockerBackend::Exact(Metric::Cosine)),
            ..ResolveConfig::default()
        };
        let pipeline = Pipeline::new(model.as_ref(), SerializationMode::SchemaAgnostic);
        let outcome = pipeline.resolve(&left, &right, &gt, &config);
        let stages: Vec<&str> = outcome
            .report
            .stages()
            .iter()
            .map(|s| s.stage.as_str())
            .collect();
        assert_eq!(
            stages,
            vec![
                "vectorize-left",
                "vectorize-right",
                "block",
                "sweep",
                "match"
            ]
        );
        assert_eq!(outcome.report.get("sweep").unwrap().items, 19);
        assert_eq!(
            outcome.report.get("match").unwrap().items,
            outcome.matches.len()
        );
        // The reported matches are exactly the best sweep point's matches.
        let best = outcome.sweep.best().expect("non-empty grid");
        assert_eq!(best.delta, outcome.best_delta);
        assert_eq!(best.matches, outcome.matches);
        // Identical serializations embed identically: resolve must find
        // every i ↔ i pair at the best δ.
        assert_eq!(best.metrics.f1, 1.0);
        // The serialized report is the report, rendered.
        assert_eq!(outcome.report_json, outcome.report.to_json().to_string());
        let parsed = er_core::json::Json::parse(&outcome.report_json).unwrap();
        let stage_names: Vec<String> = parsed
            .expect("stages")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .map(|s| s.expect("stage").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(stage_names, stages);
        assert_eq!(outcome.report.items_of("vectorize-left"), 12);
    }
}
