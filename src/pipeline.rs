//! The Figure 1 pipeline driver: vectorize each collection **exactly
//! once** into a columnar [`EmbeddingMatrix`], hand the borrowed matrices
//! to the top-k blocker (zero-copy — the index never clones a row), and
//! record per-stage wall-clock plus item counts in a [`StageReport`].
//!
//! [`Pipeline::block`] fixes the Dirty-ER inefficiency of the free
//! [`crate::block`] function, which vectorized the collection twice when
//! the same slice was passed as both sides; the free function is now a
//! thin wrapper over this type, so both emit byte-identical candidates.

use er_blocking::{top_k_blocking_matrix, TopKConfig};
use er_core::{EmbeddingMatrix, Entity, EntityId, SerializationMode};
use er_embed::LanguageModel;
use er_eval::StageReport;

/// What [`Pipeline::block`] returns: the deduplicated candidate pairs and
/// the per-stage timing report.
#[derive(Debug, Clone)]
pub struct BlockOutcome {
    pub candidates: Vec<(EntityId, EntityId)>,
    pub report: StageReport,
}

/// A configured vectorize → index → block run: one model, one
/// serialization mode, each collection embedded once.
pub struct Pipeline<'m> {
    model: &'m dyn LanguageModel,
    mode: SerializationMode,
}

impl<'m> Pipeline<'m> {
    pub fn new(model: &'m dyn LanguageModel, mode: SerializationMode) -> Pipeline<'m> {
        Pipeline { model, mode }
    }

    /// Vectorize a collection into columnar storage — the matrix-returning
    /// variant of [`crate::vectorize`], embedding rows in parallel across a
    /// scoped-thread pool. Row `i` holds entity `i`'s embedding, bit-equal
    /// to `model.embed(&entities[i].serialize(mode))`.
    pub fn vectorize(&self, entities: &[Entity]) -> EmbeddingMatrix {
        vectorize_matrix(self.model, entities, &self.mode)
    }

    /// Run vectorize + top-k blocking. For Dirty ER pass the same slice as
    /// both sides (with `config.dirty = true`): it is detected by identity
    /// and embedded once, not twice.
    pub fn block(&self, left: &[Entity], right: &[Entity], config: &TopKConfig) -> BlockOutcome {
        let mut report = StageReport::new();
        let shared = left.as_ptr() == right.as_ptr() && left.len() == right.len();
        let left_matrix = report.time(
            if shared {
                "vectorize"
            } else {
                "vectorize-left"
            },
            || {
                let m = self.vectorize(left);
                let rows = m.len();
                (m, rows)
            },
        );
        let right_matrix = if shared {
            None
        } else {
            Some(report.time("vectorize-right", || {
                let m = self.vectorize(right);
                let rows = m.len();
                (m, rows)
            }))
        };
        let left_ids: Vec<EntityId> = left.iter().map(|e| e.id).collect();
        let right_ids: Vec<EntityId> = right.iter().map(|e| e.id).collect();
        let candidates = report.time("block", || {
            let c = top_k_blocking_matrix(
                &left_ids,
                &left_matrix,
                &right_ids,
                right_matrix.as_ref().unwrap_or(&left_matrix),
                config,
            );
            let pairs = c.len();
            (c, pairs)
        });
        BlockOutcome { candidates, report }
    }
}

/// Serialize and embed every entity into a fresh [`EmbeddingMatrix`],
/// fanning the rows out over `available_parallelism` scoped threads in
/// contiguous chunks. Each row is written independently, so the result is
/// bit-identical to the sequential loop regardless of thread count.
pub fn vectorize_matrix(
    model: &dyn LanguageModel,
    entities: &[Entity],
    mode: &SerializationMode,
) -> EmbeddingMatrix {
    let dim = model.dim();
    if entities.is_empty() || dim == 0 {
        return EmbeddingMatrix::new(dim);
    }
    let mut data = vec![0.0f32; entities.len() * dim];
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(entities.len());
    let chunk_rows = entities.len().div_ceil(workers);
    if workers <= 1 {
        embed_chunk(model, entities, mode, &mut data, dim);
    } else {
        std::thread::scope(|scope| {
            for (entity_chunk, data_chunk) in entities
                .chunks(chunk_rows)
                .zip(data.chunks_mut(chunk_rows * dim))
            {
                scope.spawn(move || embed_chunk(model, entity_chunk, mode, data_chunk, dim));
            }
        });
    }
    EmbeddingMatrix::from_flat(dim, data).expect("matrix sized as rows x dim")
}

fn embed_chunk(
    model: &dyn LanguageModel,
    entities: &[Entity],
    mode: &SerializationMode,
    data: &mut [f32],
    dim: usize,
) {
    for (entity, row) in entities.iter().zip(data.chunks_exact_mut(dim)) {
        model.embed_into(&entity.serialize(mode), row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_blocking::BlockerBackend;
    use er_core::Embedding;
    use er_embed::{ModelCode, ModelZoo, ZooConfig};
    use er_index::Metric;

    fn entities(n: u32, salt: &str) -> Vec<Entity> {
        (0..n)
            .map(|i| {
                Entity::new(
                    EntityId(i),
                    vec![
                        ("name".into(), format!("entity {salt} number {i}")),
                        ("city".into(), format!("springfield district {}", i % 4)),
                    ],
                )
            })
            .collect()
    }

    #[test]
    fn parallel_matrix_vectorize_is_bit_identical_to_sequential() {
        let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
        let model = zoo.get(ModelCode::WC);
        let collection = entities(37, "alpha");
        let mode = SerializationMode::SchemaAgnostic;
        let matrix = vectorize_matrix(model.as_ref(), &collection, &mode);
        let sequential: Vec<Embedding> = crate::vectorize(model.as_ref(), &collection, &mode);
        assert_eq!(matrix.len(), collection.len());
        assert_eq!(matrix.dim(), model.dim());
        for (i, e) in sequential.iter().enumerate() {
            assert_eq!(
                matrix.row(i),
                e.as_slice(),
                "row {i} drifted from the sequential embed"
            );
        }
        assert!(vectorize_matrix(model.as_ref(), &[], &mode).is_empty());
    }

    #[test]
    fn pipeline_block_matches_the_free_function_and_reports_stages() {
        let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
        let model = zoo.get(ModelCode::FT);
        let left = entities(20, "left");
        let right = entities(18, "right");
        let mode = SerializationMode::SchemaAgnostic;
        let config = TopKConfig {
            k: 3,
            backend: BlockerBackend::Exact(Metric::Cosine),
            dirty: false,
        };
        let outcome = Pipeline::new(model.as_ref(), mode.clone()).block(&left, &right, &config);
        let legacy = crate::block(model.as_ref(), &left, &right, &mode, &config);
        assert_eq!(outcome.candidates, legacy);
        let stages: Vec<&str> = outcome
            .report
            .stages()
            .iter()
            .map(|s| s.stage.as_str())
            .collect();
        assert_eq!(stages, vec!["vectorize-left", "vectorize-right", "block"]);
        assert_eq!(outcome.report.get("vectorize-left").unwrap().items, 20);
        assert_eq!(
            outcome.report.get("block").unwrap().items,
            outcome.candidates.len()
        );
    }

    #[test]
    fn dirty_er_embeds_the_shared_collection_once() {
        let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
        let model = zoo.get(ModelCode::WC);
        let collection = entities(16, "dirty");
        let mode = SerializationMode::SchemaAgnostic;
        let config = TopKConfig {
            k: 2,
            backend: BlockerBackend::Exact(Metric::Cosine),
            dirty: true,
        };
        let pipeline = Pipeline::new(model.as_ref(), mode.clone());
        let outcome = pipeline.block(&collection, &collection, &config);
        // One vectorize stage, not two.
        let stages: Vec<&str> = outcome
            .report
            .stages()
            .iter()
            .map(|s| s.stage.as_str())
            .collect();
        assert_eq!(stages, vec!["vectorize", "block"]);
        // And the candidates still equal the double-embedding legacy path.
        let legacy = crate::block(model.as_ref(), &collection, &collection, &mode, &config);
        assert_eq!(outcome.candidates, legacy);
        assert!(outcome.candidates.iter().all(|(a, b)| a < b));
    }
}
