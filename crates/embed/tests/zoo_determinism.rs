//! The zoo's determinism contract: same seed ⇒ bit-identical weights across
//! independent pretrains, and save/load round-trips are bit-exact.

use er_embed::{LanguageModel, ModelZoo, ZooConfig};

#[test]
fn same_seed_pretrains_are_bit_identical() {
    let config = ZooConfig::tiny();
    let a = ModelZoo::pretrain(None, &config, 42);
    let b = ModelZoo::pretrain(None, &config, 42);
    assert_eq!(a.fingerprint(), b.fingerprint());

    let probe = "golden restaurant 555 downtown plaza";
    for (ma, mb) in a.models().iter().zip(b.models()) {
        assert_eq!(ma.code(), mb.code());
        assert_eq!(
            ma.embed(probe),
            mb.embed(probe),
            "{} diverged across pretrains",
            ma.code()
        );
    }
}

#[test]
fn different_seeds_diverge() {
    let config = ZooConfig::tiny();
    let a = ModelZoo::pretrain(None, &config, 42);
    let b = ModelZoo::pretrain(None, &config, 43);
    assert_ne!(a.fingerprint(), b.fingerprint());
}

#[test]
fn save_load_round_trip_is_bit_exact() {
    let config = ZooConfig::tiny();
    let zoo = ModelZoo::pretrain(None, &config, 42);

    let dir = std::env::temp_dir().join(format!("er-zoo-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("zoo.json");
    zoo.save(&path).unwrap();
    let loaded = ModelZoo::load(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(zoo.fingerprint(), loaded.fingerprint());
    assert_eq!(zoo.seed(), loaded.seed());
    assert_eq!(zoo.scale(), loaded.scale());
    let probe = "digital kamera 4711 battery";
    for (ma, mb) in zoo.models().iter().zip(loaded.models()) {
        assert_eq!(
            ma.embed(probe),
            mb.embed(probe),
            "{} changed after save/load",
            ma.code()
        );
    }
}

#[test]
fn cached_pretrain_reuses_weights_on_disk() {
    let config = ZooConfig::tiny();
    let dir = std::env::temp_dir().join(format!("er-zoo-cache-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let first = ModelZoo::pretrain(Some(&dir), &config, 42);
    let cache = dir.join(format!("{}.json", config.cache_stem(42)));
    assert!(cache.is_file(), "pretrain must write its cache");
    let second = ModelZoo::pretrain(Some(&dir), &config, 42);
    std::fs::remove_dir_all(&dir).ok();

    assert_eq!(first.fingerprint(), second.fingerprint());
}
