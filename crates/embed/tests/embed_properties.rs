//! Property tests: every model's `embed()` output has length `dim()` and is
//! free of NaN/Inf for arbitrary input strings, including empty and
//! all-punctuation text (which must mean-pool to the zero vector, not
//! divide by zero).

use er_embed::{LanguageModel, ModelZoo, ZooConfig};
use proptest::prelude::*;
use std::sync::OnceLock;

fn zoo() -> &'static ModelZoo {
    static ZOO: OnceLock<ModelZoo> = OnceLock::new();
    ZOO.get_or_init(|| ModelZoo::pretrain(None, &ZooConfig::tiny(), 42))
}

proptest! {
    fn embed_has_model_dim_and_is_finite(s in any_string(48)) {
        for model in zoo().models() {
            let e = model.embed(&s);
            assert_eq!(
                e.dim(),
                model.dim(),
                "{} produced wrong dimension for {s:?}",
                model.code()
            );
            assert!(
                e.is_finite(),
                "{} produced NaN/Inf for {s:?}",
                model.code()
            );
        }
    }
}

#[test]
fn degenerate_inputs_embed_to_zero_not_nan() {
    for model in zoo().models() {
        for s in ["", "   ", ".,;:!?", "!!!???...", "\t\n"] {
            let e = model.embed(s);
            assert_eq!(e.dim(), model.dim());
            assert!(e.is_finite(), "{} on {s:?}", model.code());
            assert_eq!(e.norm(), 0.0, "{} should zero-embed {s:?}", model.code());
        }
    }
}
