//! The mechanical contrast behind the paper's Fig. 3: FastText keeps a
//! typo'd token near its clean form through subword buckets, while GloVe's
//! global dictionary drops OOV tokens to the zero vector — so on every
//! injected-typo pair, FastText's cosine must be strictly higher.

use er_core::rng::rng;
use er_embed::{AnyModel, LanguageModel, ModelCode, ModelZoo, ZooConfig};
use er_text::corpus::inject_typo;
use rand::Rng;

const PAIRS: usize = 10;

/// Pick trained vocabulary words and typo them until the typo is OOV.
fn typo_pairs(ft: &AnyModel, n: usize) -> Vec<(String, String)> {
    let zoo_vocab = match ft {
        AnyModel::FastText(m) => m.vocab(),
        _ => panic!("expected the FastText model"),
    };
    let mut r = rng(0xE4);
    let mut pairs = Vec::new();
    for id in 0..zoo_vocab.len() as u32 {
        if pairs.len() == n {
            break;
        }
        let word = zoo_vocab.token(id).to_string();
        // Long-enough alphabetic words give typos that stay recognizably
        // "the same word" to a subword model.
        if word.chars().count() < 6 || !word.chars().all(|c| c.is_ascii_lowercase()) {
            continue;
        }
        for _attempt in 0..20 {
            let pos_seed: u64 = r.gen_range(0..u64::MAX);
            let typo = inject_typo(&word, &mut rng(pos_seed));
            if typo != word && !ft.knows_token(&typo) {
                pairs.push((word, typo));
                break;
            }
        }
    }
    pairs
}

#[test]
fn fasttext_beats_glove_on_every_typo_pair() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let ft = zoo.get(ModelCode::FT);
    let ge = zoo.get(ModelCode::GE);

    let pairs = typo_pairs(ft, PAIRS);
    assert_eq!(
        pairs.len(),
        PAIRS,
        "corpus vocabulary too small to draw {PAIRS} typo pairs"
    );

    for (word, typo) in &pairs {
        let ft_cos = ft.embed(word).cosine(&ft.embed(typo));
        let ge_cos = ge.embed(word).cosine(&ge.embed(typo));
        // GloVe has no subword fallback: the OOV typo embeds to zeros and
        // its cosine collapses to 0.0 exactly.
        assert_eq!(ge_cos, 0.0, "GloVe should zero out the OOV typo {typo:?}");
        assert!(
            ft_cos > ge_cos,
            "FastText must beat GloVe on ({word:?}, {typo:?}): ft={ft_cos} ge={ge_cos}"
        );
        assert!(
            ft_cos > 0.3,
            "FastText should keep {typo:?} near {word:?}, got cosine {ft_cos}"
        );
    }
}
