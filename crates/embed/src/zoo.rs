//! The model zoo: one entry point that pre-trains every implemented model
//! on the deterministic synthetic corpus, with an optional JSON weight
//! cache so repeated runs (and the benchmark suite) skip training.
//!
//! Determinism contract: `ModelZoo::pretrain(None, &config, seed)` is
//! byte-identical across runs for a fixed `(config, seed)` — each model
//! trains from its own seed-derived RNG stream, and persistence uses
//! shortest-round-trip float formatting so save/load is bit-exact.

use crate::fasttext::{FastText, FastTextParams};
use crate::glove::{Glove, GloveParams};
use crate::mlm::{self, MlmParams};
use crate::transformer::{Transformer, TransformerConfig};
use crate::word2vec::{SgnsParams, Word2Vec};
use crate::{LanguageModel, ModelCode, Vocab};
use er_core::json::Json;
use er_core::rng::rng;
use er_core::{Embedding, ErError, Result};
use er_text::corpus::synthetic_corpus;
use er_text::ngram::fnv1a;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

/// Hyper-parameters for one zoo pre-training run.
#[derive(Debug, Clone)]
pub struct ZooConfig {
    /// Human-readable scale label, part of the cache key ("Fast", "Tiny").
    pub scale: String,
    /// Synthetic-corpus size in documents.
    pub corpus_docs: usize,
    /// Embedding dimension for the static models (paper ratio: 48-d static
    /// vs 64-d transformer ≈ the paper's 300 vs 768).
    pub dim: usize,
    pub window: usize,
    pub negatives: usize,
    pub min_count: u32,
    pub w2v_epochs: usize,
    pub glove_epochs: usize,
    pub ft_epochs: usize,
    pub lr: f32,
    pub glove_lr: f32,
    pub x_max: f32,
    pub alpha: f32,
    pub nmin: usize,
    pub nmax: usize,
    pub buckets: usize,
    /// Transformer (BT) width — 64-d per DESIGN §1 (the paper's 768 scaled
    /// to the static models' 48).
    pub bt_dim: usize,
    pub bt_layers: usize,
    pub bt_heads: usize,
    pub bt_ffn: usize,
    pub bt_max_len: usize,
    pub bt_epochs: usize,
    pub bt_lr: f32,
    /// MLM per-position masking probability (BERT's 0.15).
    pub bt_mask_prob: f32,
}

impl ZooConfig {
    /// The default scale: trains all three static models in seconds on one
    /// CPU core while leaving enough corpus for meaningful geometry.
    pub fn fast() -> ZooConfig {
        ZooConfig {
            scale: "Fast".into(),
            corpus_docs: 96,
            dim: 48,
            window: 4,
            negatives: 4,
            min_count: 2,
            w2v_epochs: 4,
            glove_epochs: 12,
            ft_epochs: 3,
            lr: 0.05,
            glove_lr: 0.05,
            x_max: 16.0,
            alpha: 0.75,
            nmin: 3,
            nmax: 5,
            buckets: 4096,
            bt_dim: 64,
            bt_layers: 2,
            bt_heads: 4,
            bt_ffn: 128,
            bt_max_len: 16,
            bt_epochs: 2,
            bt_lr: 1e-3,
            bt_mask_prob: 0.15,
        }
    }

    /// A miniature scale for unit tests (debug builds train this in well
    /// under a second).
    pub fn tiny() -> ZooConfig {
        ZooConfig {
            scale: "Tiny".into(),
            corpus_docs: 24,
            dim: 48,
            window: 3,
            negatives: 3,
            min_count: 1,
            w2v_epochs: 2,
            glove_epochs: 6,
            ft_epochs: 2,
            lr: 0.05,
            glove_lr: 0.05,
            x_max: 16.0,
            alpha: 0.75,
            nmin: 3,
            nmax: 5,
            buckets: 1024,
            bt_dim: 64,
            bt_layers: 1,
            bt_heads: 2,
            bt_ffn: 64,
            bt_max_len: 10,
            bt_epochs: 1,
            bt_lr: 1e-3,
            bt_mask_prob: 0.15,
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("scale".into(), Json::from_str_value(&self.scale)),
            ("corpus_docs".into(), Json::from_usize(self.corpus_docs)),
            ("dim".into(), Json::from_usize(self.dim)),
            ("window".into(), Json::from_usize(self.window)),
            ("negatives".into(), Json::from_usize(self.negatives)),
            ("min_count".into(), Json::from_u64(self.min_count as u64)),
            ("w2v_epochs".into(), Json::from_usize(self.w2v_epochs)),
            ("glove_epochs".into(), Json::from_usize(self.glove_epochs)),
            ("ft_epochs".into(), Json::from_usize(self.ft_epochs)),
            ("lr".into(), Json::from_f32(self.lr)),
            ("glove_lr".into(), Json::from_f32(self.glove_lr)),
            ("x_max".into(), Json::from_f32(self.x_max)),
            ("alpha".into(), Json::from_f32(self.alpha)),
            ("nmin".into(), Json::from_usize(self.nmin)),
            ("nmax".into(), Json::from_usize(self.nmax)),
            ("buckets".into(), Json::from_usize(self.buckets)),
            ("bt_dim".into(), Json::from_usize(self.bt_dim)),
            ("bt_layers".into(), Json::from_usize(self.bt_layers)),
            ("bt_heads".into(), Json::from_usize(self.bt_heads)),
            ("bt_ffn".into(), Json::from_usize(self.bt_ffn)),
            ("bt_max_len".into(), Json::from_usize(self.bt_max_len)),
            ("bt_epochs".into(), Json::from_usize(self.bt_epochs)),
            ("bt_lr".into(), Json::from_f32(self.bt_lr)),
            ("bt_mask_prob".into(), Json::from_f32(self.bt_mask_prob)),
        ])
    }

    /// Cache-file stem: scale plus a hash of every hyper-parameter and the
    /// seed, so stale caches can never be loaded for the wrong config.
    pub fn cache_stem(&self, seed: u64) -> String {
        let key = format!("{}|seed={seed}", self.to_json());
        format!("zoo-{}-{:016x}", self.scale, fnv1a(key.as_bytes()))
    }
}

impl Default for ZooConfig {
    fn default() -> Self {
        ZooConfig::fast()
    }
}

/// A concrete model held by the zoo. (An enum rather than `dyn
/// LanguageModel` so models can be persisted and compared exactly.)
#[derive(Debug, Clone)]
pub enum AnyModel {
    Word2Vec(Word2Vec),
    Glove(Glove),
    FastText(FastText),
    Transformer(Transformer),
}

impl AnyModel {
    /// Whether `token` is in the model's trained vocabulary (FastText can
    /// still *embed* tokens for which this is false, via subword buckets).
    pub fn knows_token(&self, token: &str) -> bool {
        match self {
            AnyModel::Word2Vec(m) => m.vocab().id(token).is_some(),
            AnyModel::Glove(m) => m.vocab().id(token).is_some(),
            AnyModel::FastText(m) => m.vocab().id(token).is_some(),
            AnyModel::Transformer(m) => m.vocab().id(token).is_some(),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            AnyModel::Word2Vec(_) => "Word2Vec",
            AnyModel::Glove(_) => "Glove",
            AnyModel::FastText(_) => "FastText",
            AnyModel::Transformer(_) => "Transformer",
        }
    }

    fn weights_json(&self) -> Json {
        match self {
            AnyModel::Word2Vec(m) => m.to_json(),
            AnyModel::Glove(m) => m.to_json(),
            AnyModel::FastText(m) => m.to_json(),
            AnyModel::Transformer(m) => m.to_json(),
        }
    }

    fn init_ns(&self) -> u64 {
        match self {
            AnyModel::Word2Vec(m) => m.init_ns(),
            AnyModel::Glove(m) => m.init_ns(),
            AnyModel::FastText(m) => m.init_ns(),
            AnyModel::Transformer(m) => m.init_ns(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("code".into(), Json::from_str_value(self.code().as_str())),
            ("kind".into(), Json::from_str_value(self.kind())),
            ("init_ns".into(), Json::from_u64(self.init_ns())),
            ("model".into(), self.weights_json()),
        ])
    }

    fn from_json(json: &Json) -> Result<AnyModel> {
        let kind = json.expect("kind")?.as_str()?;
        let init_ns = json.expect("init_ns")?.as_u64()?;
        let weights = json.expect("model")?;
        match kind {
            "Word2Vec" => Ok(AnyModel::Word2Vec(Word2Vec::from_json(weights, init_ns)?)),
            "Glove" => Ok(AnyModel::Glove(Glove::from_json(weights, init_ns)?)),
            "FastText" => Ok(AnyModel::FastText(FastText::from_json(weights, init_ns)?)),
            "Transformer" => Ok(AnyModel::Transformer(Transformer::from_json(
                weights, init_ns,
            )?)),
            other => Err(ErError::Parse(format!("unknown model kind {other:?}"))),
        }
    }
}

impl LanguageModel for AnyModel {
    fn code(&self) -> ModelCode {
        match self {
            AnyModel::Word2Vec(m) => m.code(),
            AnyModel::Glove(m) => m.code(),
            AnyModel::FastText(m) => m.code(),
            AnyModel::Transformer(m) => m.code(),
        }
    }

    fn dim(&self) -> usize {
        match self {
            AnyModel::Word2Vec(m) => m.dim(),
            AnyModel::Glove(m) => m.dim(),
            AnyModel::FastText(m) => m.dim(),
            AnyModel::Transformer(m) => m.dim(),
        }
    }

    fn init_time(&self) -> Duration {
        match self {
            AnyModel::Word2Vec(m) => m.init_time(),
            AnyModel::Glove(m) => m.init_time(),
            AnyModel::FastText(m) => m.init_time(),
            AnyModel::Transformer(m) => m.init_time(),
        }
    }

    fn embed(&self, text: &str) -> Embedding {
        match self {
            AnyModel::Word2Vec(m) => m.embed(text),
            AnyModel::Glove(m) => m.embed(text),
            AnyModel::FastText(m) => m.embed(text),
            AnyModel::Transformer(m) => m.embed(text),
        }
    }

    fn embed_into(&self, text: &str, out: &mut [f32]) {
        match self {
            AnyModel::Word2Vec(m) => m.embed_into(text, out),
            AnyModel::Glove(m) => m.embed_into(text, out),
            AnyModel::FastText(m) => m.embed_into(text, out),
            AnyModel::Transformer(m) => m.embed_into(text, out),
        }
    }
}

/// The pre-trained roster, ordered as [`ModelCode::STATIC`] then
/// [`ModelCode::DYNAMIC`].
#[derive(Debug, Clone)]
pub struct ModelZoo {
    models: Vec<Arc<AnyModel>>,
    scale: String,
    seed: u64,
}

const ZOO_FORMAT: u64 = 1;

impl ModelZoo {
    /// Load the zoo from `cache_dir` if a cache for this exact
    /// `(config, seed)` exists, otherwise train all models and (best-effort)
    /// save them back. `None` always trains in memory.
    pub fn pretrain(cache_dir: Option<&Path>, config: &ZooConfig, seed: u64) -> ModelZoo {
        if let Some(dir) = cache_dir {
            let path = dir.join(format!("{}.json", config.cache_stem(seed)));
            if path.is_file() {
                match std::fs::read_to_string(&path)
                    .map_err(ErError::from)
                    .and_then(|text| ModelZoo::from_json_str(&text))
                {
                    Ok(zoo) => return zoo,
                    Err(e) => eprintln!(
                        "warning: ignoring unreadable zoo cache {}: {e}",
                        path.display()
                    ),
                }
            }
            let zoo = ModelZoo::train_all(config, seed);
            if let Err(e) = zoo.save(&path) {
                eprintln!("warning: could not save zoo cache {}: {e}", path.display());
            }
            zoo
        } else {
            ModelZoo::train_all(config, seed)
        }
    }

    /// Train every implemented model on the synthetic corpus. Sequential by
    /// design: the evaluation machine exposes a single core (DESIGN.md §1).
    pub fn train_all(config: &ZooConfig, seed: u64) -> ModelZoo {
        let corpus = synthetic_corpus(config.corpus_docs, &mut rng(seed));
        let vocab = Vocab::build(&corpus, config.min_count);
        assert!(!vocab.is_empty(), "zoo corpus produced an empty vocabulary");

        let w2v = Word2Vec::train(
            &corpus,
            vocab.clone(),
            &SgnsParams {
                dim: config.dim,
                window: config.window,
                negatives: config.negatives,
                epochs: config.w2v_epochs,
                lr: config.lr,
            },
            seed,
        );
        let glove = Glove::train(
            &corpus,
            vocab.clone(),
            &GloveParams {
                dim: config.dim,
                window: config.window,
                epochs: config.glove_epochs,
                lr: config.glove_lr,
                x_max: config.x_max,
                alpha: config.alpha,
            },
            seed,
        );
        let ft = FastText::train(
            &corpus,
            vocab.clone(),
            &FastTextParams {
                sgns: SgnsParams {
                    dim: config.dim,
                    window: config.window,
                    negatives: config.negatives,
                    epochs: config.ft_epochs,
                    lr: config.lr,
                },
                nmin: config.nmin,
                nmax: config.nmax,
                buckets: config.buckets,
            },
            seed,
        );
        // The dynamic model shares the static vocabulary plus the reserved
        // mask token, which must never collide with a real corpus token
        // (guaranteed by the tokenizer — see `er_text::MASK_TOKEN`).
        let bt = mlm::pretrain_bt(
            &corpus,
            vocab.with_special(er_text::MASK_TOKEN),
            &MlmParams {
                config: TransformerConfig {
                    dim: config.bt_dim,
                    layers: config.bt_layers,
                    heads: config.bt_heads,
                    ffn: config.bt_ffn,
                    max_len: config.bt_max_len,
                },
                epochs: config.bt_epochs,
                mask_prob: config.bt_mask_prob as f64,
                lr: config.bt_lr,
                clip: 1.0,
            },
            seed,
        );

        ModelZoo {
            models: vec![
                Arc::new(AnyModel::Word2Vec(w2v)),
                Arc::new(AnyModel::Glove(glove)),
                Arc::new(AnyModel::FastText(ft)),
                Arc::new(AnyModel::Transformer(bt)),
            ],
            scale: config.scale.clone(),
            seed,
        }
    }

    pub fn try_get(&self, code: ModelCode) -> Option<&Arc<AnyModel>> {
        self.models.iter().find(|m| m.code() == code)
    }

    /// Fetch a model, panicking with a roster listing if it is not (yet)
    /// implemented — the remaining dynamic models arrive in later PRs.
    pub fn get(&self, code: ModelCode) -> &Arc<AnyModel> {
        self.try_get(code).unwrap_or_else(|| {
            panic!(
                "model {code} ({}) is not in the zoo; available: {:?}",
                code.full_name(),
                self.codes()
            )
        })
    }

    pub fn models(&self) -> &[Arc<AnyModel>] {
        &self.models
    }

    pub fn codes(&self) -> Vec<ModelCode> {
        self.models.iter().map(|m| m.code()).collect()
    }

    pub fn scale(&self) -> &str {
        &self.scale
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// FNV-1a over every model's weight payload (timings excluded), for
    /// cheap bit-identity assertions across runs and round-trips.
    pub fn fingerprint(&self) -> u64 {
        let weights = Json::Arr(self.models.iter().map(|m| m.weights_json()).collect());
        fnv1a(weights.to_string().as_bytes())
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".into(), Json::from_u64(ZOO_FORMAT)),
            ("scale".into(), Json::from_str_value(&self.scale)),
            ("seed".into(), Json::from_u64(self.seed)),
            (
                "models".into(),
                Json::Arr(self.models.iter().map(|m| m.to_json()).collect()),
            ),
        ])
    }

    pub fn from_json_str(text: &str) -> Result<ModelZoo> {
        let json = Json::parse(text)?;
        let format = json.expect("format")?.as_u64()?;
        if format != ZOO_FORMAT {
            return Err(ErError::Parse(format!(
                "zoo cache format {format} unsupported (expected {ZOO_FORMAT})"
            )));
        }
        let scale = json.expect("scale")?.as_str()?.to_string();
        let seed = json.expect("seed")?.as_u64()?;
        let models = json
            .expect("models")?
            .as_arr()?
            .iter()
            .map(|m| AnyModel::from_json(m).map(Arc::new))
            .collect::<Result<Vec<_>>>()?;
        if models.is_empty() {
            return Err(ErError::Parse("zoo cache holds no models".into()));
        }
        Ok(ModelZoo {
            models,
            scale,
            seed,
        })
    }

    pub fn save(&self, path: &Path) -> Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json().to_string())?;
        Ok(())
    }

    pub fn load(path: &Path) -> Result<ModelZoo> {
        ModelZoo::from_json_str(&std::fs::read_to_string(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_zoo_trains_statics_plus_bt() {
        let zoo = ModelZoo::train_all(&ZooConfig::tiny(), 42);
        assert_eq!(
            zoo.codes(),
            vec![ModelCode::WC, ModelCode::GE, ModelCode::FT, ModelCode::BT]
        );
        for m in zoo.models() {
            // Statics are 48-d; the transformer is 64-d (DESIGN §1).
            let expected = if m.code() == ModelCode::BT { 64 } else { 48 };
            assert_eq!(m.dim(), expected);
            let e = m.embed("restaurant downtown");
            assert_eq!(e.dim(), expected);
            assert!(e.is_finite());
        }
        assert!(zoo.try_get(ModelCode::BT).is_some());
        assert!(zoo.try_get(ModelCode::AT).is_none());
    }

    #[test]
    fn bt_knows_corpus_tokens_but_embeds_oov_to_nothing() {
        let zoo = ModelZoo::train_all(&ZooConfig::tiny(), 42);
        let bt = zoo.get(ModelCode::BT);
        // The mask token rides along in the vocabulary…
        assert!(bt.knows_token(er_text::MASK_TOKEN));
        // …but an unseen token embeds to zeros (no subword fallback).
        assert_eq!(
            bt.embed("zzzzqqqq"),
            Embedding::zeros(bt.dim()),
            "BT must drop OOV tokens, unlike FastText"
        );
    }

    #[test]
    fn cache_stem_depends_on_config_and_seed() {
        let fast = ZooConfig::fast();
        let tiny = ZooConfig::tiny();
        assert_ne!(fast.cache_stem(1), fast.cache_stem(2));
        assert_ne!(fast.cache_stem(1), tiny.cache_stem(1));
        assert!(fast.cache_stem(42).starts_with("zoo-Fast-"));
    }

    #[test]
    #[should_panic(expected = "not in the zoo")]
    fn get_panics_helpfully_for_future_models() {
        let zoo = ModelZoo::train_all(&ZooConfig::tiny(), 1);
        let _ = zoo.get(ModelCode::S5);
    }

    #[test]
    fn embed_into_matches_embed_for_every_model() {
        let zoo = ModelZoo::train_all(&ZooConfig::tiny(), 7);
        for m in zoo.models() {
            let text = "golden palace grill main street";
            let e = m.embed(text);
            let mut row = vec![f32::NAN; m.dim()];
            m.embed_into(text, &mut row);
            assert_eq!(row, e.as_slice(), "{} embed_into diverged", m.code());
        }
    }
}
