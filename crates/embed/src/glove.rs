//! GloVe: global co-occurrence factorization with AdaGrad, trained from
//! scratch (paper model **GE**; DESIGN.md inventory row 4).
//!
//! Mechanics preserved from glove.c (Pennington et al. 2014): distance-
//! weighted symmetric co-occurrence counts, weighted least squares on
//! `w·c̃ + b + b̃ − ln X`, the `min(1, (X/x_max)^α)` weighting, per-parameter
//! AdaGrad, and the released vectors being `w + c̃`. Unlike FastText, GloVe
//! has **no subword fallback**: OOV tokens (typos included) contribute
//! nothing, and an all-OOV sentence embeds to the zero vector — the
//! brittleness the paper's Fig. 3 contrasts against FastText.

use crate::vocab::Vocab;
use crate::{mean_pool, LanguageModel, ModelCode};
use er_core::json::Json;
use er_core::rng::derive;
use er_core::{Embedding, Result};
use er_text::{tokenize, Corpus};
use rand::prelude::*;
use std::collections::HashMap;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct Glove {
    vocab: Vocab,
    dim: usize,
    /// Released vectors `w + c̃`, `vocab.len() * dim`, row-major.
    vectors: Vec<f32>,
    init_ns: u64,
}

#[derive(Debug, Clone)]
pub struct GloveParams {
    pub dim: usize,
    pub window: usize,
    pub epochs: usize,
    pub lr: f32,
    pub x_max: f32,
    pub alpha: f32,
}

impl Glove {
    pub fn train(corpus: &Corpus, vocab: Vocab, params: &GloveParams, seed: u64) -> Glove {
        let start = Instant::now();
        let dim = params.dim;
        let mut rng = derive(seed, "glove");

        // Distance-weighted symmetric co-occurrence counts, accumulated in a
        // map but consumed in sorted order so training is deterministic.
        let mut cooc: HashMap<(u32, u32), f32> = HashMap::new();
        for sentence in corpus.sentences() {
            let ids = vocab.encode(sentence);
            for i in 0..ids.len() {
                let hi = (i + params.window).min(ids.len().saturating_sub(1));
                for j in (i + 1)..=hi {
                    if i == j {
                        continue;
                    }
                    let weight = 1.0 / (j - i) as f32;
                    *cooc.entry((ids[i], ids[j])).or_default() += weight;
                    *cooc.entry((ids[j], ids[i])).or_default() += weight;
                }
            }
        }
        let mut entries: Vec<(u32, u32, f32)> =
            cooc.into_iter().map(|((a, b), x)| (a, b, x)).collect();
        entries.sort_by_key(|&(a, b, _)| (a, b));

        let n = vocab.len();
        let mut w: Vec<f32> = (0..n * dim)
            .map(|_| (rng.gen_range(0.0f32..1.0) - 0.5) / dim as f32)
            .collect();
        let mut c: Vec<f32> = (0..n * dim)
            .map(|_| (rng.gen_range(0.0f32..1.0) - 0.5) / dim as f32)
            .collect();
        let mut bw = vec![0.0f32; n];
        let mut bc = vec![0.0f32; n];
        // AdaGrad accumulators, initialized to 1.0 as in glove.c.
        let mut gw = vec![1.0f32; n * dim];
        let mut gc = vec![1.0f32; n * dim];
        let mut gbw = vec![1.0f32; n];
        let mut gbc = vec![1.0f32; n];

        let mut order: Vec<usize> = (0..entries.len()).collect();
        for _epoch in 0..params.epochs {
            order.shuffle(&mut rng);
            for &e in &order {
                let (a, b, x) = entries[e];
                let (a, b) = (a as usize, b as usize);
                let weight = (x / params.x_max).powf(params.alpha).min(1.0);
                let wa = a * dim..(a + 1) * dim;
                let cb = b * dim..(b + 1) * dim;
                let dot: f32 = w[wa.clone()]
                    .iter()
                    .zip(&c[cb.clone()])
                    .map(|(p, q)| p * q)
                    .sum();
                // Clipped weighted error, as glove.c does for stability.
                let diff = (dot + bw[a] + bc[b] - x.ln()).clamp(-10.0, 10.0);
                let fdiff = weight * diff;

                for d in 0..dim {
                    let (wi, ci) = (a * dim + d, b * dim + d);
                    let grad_w = fdiff * c[ci];
                    let grad_c = fdiff * w[wi];
                    gw[wi] += grad_w * grad_w;
                    gc[ci] += grad_c * grad_c;
                    w[wi] -= params.lr * grad_w / gw[wi].sqrt();
                    c[ci] -= params.lr * grad_c / gc[ci].sqrt();
                }
                gbw[a] += fdiff * fdiff;
                gbc[b] += fdiff * fdiff;
                bw[a] -= params.lr * fdiff / gbw[a].sqrt();
                bc[b] -= params.lr * fdiff / gbc[b].sqrt();
            }
        }

        let vectors: Vec<f32> = w.iter().zip(&c).map(|(p, q)| p + q).collect();
        Glove {
            vocab,
            dim,
            vectors,
            init_ns: start.elapsed().as_nanos() as u64,
        }
    }

    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    pub fn token_vector(&self, token: &str) -> Option<&[f32]> {
        self.vocab
            .id(token)
            .map(|id| &self.vectors[id as usize * self.dim..(id as usize + 1) * self.dim])
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("vocab".into(), self.vocab.to_json()),
            ("dim".into(), Json::from_usize(self.dim)),
            ("vectors".into(), Json::from_f32_slice(&self.vectors)),
        ])
    }

    pub fn from_json(json: &Json, init_ns: u64) -> Result<Glove> {
        let vocab = Vocab::from_json(json.expect("vocab")?)?;
        let dim = json.expect("dim")?.as_usize()?;
        let vectors = json.expect("vectors")?.as_f32_vec()?;
        crate::check_matrix_shape("Glove", &vectors, vocab.len(), dim)?;
        Ok(Glove {
            vocab,
            dim,
            vectors,
            init_ns,
        })
    }

    pub(crate) fn init_ns(&self) -> u64 {
        self.init_ns
    }
}

impl LanguageModel for Glove {
    fn code(&self) -> ModelCode {
        ModelCode::GE
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn init_time(&self) -> Duration {
        Duration::from_nanos(self.init_ns)
    }

    fn embed(&self, text: &str) -> Embedding {
        let tokens = tokenize(text);
        mean_pool(tokens.iter().filter_map(|t| self.token_vector(t)), self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_params() -> GloveParams {
        GloveParams {
            dim: 16,
            window: 3,
            epochs: 40,
            lr: 0.05,
            x_max: 10.0,
            alpha: 0.75,
        }
    }

    fn toy_corpus() -> Corpus {
        let mut c = Corpus::new();
        for _ in 0..40 {
            c.push_text("alpha beta prize winner");
            c.push_text("beta alpha prize ceremony");
            c.push_text("gamma delta ocean current");
            c.push_text("delta gamma ocean tide");
        }
        c
    }

    #[test]
    fn cooccurring_words_end_up_closer() {
        let corpus = toy_corpus();
        let vocab = Vocab::build(&corpus, 1);
        let model = Glove::train(&corpus, vocab, &toy_params(), 11);
        let alpha = model.embed("alpha");
        let beta = model.embed("beta");
        let gamma = model.embed("gamma");
        assert!(
            alpha.cosine(&beta) > alpha.cosine(&gamma) + 0.1,
            "cos(alpha,beta)={} cos(alpha,gamma)={}",
            alpha.cosine(&beta),
            alpha.cosine(&gamma)
        );
    }

    #[test]
    fn oov_tokens_fall_back_to_zero() {
        let corpus = toy_corpus();
        let vocab = Vocab::build(&corpus, 1);
        let model = Glove::train(&corpus, vocab, &toy_params(), 11);
        // The typo'd word is out of the global dictionary: zero vector.
        assert_eq!(model.embed("alhpa"), Embedding::zeros(16));
        assert_eq!(model.embed(""), Embedding::zeros(16));
    }

    #[test]
    fn json_round_trip_preserves_embeddings() {
        let corpus = toy_corpus();
        let vocab = Vocab::build(&corpus, 1);
        let model = Glove::train(&corpus, vocab, &toy_params(), 11);
        let back = Glove::from_json(&model.to_json(), model.init_ns()).unwrap();
        assert_eq!(model.embed("alpha ocean"), back.embed("alpha ocean"));
    }
}
