//! FastText: char-n-gram SGNS over hashed subword buckets, trained from
//! scratch (paper model **FT**; DESIGN.md inventory row 5).
//!
//! Mechanics preserved from Bojanowski et al. 2017: a word is represented
//! as the average of its word vector and its hashed n-gram bucket vectors,
//! gradients flow into every component, and — crucially for the paper's
//! Fig. 3 findings — an **out-of-vocabulary word still embeds** through the
//! buckets of its n-grams, so typo'd tokens land near their clean form
//! where GloVe collapses to zero.

use crate::sgns::{decayed_lr, sgns_step, NegTable};
use crate::vocab::Vocab;
use crate::word2vec::SgnsParams;
use crate::{mean_pool, LanguageModel, ModelCode};
use er_core::json::Json;
use er_core::rng::derive;
use er_core::{Embedding, ErError, Result};
use er_text::ngram::hashed_ngrams;
use er_text::{tokenize, Corpus};
use rand::Rng;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct FastText {
    vocab: Vocab,
    dim: usize,
    nmin: usize,
    nmax: usize,
    buckets: usize,
    /// Per-token vectors, `vocab.len() * dim`.
    word_vecs: Vec<f32>,
    /// Subword bucket vectors, `buckets * dim`.
    bucket_vecs: Vec<f32>,
    init_ns: u64,
}

#[derive(Debug, Clone)]
pub struct FastTextParams {
    pub sgns: SgnsParams,
    pub nmin: usize,
    pub nmax: usize,
    pub buckets: usize,
}

impl FastText {
    pub fn train(corpus: &Corpus, vocab: Vocab, params: &FastTextParams, seed: u64) -> FastText {
        let start = Instant::now();
        let dim = params.sgns.dim;
        let mut rng = derive(seed, "fasttext");

        // Precompute each vocabulary word's bucket ids once.
        let ngram_ids: Vec<Vec<u32>> = (0..vocab.len() as u32)
            .map(|id| hashed_ngrams(vocab.token(id), params.nmin, params.nmax, params.buckets))
            .collect();

        let mut word_vecs: Vec<f32> = (0..vocab.len() * dim)
            .map(|_| (rng.gen_range(0.0f32..1.0) - 0.5) / dim as f32)
            .collect();
        let mut bucket_vecs: Vec<f32> = (0..params.buckets * dim)
            .map(|_| (rng.gen_range(0.0f32..1.0) - 0.5) / dim as f32)
            .collect();
        let mut out_vecs = vec![0.0f32; vocab.len() * dim];
        let table = NegTable::build(vocab.counts());

        let encoded: Vec<Vec<u32>> = corpus.sentences().iter().map(|s| vocab.encode(s)).collect();
        let total_tokens: usize =
            encoded.iter().map(Vec::len).sum::<usize>().max(1) * params.sgns.epochs;
        let mut processed = 0usize;
        let mut h = vec![0.0f32; dim];
        let mut grad_h = vec![0.0f32; dim];

        for _epoch in 0..params.sgns.epochs {
            for sentence in &encoded {
                for (i, &center) in sentence.iter().enumerate() {
                    processed += 1;
                    let lr = decayed_lr(params.sgns.lr, processed as f32 / total_tokens as f32);
                    let span = rng.gen_range(1..=params.sgns.window);
                    let lo = i.saturating_sub(span);
                    let hi = (i + span).min(sentence.len() - 1);

                    let center = center as usize;
                    let grams = &ngram_ids[center];
                    let parts = (1 + grams.len()) as f32;

                    for (j, &ctx) in sentence.iter().enumerate().take(hi + 1).skip(lo) {
                        if j == i {
                            continue;
                        }
                        let context = ctx as usize;

                        // h = average of word vector and subword buckets.
                        h.copy_from_slice(&word_vecs[center * dim..(center + 1) * dim]);
                        for &g in grams {
                            let row = &bucket_vecs[g as usize * dim..(g as usize + 1) * dim];
                            for (hd, bd) in h.iter_mut().zip(row) {
                                *hd += bd;
                            }
                        }
                        for hd in h.iter_mut() {
                            *hd /= parts;
                        }

                        grad_h.fill(0.0);
                        sgns_step(&h, &mut grad_h, &mut out_vecs, context, 1.0, lr);
                        for _ in 0..params.sgns.negatives {
                            let neg = table.sample(&mut rng) as usize;
                            if neg == context {
                                continue;
                            }
                            sgns_step(&h, &mut grad_h, &mut out_vecs, neg, 0.0, lr);
                        }

                        // Distribute the input gradient over all components.
                        let scale = 1.0 / parts;
                        for (wd, g) in word_vecs[center * dim..(center + 1) * dim]
                            .iter_mut()
                            .zip(&grad_h)
                        {
                            *wd += g * scale;
                        }
                        for &gid in grams {
                            let row =
                                &mut bucket_vecs[gid as usize * dim..(gid as usize + 1) * dim];
                            for (bd, g) in row.iter_mut().zip(&grad_h) {
                                *bd += g * scale;
                            }
                        }
                    }
                }
            }
        }

        FastText {
            vocab,
            dim,
            nmin: params.nmin,
            nmax: params.nmax,
            buckets: params.buckets,
            word_vecs,
            bucket_vecs,
            init_ns: start.elapsed().as_nanos() as u64,
        }
    }

    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    /// A single token's vector: word vector averaged with its subword
    /// buckets when in-vocabulary, subword buckets alone otherwise. Only
    /// tokens with no characters at all have no representation.
    pub fn token_vector(&self, token: &str) -> Option<Embedding> {
        if token.is_empty() {
            return None;
        }
        let grams = hashed_ngrams(token, self.nmin, self.nmax, self.buckets);
        let mut v = vec![0.0f32; self.dim];
        let mut parts = 0.0f32;
        if let Some(id) = self.vocab.id(token) {
            let row = &self.word_vecs[id as usize * self.dim..(id as usize + 1) * self.dim];
            for (vd, wd) in v.iter_mut().zip(row) {
                *vd += wd;
            }
            parts += 1.0;
        }
        for &g in &grams {
            let row = &self.bucket_vecs[g as usize * self.dim..(g as usize + 1) * self.dim];
            for (vd, bd) in v.iter_mut().zip(row) {
                *vd += bd;
            }
            parts += 1.0;
        }
        if parts == 0.0 {
            return None;
        }
        for vd in v.iter_mut() {
            *vd /= parts;
        }
        Some(Embedding(v))
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("vocab".into(), self.vocab.to_json()),
            ("dim".into(), Json::from_usize(self.dim)),
            ("nmin".into(), Json::from_usize(self.nmin)),
            ("nmax".into(), Json::from_usize(self.nmax)),
            ("buckets".into(), Json::from_usize(self.buckets)),
            ("word_vectors".into(), Json::from_f32_slice(&self.word_vecs)),
            (
                "bucket_vectors".into(),
                Json::from_f32_slice(&self.bucket_vecs),
            ),
        ])
    }

    pub fn from_json(json: &Json, init_ns: u64) -> Result<FastText> {
        let vocab = Vocab::from_json(json.expect("vocab")?)?;
        let dim = json.expect("dim")?.as_usize()?;
        let nmin = json.expect("nmin")?.as_usize()?;
        let nmax = json.expect("nmax")?.as_usize()?;
        let buckets = json.expect("buckets")?.as_usize()?;
        let word_vecs = json.expect("word_vectors")?.as_f32_vec()?;
        let bucket_vecs = json.expect("bucket_vectors")?.as_f32_vec()?;
        crate::check_matrix_shape("FastText words", &word_vecs, vocab.len(), dim)?;
        crate::check_matrix_shape("FastText buckets", &bucket_vecs, buckets, dim)?;
        if nmin < 1 || nmin > nmax {
            return Err(ErError::Parse(format!("bad n-gram range {nmin}..={nmax}")));
        }
        Ok(FastText {
            vocab,
            dim,
            nmin,
            nmax,
            buckets,
            word_vecs,
            bucket_vecs,
            init_ns,
        })
    }

    pub(crate) fn init_ns(&self) -> u64 {
        self.init_ns
    }
}

impl LanguageModel for FastText {
    fn code(&self) -> ModelCode {
        ModelCode::FT
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn init_time(&self) -> Duration {
        Duration::from_nanos(self.init_ns)
    }

    fn embed(&self, text: &str) -> Embedding {
        let tokens = tokenize(text);
        let vecs: Vec<Embedding> = tokens.iter().filter_map(|t| self.token_vector(t)).collect();
        mean_pool(vecs.iter().map(Embedding::as_slice), self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_params() -> FastTextParams {
        FastTextParams {
            sgns: SgnsParams {
                dim: 16,
                window: 2,
                negatives: 3,
                epochs: 20,
                lr: 0.05,
            },
            nmin: 3,
            nmax: 5,
            buckets: 512,
        }
    }

    fn toy_corpus() -> Corpus {
        let mut c = Corpus::new();
        for _ in 0..30 {
            c.push_text("golden restaurant downtown plaza");
            c.push_text("restaurant golden kitchen plaza");
            c.push_text("digital camera battery charger");
        }
        c
    }

    #[test]
    fn oov_words_still_embed_via_subwords() {
        let corpus = toy_corpus();
        let vocab = Vocab::build(&corpus, 1);
        let model = FastText::train(&corpus, vocab, &toy_params(), 13);
        assert!(model.vocab().id("restaurnat").is_none(), "typo must be OOV");
        let typo = model.embed("restaurnat");
        assert_ne!(typo, Embedding::zeros(16), "subword fallback must fire");
        let clean = model.embed("restaurant");
        assert!(
            clean.cosine(&typo) > 0.5,
            "typo should stay near clean form, got {}",
            clean.cosine(&typo)
        );
    }

    #[test]
    fn json_round_trip_preserves_embeddings() {
        let corpus = toy_corpus();
        let vocab = Vocab::build(&corpus, 1);
        let model = FastText::train(&corpus, vocab, &toy_params(), 13);
        let back = FastText::from_json(&model.to_json(), model.init_ns()).unwrap();
        assert_eq!(model.embed("golden kamera"), back.embed("golden kamera"));
    }
}
