//! er-embed — the language-model zoo (DESIGN.md inventory rows 3–9).
//!
//! The three **static** models are implemented from scratch — Word2Vec
//! (SGNS), GloVe (co-occurrence + AdaGrad) and FastText (char-n-gram SGNS
//! over hashed buckets) — alongside the first **dynamic** model: a
//! from-scratch [`Transformer`] encoder pre-trained with a genuine
//! masked-language-model objective ([`mlm::pretrain_bt`]) over the
//! `er-tensor` autograd engine, registered as paper model **BT**. All are
//! unified behind the [`LanguageModel`] trait and pre-trained
//! deterministically by [`ModelZoo::pretrain`]. The remaining transformer
//! variants (AT/RA/DT/XT) and the SBERT family (ST/S5/SA/SM) land in later
//! PRs; their [`ModelCode`]s are already defined so the benchmark suite
//! can enumerate the full roster.

pub mod fasttext;
pub mod glove;
pub mod mlm;
mod sgns;
pub mod transformer;
pub mod vocab;
pub mod word2vec;
pub mod zoo;

pub use fasttext::{FastText, FastTextParams};
pub use glove::{Glove, GloveParams};
pub use mlm::MlmParams;
pub use transformer::{Transformer, TransformerConfig};
pub use vocab::Vocab;
pub use word2vec::{SgnsParams, Word2Vec};
pub use zoo::{AnyModel, ModelZoo, ZooConfig};

use er_core::{Embedding, ErError, Result};
use std::time::Duration;

/// The 12 language models of the paper's Table 3, by two-letter code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ModelCode {
    /// Word2Vec (static).
    WC,
    /// GloVe (static).
    GE,
    /// FastText (static).
    FT,
    /// BERT (transformer, MLM pre-trained — the first dynamic model).
    BT,
    /// AlBERT (transformer, later PR).
    AT,
    /// RoBERTa (transformer, later PR).
    RA,
    /// DistilBERT (transformer, later PR).
    DT,
    /// XLNet (transformer, later PR).
    XT,
    /// S-MPNet (SentenceBERT, later PR).
    ST,
    /// S-GTR-T5 (SentenceBERT, later PR).
    S5,
    /// S-DistilRoBERTa (SentenceBERT, later PR).
    SA,
    /// S-MiniLM (SentenceBERT, later PR).
    SM,
}

impl ModelCode {
    pub const ALL: [ModelCode; 12] = [
        ModelCode::WC,
        ModelCode::GE,
        ModelCode::FT,
        ModelCode::BT,
        ModelCode::AT,
        ModelCode::RA,
        ModelCode::DT,
        ModelCode::XT,
        ModelCode::ST,
        ModelCode::S5,
        ModelCode::SA,
        ModelCode::SM,
    ];

    /// The static subset implemented by this crate.
    pub const STATIC: [ModelCode; 3] = [ModelCode::WC, ModelCode::GE, ModelCode::FT];

    /// The dynamic (transformer) subset implemented so far.
    pub const DYNAMIC: [ModelCode; 1] = [ModelCode::BT];

    pub fn as_str(&self) -> &'static str {
        match self {
            ModelCode::WC => "WC",
            ModelCode::GE => "GE",
            ModelCode::FT => "FT",
            ModelCode::BT => "BT",
            ModelCode::AT => "AT",
            ModelCode::RA => "RA",
            ModelCode::DT => "DT",
            ModelCode::XT => "XT",
            ModelCode::ST => "ST",
            ModelCode::S5 => "S5",
            ModelCode::SA => "SA",
            ModelCode::SM => "SM",
        }
    }

    pub fn full_name(&self) -> &'static str {
        match self {
            ModelCode::WC => "Word2Vec",
            ModelCode::GE => "GloVe",
            ModelCode::FT => "FastText",
            ModelCode::BT => "BERT",
            ModelCode::AT => "AlBERT",
            ModelCode::RA => "RoBERTa",
            ModelCode::DT => "DistilBERT",
            ModelCode::XT => "XLNet",
            ModelCode::ST => "S-MPNet",
            ModelCode::S5 => "S-GTR-T5",
            ModelCode::SA => "S-DistilRoBERTa",
            ModelCode::SM => "S-MiniLM",
        }
    }

    pub fn parse(s: &str) -> Result<ModelCode> {
        ModelCode::ALL
            .iter()
            .copied()
            .find(|c| c.as_str() == s)
            .ok_or_else(|| ErError::Parse(format!("unknown model code {s:?}")))
    }
}

impl std::fmt::Display for ModelCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Uniform interface over every model in the zoo: a model turns text into a
/// fixed-dimension [`Embedding`], and reports how long it took to initialize
/// (the paper's Table 4 init-vs-transform split).
pub trait LanguageModel: Send + Sync {
    fn code(&self) -> ModelCode;
    fn dim(&self) -> usize;
    fn init_time(&self) -> Duration;
    fn embed(&self, text: &str) -> Embedding;

    /// Embed `text` directly into a caller-provided row of length
    /// [`LanguageModel::dim`] — the hook the columnar
    /// `er_core::EmbeddingMatrix` pipeline fills rows through without an
    /// intermediate allocation per entity. The default delegates to
    /// [`LanguageModel::embed`]; models that can write in place may
    /// override it.
    fn embed_into(&self, text: &str, out: &mut [f32]) {
        let e = self.embed(text);
        debug_assert_eq!(e.dim(), out.len(), "embed_into row/dim mismatch");
        out.copy_from_slice(e.as_slice());
    }
}

/// Mean-pool a set of token vectors into one sentence embedding; an empty
/// set (all tokens OOV, or empty text) pools to the zero vector.
pub(crate) fn mean_pool<'a>(vecs: impl Iterator<Item = &'a [f32]>, dim: usize) -> Embedding {
    let mut sum = vec![0.0f32; dim];
    let mut n = 0usize;
    for v in vecs {
        debug_assert_eq!(v.len(), dim);
        for (s, x) in sum.iter_mut().zip(v) {
            *s += x;
        }
        n += 1;
    }
    if n > 0 {
        let inv = 1.0 / n as f32;
        for s in sum.iter_mut() {
            *s *= inv;
        }
    }
    Embedding(sum)
}

/// Validate a flat row-major matrix loaded from JSON against its declared
/// shape, so corrupt caches fail loudly instead of panicking on slicing.
pub(crate) fn check_matrix_shape(name: &str, data: &[f32], rows: usize, dim: usize) -> Result<()> {
    if dim == 0 || data.len() != rows * dim {
        return Err(ErError::Parse(format!(
            "{name}: expected {rows}x{dim} = {} weights, got {}",
            rows * dim,
            data.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_codes_round_trip_through_display() {
        for code in ModelCode::ALL {
            assert_eq!(ModelCode::parse(&code.to_string()).unwrap(), code);
        }
        assert!(ModelCode::parse("ZZ").is_err());
    }

    #[test]
    fn mean_pool_averages_and_handles_empty() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 6.0];
        let pooled = mean_pool([a.as_slice(), b.as_slice()].into_iter(), 2);
        assert_eq!(pooled, Embedding(vec![2.0, 4.0]));
        assert_eq!(mean_pool(std::iter::empty(), 2), Embedding::zeros(2));
    }

    #[test]
    fn matrix_shape_check_rejects_mismatch() {
        assert!(check_matrix_shape("t", &[0.0; 6], 2, 3).is_ok());
        assert!(check_matrix_shape("t", &[0.0; 5], 2, 3).is_err());
        assert!(check_matrix_shape("t", &[], 2, 0).is_err());
    }
}
