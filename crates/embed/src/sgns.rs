//! Shared skip-gram-with-negative-sampling machinery (Mikolov et al. 2013),
//! used by both Word2Vec and FastText.

use er_core::rng::DetRng;
use rand::Rng;

/// Numerically safe logistic function (inputs clamped to ±8, where the
/// gradient is effectively zero anyway).
#[inline]
pub(crate) fn sigmoid(x: f32) -> f32 {
    let x = x.clamp(-8.0, 8.0);
    1.0 / (1.0 + (-x).exp())
}

/// Unigram^0.75 negative-sampling table (word2vec's distribution).
pub(crate) struct NegTable {
    table: Vec<u32>,
}

impl NegTable {
    const SIZE: usize = 1 << 16;

    pub fn build(counts: &[u32]) -> NegTable {
        assert!(!counts.is_empty(), "cannot build table over empty vocab");
        let weights: Vec<f64> = counts.iter().map(|&c| (c as f64).powf(0.75)).collect();
        let total: f64 = weights.iter().sum();
        let mut table = Vec::with_capacity(Self::SIZE);
        let mut cum = 0.0;
        let mut id = 0usize;
        for slot in 0..Self::SIZE {
            let target = (slot as f64 + 0.5) / Self::SIZE as f64 * total;
            while cum + weights[id] < target && id + 1 < counts.len() {
                cum += weights[id];
                id += 1;
            }
            table.push(id as u32);
        }
        NegTable { table }
    }

    #[inline]
    pub fn sample(&self, rng: &mut DetRng) -> u32 {
        self.table[rng.gen_range(0..self.table.len())]
    }
}

/// Linearly decaying learning rate, floored at 10% of the initial rate
/// (word2vec.c's schedule).
#[inline]
pub(crate) fn decayed_lr(lr0: f32, progress: f32) -> f32 {
    lr0 * (1.0 - progress).max(0.1)
}

/// One SGNS update for an input representation `h` against `target`'s
/// output vector, accumulating the input gradient in `grad_h`.
#[inline]
pub(crate) fn sgns_step(
    h: &[f32],
    grad_h: &mut [f32],
    out_vecs: &mut [f32],
    target: usize,
    label: f32,
    lr: f32,
) {
    let dim = h.len();
    let out = &mut out_vecs[target * dim..(target + 1) * dim];
    let dot: f32 = h.iter().zip(out.iter()).map(|(a, b)| a * b).sum();
    let g = (label - sigmoid(dot)) * lr;
    for d in 0..dim {
        grad_h[d] += g * out[d];
        out[d] += g * h[d];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::rng::rng;

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        assert!(sigmoid(-100.0) > 0.0);
        assert!(sigmoid(100.0) < 1.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(1.0) > sigmoid(-1.0));
    }

    #[test]
    fn neg_table_prefers_frequent_words() {
        let table = NegTable::build(&[100, 10, 1]);
        let mut r = rng(5);
        let mut hits = [0usize; 3];
        for _ in 0..10_000 {
            hits[table.sample(&mut r) as usize] += 1;
        }
        assert!(hits[0] > hits[1]);
        assert!(hits[1] > hits[2]);
        assert!(hits[2] > 0, "rare words must still be sampled");
    }

    #[test]
    fn sgns_step_pulls_positive_pairs_together() {
        let h = vec![0.5f32, -0.25, 0.1];
        let mut grad = vec![0.0f32; 3];
        let mut out = vec![0.4f32, 0.4, 0.4];
        let before: f32 = h.iter().zip(&out).map(|(a, b)| a * b).sum();
        for _ in 0..50 {
            sgns_step(&h, &mut grad, &mut out, 0, 1.0, 0.1);
        }
        let after: f32 = h.iter().zip(&out).map(|(a, b)| a * b).sum();
        assert!(after > before, "positive update must raise the score");
    }
}
