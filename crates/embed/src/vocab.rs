//! Token vocabulary shared by the static models.
//!
//! Ids are assigned by descending corpus frequency with a lexicographic
//! tiebreak, so vocabulary construction is deterministic for a fixed
//! corpus regardless of hash-map iteration order.

use er_core::json::Json;
use er_core::{ErError, Result};
use er_text::Corpus;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq)]
pub struct Vocab {
    tokens: Vec<String>,
    counts: Vec<u32>,
    index: HashMap<String, u32>,
}

impl Vocab {
    /// Build from a corpus, keeping tokens seen at least `min_count` times.
    pub fn build(corpus: &Corpus, min_count: u32) -> Vocab {
        let mut freq: HashMap<&str, u32> = HashMap::new();
        for sentence in corpus.sentences() {
            for token in sentence {
                *freq.entry(token.as_str()).or_default() += 1;
            }
        }
        let mut ranked: Vec<(&str, u32)> =
            freq.into_iter().filter(|&(_, c)| c >= min_count).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        let tokens: Vec<String> = ranked.iter().map(|(t, _)| t.to_string()).collect();
        let counts: Vec<u32> = ranked.iter().map(|&(_, c)| c).collect();
        let index = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        Vocab {
            tokens,
            counts,
            index,
        }
    }

    /// Append a reserved special token (e.g. `er_text::MASK_TOKEN`) with
    /// count 0, after all frequency-ranked entries so every real token
    /// keeps its id. No-op if the token is already present. Special tokens
    /// survive the JSON round-trip like any other entry.
    pub fn with_special(mut self, token: &str) -> Vocab {
        if self.index.contains_key(token) {
            return self;
        }
        self.index
            .insert(token.to_string(), self.tokens.len() as u32);
        self.tokens.push(token.to_string());
        self.counts.push(0);
        self
    }

    pub fn id(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    pub fn token(&self, id: u32) -> &str {
        &self.tokens[id as usize]
    }

    pub fn count(&self, id: u32) -> u32 {
        self.counts[id as usize]
    }

    pub fn counts(&self) -> &[u32] {
        &self.counts
    }

    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Map a sentence to ids, silently dropping OOV tokens (the static
    /// models' training view of the corpus).
    pub fn encode(&self, sentence: &[String]) -> Vec<u32> {
        sentence.iter().filter_map(|t| self.id(t)).collect()
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "tokens".into(),
                Json::Arr(
                    self.tokens
                        .iter()
                        .map(|t| Json::from_str_value(t))
                        .collect(),
                ),
            ),
            (
                "counts".into(),
                Json::Arr(
                    self.counts
                        .iter()
                        .map(|&c| Json::from_u64(c as u64))
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(json: &Json) -> Result<Vocab> {
        let tokens: Vec<String> = json
            .expect("tokens")?
            .as_arr()?
            .iter()
            .map(|t| t.as_str().map(str::to_string))
            .collect::<Result<_>>()?;
        let counts: Vec<u32> = json
            .expect("counts")?
            .as_arr()?
            .iter()
            .map(|c| c.as_u64().map(|v| v as u32))
            .collect::<Result<_>>()?;
        if tokens.len() != counts.len() {
            return Err(ErError::Parse(format!(
                "vocab has {} tokens but {} counts",
                tokens.len(),
                counts.len()
            )));
        }
        let index = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i as u32))
            .collect();
        Ok(Vocab {
            tokens,
            counts,
            index,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus_of(lines: &[&str]) -> Corpus {
        let mut c = Corpus::new();
        for l in lines {
            c.push_text(l);
        }
        c
    }

    #[test]
    fn ranks_by_frequency_then_lexicographically() {
        let c = corpus_of(&["b a b", "a b c", "b a"]);
        let v = Vocab::build(&c, 1);
        // b:4, a:3, c:1
        assert_eq!(v.token(0), "b");
        assert_eq!(v.token(1), "a");
        assert_eq!(v.token(2), "c");
        assert_eq!(v.count(0), 4);
    }

    #[test]
    fn min_count_filters_rare_tokens() {
        let c = corpus_of(&["a a b"]);
        let v = Vocab::build(&c, 2);
        assert_eq!(v.len(), 1);
        assert_eq!(v.id("a"), Some(0));
        assert_eq!(v.id("b"), None);
    }

    #[test]
    fn encode_drops_oov() {
        let c = corpus_of(&["a b"]);
        let v = Vocab::build(&c, 1);
        let ids = v.encode(&["a".into(), "zzz".into(), "b".into()]);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn json_round_trip() {
        let c = corpus_of(&["x y z x"]);
        let v = Vocab::build(&c, 1);
        let back = Vocab::from_json(&v.to_json()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn special_token_appends_after_ranked_entries() {
        let c = corpus_of(&["a a b"]);
        let v = Vocab::build(&c, 1);
        let (a_id, b_id) = (v.id("a").unwrap(), v.id("b").unwrap());
        let v = v.with_special(er_text::MASK_TOKEN);
        assert_eq!(v.id("a"), Some(a_id), "real token ids must not shift");
        assert_eq!(v.id("b"), Some(b_id));
        let mask_id = v.id(er_text::MASK_TOKEN).unwrap();
        assert_eq!(mask_id as usize, v.len() - 1);
        assert_eq!(v.count(mask_id), 0);
        // Idempotent, and survives persistence.
        let again = v.clone().with_special(er_text::MASK_TOKEN);
        assert_eq!(v, again);
        let back = Vocab::from_json(&v.to_json()).unwrap();
        assert_eq!(v, back);
    }
}
