//! Word2Vec: skip-gram with negative sampling, trained from scratch
//! (paper model **WC**; DESIGN.md inventory row 3).
//!
//! Mechanics preserved from word2vec.c: dynamic window shrinking, the
//! unigram^0.75 negative table, linear learning-rate decay, uniform
//! ±0.5/dim input init with zero-initialized output vectors. Sentence
//! embeddings are mean-pooled token vectors; OOV tokens are skipped and
//! all-OOV sentences embed to the zero vector.

use crate::sgns::{decayed_lr, sgns_step, NegTable};
use crate::vocab::Vocab;
use crate::{mean_pool, LanguageModel, ModelCode};
use er_core::json::Json;
use er_core::rng::derive;
use er_core::{Embedding, Result};
use er_text::{tokenize, Corpus};
use rand::Rng;
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
pub struct Word2Vec {
    vocab: Vocab,
    dim: usize,
    /// Input vectors, `vocab.len() * dim`, row-major — the released weights.
    vectors: Vec<f32>,
    init_ns: u64,
}

/// SGNS hyper-parameters (shared with FastText).
#[derive(Debug, Clone)]
pub struct SgnsParams {
    pub dim: usize,
    pub window: usize,
    pub negatives: usize,
    pub epochs: usize,
    pub lr: f32,
}

impl Word2Vec {
    pub fn train(corpus: &Corpus, vocab: Vocab, params: &SgnsParams, seed: u64) -> Word2Vec {
        let start = Instant::now();
        let dim = params.dim;
        let mut rng = derive(seed, "word2vec");

        let mut in_vecs: Vec<f32> = (0..vocab.len() * dim)
            .map(|_| (rng.gen_range(0.0f32..1.0) - 0.5) / dim as f32)
            .collect();
        let mut out_vecs = vec![0.0f32; vocab.len() * dim];
        let table = NegTable::build(vocab.counts());

        let encoded: Vec<Vec<u32>> = corpus.sentences().iter().map(|s| vocab.encode(s)).collect();
        let total_tokens: usize =
            encoded.iter().map(Vec::len).sum::<usize>().max(1) * params.epochs;
        let mut processed = 0usize;
        let mut grad_h = vec![0.0f32; dim];
        let mut h_buf = vec![0.0f32; dim];

        for _epoch in 0..params.epochs {
            for sentence in &encoded {
                for (i, &center) in sentence.iter().enumerate() {
                    processed += 1;
                    let lr = decayed_lr(params.lr, processed as f32 / total_tokens as f32);
                    let span = rng.gen_range(1..=params.window);
                    let lo = i.saturating_sub(span);
                    let hi = (i + span).min(sentence.len() - 1);
                    for (j, &ctx) in sentence.iter().enumerate().take(hi + 1).skip(lo) {
                        if j == i {
                            continue;
                        }
                        let context = ctx as usize;
                        let h_row = center as usize * dim..(center as usize + 1) * dim;
                        grad_h.fill(0.0);
                        h_buf.copy_from_slice(&in_vecs[h_row.clone()]);
                        sgns_step(&h_buf, &mut grad_h, &mut out_vecs, context, 1.0, lr);
                        for _ in 0..params.negatives {
                            let neg = table.sample(&mut rng) as usize;
                            if neg == context {
                                continue;
                            }
                            sgns_step(&h_buf, &mut grad_h, &mut out_vecs, neg, 0.0, lr);
                        }
                        for (w, g) in in_vecs[h_row].iter_mut().zip(&grad_h) {
                            *w += g;
                        }
                    }
                }
            }
        }

        Word2Vec {
            vocab,
            dim,
            vectors: in_vecs,
            init_ns: start.elapsed().as_nanos() as u64,
        }
    }

    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    pub fn token_vector(&self, token: &str) -> Option<&[f32]> {
        self.vocab
            .id(token)
            .map(|id| &self.vectors[id as usize * self.dim..(id as usize + 1) * self.dim])
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("vocab".into(), self.vocab.to_json()),
            ("dim".into(), Json::from_usize(self.dim)),
            ("vectors".into(), Json::from_f32_slice(&self.vectors)),
        ])
    }

    pub fn from_json(json: &Json, init_ns: u64) -> Result<Word2Vec> {
        let vocab = Vocab::from_json(json.expect("vocab")?)?;
        let dim = json.expect("dim")?.as_usize()?;
        let vectors = json.expect("vectors")?.as_f32_vec()?;
        crate::check_matrix_shape("Word2Vec", &vectors, vocab.len(), dim)?;
        Ok(Word2Vec {
            vocab,
            dim,
            vectors,
            init_ns,
        })
    }

    pub(crate) fn init_ns(&self) -> u64 {
        self.init_ns
    }
}

impl LanguageModel for Word2Vec {
    fn code(&self) -> ModelCode {
        ModelCode::WC
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn init_time(&self) -> Duration {
        Duration::from_nanos(self.init_ns)
    }

    fn embed(&self, text: &str) -> Embedding {
        let tokens = tokenize(text);
        mean_pool(tokens.iter().filter_map(|t| self.token_vector(t)), self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_params() -> SgnsParams {
        SgnsParams {
            dim: 16,
            window: 3,
            negatives: 3,
            epochs: 30,
            lr: 0.05,
        }
    }

    /// Crafted corpus: "alpha" and "beta" always co-occur, "gamma" lives in
    /// disjoint contexts — SGNS must place alpha nearer beta than gamma.
    fn toy_corpus() -> Corpus {
        let mut c = Corpus::new();
        for _ in 0..40 {
            c.push_text("alpha beta prize winner");
            c.push_text("beta alpha prize ceremony");
            c.push_text("gamma delta ocean current");
            c.push_text("delta gamma ocean tide");
        }
        c
    }

    #[test]
    fn cooccurring_words_end_up_closer() {
        let corpus = toy_corpus();
        let vocab = Vocab::build(&corpus, 1);
        let model = Word2Vec::train(&corpus, vocab, &toy_params(), 7);
        let alpha = model.embed("alpha");
        let beta = model.embed("beta");
        let gamma = model.embed("gamma");
        assert!(
            alpha.cosine(&beta) > alpha.cosine(&gamma) + 0.1,
            "cos(alpha,beta)={} cos(alpha,gamma)={}",
            alpha.cosine(&beta),
            alpha.cosine(&gamma)
        );
    }

    #[test]
    fn oov_sentences_embed_to_zeros() {
        let corpus = toy_corpus();
        let vocab = Vocab::build(&corpus, 1);
        let model = Word2Vec::train(&corpus, vocab, &toy_params(), 7);
        assert_eq!(model.embed("zzz qqq"), Embedding::zeros(16));
        assert_eq!(model.embed(""), Embedding::zeros(16));
    }

    #[test]
    fn json_round_trip_preserves_embeddings() {
        let corpus = toy_corpus();
        let vocab = Vocab::build(&corpus, 1);
        let model = Word2Vec::train(&corpus, vocab, &toy_params(), 7);
        let back = Word2Vec::from_json(&model.to_json(), model.init_ns()).unwrap();
        let a = model.embed("alpha beta ocean");
        let b = back.embed("alpha beta ocean");
        assert_eq!(a, b);
    }
}
