//! From-scratch transformer encoder over the `er-tensor` autograd engine
//! (paper model **BT**; DESIGN.md inventory row 6).
//!
//! Architecture (a miniature BERT, sized per DESIGN §1's 64-d budget):
//! token embeddings + fixed sinusoidal positional encodings, then
//! pre-LN encoder blocks — `x + MHA(LN(x))` followed by `x + FFN(LN(x))`
//! with GELU — and a final layer-norm. Multi-head attention keeps one
//! `dim × head_dim` projection triple per head (no reshape ops needed on
//! 2-D tensors); scores are scaled by `1/√head_dim`. Sentence embeddings
//! are **mean-pooled final-layer token states**, exactly the raw
//! "feature-extraction" usage whose anisotropy the paper measures —
//! no fine-tuning, no CLS head.
//!
//! Like the static models, everything is deterministic: weights come from
//! one seed-derived RNG stream (in declaration order), the forward pass is
//! sequential f32 arithmetic, and JSON persistence round-trips the weights
//! bit-exactly in the fixed [`Transformer::param_tensors`] order.

use crate::vocab::Vocab;
use crate::{LanguageModel, ModelCode};
use er_core::json::Json;
use er_core::{Embedding, ErError, Result};
use er_tensor::{Graph, Tensor, Var};
use er_text::tokenize;
use rand::RngCore;
use std::time::Duration;

/// Shape of the encoder. Every field is part of the zoo cache key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Model width (64 per DESIGN §1 — the paper's 768 scaled down).
    pub dim: usize,
    /// Number of encoder blocks.
    pub layers: usize,
    /// Attention heads; must divide `dim`.
    pub heads: usize,
    /// FFN inner width.
    pub ffn: usize,
    /// Maximum sequence length; longer token lists are truncated.
    pub max_len: usize,
}

impl TransformerConfig {
    pub fn head_dim(&self) -> usize {
        assert!(
            self.heads > 0 && self.dim.is_multiple_of(self.heads),
            "heads ({}) must divide dim ({})",
            self.heads,
            self.dim
        );
        self.dim / self.heads
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("dim".into(), Json::from_usize(self.dim)),
            ("layers".into(), Json::from_usize(self.layers)),
            ("heads".into(), Json::from_usize(self.heads)),
            ("ffn".into(), Json::from_usize(self.ffn)),
            ("max_len".into(), Json::from_usize(self.max_len)),
        ])
    }

    pub fn from_json(json: &Json) -> Result<TransformerConfig> {
        Ok(TransformerConfig {
            dim: json.expect("dim")?.as_usize()?,
            layers: json.expect("layers")?.as_usize()?,
            heads: json.expect("heads")?.as_usize()?,
            ffn: json.expect("ffn")?.as_usize()?,
            max_len: json.expect("max_len")?.as_usize()?,
        })
    }
}

/// One pre-LN encoder block's parameters.
#[derive(Debug, Clone)]
struct EncoderLayer {
    ln1_gamma: Tensor,
    ln1_beta: Tensor,
    /// Per-head projections, each `dim × head_dim`.
    wq: Vec<Tensor>,
    wk: Vec<Tensor>,
    wv: Vec<Tensor>,
    wo: Tensor,
    ln2_gamma: Tensor,
    ln2_beta: Tensor,
    w1: Tensor,
    b1: Tensor,
    w2: Tensor,
    b2: Tensor,
}

/// Initialization scale for weight matrices (BERT's 0.02).
const INIT_SCALE: f32 = 0.02;

impl EncoderLayer {
    fn init(config: &TransformerConfig, rng: &mut impl RngCore) -> EncoderLayer {
        let (d, h, hd, f) = (config.dim, config.heads, config.head_dim(), config.ffn);
        EncoderLayer {
            ln1_gamma: ones(1, d),
            ln1_beta: Tensor::zeros(1, d),
            wq: (0..h)
                .map(|_| Tensor::randn(d, hd, INIT_SCALE, rng))
                .collect(),
            wk: (0..h)
                .map(|_| Tensor::randn(d, hd, INIT_SCALE, rng))
                .collect(),
            wv: (0..h)
                .map(|_| Tensor::randn(d, hd, INIT_SCALE, rng))
                .collect(),
            wo: Tensor::randn(d, d, INIT_SCALE, rng),
            ln2_gamma: ones(1, d),
            ln2_beta: Tensor::zeros(1, d),
            w1: Tensor::randn(d, f, INIT_SCALE, rng),
            b1: Tensor::zeros(1, f),
            w2: Tensor::randn(f, d, INIT_SCALE, rng),
            b2: Tensor::zeros(1, d),
        }
    }

    fn zeroed(config: &TransformerConfig) -> EncoderLayer {
        let (d, h, hd, f) = (config.dim, config.heads, config.head_dim(), config.ffn);
        EncoderLayer {
            ln1_gamma: Tensor::zeros(1, d),
            ln1_beta: Tensor::zeros(1, d),
            wq: (0..h).map(|_| Tensor::zeros(d, hd)).collect(),
            wk: (0..h).map(|_| Tensor::zeros(d, hd)).collect(),
            wv: (0..h).map(|_| Tensor::zeros(d, hd)).collect(),
            wo: Tensor::zeros(d, d),
            ln2_gamma: Tensor::zeros(1, d),
            ln2_beta: Tensor::zeros(1, d),
            w1: Tensor::zeros(d, f),
            b1: Tensor::zeros(1, f),
            w2: Tensor::zeros(f, d),
            b2: Tensor::zeros(1, d),
        }
    }
}

fn ones(rows: usize, cols: usize) -> Tensor {
    Tensor::from_rows(rows, cols, &vec![1.0; rows * cols])
}

/// The encoder plus its vocabulary; the first *dynamic* model in the zoo.
#[derive(Debug, Clone)]
pub struct Transformer {
    code: ModelCode,
    vocab: Vocab,
    config: TransformerConfig,
    /// Token embedding table, `vocab.len() × dim`. Also the (weight-tied)
    /// MLM output head.
    token_embed: Tensor,
    layers: Vec<EncoderLayer>,
    final_gamma: Tensor,
    final_beta: Tensor,
    init_ns: u64,
}

/// `Var` handles for every parameter of a [`Transformer`] bound into one
/// [`Graph`], in [`Transformer::param_tensors`] order.
pub(crate) struct BoundTransformer {
    pub token_embed: Var,
    ordered: Vec<Var>,
    layers: Vec<BoundLayer>,
    final_gamma: Var,
    final_beta: Var,
}

struct BoundLayer {
    ln1_gamma: Var,
    ln1_beta: Var,
    wq: Vec<Var>,
    wk: Vec<Var>,
    wv: Vec<Var>,
    wo: Var,
    ln2_gamma: Var,
    ln2_beta: Var,
    w1: Var,
    b1: Var,
    w2: Var,
    b2: Var,
}

impl BoundTransformer {
    /// Every parameter `Var`, in the same order as
    /// [`Transformer::param_tensors`] — grads read from these line up with
    /// the optimizer's parameter slice.
    pub fn ordered_vars(&self) -> &[Var] {
        &self.ordered
    }
}

impl Transformer {
    /// Fresh random weights from `rng` (one stream, declaration order):
    /// matrices at scale `INIT_SCALE` (0.02), layer-norm gains at 1, biases 0.
    pub fn init(
        code: ModelCode,
        vocab: Vocab,
        config: TransformerConfig,
        rng: &mut impl RngCore,
    ) -> Transformer {
        let d = config.dim;
        let token_embed = Tensor::randn(vocab.len(), d, INIT_SCALE, rng);
        let layers = (0..config.layers)
            .map(|_| EncoderLayer::init(&config, rng))
            .collect();
        Transformer {
            code,
            vocab,
            token_embed,
            final_gamma: ones(1, d),
            final_beta: Tensor::zeros(1, d),
            layers,
            config,
            init_ns: 0,
        }
    }

    /// All-zero weights in the right shapes — the loading skeleton
    /// [`Transformer::from_json`] fills in.
    fn zeroed(code: ModelCode, vocab: Vocab, config: TransformerConfig) -> Transformer {
        let d = config.dim;
        Transformer {
            code,
            token_embed: Tensor::zeros(vocab.len(), d),
            layers: (0..config.layers)
                .map(|_| EncoderLayer::zeroed(&config))
                .collect(),
            final_gamma: Tensor::zeros(1, d),
            final_beta: Tensor::zeros(1, d),
            vocab,
            config,
            init_ns: 0,
        }
    }

    pub fn vocab(&self) -> &Vocab {
        &self.vocab
    }

    pub fn config(&self) -> &TransformerConfig {
        &self.config
    }

    pub(crate) fn set_init_ns(&mut self, ns: u64) {
        self.init_ns = ns;
    }

    pub(crate) fn init_ns(&self) -> u64 {
        self.init_ns
    }

    /// Every parameter tensor in one fixed order — the contract shared by
    /// the optimizer, JSON persistence and `BoundTransformer::ordered_vars`.
    pub fn param_tensors(&self) -> Vec<&Tensor> {
        let mut out = vec![&self.token_embed];
        for l in &self.layers {
            out.push(&l.ln1_gamma);
            out.push(&l.ln1_beta);
            out.extend(l.wq.iter());
            out.extend(l.wk.iter());
            out.extend(l.wv.iter());
            out.push(&l.wo);
            out.push(&l.ln2_gamma);
            out.push(&l.ln2_beta);
            out.push(&l.w1);
            out.push(&l.b1);
            out.push(&l.w2);
            out.push(&l.b2);
        }
        out.push(&self.final_gamma);
        out.push(&self.final_beta);
        out
    }

    /// Mutable view in [`Transformer::param_tensors`] order.
    pub fn param_tensors_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out: Vec<&mut Tensor> = vec![&mut self.token_embed];
        for l in &mut self.layers {
            out.push(&mut l.ln1_gamma);
            out.push(&mut l.ln1_beta);
            out.extend(l.wq.iter_mut());
            out.extend(l.wk.iter_mut());
            out.extend(l.wv.iter_mut());
            out.push(&mut l.wo);
            out.push(&mut l.ln2_gamma);
            out.push(&mut l.ln2_beta);
            out.push(&mut l.w1);
            out.push(&mut l.b1);
            out.push(&mut l.w2);
            out.push(&mut l.b2);
        }
        out.push(&mut self.final_gamma);
        out.push(&mut self.final_beta);
        out
    }

    /// Copy every parameter into `g` as leaves and hand back the `Var`s.
    pub(crate) fn bind(&self, g: &mut Graph) -> BoundTransformer {
        let token_embed = g.param(&self.token_embed);
        let mut ordered = vec![token_embed];
        let mut layers = Vec::with_capacity(self.layers.len());
        for l in &self.layers {
            let bound = BoundLayer {
                ln1_gamma: g.param(&l.ln1_gamma),
                ln1_beta: g.param(&l.ln1_beta),
                wq: l.wq.iter().map(|t| g.param(t)).collect(),
                wk: l.wk.iter().map(|t| g.param(t)).collect(),
                wv: l.wv.iter().map(|t| g.param(t)).collect(),
                wo: g.param(&l.wo),
                ln2_gamma: g.param(&l.ln2_gamma),
                ln2_beta: g.param(&l.ln2_beta),
                w1: g.param(&l.w1),
                b1: g.param(&l.b1),
                w2: g.param(&l.w2),
                b2: g.param(&l.b2),
            };
            ordered.push(bound.ln1_gamma);
            ordered.push(bound.ln1_beta);
            ordered.extend(bound.wq.iter().copied());
            ordered.extend(bound.wk.iter().copied());
            ordered.extend(bound.wv.iter().copied());
            ordered.push(bound.wo);
            ordered.push(bound.ln2_gamma);
            ordered.push(bound.ln2_beta);
            ordered.push(bound.w1);
            ordered.push(bound.b1);
            ordered.push(bound.w2);
            ordered.push(bound.b2);
            layers.push(bound);
        }
        let final_gamma = g.param(&self.final_gamma);
        let final_beta = g.param(&self.final_beta);
        ordered.push(final_gamma);
        ordered.push(final_beta);
        BoundTransformer {
            token_embed,
            ordered,
            layers,
            final_gamma,
            final_beta,
        }
    }

    /// Run the encoder over a (non-empty, pre-truncated) id sequence inside
    /// `g`, returning the `len × dim` final-layer-norm hidden states.
    pub(crate) fn encode(&self, g: &mut Graph, bound: &BoundTransformer, ids: &[u32]) -> Var {
        assert!(!ids.is_empty(), "encode of an empty sequence");
        assert!(ids.len() <= self.config.max_len, "sequence not truncated");
        let idx: Vec<usize> = ids.iter().map(|&i| i as usize).collect();
        let embedded = g.gather(bound.token_embed, &idx);
        let pe = g.constant(positional_encoding(idx.len(), self.config.dim));
        let mut x = g.add(embedded, pe);
        let scale = 1.0 / (self.config.head_dim() as f32).sqrt();
        for l in &bound.layers {
            // x ← x + MHA(LN(x))
            let h = g.layer_norm(x, l.ln1_gamma, l.ln1_beta);
            let mut heads = Vec::with_capacity(l.wq.len());
            for ((wq, wk), wv) in l.wq.iter().zip(&l.wk).zip(&l.wv) {
                let q = g.matmul(h, *wq);
                let k = g.matmul(h, *wk);
                let v = g.matmul(h, *wv);
                let scores = g.matmul_nt(q, k);
                let scaled = g.scale(scores, scale);
                let att = g.softmax(scaled);
                heads.push(g.matmul(att, v));
            }
            let cat = g.concat_cols(&heads);
            let proj = g.matmul(cat, l.wo);
            x = g.add(x, proj);
            // x ← x + FFN(LN(x))
            let h2 = g.layer_norm(x, l.ln2_gamma, l.ln2_beta);
            let pre = g.matmul(h2, l.w1);
            let pre_b = g.add_row(pre, l.b1);
            let act = g.gelu(pre_b);
            let ff = g.matmul(act, l.w2);
            let ff_b = g.add_row(ff, l.b2);
            x = g.add(x, ff_b);
        }
        g.layer_norm(x, bound.final_gamma, bound.final_beta)
    }

    /// Vocabulary-encode `text` (OOV dropped, like the static models) and
    /// truncate to `max_len` — the inference-side tokenization.
    fn encode_ids(&self, text: &str) -> Vec<u32> {
        let tokens = tokenize(text);
        let mut ids = self.vocab.encode(&tokens);
        ids.truncate(self.config.max_len);
        ids
    }

    /// Mean-pooled final hidden states for an id sequence. Empty → zeros
    /// (the all-OOV contract every zoo model shares).
    fn pool_ids(&self, ids: &[u32]) -> Embedding {
        if ids.is_empty() {
            return Embedding::zeros(self.config.dim);
        }
        let mut g = Graph::new();
        let bound = self.bind(&mut g);
        let hidden = self.encode(&mut g, &bound, ids);
        let pooled = g.mean_pool(hidden);
        Embedding(g.value(pooled).data().to_vec())
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("code".into(), Json::from_str_value(self.code.as_str())),
            ("config".into(), self.config.to_json()),
            ("vocab".into(), self.vocab.to_json()),
            (
                "params".into(),
                Json::Arr(
                    self.param_tensors()
                        .iter()
                        .map(|t| Json::from_f32_slice(t.data()))
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(json: &Json, init_ns: u64) -> Result<Transformer> {
        let code = ModelCode::parse(json.expect("code")?.as_str()?)?;
        let config = TransformerConfig::from_json(json.expect("config")?)?;
        let vocab = Vocab::from_json(json.expect("vocab")?)?;
        let mut model = Transformer::zeroed(code, vocab, config);
        model.init_ns = init_ns;
        let arrays = json.expect("params")?.as_arr()?;
        let mut params = model.param_tensors_mut();
        if arrays.len() != params.len() {
            return Err(ErError::Parse(format!(
                "Transformer: expected {} parameter tensors, got {}",
                params.len(),
                arrays.len()
            )));
        }
        for (i, (param, array)) in params.iter_mut().zip(arrays).enumerate() {
            let values = array.as_f32_vec()?;
            crate::check_matrix_shape(
                &format!("Transformer param {i}"),
                &values,
                param.rows(),
                param.cols(),
            )?;
            param.data_mut().copy_from_slice(&values);
        }
        Ok(model)
    }
}

impl LanguageModel for Transformer {
    fn code(&self) -> ModelCode {
        self.code
    }

    fn dim(&self) -> usize {
        self.config.dim
    }

    fn init_time(&self) -> Duration {
        Duration::from_nanos(self.init_ns)
    }

    fn embed(&self, text: &str) -> Embedding {
        self.pool_ids(&self.encode_ids(text))
    }

    fn embed_into(&self, text: &str, out: &mut [f32]) {
        let ids = self.encode_ids(text);
        if ids.is_empty() {
            out.fill(0.0);
            return;
        }
        let mut g = Graph::new();
        let bound = self.bind(&mut g);
        let hidden = self.encode(&mut g, &bound, &ids);
        let pooled = g.mean_pool(hidden);
        out.copy_from_slice(g.value(pooled).data());
    }
}

/// Fixed sinusoidal positional encodings (Vaswani et al. 2017):
/// `pe[p, 2i] = sin(p / 10000^(2i/dim))`, `pe[p, 2i+1] = cos(·)`.
pub fn positional_encoding(len: usize, dim: usize) -> Tensor {
    let mut pe = Tensor::zeros(len, dim);
    for p in 0..len {
        for i in 0..dim {
            let exponent = 2.0 * (i / 2) as f32 / dim as f32;
            let angle = p as f32 / 10_000f32.powf(exponent);
            pe.set(p, i, if i % 2 == 0 { angle.sin() } else { angle.cos() });
        }
    }
    pe
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::rng::rng;
    use er_text::Corpus;

    fn toy() -> Transformer {
        let mut c = Corpus::new();
        c.push_text("golden palace grill downtown");
        c.push_text("royal garden cafe uptown");
        let vocab = Vocab::build(&c, 1).with_special(er_text::MASK_TOKEN);
        let config = TransformerConfig {
            dim: 8,
            layers: 2,
            heads: 2,
            ffn: 16,
            max_len: 6,
        };
        Transformer::init(ModelCode::BT, vocab, config, &mut rng(5))
    }

    #[test]
    fn embeds_deterministically_at_declared_dim() {
        let t = toy();
        let a = t.embed("golden palace grill");
        let b = t.embed("golden palace grill");
        assert_eq!(a, b);
        assert_eq!(a.dim(), 8);
        assert!(a.is_finite());
        assert!(a.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn empty_and_oov_text_embed_to_zeros() {
        let t = toy();
        assert_eq!(t.embed(""), Embedding::zeros(8));
        assert_eq!(t.embed("zzz qqq www"), Embedding::zeros(8));
    }

    #[test]
    fn embed_into_matches_embed() {
        let t = toy();
        let via_embed = t.embed("royal garden cafe");
        let mut row = vec![7.0f32; 8];
        t.embed_into("royal garden cafe", &mut row);
        assert_eq!(row, via_embed.as_slice());
        t.embed_into("", &mut row);
        assert!(row.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn long_inputs_truncate_to_max_len() {
        let t = toy();
        // 8 known tokens, max_len 6: must not panic, must differ from the
        // first 5 tokens alone (6th token still contributes).
        let long = "golden palace grill downtown royal garden cafe uptown";
        let e = t.embed(long);
        assert!(e.is_finite());
        let first_six = "golden palace grill downtown royal garden";
        assert_eq!(e, t.embed(first_six));
    }

    #[test]
    fn order_matters_unlike_static_mean_pooling() {
        // Positional encodings + attention make the encoder
        // order-sensitive; static mean-pooled models are not.
        let t = toy();
        let ab = t.embed("golden palace");
        let ba = t.embed("palace golden");
        assert_ne!(ab, ba);
    }

    #[test]
    fn json_round_trip_is_bit_identical() {
        let t = toy();
        let back = Transformer::from_json(&t.to_json(), t.init_ns()).unwrap();
        assert_eq!(t.to_json().to_string(), back.to_json().to_string());
        let a = t.embed("golden garden");
        let b = back.embed("golden garden");
        assert_eq!(a, b);
    }

    #[test]
    fn param_order_is_stable_between_accessors_and_bind() {
        let mut t = toy();
        let shapes: Vec<(usize, usize)> = t
            .param_tensors()
            .iter()
            .map(|p| (p.rows(), p.cols()))
            .collect();
        let mut_shapes: Vec<(usize, usize)> = t
            .param_tensors_mut()
            .iter()
            .map(|p| (p.rows(), p.cols()))
            .collect();
        assert_eq!(shapes, mut_shapes);
        let mut g = Graph::new();
        let bound = t.bind(&mut g);
        let bound_shapes: Vec<(usize, usize)> = bound
            .ordered_vars()
            .iter()
            .map(|&v| (g.value(v).rows(), g.value(v).cols()))
            .collect();
        assert_eq!(shapes, bound_shapes);
        // token_embed + layers·(2+2 LN + 3·heads proj + wo + w1/b1/w2/b2) + final LN pair.
        assert_eq!(shapes.len(), 1 + 2 * (9 + 3 * 2) + 2);
    }

    #[test]
    fn positional_encoding_first_row_is_sin0_cos0() {
        let pe = positional_encoding(3, 4);
        assert_eq!(pe.row(0), &[0.0, 1.0, 0.0, 1.0]);
        // Row 1 differs from row 0 — positions are distinguishable.
        assert_ne!(pe.row(1), pe.row(0));
    }
}
