//! Masked-language-model pre-training for the transformer encoder
//! (DESIGN.md inventory row 7) — the genuine BERT objective, scaled to the
//! synthetic corpus.
//!
//! Per sentence, each position is masked with probability `mask_prob`
//! (at least one per sentence), and every selected position follows the
//! BERT 80/10/10 recipe: 80 % replaced by `er_text::MASK_TOKEN`, 10 % by a
//! random vocabulary token, 10 % kept. The loss is mean cross-entropy of
//! the *original* token at each masked position, with logits produced by
//! the **weight-tied** output head `h · Eᵀ` (the token-embedding table
//! transposed) — so gradients reach the embeddings through both the input
//! lookup and the output projection. Optimization is Adam with global-norm
//! gradient clipping, one sentence per step, sequential by design
//! (DESIGN §1's single-core budget): a fixed `(corpus, vocab, params,
//! seed)` yields byte-identical weights on every run.

use crate::transformer::{Transformer, TransformerConfig};
use crate::vocab::Vocab;
use crate::ModelCode;
use er_core::rng::derive;
use er_tensor::{clip_grad_norm, Adam, Graph, Tensor};
use er_text::{Corpus, MASK_TOKEN};
use rand::Rng;

/// MLM pre-training hyper-parameters.
#[derive(Debug, Clone)]
pub struct MlmParams {
    pub config: TransformerConfig,
    pub epochs: usize,
    /// Per-position masking probability (BERT's 0.15).
    pub mask_prob: f64,
    pub lr: f32,
    /// Global gradient-norm clip.
    pub clip: f32,
}

/// Pre-train model **BT** on `corpus`. `vocab` must contain
/// [`MASK_TOKEN`] (build it with [`Vocab::with_special`]).
pub fn pretrain_bt(corpus: &Corpus, vocab: Vocab, params: &MlmParams, seed: u64) -> Transformer {
    pretrain(ModelCode::BT, corpus, vocab, params, seed)
}

/// Pre-train a transformer under `code`, deriving its RNG stream from
/// `(seed, code)` so each future transformer variant trains differently.
pub fn pretrain(
    code: ModelCode,
    corpus: &Corpus,
    vocab: Vocab,
    params: &MlmParams,
    seed: u64,
) -> Transformer {
    let start = std::time::Instant::now();
    let mask_id = vocab
        .id(MASK_TOKEN)
        .unwrap_or_else(|| panic!("MLM vocab lacks the {MASK_TOKEN} special token"));
    let mut rng = derive(seed, &format!("mlm-{code}"));
    let mut model = Transformer::init(code, vocab, params.config.clone(), &mut rng);

    // Training view of the corpus: vocabulary ids (OOV dropped), truncated
    // to the context window; single-token sentences carry no MLM signal.
    let encoded: Vec<Vec<u32>> = corpus
        .sentences()
        .iter()
        .map(|s| {
            let mut ids = model.vocab().encode(s);
            ids.truncate(params.config.max_len);
            ids
        })
        .filter(|ids| ids.len() >= 2)
        .collect();

    let vocab_len = model.vocab().len() as u32;
    let mut adam = Adam::new(params.lr);
    for _epoch in 0..params.epochs {
        for sentence in &encoded {
            // Select positions, BERT-style corruption per position.
            let mut positions: Vec<usize> = (0..sentence.len())
                .filter(|_| rng.gen_bool(params.mask_prob))
                .collect();
            if positions.is_empty() {
                positions.push(rng.gen_range(0..sentence.len()));
            }
            let mut corrupted = sentence.clone();
            let mut targets = Vec::with_capacity(positions.len());
            for &p in &positions {
                targets.push(sentence[p] as usize);
                let roll: f64 = rng.gen_range(0.0..1.0);
                if roll < 0.8 {
                    corrupted[p] = mask_id;
                } else if roll < 0.9 {
                    corrupted[p] = rng.gen_range(0..vocab_len);
                } // else: keep the original token.
            }

            // Forward: encode the corrupted sentence, project the masked
            // positions through the tied embedding table, score originals.
            let mut g = Graph::new();
            let bound = model.bind(&mut g);
            let hidden = model.encode(&mut g, &bound, &corrupted);
            let masked_hidden = g.gather(hidden, &positions);
            let logits = g.matmul_nt(masked_hidden, bound.token_embed);
            let loss = g.cross_entropy(logits, &targets);
            g.backward(loss);

            let mut grads: Vec<Tensor> = bound
                .ordered_vars()
                .iter()
                .map(|&v| g.grad(v).clone())
                .collect();
            clip_grad_norm(&mut grads, params.clip);
            let grad_refs: Vec<&Tensor> = grads.iter().collect();
            adam.step(&mut model.param_tensors_mut(), &grad_refs);
        }
    }

    model.set_init_ns(start.elapsed().as_nanos() as u64);
    model
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LanguageModel;
    use er_core::rng::rng;
    use er_core::Embedding;
    use er_text::corpus::synthetic_corpus;

    fn tiny_params() -> MlmParams {
        MlmParams {
            config: TransformerConfig {
                dim: 16,
                layers: 1,
                heads: 2,
                ffn: 32,
                max_len: 8,
            },
            epochs: 1,
            mask_prob: 0.15,
            lr: 1e-3,
            clip: 1.0,
        }
    }

    fn tiny_corpus() -> Corpus {
        synthetic_corpus(6, &mut rng(11))
    }

    #[test]
    fn pretraining_is_byte_deterministic() {
        let corpus = tiny_corpus();
        let vocab = Vocab::build(&corpus, 1).with_special(MASK_TOKEN);
        let a = pretrain_bt(&corpus, vocab.clone(), &tiny_params(), 42);
        let b = pretrain_bt(&corpus, vocab, &tiny_params(), 42);
        assert_eq!(
            a.to_json().to_string(),
            b.to_json().to_string(),
            "same seed must give bit-identical weights"
        );
        for (x, y) in a.param_tensors().iter().zip(b.param_tensors()) {
            assert_eq!(x.data(), y.data());
        }
    }

    #[test]
    fn different_seeds_give_different_weights() {
        let corpus = tiny_corpus();
        let vocab = Vocab::build(&corpus, 1).with_special(MASK_TOKEN);
        let a = pretrain_bt(&corpus, vocab.clone(), &tiny_params(), 1);
        let b = pretrain_bt(&corpus, vocab, &tiny_params(), 2);
        assert_ne!(a.to_json().to_string(), b.to_json().to_string());
    }

    #[test]
    fn training_moves_weights_and_keeps_them_finite() {
        let corpus = tiny_corpus();
        let vocab = Vocab::build(&corpus, 1).with_special(MASK_TOKEN);
        let mut init_rng = derive(42, "mlm-BT");
        let untrained = Transformer::init(
            ModelCode::BT,
            vocab.clone(),
            tiny_params().config.clone(),
            &mut init_rng,
        );
        let trained = pretrain_bt(&corpus, vocab, &tiny_params(), 42);
        let mut moved = false;
        for (u, t) in untrained
            .param_tensors()
            .iter()
            .zip(trained.param_tensors())
        {
            assert!(t.data().iter().all(|x| x.is_finite()), "non-finite weight");
            moved |= u.data() != t.data();
        }
        assert!(moved, "MLM training left every weight untouched");
        let e = trained.embed("golden palace downtown");
        assert!(e.is_finite());
        assert_ne!(e, Embedding::zeros(16));
    }
}
