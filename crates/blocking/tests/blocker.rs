//! Blocker-level integration: planted near-duplicate vector sets run
//! through every backend, checking pairs-completeness, the deterministic
//! candidate-list contract, and agreement between the batch and
//! sequential search paths.

use er_blocking::{top_k_blocking, BlockerBackend, TopKConfig};
use er_core::rng::rng;
use er_core::{Embedding, EntityId, GroundTruth};
use er_eval::Metrics;
use er_index::{HnswConfig, LshConfig, Metric};
use rand::Rng;

/// A synthetic Clean-Clean instance in embedding space: `matches` right
/// vectors are jittered copies of the corresponding left vectors, the rest
/// of both sides is background noise.
fn planted(
    left_n: usize,
    right_n: usize,
    matches: usize,
    dim: usize,
    jitter: f32,
    seed: u64,
) -> (Vec<Embedding>, Vec<Embedding>, GroundTruth) {
    let mut r = rng(seed);
    let left: Vec<Embedding> = (0..left_n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
        .collect();
    let mut right: Vec<Embedding> = Vec::with_capacity(right_n);
    for l in left.iter().take(matches) {
        right.push(Embedding(
            l.as_slice()
                .iter()
                .map(|x| x + r.gen_range(-jitter..jitter))
                .collect(),
        ));
    }
    for _ in matches..right_n {
        right.push(Embedding(
            (0..dim).map(|_| r.gen_range(-1.0..1.0)).collect(),
        ));
    }
    let gt =
        GroundTruth::clean_clean((0..matches).map(|i| (EntityId(i as u32), EntityId(i as u32))));
    (left, right, gt)
}

fn ids(n: usize) -> Vec<EntityId> {
    (0..n as u32).map(EntityId).collect()
}

#[test]
fn every_backend_recovers_planted_duplicates() {
    let (left, right, gt) = planted(120, 120, 80, 12, 0.05, 31);
    let backends = [
        BlockerBackend::Exact(Metric::Cosine),
        BlockerBackend::Hnsw(HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        }),
        BlockerBackend::Lsh(LshConfig {
            tables: 16,
            probes: 4,
            ..LshConfig::default()
        }),
    ];
    for backend in backends {
        let label = format!("{backend:?}");
        let config = TopKConfig {
            k: 10,
            backend,
            dirty: false,
            ..TopKConfig::default()
        };
        let candidates = top_k_blocking(&ids(120), &left, &ids(120), &right, &config);
        let m = Metrics::of_candidates(&candidates, &gt);
        assert!(
            m.recall >= 0.9,
            "{label}: pairs-completeness {:.3} < 0.9",
            m.recall
        );
        assert!(
            candidates.len() <= 120 * 10,
            "{label}: more candidates than queries x k"
        );
    }
}

#[test]
fn blocker_candidate_lists_are_deterministic() {
    let (left, right, _) = planted(100, 100, 60, 12, 0.05, 32);
    for backend in [
        BlockerBackend::Hnsw(HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        }),
        BlockerBackend::Lsh(LshConfig::default()),
    ] {
        let config = TopKConfig {
            k: 5,
            backend,
            dirty: false,
            ..TopKConfig::default()
        };
        let a = top_k_blocking(&ids(100), &left, &ids(100), &right, &config);
        let b = top_k_blocking(&ids(100), &left, &ids(100), &right, &config);
        assert_eq!(a, b, "same build, same candidates: {config:?}");
        assert!(!a.is_empty());
    }

    // Different index seeds are allowed to block differently (and with this
    // jitter they do for HNSW at k=1 or LSH generally) — but determinism
    // per seed is the contract; just assert both seeds yield valid output.
    let reseeded = TopKConfig {
        k: 5,
        backend: BlockerBackend::Hnsw(HnswConfig {
            metric: Metric::Cosine,
            seed: 99,
            ..HnswConfig::default()
        }),
        dirty: false,
        ..TopKConfig::default()
    };
    let c = top_k_blocking(&ids(100), &left, &ids(100), &right, &reseeded);
    assert!(!c.is_empty());
}

#[test]
fn candidate_set_is_far_smaller_than_cross_product() {
    let (left, right, gt) = planted(150, 150, 100, 12, 0.05, 33);
    let config = TopKConfig {
        k: 10,
        backend: BlockerBackend::Hnsw(HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        }),
        dirty: false,
        ..TopKConfig::default()
    };
    let candidates = top_k_blocking(&ids(150), &left, &ids(150), &right, &config);
    let cross = 150 * 150;
    assert!(
        candidates.len() * 4 < cross,
        "blocking must emit < 25% of the cross-product ({} of {cross})",
        candidates.len()
    );
    let m = Metrics::of_candidates(&candidates, &gt);
    assert!(m.recall >= 0.9, "PC {:.3}", m.recall);
}
