//! The embedding top-k blocker (DESIGN.md inventory row 12): index one
//! side of a Clean-Clean dataset, query the other with each entity's
//! embedding, and keep every `(query, neighbour)` pair as a candidate —
//! the paper's Fig. 3 blocking recipe (DeepER lineage, §4.3).
//!
//! The native storage is the columnar [`EmbeddingMatrix`]:
//! [`top_k_blocking_scored_matrix`] builds the chosen index *borrowing*
//! the right side (zero-copy), batch-queries it with the left side's rows
//! via [`NnIndex::search_batch_rows`] (fanning out over a scoped-thread
//! worker pool while staying bit-identical to sequential search), and
//! threads each hit's similarity outward as a [`ScoredPair`] — the
//! scored-candidate contract the matchers consume (see
//! [`Metric::hit_similarity`]: cosine scores are bit-identical to
//! `er_matching::similarity::cosine`). The unscored
//! [`top_k_blocking_matrix`] and the legacy [`top_k_blocking`] entry
//! points are thin projections of the same code path, so all three emit
//! candidates in the same canonical `(left, right)` order.

use crate::dedup_scored;
use er_core::{
    BackendParams, Embedding, EmbeddingMatrix, EntityId, HnswParams, LshParams, OperatingPoint,
    ScanConfig, ScoredPair,
};
use er_index::{ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, LshConfig, Metric, NnIndex};

/// Which index serves the k-NN queries.
#[derive(Debug, Clone)]
pub enum BlockerBackend {
    /// Brute-force scan under the given metric — exact, O(|left|·|right|).
    Exact(Metric),
    /// HNSW graph (the scalable default; seed/metric live in the config).
    Hnsw(HnswConfig),
    /// Hyperplane LSH with multi-table probing.
    Lsh(LshConfig),
}

impl BlockerBackend {
    /// The metric the backend's index will be built with.
    pub fn metric(&self) -> Metric {
        match self {
            BlockerBackend::Exact(metric) => *metric,
            BlockerBackend::Hnsw(config) => config.metric,
            BlockerBackend::Lsh(config) => config.metric,
        }
    }
}

impl Default for BlockerBackend {
    /// HNSW under cosine — the paper's blocking setting over raw
    /// embeddings, on the scalable index.
    fn default() -> Self {
        BlockerBackend::Hnsw(HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        })
    }
}

/// Top-k blocking configuration.
///
/// Construct it either as a struct literal or through the builder:
/// `TopKConfig::new(10).backend(BlockerBackend::Exact(Metric::Cosine)).dirty(true)`.
#[derive(Debug, Clone)]
pub struct TopKConfig {
    /// Neighbours kept per query entity (the paper sweeps k ∈ {1, 5, 10}).
    pub k: usize,
    pub backend: BlockerBackend,
    /// Dirty ER: both sides are the same collection, so pairs are
    /// order-normalized and self-pairs dropped (see
    /// [`crate::dedup_candidates`]).
    pub dirty: bool,
    /// Kernel tier / quantization for the *Exact* backend's scan (HNSW and
    /// LSH carry their own `tier` in their configs). The default is the
    /// pre-tier behavior: `Reference` kernels, no quantization — candidate
    /// scores stay bit-identical to the seed pipeline.
    pub scan: ScanConfig,
}

impl TopKConfig {
    /// Start a builder with the given `k` and the default backend
    /// (HNSW/cosine) and dirty flag (`false`).
    pub fn new(k: usize) -> TopKConfig {
        TopKConfig {
            k,
            ..TopKConfig::default()
        }
    }

    /// Choose the index backend.
    pub fn backend(mut self, backend: BlockerBackend) -> TopKConfig {
        self.backend = backend;
        self
    }

    /// Mark both sides as the same collection (Dirty ER).
    pub fn dirty(mut self, dirty: bool) -> TopKConfig {
        self.dirty = dirty;
        self
    }

    /// Choose the Exact backend's kernel tier / quantization.
    pub fn scan(mut self, scan: ScanConfig) -> TopKConfig {
        self.scan = scan;
        self
    }
}

impl Default for TopKConfig {
    fn default() -> Self {
        TopKConfig {
            k: 10,
            backend: BlockerBackend::default(),
            dirty: false,
            scan: ScanConfig::default(),
        }
    }
}

impl TopKConfig {
    /// Derive a blocking config from a unified [`OperatingPoint`] — the
    /// preferred construction path since the config redesign (the legacy
    /// struct remains supported; see the crate docs' deprecation note).
    /// Validates the point first, so a self-contradictory configuration
    /// (e.g. a quantized scan on an approximate backend) surfaces as a
    /// typed `ErError::Config` instead of silently misconfiguring a
    /// backend. The point's single `metric`/`scan.tier` feed every backend
    /// config, which is what closes the "two scans disagree" footgun.
    pub fn from_point(point: &OperatingPoint) -> er_core::Result<TopKConfig> {
        point.validate()?;
        let backend = match point.backend {
            BackendParams::Exact => BlockerBackend::Exact(point.metric),
            BackendParams::Hnsw | BackendParams::HnswWith(_) => {
                let p = point.backend.hnsw().expect("hnsw params");
                BlockerBackend::Hnsw(HnswConfig {
                    m: p.m,
                    ef_construction: p.ef_construction,
                    ef_search: p.ef_search,
                    metric: point.metric,
                    seed: p.seed,
                    tier: point.scan.tier,
                })
            }
            BackendParams::Lsh | BackendParams::LshWith(_) => {
                let p = point.backend.lsh().expect("lsh params");
                BlockerBackend::Lsh(LshConfig {
                    planes: p.planes,
                    tables: p.tables,
                    probes: p.probes,
                    metric: point.metric,
                    seed: p.seed,
                    tier: point.scan.tier,
                })
            }
        };
        Ok(TopKConfig {
            k: point.k,
            backend,
            dirty: point.dirty,
            scan: point.scan,
        })
    }
}

impl TryFrom<&OperatingPoint> for TopKConfig {
    type Error = er_core::ErError;

    fn try_from(point: &OperatingPoint) -> er_core::Result<TopKConfig> {
        TopKConfig::from_point(point)
    }
}

/// Lift a legacy blocking config into the unified [`OperatingPoint`].
/// Total (never fails): every constructible `TopKConfig` has a unified
/// form. For approximate backends the point's scan tier is the *backend's*
/// tier — the one that actually ranks — and any quantization set on the
/// legacy `scan` field (which those backends silently ignored: the
/// footgun) is dropped.
impl From<&TopKConfig> for OperatingPoint {
    fn from(config: &TopKConfig) -> OperatingPoint {
        let (backend, scan) = match &config.backend {
            BlockerBackend::Exact(_) => (BackendParams::Exact, config.scan),
            BlockerBackend::Hnsw(c) => (
                BackendParams::HnswWith(HnswParams {
                    m: c.m,
                    ef_construction: c.ef_construction,
                    ef_search: c.ef_search,
                    seed: c.seed,
                }),
                ScanConfig::with_tier(c.tier),
            ),
            BlockerBackend::Lsh(c) => (
                BackendParams::LshWith(LshParams {
                    planes: c.planes,
                    tables: c.tables,
                    probes: c.probes,
                    seed: c.seed,
                }),
                ScanConfig::with_tier(c.tier),
            ),
        };
        OperatingPoint {
            k: config.k,
            metric: config.backend.metric(),
            backend,
            scan,
            dirty: config.dirty,
            recall_target: None,
            budget_ns: None,
        }
    }
}

/// Run top-k blocking over legacy per-entity embeddings: each side is
/// copied once into an [`EmbeddingMatrix`] and handed to
/// [`top_k_blocking_matrix`], whose candidates it returns unchanged.
///
/// For Dirty ER pass the same collection as both sides with
/// `config.dirty = true`; self-matches are removed by the dedup pass.
pub fn top_k_blocking(
    left_ids: &[EntityId],
    left_vectors: &[Embedding],
    right_ids: &[EntityId],
    right_vectors: &[Embedding],
    config: &TopKConfig,
) -> Vec<(EntityId, EntityId)> {
    top_k_blocking_matrix(
        left_ids,
        &EmbeddingMatrix::from_embeddings(left_vectors),
        right_ids,
        &EmbeddingMatrix::from_embeddings(right_vectors),
        config,
    )
}

/// Run top-k blocking over columnar storage: index `right` (borrowed,
/// zero-copy), batch-query it with every row of `left`, and return the
/// deduplicated candidate pairs `(left id, right id)` — the unscored
/// projection of [`top_k_blocking_scored_matrix`], in the same order.
pub fn top_k_blocking_matrix(
    left_ids: &[EntityId],
    left: &EmbeddingMatrix,
    right_ids: &[EntityId],
    right: &EmbeddingMatrix,
    config: &TopKConfig,
) -> Vec<(EntityId, EntityId)> {
    top_k_blocking_scored_matrix(left_ids, left, right_ids, right, config)
        .into_iter()
        .map(|p| p.id_pair())
        .collect()
}

/// The scored variant of [`top_k_blocking_matrix`]: every surviving
/// candidate carries the similarity the matchers consume, threaded from
/// the index hit via [`Metric::hit_similarity`].
///
/// For cosine backends the score is recomputed as
/// `kernels::cosine_prenorm(left row, cached left norm, right row, cached
/// right norm)`, which is bit-identical to
/// `er_matching::similarity::cosine` on the same rows — subtracting the
/// hit distance from 1 instead would drift by an ulp whenever `1 − cos`
/// rounds. Euclidean backends map the (squared) distance monotonically
/// through `1 / (1 + d)`. Either way downstream matchers never touch the
/// vectors again: no re-scoring, no kernel drift.
///
/// Output is deduplicated (order-normalized and self-pair-free when
/// `config.dirty`) and sorted by `(left, right)`; the similarity is
/// symmetric at the bit level, so order normalization never changes a
/// score.
pub fn top_k_blocking_scored_matrix(
    left_ids: &[EntityId],
    left: &EmbeddingMatrix,
    right_ids: &[EntityId],
    right: &EmbeddingMatrix,
    config: &TopKConfig,
) -> Vec<ScoredPair> {
    assert_eq!(left_ids.len(), left.len(), "left ids/vectors differ");
    assert_eq!(right_ids.len(), right.len(), "right ids/vectors differ");
    if left_ids.is_empty() || right_ids.is_empty() || config.k == 0 {
        return Vec::new();
    }
    match &config.backend {
        BlockerBackend::Exact(metric) => query_all(
            // A bad PQ layout (subspaces not dividing the embedding dim) is
            // a construction bug in the caller's config, not a data error.
            &ExactIndex::from_source_scan(right, *metric, config.scan)
                .expect("top-k blocking: scan config failed to build"),
            left_ids,
            left,
            right_ids,
            right,
            config,
        ),
        BlockerBackend::Hnsw(hnsw) => query_all(
            &HnswIndex::from_matrix(right, hnsw.clone()),
            left_ids,
            left,
            right_ids,
            right,
            config,
        ),
        BlockerBackend::Lsh(lsh) => query_all(
            &HyperplaneLsh::from_matrix(right, lsh.clone()),
            left_ids,
            left,
            right_ids,
            right,
            config,
        ),
    }
}

/// [`top_k_blocking_scored_matrix`] driven by a unified
/// [`OperatingPoint`] — validate the point, derive the blocking config,
/// run the scored blocker. The typed `ErError::Config` error is the only
/// way this differs from the legacy path: a valid point produces
/// candidates bit-identical to [`top_k_blocking_scored_matrix`] with
/// `TopKConfig::from_point(point)`.
pub fn top_k_blocking_point(
    left_ids: &[EntityId],
    left: &EmbeddingMatrix,
    right_ids: &[EntityId],
    right: &EmbeddingMatrix,
    point: &OperatingPoint,
) -> er_core::Result<Vec<ScoredPair>> {
    let config = TopKConfig::from_point(point)?;
    Ok(top_k_blocking_scored_matrix(
        left_ids, left, right_ids, right, &config,
    ))
}

fn query_all<I: NnIndex + Sync>(
    index: &I,
    left_ids: &[EntityId],
    left: &EmbeddingMatrix,
    right_ids: &[EntityId],
    right: &EmbeddingMatrix,
    config: &TopKConfig,
) -> Vec<ScoredPair> {
    let metric = index.metric();
    let hits = index.search_batch_rows(left, config.k);
    let pairs = hits.into_iter().enumerate().flat_map(|(i, neighbours)| {
        let left_row = left.row(i);
        let left_norm = left.norm(i);
        neighbours.into_iter().map(move |n| {
            let score = metric.hit_similarity(
                left_row,
                left_norm,
                right.row(n.index),
                right.norm(n.index),
                n.distance,
            );
            ScoredPair::new(left_ids[i], right_ids[n.index], score)
        })
    });
    dedup_scored(pairs, config.dirty)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u32) -> Vec<EntityId> {
        (0..n).map(EntityId).collect()
    }

    /// Two tight clusters far apart: blocking must pair within clusters.
    fn clustered() -> (Vec<Embedding>, Vec<Embedding>) {
        let left = vec![
            Embedding(vec![0.0, 1.0]),
            Embedding(vec![0.1, 1.0]),
            Embedding(vec![10.0, 0.0]),
        ];
        let right = vec![
            Embedding(vec![0.05, 1.0]),
            Embedding(vec![10.1, 0.1]),
            Embedding(vec![9.9, 0.0]),
        ];
        (left, right)
    }

    #[test]
    fn exact_backend_pairs_within_clusters() {
        let (left, right) = clustered();
        let candidates = top_k_blocking(
            &ids(3),
            &left,
            &ids(3),
            &right,
            &TopKConfig {
                k: 1,
                backend: BlockerBackend::Exact(Metric::Euclidean),
                dirty: false,
                ..TopKConfig::default()
            },
        );
        assert_eq!(
            candidates,
            vec![
                (EntityId(0), EntityId(0)),
                (EntityId(1), EntityId(0)),
                (EntityId(2), EntityId(2)),
            ]
        );
    }

    #[test]
    fn k_bounds_the_candidate_count() {
        let (left, right) = clustered();
        for k in [1usize, 2, 3, 10] {
            let candidates = top_k_blocking(
                &ids(3),
                &left,
                &ids(3),
                &right,
                &TopKConfig {
                    k,
                    backend: BlockerBackend::Exact(Metric::Euclidean),
                    dirty: false,
                    ..TopKConfig::default()
                },
            );
            assert!(candidates.len() <= 3 * k.min(3));
        }
    }

    #[test]
    fn dirty_mode_self_blocks_without_self_pairs() {
        let vectors = vec![
            Embedding(vec![0.0, 1.0]),
            Embedding(vec![0.0, 1.01]),
            Embedding(vec![5.0, 0.0]),
            Embedding(vec![5.0, 0.01]),
        ];
        let ids = ids(4);
        let candidates = top_k_blocking(
            &ids,
            &vectors,
            &ids,
            &vectors,
            &TopKConfig {
                k: 2,
                backend: BlockerBackend::Exact(Metric::Euclidean),
                dirty: true,
                ..TopKConfig::default()
            },
        );
        assert!(candidates.iter().all(|(a, b)| a < b), "{candidates:?}");
        assert!(candidates.contains(&(EntityId(0), EntityId(1))));
        assert!(candidates.contains(&(EntityId(2), EntityId(3))));
    }

    #[test]
    fn matrix_path_and_legacy_path_emit_identical_candidates() {
        let (left, right) = clustered();
        let left_matrix = EmbeddingMatrix::from_embeddings(&left);
        let right_matrix = EmbeddingMatrix::from_embeddings(&right);
        let backends = [
            BlockerBackend::Exact(Metric::Cosine),
            BlockerBackend::Hnsw(HnswConfig::default()),
            BlockerBackend::Lsh(LshConfig {
                tables: 4,
                ..LshConfig::default()
            }),
        ];
        for backend in backends {
            let config = TopKConfig {
                k: 2,
                backend,
                dirty: false,
                ..TopKConfig::default()
            };
            let legacy = top_k_blocking(&ids(3), &left, &ids(3), &right, &config);
            let matrix =
                top_k_blocking_matrix(&ids(3), &left_matrix, &ids(3), &right_matrix, &config);
            assert_eq!(legacy, matrix, "{:?}", config.backend);
        }
    }

    #[test]
    fn empty_sides_and_zero_k_yield_no_candidates() {
        let (left, right) = clustered();
        let cfg = TopKConfig {
            k: 0,
            backend: BlockerBackend::Exact(Metric::Euclidean),
            dirty: false,
            ..TopKConfig::default()
        };
        assert!(top_k_blocking(&ids(3), &left, &ids(3), &right, &cfg).is_empty());
        assert!(top_k_blocking(&[], &[], &ids(3), &right, &TopKConfig::default()).is_empty());
        assert!(top_k_blocking(&ids(3), &left, &[], &[], &TopKConfig::default()).is_empty());
    }

    #[test]
    fn builder_matches_struct_literal_construction() {
        let built = TopKConfig::new(3)
            .backend(BlockerBackend::Exact(Metric::Cosine))
            .dirty(true);
        assert_eq!(built.k, 3);
        assert!(built.dirty);
        assert!(matches!(
            built.backend,
            BlockerBackend::Exact(Metric::Cosine)
        ));
        // Defaults: HNSW under cosine, clean-clean.
        let defaulted = TopKConfig::new(7);
        assert_eq!(defaulted.k, 7);
        assert!(!defaulted.dirty);
        assert!(
            matches!(defaulted.backend, BlockerBackend::Hnsw(ref c) if c.metric == Metric::Cosine)
        );
        assert_eq!(defaulted.backend.metric(), Metric::Cosine);
    }

    #[test]
    fn scored_candidates_project_onto_the_unscored_path() {
        let (left, right) = clustered();
        let left_matrix = EmbeddingMatrix::from_embeddings(&left);
        let right_matrix = EmbeddingMatrix::from_embeddings(&right);
        for backend in [
            BlockerBackend::Exact(Metric::Cosine),
            BlockerBackend::Exact(Metric::Euclidean),
            BlockerBackend::Hnsw(HnswConfig::default()),
            BlockerBackend::Lsh(LshConfig::default()),
        ] {
            let config = TopKConfig::new(2).backend(backend);
            let scored = top_k_blocking_scored_matrix(
                &ids(3),
                &left_matrix,
                &ids(3),
                &right_matrix,
                &config,
            );
            let plain =
                top_k_blocking_matrix(&ids(3), &left_matrix, &ids(3), &right_matrix, &config);
            assert_eq!(
                scored.iter().map(|p| p.id_pair()).collect::<Vec<_>>(),
                plain,
                "{:?}",
                config.backend
            );
            assert!(
                scored.iter().all(|p| p.score.is_finite()),
                "{:?}",
                config.backend
            );
        }
    }

    #[test]
    fn cosine_scores_are_bit_identical_to_the_kernel() {
        let (left, right) = clustered();
        let left_matrix = EmbeddingMatrix::from_embeddings(&left);
        let right_matrix = EmbeddingMatrix::from_embeddings(&right);
        let config = TopKConfig::new(3).backend(BlockerBackend::Exact(Metric::Cosine));
        let scored =
            top_k_blocking_scored_matrix(&ids(3), &left_matrix, &ids(3), &right_matrix, &config);
        assert!(!scored.is_empty());
        for p in scored {
            let expected = er_core::kernels::cosine(
                left_matrix.row(p.left.0 as usize),
                right_matrix.row(p.right.0 as usize),
            );
            assert_eq!(p.score.to_bits(), expected.to_bits(), "{p:?}");
        }
    }

    #[test]
    fn operating_point_round_trips_through_the_legacy_config() {
        let point = OperatingPoint::default()
            .k(7)
            .metric(Metric::Euclidean)
            .hnsw(HnswParams {
                m: 8,
                ef_search: 32,
                ..HnswParams::default()
            })
            .dirty(true);
        let config = TopKConfig::from_point(&point).unwrap();
        assert_eq!(config.k, 7);
        assert!(config.dirty);
        match &config.backend {
            BlockerBackend::Hnsw(c) => {
                assert_eq!(c.m, 8);
                assert_eq!(c.ef_search, 32);
                assert_eq!(c.metric, Metric::Euclidean);
            }
            other => panic!("expected HNSW, got {other:?}"),
        }
        // And back: the lifted point carries the same knobs (tuning goals
        // are not part of the legacy struct, so they reset to None).
        let lifted = OperatingPoint::from(&config);
        assert_eq!(lifted.k, point.k);
        assert_eq!(lifted.metric, point.metric);
        assert_eq!(lifted.backend, point.backend);
        assert_eq!(lifted.dirty, point.dirty);
    }

    #[test]
    fn invalid_operating_point_is_a_typed_config_error() {
        let bad = OperatingPoint::default().scan(ScanConfig {
            quant: er_core::Quantization::Int8 { rerank: 8 },
            ..ScanConfig::default()
        });
        let err = TopKConfig::from_point(&bad).unwrap_err();
        assert!(matches!(err, er_core::ErError::Config(_)), "{err}");
        let (left, right) = clustered();
        let lm = EmbeddingMatrix::from_embeddings(&left);
        let rm = EmbeddingMatrix::from_embeddings(&right);
        assert!(top_k_blocking_point(&ids(3), &lm, &ids(3), &rm, &bad).is_err());
    }

    #[test]
    fn point_blocking_is_bit_identical_to_the_legacy_path() {
        let (left, right) = clustered();
        let lm = EmbeddingMatrix::from_embeddings(&left);
        let rm = EmbeddingMatrix::from_embeddings(&right);
        for point in [
            OperatingPoint::default().k(2),
            OperatingPoint::default().k(2).exact(),
            OperatingPoint::default().k(2).lsh(LshParams {
                tables: 4,
                ..LshParams::default()
            }),
        ] {
            let via_point = top_k_blocking_point(&ids(3), &lm, &ids(3), &rm, &point).unwrap();
            let via_config = top_k_blocking_scored_matrix(
                &ids(3),
                &lm,
                &ids(3),
                &rm,
                &TopKConfig::from_point(&point).unwrap(),
            );
            assert_eq!(via_point.len(), via_config.len());
            for (a, b) in via_point.iter().zip(&via_config) {
                assert_eq!(a.id_pair(), b.id_pair());
                assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
        }
    }

    #[test]
    fn default_point_matches_the_default_legacy_config() {
        // The unified default and the legacy default describe the same run
        // (compared in canonical JSON: `BackendParams::Hnsw` and
        // `HnswWith(defaults)` render identically).
        let from_default_config = OperatingPoint::from(&TopKConfig::default());
        let default_point = OperatingPoint::default();
        assert_eq!(from_default_config.to_json(), default_point.to_json());
    }

    #[test]
    fn backends_agree_on_easy_data() {
        let (left, right) = clustered();
        let exact = top_k_blocking(
            &ids(3),
            &left,
            &ids(3),
            &right,
            &TopKConfig {
                k: 1,
                backend: BlockerBackend::Exact(Metric::Euclidean),
                dirty: false,
                ..TopKConfig::default()
            },
        );
        let hnsw = top_k_blocking(
            &ids(3),
            &left,
            &ids(3),
            &right,
            &TopKConfig {
                k: 1,
                backend: BlockerBackend::Hnsw(HnswConfig::default()),
                dirty: false,
                ..TopKConfig::default()
            },
        );
        assert_eq!(exact, hnsw);
    }
}
