//! er-blocking — blocking (DESIGN.md inventory rows 12–14: embedding top-k
//! blocker + candidate-set machinery, DeepBlocker-style Auto-Encoder
//! blocker, token-overlap blocking).
//!
//! Ships row 12 complete: the embedding [`top_k_blocking`] pipeline over
//! the `er-index` backends (exact / HNSW / LSH) plus the redundant-pair
//! dedup. The DeepBlocker-style Auto-Encoder (row 13) and token-overlap
//! blocking (row 14) land with the matching-SotA PR.

pub mod topk;

pub use topk::{
    top_k_blocking, top_k_blocking_matrix, top_k_blocking_point, top_k_blocking_scored_matrix,
    BlockerBackend, TopKConfig,
};

use er_core::{EntityId, ScoredPair};

/// Deduplicate candidate pairs produced by redundancy-positive blocking
/// (k-NN from both sides, multiple blocks). Order-normalizes each pair for
/// Dirty ER when `dirty` is set, drops self-pairs, and returns a sorted,
/// unique candidate list.
pub fn dedup_candidates(
    pairs: impl IntoIterator<Item = (EntityId, EntityId)>,
    dirty: bool,
) -> Vec<(EntityId, EntityId)> {
    let mut out: Vec<(EntityId, EntityId)> = pairs
        .into_iter()
        .filter_map(|(a, b)| {
            if dirty {
                match a.0.cmp(&b.0) {
                    std::cmp::Ordering::Less => Some((a, b)),
                    std::cmp::Ordering::Equal => None,
                    std::cmp::Ordering::Greater => Some((b, a)),
                }
            } else {
                Some((a, b))
            }
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// The scored twin of [`dedup_candidates`]: order-normalize for Dirty ER,
/// drop self-pairs, sort by `(left, right)` and keep one entry per id
/// pair. Safe to apply to blocker output because every blocker similarity
/// is bitwise symmetric in its endpoints (see
/// `er_index::Metric::hit_similarity`), so flipping a pair never changes
/// its score.
pub fn dedup_scored(pairs: impl IntoIterator<Item = ScoredPair>, dirty: bool) -> Vec<ScoredPair> {
    let mut out: Vec<ScoredPair> = pairs
        .into_iter()
        .filter_map(|p| {
            if dirty {
                match p.left.0.cmp(&p.right.0) {
                    std::cmp::Ordering::Less => Some(p),
                    std::cmp::Ordering::Equal => None,
                    std::cmp::Ordering::Greater => Some(ScoredPair::new(p.right, p.left, p.score)),
                }
            } else {
                Some(p)
            }
        })
        .collect();
    out.sort_unstable_by(|a, b| a.cmp_id_pair(b).then_with(|| a.score.total_cmp(&b.score)));
    out.dedup_by(|a, b| a.id_pair() == b.id_pair());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_mode_normalizes_direction_and_drops_self_pairs() {
        let raw = vec![
            (EntityId(2), EntityId(1)),
            (EntityId(1), EntityId(2)),
            (EntityId(3), EntityId(3)),
            (EntityId(1), EntityId(4)),
        ];
        let deduped = dedup_candidates(raw, true);
        assert_eq!(
            deduped,
            vec![(EntityId(1), EntityId(2)), (EntityId(1), EntityId(4))]
        );
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(dedup_candidates(Vec::new(), true).is_empty());
        assert!(dedup_candidates(Vec::new(), false).is_empty());
    }

    #[test]
    fn all_self_pairs_vanish_in_dirty_mode_but_survive_clean() {
        let raw: Vec<_> = (0..5).map(|i| (EntityId(i), EntityId(i))).collect();
        assert!(
            dedup_candidates(raw.clone(), true).is_empty(),
            "a Dirty-ER record cannot be its own duplicate"
        );
        // Clean-Clean ids live in separate namespaces: (i, i) is a real
        // cross-collection pair and must be kept (once).
        let doubled: Vec<_> = raw.iter().chain(raw.iter()).copied().collect();
        assert_eq!(dedup_candidates(doubled, false), raw);
    }

    #[test]
    fn output_is_sorted_and_unique_in_both_modes() {
        let raw = vec![
            (EntityId(9), EntityId(1)),
            (EntityId(0), EntityId(3)),
            (EntityId(9), EntityId(1)),
            (EntityId(1), EntityId(9)),
        ];
        let dirty = dedup_candidates(raw.clone(), true);
        assert_eq!(
            dirty,
            vec![(EntityId(0), EntityId(3)), (EntityId(1), EntityId(9))]
        );
        let clean = dedup_candidates(raw, false);
        assert_eq!(
            clean,
            vec![
                (EntityId(0), EntityId(3)),
                (EntityId(1), EntityId(9)),
                (EntityId(9), EntityId(1)),
            ]
        );
    }

    #[test]
    fn scored_dedup_matches_unscored_dedup_on_the_id_pairs() {
        let raw = [
            (EntityId(2), EntityId(1)),
            (EntityId(1), EntityId(2)),
            (EntityId(3), EntityId(3)),
            (EntityId(1), EntityId(4)),
            (EntityId(1), EntityId(4)),
        ];
        let scored: Vec<ScoredPair> = raw
            .iter()
            .map(|&(a, b)| ScoredPair::new(a, b, 0.25 * (a.0 + b.0) as f32))
            .collect();
        for dirty in [false, true] {
            let plain = dedup_candidates(raw.iter().copied(), dirty);
            let rich = dedup_scored(scored.iter().copied(), dirty);
            let projected: Vec<(EntityId, EntityId)> = rich.iter().map(|p| p.id_pair()).collect();
            assert_eq!(projected, plain, "dirty={dirty}");
        }
    }

    #[test]
    fn scored_dedup_keeps_the_symmetric_score_when_flipping() {
        let flipped = dedup_scored([ScoredPair::new(EntityId(7), EntityId(3), 0.625)], true);
        assert_eq!(
            flipped,
            vec![ScoredPair::new(EntityId(3), EntityId(7), 0.625)]
        );
    }

    #[test]
    fn clean_clean_keeps_direction() {
        // Left/right ids are distinct namespaces in Clean-Clean ER: (2,1)
        // means left#2 vs right#1 and must not be flipped.
        let raw = vec![
            (EntityId(2), EntityId(1)),
            (EntityId(2), EntityId(1)),
            (EntityId(1), EntityId(1)),
        ];
        let deduped = dedup_candidates(raw, false);
        assert_eq!(
            deduped,
            vec![(EntityId(1), EntityId(1)), (EntityId(2), EntityId(1))]
        );
    }
}
