//! er-blocking — blocking (DESIGN.md inventory rows 12–14: embedding top-k
//! blocker + candidate-set machinery, DeepBlocker-style Auto-Encoder
//! blocker, token-overlap blocking).
//!
//! This PR ships the candidate-set machinery (row 12's redundant-pair
//! dedup); the blockers themselves land with the blocking PR on top of
//! `er-index`.

use er_core::EntityId;

/// Deduplicate candidate pairs produced by redundancy-positive blocking
/// (k-NN from both sides, multiple blocks). Order-normalizes each pair for
/// Dirty ER when `dirty` is set, drops self-pairs, and returns a sorted,
/// unique candidate list.
pub fn dedup_candidates(
    pairs: impl IntoIterator<Item = (EntityId, EntityId)>,
    dirty: bool,
) -> Vec<(EntityId, EntityId)> {
    let mut out: Vec<(EntityId, EntityId)> = pairs
        .into_iter()
        .filter_map(|(a, b)| {
            if dirty {
                match a.0.cmp(&b.0) {
                    std::cmp::Ordering::Less => Some((a, b)),
                    std::cmp::Ordering::Equal => None,
                    std::cmp::Ordering::Greater => Some((b, a)),
                }
            } else {
                Some((a, b))
            }
        })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_mode_normalizes_direction_and_drops_self_pairs() {
        let raw = vec![
            (EntityId(2), EntityId(1)),
            (EntityId(1), EntityId(2)),
            (EntityId(3), EntityId(3)),
            (EntityId(1), EntityId(4)),
        ];
        let deduped = dedup_candidates(raw, true);
        assert_eq!(
            deduped,
            vec![(EntityId(1), EntityId(2)), (EntityId(1), EntityId(4))]
        );
    }

    #[test]
    fn clean_clean_keeps_direction() {
        // Left/right ids are distinct namespaces in Clean-Clean ER: (2,1)
        // means left#2 vs right#1 and must not be flipped.
        let raw = vec![
            (EntityId(2), EntityId(1)),
            (EntityId(2), EntityId(1)),
            (EntityId(1), EntityId(1)),
        ];
        let deduped = dedup_candidates(raw, false);
        assert_eq!(
            deduped,
            vec![(EntityId(1), EntityId(1)), (EntityId(2), EntityId(1))]
        );
    }
}
