//! Finite-difference validation of every autograd backward formula.
//!
//! For each op we build a tiny graph reducing the op's output to a scalar
//! (via `Graph::sum`, or the op itself for cross-entropy), read the
//! analytic gradient from `Graph::backward`, and compare element-wise
//! against central differences `(f(x+h) − f(x−h)) / 2h` with `h = 1e-2`.
//! See the er-tensor crate docs for why that step size and tolerance.

use er_core::rng::rng;
use er_tensor::{Graph, Tensor};

const H: f32 = 1e-2;

/// `|analytic − numeric| ≤ 1e-2 · max(1, |numeric|)`, element-wise.
fn assert_close(analytic: &Tensor, numeric: &Tensor, op: &str) {
    assert_eq!(
        (analytic.rows(), analytic.cols()),
        (numeric.rows(), numeric.cols()),
        "{op}: gradient shape mismatch"
    );
    for (i, (&a, &n)) in analytic.data().iter().zip(numeric.data()).enumerate() {
        let tol = 1e-2 * n.abs().max(1.0);
        assert!(
            (a - n).abs() <= tol,
            "{op}: grad[{i}] analytic {a} vs numeric {n} (tol {tol})"
        );
    }
}

/// Central-difference gradient of `f` w.r.t. every element of `x`.
fn numeric_grad(x: &Tensor, f: impl Fn(&Tensor) -> f32) -> Tensor {
    let mut out = Tensor::zeros(x.rows(), x.cols());
    for i in 0..x.data().len() {
        let mut plus = x.clone();
        plus.data_mut()[i] += H;
        let mut minus = x.clone();
        minus.data_mut()[i] -= H;
        out.data_mut()[i] = (f(&plus) - f(&minus)) / (2.0 * H);
    }
    out
}

/// Run one check: `scalar_loss(graph, probe_var)` builds the graph around
/// the probed input and returns the loss `Var`. Returns nothing; panics
/// with the op name on mismatch.
fn check(op: &str, probe: &Tensor, build: impl Fn(&mut Graph, er_tensor::Var) -> er_tensor::Var) {
    let mut g = Graph::new();
    let x = g.param(probe);
    let loss = build(&mut g, x);
    g.backward(loss);
    let analytic = g.grad(x).clone();
    let numeric = numeric_grad(probe, |t| {
        let mut g = Graph::new();
        let x = g.param(t);
        let loss = build(&mut g, x);
        g.value(loss).get(0, 0)
    });
    assert_close(&analytic, &numeric, op);
}

#[test]
fn matmul_grad_wrt_both_operands() {
    let mut r = rng(11);
    let a = Tensor::randn(3, 4, 0.5, &mut r);
    let b = Tensor::randn(4, 2, 0.5, &mut r);
    check("matmul/dA", &a, |g, x| {
        let bv = g.constant(b.clone());
        let c = g.matmul(x, bv);
        g.sum(c)
    });
    check("matmul/dB", &b, |g, x| {
        let av = g.constant(a.clone());
        let c = g.matmul(av, x);
        g.sum(c)
    });
}

#[test]
fn matmul_nt_grad_wrt_both_operands() {
    let mut r = rng(12);
    let a = Tensor::randn(3, 4, 0.5, &mut r);
    let b = Tensor::randn(5, 4, 0.5, &mut r);
    check("matmul_nt/dA", &a, |g, x| {
        let bv = g.constant(b.clone());
        let c = g.matmul_nt(x, bv);
        g.sum(c)
    });
    check("matmul_nt/dB", &b, |g, x| {
        let av = g.constant(a.clone());
        let c = g.matmul_nt(av, x);
        g.sum(c)
    });
}

#[test]
fn add_mul_scale_grads() {
    let mut r = rng(13);
    let a = Tensor::randn(2, 3, 1.0, &mut r);
    let b = Tensor::randn(2, 3, 1.0, &mut r);
    check("add", &a, |g, x| {
        let bv = g.constant(b.clone());
        let c = g.add(x, bv);
        // Run through mul so add's gradient isn't trivially all-ones.
        let d = g.mul(c, c);
        g.sum(d)
    });
    check("mul/dA", &a, |g, x| {
        let bv = g.constant(b.clone());
        let c = g.mul(x, bv);
        g.sum(c)
    });
    check("scale", &a, |g, x| {
        let c = g.scale(x, -2.5);
        let d = g.mul(c, c);
        g.sum(d)
    });
}

#[test]
fn add_row_grad_wrt_matrix_and_bias() {
    let mut r = rng(14);
    let a = Tensor::randn(3, 4, 1.0, &mut r);
    let bias = Tensor::randn(1, 4, 1.0, &mut r);
    check("add_row/dA", &a, |g, x| {
        let bv = g.constant(bias.clone());
        let c = g.add_row(x, bv);
        let d = g.mul(c, c);
        g.sum(d)
    });
    check("add_row/dBias", &bias, |g, x| {
        let av = g.constant(a.clone());
        let c = g.add_row(av, x);
        let d = g.mul(c, c);
        g.sum(d)
    });
}

#[test]
fn softmax_grad() {
    let x = Tensor::randn(2, 5, 1.0, &mut rng(15));
    // Weight the softmax output so the gradient isn't identically zero
    // (sum of a softmax row is constant 1).
    let w = Tensor::randn(2, 5, 1.0, &mut rng(16));
    check("softmax", &x, |g, xv| {
        let y = g.softmax(xv);
        let wv = g.constant(w.clone());
        let weighted = g.mul(y, wv);
        g.sum(weighted)
    });
}

#[test]
fn layer_norm_grad_wrt_input_gamma_beta() {
    let mut r = rng(17);
    let x = Tensor::randn(3, 6, 1.0, &mut r);
    let gamma = Tensor::randn(1, 6, 0.5, &mut r);
    let beta = Tensor::randn(1, 6, 0.5, &mut r);
    let w = Tensor::randn(3, 6, 1.0, &mut r);
    let weighted_sum = |g: &mut Graph, y| {
        let wv = g.constant(w.clone());
        let m = g.mul(y, wv);
        g.sum(m)
    };
    check("layer_norm/dX", &x, |g, xv| {
        let gv = g.constant(gamma.clone());
        let bv = g.constant(beta.clone());
        let y = g.layer_norm(xv, gv, bv);
        weighted_sum(g, y)
    });
    check("layer_norm/dGamma", &gamma, |g, gv| {
        let xv = g.constant(x.clone());
        let bv = g.constant(beta.clone());
        let y = g.layer_norm(xv, gv, bv);
        weighted_sum(g, y)
    });
    check("layer_norm/dBeta", &beta, |g, bv| {
        let xv = g.constant(x.clone());
        let gv = g.constant(gamma.clone());
        let y = g.layer_norm(xv, gv, bv);
        weighted_sum(g, y)
    });
}

#[test]
fn gelu_grad() {
    let x = Tensor::randn(2, 6, 1.5, &mut rng(18));
    check("gelu", &x, |g, xv| {
        let y = g.gelu(xv);
        g.sum(y)
    });
}

#[test]
fn gather_grad_scatters_with_repeats() {
    let table = Tensor::randn(5, 3, 1.0, &mut rng(19));
    check("gather", &table, |g, t| {
        let picked = g.gather(t, &[4, 0, 4, 2]);
        let sq = g.mul(picked, picked);
        g.sum(sq)
    });
}

#[test]
fn concat_cols_grad_splits_back() {
    let mut r = rng(20);
    let a = Tensor::randn(3, 2, 1.0, &mut r);
    let b = Tensor::randn(3, 4, 1.0, &mut r);
    check("concat_cols/dA", &a, |g, x| {
        let bv = g.constant(b.clone());
        let c = g.concat_cols(&[x, bv]);
        let sq = g.mul(c, c);
        g.sum(sq)
    });
    check("concat_cols/dB", &b, |g, x| {
        let av = g.constant(a.clone());
        let c = g.concat_cols(&[av, x]);
        let sq = g.mul(c, c);
        g.sum(sq)
    });
}

#[test]
fn mean_pool_grad() {
    let x = Tensor::randn(4, 3, 1.0, &mut rng(21));
    check("mean_pool", &x, |g, xv| {
        let pooled = g.mean_pool(xv);
        let sq = g.mul(pooled, pooled);
        g.sum(sq)
    });
}

#[test]
fn cross_entropy_grad() {
    let logits = Tensor::randn(3, 7, 1.0, &mut rng(22));
    check("cross_entropy", &logits, |g, z| {
        g.cross_entropy(z, &[2, 6, 0])
    });
}

#[test]
fn transformer_block_composite_grad() {
    // The full pre-LN block wiring in one check: LN → per-head attention
    // (matmul_nt scores, softmax, matmul) → concat → projection → residual
    // → LN → GELU FFN → residual → mean-pool → weighted sum. If any
    // backward formula composes wrongly, this catches it.
    let mut r = rng(23);
    let x = Tensor::randn(4, 6, 0.8, &mut r);
    let wq = Tensor::randn(6, 3, 0.5, &mut r);
    let wk = Tensor::randn(6, 3, 0.5, &mut r);
    let wv_h = Tensor::randn(6, 3, 0.5, &mut r);
    let wq2 = Tensor::randn(6, 3, 0.5, &mut r);
    let wk2 = Tensor::randn(6, 3, 0.5, &mut r);
    let wv2 = Tensor::randn(6, 3, 0.5, &mut r);
    let wo = Tensor::randn(6, 6, 0.5, &mut r);
    let gamma = Tensor::randn(1, 6, 0.3, &mut r);
    let beta = Tensor::randn(1, 6, 0.3, &mut r);
    let w1 = Tensor::randn(6, 8, 0.5, &mut r);
    let b1 = Tensor::randn(1, 8, 0.3, &mut r);
    let w2 = Tensor::randn(8, 6, 0.5, &mut r);
    let probe_weight = Tensor::randn(1, 6, 1.0, &mut r);
    check("transformer_block", &x, |g, xv| {
        let gv = g.constant(gamma.clone());
        let bv = g.constant(beta.clone());
        let h = g.layer_norm(xv, gv, bv);
        let mut heads = Vec::new();
        for (q, k, v) in [(&wq, &wk, &wv_h), (&wq2, &wk2, &wv2)] {
            let qv = g.constant(q.clone());
            let kv = g.constant(k.clone());
            let vv = g.constant(v.clone());
            let qh = g.matmul(h, qv);
            let kh = g.matmul(h, kv);
            let vh = g.matmul(h, vv);
            let scores = g.matmul_nt(qh, kh);
            let scaled = g.scale(scores, 1.0 / (3.0f32).sqrt());
            let att = g.softmax(scaled);
            heads.push(g.matmul(att, vh));
        }
        let cat = g.concat_cols(&heads);
        let wov = g.constant(wo.clone());
        let proj = g.matmul(cat, wov);
        let res1 = g.add(xv, proj);
        let gv2 = g.constant(gamma.clone());
        let bv2 = g.constant(beta.clone());
        let h2 = g.layer_norm(res1, gv2, bv2);
        let w1v = g.constant(w1.clone());
        let b1v = g.constant(b1.clone());
        let pre = g.matmul(h2, w1v);
        let pre_b = g.add_row(pre, b1v);
        let act = g.gelu(pre_b);
        let w2v = g.constant(w2.clone());
        let ff = g.matmul(act, w2v);
        let res2 = g.add(res1, ff);
        let pooled = g.mean_pool(res2);
        let pw = g.constant(probe_weight.clone());
        let weighted = g.mul(pooled, pw);
        g.sum(weighted)
    });
}
