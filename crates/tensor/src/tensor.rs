//! Dense row-major 2-D tensors and the matrix kernels used everywhere.

use er_core::kernels;
use rand::Rng;

/// A dense `rows x cols` matrix of `f32`, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    pub fn from_rows(rows: usize, cols: usize, data: &[f32]) -> Tensor {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Tensor {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Approximately standard-normal init (mean of 12 uniforms, shifted)
    /// multiplied by `scale`, deterministic for a fixed RNG stream. Pass
    /// `scale = 1.0` for unit variance; transformer weights use ~`0.02`.
    pub fn randn(rows: usize, cols: usize, scale: f32, rng: &mut impl Rng) -> Tensor {
        let data = (0..rows * cols)
            .map(|_| {
                let s: f32 = (0..12).map(|_| rng.gen_range(0.0f32..1.0)).sum();
                (s - 6.0) * scale
            })
            .collect();
        Tensor { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    pub fn transposed(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }
}

/// `a (m x k) * b (k x n)`, with the k-loop innermost-but-one so rows of
/// `b` stream sequentially through cache.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.rows, "matmul shape mismatch");
    let mut out = Tensor::zeros(a.rows, b.cols);
    for i in 0..a.rows {
        for kk in 0..a.cols {
            let aik = a.data[i * a.cols + kk];
            if aik == 0.0 {
                continue;
            }
            let brow = &b.data[kk * b.cols..(kk + 1) * b.cols];
            let orow = &mut out.data[i * b.cols..(i + 1) * b.cols];
            for (o, &bv) in orow.iter_mut().zip(brow) {
                *o += aik * bv;
            }
        }
    }
    out
}

/// `a (m x k) * bᵀ` for `b (n x k)` — the attention-score shape, computed
/// without materializing the transpose.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.cols, b.cols, "matmul_nt shape mismatch");
    let mut out = Tensor::zeros(a.rows, b.rows);
    for i in 0..a.rows {
        let arow = a.row(i);
        for j in 0..b.rows {
            out.set(i, j, kernels::dot(arow, b.row(j)));
        }
    }
    out
}
