//! er-tensor — tensor + reverse-mode autograd engine (DESIGN.md inventory
//! row 1: "Substrate for all neural models").
//!
//! Three layers:
//!
//! - [`tensor`]: dense row-major 2-D [`Tensor`] storage plus the matmul
//!   kernels ([`tensor::matmul`], [`tensor::matmul_nt`]).
//! - [`autograd`]: a tape-based reverse-mode [`Graph`] over those tensors
//!   with the transformer op set (matmul, add/mul, softmax, layer-norm,
//!   GELU, gather, mean-pool, cross-entropy, …).
//! - [`optim`]: [`Sgd`] and [`Adam`] over externally-owned parameters,
//!   plus global-norm gradient clipping.
//!
//! # Grad-check methodology
//!
//! Every backward formula is validated in `tests/grad_check.rs` against
//! central finite differences: for each input element `xᵢ` of each op we
//! compare the analytic `∂loss/∂xᵢ` from [`Graph::backward`] with
//! `(f(x + h·eᵢ) − f(x − h·eᵢ)) / 2h`, where `f` reduces the op's output
//! to a scalar through [`Graph::sum`] (or is the scalar loss itself for
//! cross-entropy). We use `h = 1e-2` — large enough that the `O(h²)`
//! truncation error stays above f32 round-off of the forward pass — and
//! accept when `|analytic − numeric| ≤ 1e-2 · max(1, |numeric|)` per
//! element. Inputs are seeded via `er_core::rng`, so a failure is
//! reproducible byte-for-byte. The same checks run in release mode in CI
//! (the `autograd-bt` job), which would catch any `fast-math`-style
//! miscompilation the debug run can't see.

pub mod autograd;
pub mod optim;
pub mod tensor;

pub use autograd::{Graph, Var, LAYER_NORM_EPS};
pub use optim::{clip_grad_norm, Adam, Sgd};
pub use tensor::Tensor;

#[cfg(test)]
mod tests {
    use super::tensor::{matmul, matmul_nt, Tensor};
    use er_core::rng::rng;

    #[test]
    fn matmul_matches_hand_computation() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = Tensor::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_is_a_times_b_transposed() {
        let mut r = rng(3);
        let a = Tensor::randn(3, 4, 1.0, &mut r);
        let b = Tensor::randn(5, 4, 1.0, &mut r);
        let direct = matmul_nt(&a, &b);
        let via_transpose = matmul(&a, &b.transposed());
        assert_eq!(direct.data(), via_transpose.data());
        assert_eq!((direct.rows(), direct.cols()), (3, 5));
    }

    #[test]
    fn randn_scale_is_linear() {
        let a = Tensor::randn(2, 3, 1.0, &mut rng(7));
        let b = Tensor::randn(2, 3, 0.5, &mut rng(7));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x * 0.5, *y);
        }
    }
}
