//! er-tensor — tensor + reverse-mode autograd engine (DESIGN.md inventory
//! row 1: "Substrate for all neural models").
//!
//! This PR ships the dense 2-D [`Tensor`] storage and the matmul kernels
//! the transformer encoder will build on; the autograd `Graph`, activation
//! kernels and optimizers land with the transformer PR.

pub mod tensor;

pub use tensor::Tensor;

#[cfg(test)]
mod tests {
    use super::tensor::{matmul, matmul_nt, Tensor};
    use er_core::rng::rng;

    #[test]
    fn matmul_matches_hand_computation() {
        // [[1,2],[3,4]] x [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = Tensor::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_nt_is_a_times_b_transposed() {
        let mut r = rng(3);
        let a = Tensor::randn(3, 4, &mut r);
        let b = Tensor::randn(5, 4, &mut r);
        let direct = matmul_nt(&a, &b);
        let via_transpose = matmul(&a, &b.transposed());
        assert_eq!(direct.data(), via_transpose.data());
        assert_eq!((direct.rows(), direct.cols()), (3, 5));
    }
}
