//! First-order optimizers over externally-owned parameter [`Tensor`]s.
//!
//! Parameters never live inside a [`Graph`](crate::Graph): each training
//! step builds a fresh tape, copies the parameters in as leaves, runs
//! forward + backward, reads the gradients back out, and hands matching
//! `(params, grads)` slices to an optimizer here. Both optimizers are
//! pure sequential f32 arithmetic — a fixed parameter order gives
//! byte-identical updates on every run.

use crate::tensor::Tensor;

/// Plain stochastic gradient descent: `θ ← θ − lr·g`.
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    pub lr: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Sgd {
        Sgd { lr }
    }

    /// Apply one update. `params[i]` and `grads[i]` must be shape-matched
    /// and in the same order on every call.
    pub fn step(&self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        for (p, g) in params.iter_mut().zip(grads) {
            debug_assert_eq!((p.rows(), p.cols()), (g.rows(), g.cols()));
            for (w, &d) in p.data_mut().iter_mut().zip(g.data()) {
                *w -= self.lr * d;
            }
        }
    }
}

/// Adam (Kingma & Ba 2015) with bias-corrected first/second moments.
///
/// Moment buffers are allocated lazily from the shapes of the first
/// `step` call and keyed by position, so the caller must pass parameters
/// in the same order every step (the transformer's `param_tensors` order).
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Standard hyperparameters: `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Apply one update. Same ordering contract as [`Sgd::step`].
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[&Tensor]) {
        assert_eq!(params.len(), grads.len(), "param/grad count mismatch");
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.rows(), p.cols()))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(params.len(), self.m.len(), "param count changed mid-run");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, (p, g)) in params.iter_mut().zip(grads).enumerate() {
            debug_assert_eq!((p.rows(), p.cols()), (g.rows(), g.cols()));
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for (((w, &d), m), v) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut())
                .zip(v.data_mut())
            {
                *m = self.beta1 * *m + (1.0 - self.beta1) * d;
                *v = self.beta2 * *v + (1.0 - self.beta2) * d * d;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                *w -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

/// Scale every gradient so the global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm. No-op (returning 0) when all grads are zero.
pub fn clip_grad_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    for g in grads.iter() {
        for &x in g.data() {
            sq += x * x;
        }
    }
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let s = max_norm / norm;
        for g in grads.iter_mut() {
            for x in g.data_mut() {
                *x *= s;
            }
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_descends_a_quadratic() {
        // f(w) = w², gradient 2w; 100 steps of lr 0.1 from w = 3.
        let mut w = Tensor::from_rows(1, 1, &[3.0]);
        let sgd = Sgd::new(0.1);
        for _ in 0..100 {
            let g = Tensor::from_rows(1, 1, &[2.0 * w.get(0, 0)]);
            sgd.step(&mut [&mut w], &[&g]);
        }
        assert!(w.get(0, 0).abs() < 1e-6);
    }

    #[test]
    fn adam_descends_a_quadratic() {
        let mut w = Tensor::from_rows(1, 2, &[3.0, -2.0]);
        let mut adam = Adam::new(0.1);
        for _ in 0..300 {
            let g = Tensor::from_rows(1, 2, &[2.0 * w.get(0, 0), 2.0 * w.get(0, 1)]);
            adam.step(&mut [&mut w], &[&g]);
        }
        assert!(w.get(0, 0).abs() < 1e-3 && w.get(0, 1).abs() < 1e-3);
    }

    #[test]
    fn adam_first_step_moves_by_roughly_lr() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut w = Tensor::from_rows(1, 1, &[1.0]);
        let mut adam = Adam::new(0.01);
        let g = Tensor::from_rows(1, 1, &[5.0]);
        adam.step(&mut [&mut w], &[&g]);
        assert!((w.get(0, 0) - (1.0 - 0.01)).abs() < 1e-4);
    }

    #[test]
    fn clip_rescales_to_max_norm() {
        let mut grads = vec![Tensor::from_rows(1, 2, &[3.0, 4.0])];
        let pre = clip_grad_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post: f32 = grads[0].data().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((post - 1.0).abs() < 1e-6);
        // Under the cap: untouched.
        let mut small = vec![Tensor::from_rows(1, 1, &[0.5])];
        clip_grad_norm(&mut small, 1.0);
        assert_eq!(small[0].get(0, 0), 0.5);
    }
}
