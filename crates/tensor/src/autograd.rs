//! Tape-based reverse-mode autograd over dense [`Tensor`]s.
//!
//! A [`Graph`] is an arena of nodes; every op appends one node holding its
//! forward value and the `Op` that produced it, and returns a copyable
//! [`Var`] handle. [`Graph::backward`] walks the tape in reverse creation
//! order, accumulating `∂loss/∂node` into each node's gradient tensor —
//! the classic Wengert-list formulation, which is exactly as deterministic
//! as the forward pass (no hash maps, no topological re-sorts).
//!
//! The op set is the transformer-encoder closure (DESIGN.md inventory
//! row 1): matmul / matmulᵀ, elementwise add/mul, row-broadcast add (bias),
//! scalar scale, row softmax, layer-norm, GELU, embedding row-gather,
//! column concat (multi-head reassembly), mean-pool, sum, and mean
//! cross-entropy over integer targets. Every backward formula is pinned
//! against central finite differences in `tests/grad_check.rs`.
//!
//! Typical training step (parameters live *outside* the graph; a fresh
//! tape is built per step):
//!
//! ```
//! use er_tensor::{Graph, Tensor};
//!
//! let w = Tensor::from_rows(2, 2, &[0.1, 0.2, 0.3, 0.4]);
//! let mut g = Graph::new();
//! let wv = g.param(&w);
//! let x = g.constant(Tensor::from_rows(1, 2, &[1.0, -1.0]));
//! let y = g.matmul(x, wv);
//! let loss = g.sum(y);
//! g.backward(loss);
//! assert_eq!(g.grad(wv).rows(), 2);
//! ```

use crate::tensor::{matmul, matmul_nt, Tensor};

/// Numerical floor inside layer-norm's `1/√(σ² + ε)`.
pub const LAYER_NORM_EPS: f32 = 1e-5;

/// Handle to one node of a [`Graph`]. Cheap to copy; only meaningful for
/// the graph that created it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    Leaf,
    Matmul(Var, Var),
    /// `a · bᵀ` — the attention-score shape (and the weight-tied MLM head).
    MatmulNt(Var, Var),
    Add(Var, Var),
    /// `a (n×d) + b (1×d)` broadcast over rows — bias addition.
    AddRow(Var, Var),
    Mul(Var, Var),
    Scale(Var, f32),
    /// Row-wise softmax.
    Softmax(Var),
    LayerNorm {
        x: Var,
        gamma: Var,
        beta: Var,
    },
    Gelu(Var),
    /// Rows `ids` of `table`, in order — embedding lookup.
    Gather {
        table: Var,
        ids: Vec<usize>,
    },
    /// Horizontal concatenation — multi-head output reassembly.
    ConcatCols(Vec<Var>),
    /// Column-wise mean over rows: `(n×d) → (1×d)`.
    MeanPool(Var),
    /// Sum of all elements: `(n×d) → (1×1)`.
    Sum(Var),
    /// Mean negative log-likelihood of `targets[i]` under row-softmax of
    /// `logits` row `i`: `(n×V) → (1×1)`.
    CrossEntropy {
        logits: Var,
        targets: Vec<usize>,
    },
}

struct Node {
    value: Tensor,
    grad: Tensor,
    op: Op,
}

/// The tape. See the module docs for the op inventory and usage.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    pub fn new() -> Graph {
        Graph { nodes: Vec::new() }
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        let grad = Tensor::zeros(value.rows(), value.cols());
        self.nodes.push(Node { value, grad, op });
        Var(self.nodes.len() - 1)
    }

    /// A leaf holding fixed data (inputs, positional encodings). Gradients
    /// are still accumulated — a constant is just a leaf nobody reads the
    /// gradient of.
    pub fn constant(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// A leaf holding a copy of an externally-owned parameter; after
    /// [`Graph::backward`], read `∂loss/∂param` back with [`Graph::grad`].
    pub fn param(&mut self, value: &Tensor) -> Var {
        self.push(value.clone(), Op::Leaf)
    }

    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    pub fn grad(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].grad
    }

    // ---- ops -------------------------------------------------------------

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = matmul(self.value(a), self.value(b));
        self.push(value, Op::Matmul(a, b))
    }

    /// `a · bᵀ` for `b` stored row-major `(n × k)` — attention scores
    /// (`q · kᵀ`) and the weight-tied output head (`h · Eᵀ`).
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let value = matmul_nt(self.value(a), self.value(b));
        self.push(value, Op::MatmulNt(a, b))
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(
            (va.rows(), va.cols()),
            (vb.rows(), vb.cols()),
            "add shape mismatch"
        );
        let mut value = va.clone();
        for (x, y) in value.data_mut().iter_mut().zip(vb.data()) {
            *x += y;
        }
        self.push(value, Op::Add(a, b))
    }

    /// `a (n×d) + row (1×d)`, broadcast down the rows.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (va, vr) = (self.value(a), self.value(row));
        assert_eq!(vr.rows(), 1, "add_row: bias must be a single row");
        assert_eq!(va.cols(), vr.cols(), "add_row width mismatch");
        let mut value = va.clone();
        let cols = value.cols();
        for r in 0..value.rows() {
            for c in 0..cols {
                let v = value.get(r, c) + vr.get(0, c);
                value.set(r, c, v);
            }
        }
        self.push(value, Op::AddRow(a, row))
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (va, vb) = (self.value(a), self.value(b));
        assert_eq!(
            (va.rows(), va.cols()),
            (vb.rows(), vb.cols()),
            "mul shape mismatch"
        );
        let mut value = va.clone();
        for (x, y) in value.data_mut().iter_mut().zip(vb.data()) {
            *x *= y;
        }
        self.push(value, Op::Mul(a, b))
    }

    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let mut value = self.value(a).clone();
        for x in value.data_mut() {
            *x *= s;
        }
        self.push(value, Op::Scale(a, s))
    }

    /// Row-wise softmax with the max-subtraction trick, so large logits
    /// cannot overflow.
    pub fn softmax(&mut self, a: Var) -> Var {
        let mut value = self.value(a).clone();
        softmax_rows(&mut value);
        self.push(value, Op::Softmax(a))
    }

    /// Row-wise layer normalization: `γ ⊙ (x − μ)/√(σ² + ε) + β` with
    /// `gamma`/`beta` as `1×d` rows and [`LAYER_NORM_EPS`].
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var) -> Var {
        let (vx, vg, vb) = (self.value(x), self.value(gamma), self.value(beta));
        assert_eq!(vg.rows(), 1, "layer_norm: gamma must be 1×d");
        assert_eq!(vb.rows(), 1, "layer_norm: beta must be 1×d");
        assert_eq!(vx.cols(), vg.cols(), "layer_norm gamma width mismatch");
        assert_eq!(vx.cols(), vb.cols(), "layer_norm beta width mismatch");
        let cols = vx.cols();
        let mut value = Tensor::zeros(vx.rows(), cols);
        for r in 0..vx.rows() {
            let row = vx.row(r);
            let (mean, inv_std) = row_moments(row);
            for (c, &xc) in row.iter().enumerate() {
                let xhat = (xc - mean) * inv_std;
                value.set(r, c, vg.get(0, c) * xhat + vb.get(0, c));
            }
        }
        self.push(value, Op::LayerNorm { x, gamma, beta })
    }

    /// GELU with the tanh approximation (the BERT activation).
    pub fn gelu(&mut self, a: Var) -> Var {
        let mut value = self.value(a).clone();
        for x in value.data_mut() {
            *x = gelu_scalar(*x);
        }
        self.push(value, Op::Gelu(a))
    }

    /// Rows `ids` of `table`, stacked in order — the embedding lookup.
    /// Repeated ids are allowed; their gradients accumulate into the same
    /// table row on backward.
    pub fn gather(&mut self, table: Var, ids: &[usize]) -> Var {
        let vt = self.value(table);
        let cols = vt.cols();
        let mut value = Tensor::zeros(ids.len(), cols);
        for (r, &id) in ids.iter().enumerate() {
            assert!(id < vt.rows(), "gather id {id} out of {} rows", vt.rows());
            value.data_mut()[r * cols..(r + 1) * cols].copy_from_slice(vt.row(id));
        }
        self.push(
            value,
            Op::Gather {
                table,
                ids: ids.to_vec(),
            },
        )
    }

    /// Horizontal concatenation of equal-height blocks — reassembles the
    /// per-head attention outputs into one `(n × d)` matrix.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = self.value(parts[0]).rows();
        let total: usize = parts.iter().map(|&p| self.value(p).cols()).sum();
        let mut value = Tensor::zeros(rows, total);
        let mut offset = 0;
        for &p in parts {
            let vp = self.value(p);
            assert_eq!(vp.rows(), rows, "concat_cols height mismatch");
            for r in 0..rows {
                let dst = r * total + offset;
                value.data_mut()[dst..dst + vp.cols()].copy_from_slice(vp.row(r));
            }
            offset += vp.cols();
        }
        self.push(value, Op::ConcatCols(parts.to_vec()))
    }

    /// Column-wise mean over rows: `(n×d) → (1×d)` — sentence pooling.
    pub fn mean_pool(&mut self, a: Var) -> Var {
        let va = self.value(a);
        assert!(va.rows() > 0, "mean_pool of an empty tensor");
        let inv = 1.0 / va.rows() as f32;
        let mut value = Tensor::zeros(1, va.cols());
        for r in 0..va.rows() {
            for (acc, &x) in value.data_mut().iter_mut().zip(va.row(r)) {
                *acc += x * inv;
            }
        }
        self.push(value, Op::MeanPool(a))
    }

    /// Sum of every element: `(n×d) → (1×1)` — the generic scalar head the
    /// grad-check tests reduce through.
    pub fn sum(&mut self, a: Var) -> Var {
        let total: f32 = self.value(a).data().iter().sum();
        self.push(Tensor::from_rows(1, 1, &[total]), Op::Sum(a))
    }

    /// Mean cross-entropy of integer `targets` under row-softmax of
    /// `logits`: `(n×V) → (1×1)`. Log-sum-exp is max-shifted, so the loss
    /// is finite for any finite logits.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let vl = self.value(logits);
        assert_eq!(vl.rows(), targets.len(), "cross_entropy target count");
        let mut total = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            let row = vl.row(r);
            assert!(t < row.len(), "cross_entropy target {t} out of vocab");
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
            let lse: f32 = row.iter().map(|&x| (x - max).exp()).sum::<f32>().ln() + max;
            total += lse - row[t];
        }
        let value = Tensor::from_rows(1, 1, &[total / targets.len().max(1) as f32]);
        self.push(
            value,
            Op::CrossEntropy {
                logits,
                targets: targets.to_vec(),
            },
        )
    }

    // ---- backward --------------------------------------------------------

    /// Reverse-accumulate `∂loss/∂node` for every node, seeding `loss`
    /// (which must be `1×1`) with gradient 1. Gradients accumulate, so a
    /// node feeding several consumers receives every contribution.
    pub fn backward(&mut self, loss: Var) {
        {
            let node = &mut self.nodes[loss.0];
            assert_eq!(
                (node.value.rows(), node.value.cols()),
                (1, 1),
                "backward needs a scalar loss"
            );
            node.grad.set(0, 0, 1.0);
        }
        for i in (0..=loss.0).rev() {
            // Take this node's grad out so we can mutate input grads.
            let grad = std::mem::replace(&mut self.nodes[i].grad, Tensor::zeros(0, 0));
            match &self.nodes[i].op {
                Op::Leaf => {}
                Op::Matmul(a, b) => {
                    let (a, b) = (*a, *b);
                    // dA += dC · Bᵀ ; dB += Aᵀ · dC
                    let da = matmul_nt(&grad, self.value(b));
                    let db = matmul(&self.value(a).transposed(), &grad);
                    accumulate(&mut self.nodes[a.0].grad, &da);
                    accumulate(&mut self.nodes[b.0].grad, &db);
                }
                Op::MatmulNt(a, b) => {
                    let (a, b) = (*a, *b);
                    // C = A·Bᵀ: dA += dC · B ; dB += dCᵀ · A
                    let da = matmul(&grad, self.value(b));
                    let db = matmul(&grad.transposed(), self.value(a));
                    accumulate(&mut self.nodes[a.0].grad, &da);
                    accumulate(&mut self.nodes[b.0].grad, &db);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    accumulate(&mut self.nodes[a.0].grad, &grad);
                    accumulate(&mut self.nodes[b.0].grad, &grad);
                }
                Op::AddRow(a, row) => {
                    let (a, row) = (*a, *row);
                    accumulate(&mut self.nodes[a.0].grad, &grad);
                    let cols = grad.cols();
                    let row_grad = &mut self.nodes[row.0].grad;
                    for r in 0..grad.rows() {
                        for c in 0..cols {
                            let v = row_grad.get(0, c) + grad.get(r, c);
                            row_grad.set(0, c, v);
                        }
                    }
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = elementwise_product(&grad, self.value(b));
                    let db = elementwise_product(&grad, self.value(a));
                    accumulate(&mut self.nodes[a.0].grad, &da);
                    accumulate(&mut self.nodes[b.0].grad, &db);
                }
                Op::Scale(a, s) => {
                    let (a, s) = (*a, *s);
                    let mut da = grad.clone();
                    for x in da.data_mut() {
                        *x *= s;
                    }
                    accumulate(&mut self.nodes[a.0].grad, &da);
                }
                Op::Softmax(a) => {
                    let a = *a;
                    // dx = y ⊙ (dy − Σⱼ dyⱼ·yⱼ), per row.
                    let y = &self.nodes[i].value;
                    let mut da = Tensor::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let yr = y.row(r);
                        let gr = grad.row(r);
                        let dot: f32 = yr.iter().zip(gr).map(|(y, g)| y * g).sum();
                        for c in 0..y.cols() {
                            da.set(r, c, yr[c] * (gr[c] - dot));
                        }
                    }
                    accumulate(&mut self.nodes[a.0].grad, &da);
                }
                Op::LayerNorm { x, gamma, beta } => {
                    let (x, gamma, beta) = (*x, *gamma, *beta);
                    let vx = self.value(x).clone();
                    let vg = self.value(gamma).clone();
                    let cols = vx.cols();
                    let n = cols as f32;
                    let mut dx = Tensor::zeros(vx.rows(), cols);
                    let mut dgamma = Tensor::zeros(1, cols);
                    let mut dbeta = Tensor::zeros(1, cols);
                    for r in 0..vx.rows() {
                        let row = vx.row(r);
                        let (mean, inv_std) = row_moments(row);
                        // g = dy ⊙ γ; dx = (g − mean(g) − x̂·mean(g⊙x̂))·inv_std
                        let mut sum_g = 0.0f32;
                        let mut sum_gx = 0.0f32;
                        for (c, &xc) in row.iter().enumerate() {
                            let xhat = (xc - mean) * inv_std;
                            let dy = grad.get(r, c);
                            let g = dy * vg.get(0, c);
                            sum_g += g;
                            sum_gx += g * xhat;
                            dgamma.set(0, c, dgamma.get(0, c) + dy * xhat);
                            dbeta.set(0, c, dbeta.get(0, c) + dy);
                        }
                        for (c, &xc) in row.iter().enumerate() {
                            let xhat = (xc - mean) * inv_std;
                            let g = grad.get(r, c) * vg.get(0, c);
                            dx.set(r, c, (g - sum_g / n - xhat * sum_gx / n) * inv_std);
                        }
                    }
                    accumulate(&mut self.nodes[x.0].grad, &dx);
                    accumulate(&mut self.nodes[gamma.0].grad, &dgamma);
                    accumulate(&mut self.nodes[beta.0].grad, &dbeta);
                }
                Op::Gelu(a) => {
                    let a = *a;
                    let vx = self.value(a);
                    let mut da = Tensor::zeros(vx.rows(), vx.cols());
                    for (d, (&x, &g)) in da
                        .data_mut()
                        .iter_mut()
                        .zip(vx.data().iter().zip(grad.data()))
                    {
                        *d = g * gelu_grad_scalar(x);
                    }
                    accumulate(&mut self.nodes[a.0].grad, &da);
                }
                Op::Gather { table, ids } => {
                    let table = *table;
                    let ids = ids.clone();
                    let cols = grad.cols();
                    let tg = &mut self.nodes[table.0].grad;
                    for (r, id) in ids.into_iter().enumerate() {
                        for c in 0..cols {
                            let v = tg.get(id, c) + grad.get(r, c);
                            tg.set(id, c, v);
                        }
                    }
                }
                Op::ConcatCols(parts) => {
                    let parts = parts.clone();
                    let total = grad.cols();
                    let mut offset = 0;
                    for p in parts {
                        let pg = &mut self.nodes[p.0].grad;
                        let w = pg.cols();
                        for r in 0..grad.rows() {
                            for c in 0..w {
                                let v = pg.get(r, c) + grad.data()[r * total + offset + c];
                                pg.set(r, c, v);
                            }
                        }
                        offset += w;
                    }
                }
                Op::MeanPool(a) => {
                    let a = *a;
                    let ag = &mut self.nodes[a.0].grad;
                    let inv = 1.0 / ag.rows() as f32;
                    let cols = ag.cols();
                    for r in 0..ag.rows() {
                        for c in 0..cols {
                            let v = ag.get(r, c) + grad.get(0, c) * inv;
                            ag.set(r, c, v);
                        }
                    }
                }
                Op::Sum(a) => {
                    let a = *a;
                    let g = grad.get(0, 0);
                    for x in self.nodes[a.0].grad.data_mut() {
                        *x += g;
                    }
                }
                Op::CrossEntropy { logits, targets } => {
                    let logits = *logits;
                    let targets = targets.clone();
                    let g = grad.get(0, 0) / targets.len().max(1) as f32;
                    // dlogits = (softmax(z) − onehot(t)) · g, per row.
                    let mut probs = self.value(logits).clone();
                    softmax_rows(&mut probs);
                    let lg = &mut self.nodes[logits.0].grad;
                    for (r, t) in targets.into_iter().enumerate() {
                        for c in 0..probs.cols() {
                            let onehot = if c == t { 1.0 } else { 0.0 };
                            let v = lg.get(r, c) + (probs.get(r, c) - onehot) * g;
                            lg.set(r, c, v);
                        }
                    }
                }
            }
            self.nodes[i].grad = grad;
        }
    }
}

fn accumulate(into: &mut Tensor, from: &Tensor) {
    debug_assert_eq!((into.rows(), into.cols()), (from.rows(), from.cols()));
    for (a, b) in into.data_mut().iter_mut().zip(from.data()) {
        *a += b;
    }
}

fn elementwise_product(a: &Tensor, b: &Tensor) -> Tensor {
    let mut out = a.clone();
    for (x, y) in out.data_mut().iter_mut().zip(b.data()) {
        *x *= y;
    }
    out
}

/// `(mean, 1/√(σ² + ε))` of one row — shared by layer-norm forward and
/// backward so both see bit-identical statistics.
fn row_moments(row: &[f32]) -> (f32, f32) {
    let n = row.len() as f32;
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / n;
    (mean, 1.0 / (var + LAYER_NORM_EPS).sqrt())
}

/// In-place row-wise softmax with max subtraction.
fn softmax_rows(t: &mut Tensor) {
    let cols = t.cols();
    for r in 0..t.rows() {
        let row = &mut t.data_mut()[r * cols..(r + 1) * cols];
        let max = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let mut z = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            z += *x;
        }
        for x in row.iter_mut() {
            *x /= z;
        }
    }
}

const SQRT_2_OVER_PI: f32 = 0.797_884_6;
const GELU_COEFF: f32 = 0.044_715;

/// GELU, tanh approximation: `0.5x(1 + tanh(√(2/π)(x + 0.044715x³)))`.
fn gelu_scalar(x: f32) -> f32 {
    0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + GELU_COEFF * x * x * x)).tanh())
}

/// Analytic derivative of [`gelu_scalar`].
fn gelu_grad_scalar(x: f32) -> f32 {
    let u = SQRT_2_OVER_PI * (x + GELU_COEFF * x * x * x);
    let t = u.tanh();
    let du = SQRT_2_OVER_PI * (1.0 + 3.0 * GELU_COEFF * x * x);
    0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_match_hand_computation() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        let b = g.constant(Tensor::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]));
        let c = g.matmul(a, b);
        assert_eq!(g.value(c).data(), &[19.0, 22.0, 43.0, 50.0]);
        let s = g.sum(c);
        assert_eq!(g.value(s).get(0, 0), 134.0);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_is_preserved() {
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_rows(2, 3, &[1.0, 2.0, 3.0, -1.0, 0.0, 100.0]));
        let y = g.softmax(x);
        for r in 0..2 {
            let row = g.value(y).row(r);
            let total: f32 = row.iter().sum();
            assert!((total - 1.0).abs() < 1e-6);
            assert!(row[2] > row[1] && row[1] >= row[0]);
        }
    }

    #[test]
    fn gather_repeats_accumulate_gradient() {
        let mut g = Graph::new();
        let table = g.constant(Tensor::from_rows(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        let picked = g.gather(table, &[1, 1, 0]);
        assert_eq!(g.value(picked).data(), &[3.0, 4.0, 3.0, 4.0, 1.0, 2.0]);
        let loss = g.sum(picked);
        g.backward(loss);
        // Row 1 was gathered twice, row 0 once, row 2 never.
        assert_eq!(g.grad(table).data(), &[1.0, 1.0, 2.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn shared_subexpression_gradients_accumulate() {
        // loss = sum(x + x) ⇒ dx = 2.
        let mut g = Graph::new();
        let x = g.constant(Tensor::from_rows(1, 2, &[3.0, -1.0]));
        let y = g.add(x, x);
        let loss = g.sum(y);
        g.backward(loss);
        assert_eq!(g.grad(x).data(), &[2.0, 2.0]);
    }

    #[test]
    fn cross_entropy_of_uniform_logits_is_log_vocab() {
        let mut g = Graph::new();
        let logits = g.constant(Tensor::zeros(2, 4));
        let loss = g.cross_entropy(logits, &[0, 3]);
        assert!((g.value(loss).get(0, 0) - (4.0f32).ln()).abs() < 1e-6);
    }
}
