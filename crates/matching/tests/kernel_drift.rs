//! Cross-crate kernel drift guard (PR 7 satellite): every public distance
//! entry point — the er-matching similarities, `Embedding`'s methods, the
//! er-core kernel tiers, and er-index's `Metric` — must agree *bitwise*
//! when asked for the same quantity on the same tier. One kernel, many
//! doors; this test fails the moment any door grows a private fold.

use er_core::kernels::KernelTier;
use er_core::Embedding;
use er_index::Metric;
use er_matching::similarity;
use rand::Rng;

const TIERS: [KernelTier; 2] = [KernelTier::Reference, KernelTier::Lanes];

fn random_embeddings(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
    let mut r = er_core::rng::rng(seed);
    (0..n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-2.0..2.0)).collect()))
        .collect()
}

#[test]
fn every_public_dot_entry_point_agrees_bitwise_per_tier() {
    // Dims straddle the 8-lane boundary on purpose.
    for dim in [7usize, 8, 19, 32] {
        let vs = random_embeddings(6, dim, 0xd01f + dim as u64);
        for a in &vs {
            for b in &vs {
                for tier in TIERS {
                    let want = tier.dot(a.as_slice(), b.as_slice());
                    assert_eq!(
                        similarity::dot_tier(tier, a, b).to_bits(),
                        want.to_bits(),
                        "er-matching dot_tier drifted ({tier:?}, dim {dim})"
                    );
                }
                // The tierless doors are all the Reference tier.
                let want = KernelTier::Reference.dot(a.as_slice(), b.as_slice());
                assert_eq!(similarity::dot(a, b).to_bits(), want.to_bits());
                assert_eq!(a.dot(b).to_bits(), want.to_bits());
                assert_eq!(
                    er_core::kernels::dot(a.as_slice(), b.as_slice()).to_bits(),
                    want.to_bits()
                );
            }
        }
    }
}

#[test]
fn every_public_cosine_entry_point_agrees_bitwise_per_tier() {
    for dim in [7usize, 8, 19, 32] {
        let vs = random_embeddings(6, dim, 0xc0 + dim as u64);
        for a in &vs {
            for b in &vs {
                for tier in TIERS {
                    let want = tier.cosine(a.as_slice(), b.as_slice());
                    assert_eq!(
                        similarity::cosine_tier(tier, a, b).to_bits(),
                        want.to_bits(),
                        "er-matching cosine_tier drifted ({tier:?}, dim {dim})"
                    );
                    assert_eq!(
                        similarity::cosine_slices_tier(tier, a.as_slice(), b.as_slice()).to_bits(),
                        want.to_bits()
                    );
                    // Metric::Cosine is `1 − cosine` on the same tier, and
                    // its prenorm fast path takes the tier's own norms.
                    assert_eq!(
                        Metric::Cosine
                            .distance_slices_tier(tier, a.as_slice(), b.as_slice())
                            .to_bits(),
                        (1.0 - want).to_bits(),
                        "Metric::Cosine drifted ({tier:?}, dim {dim})"
                    );
                    let (na, nb) = (tier.norm(a.as_slice()), tier.norm(b.as_slice()));
                    assert_eq!(
                        Metric::Cosine
                            .distance_prenorm_tier(tier, a.as_slice(), na, b.as_slice(), nb)
                            .to_bits(),
                        (1.0 - want).to_bits()
                    );
                }
                let want = KernelTier::Reference.cosine(a.as_slice(), b.as_slice());
                assert_eq!(similarity::cosine(a, b).to_bits(), want.to_bits());
                assert_eq!(a.cosine(b).to_bits(), want.to_bits());
                assert_eq!(
                    Metric::Cosine.distance(a, b).to_bits(),
                    (1.0 - want).to_bits()
                );
            }
        }
    }
}

#[test]
fn euclidean_metric_routes_through_the_tier_squared_euclidean() {
    for dim in [7usize, 9, 24] {
        let vs = random_embeddings(5, dim, 0xe0c + dim as u64);
        for a in &vs {
            for b in &vs {
                for tier in TIERS {
                    let want = tier.squared_euclidean(a.as_slice(), b.as_slice());
                    assert_eq!(
                        Metric::Euclidean
                            .distance_slices_tier(tier, a.as_slice(), b.as_slice())
                            .to_bits(),
                        want.to_bits(),
                        "Metric::Euclidean drifted ({tier:?}, dim {dim})"
                    );
                }
            }
        }
    }
}

#[test]
fn zero_vectors_score_cosine_zero_through_every_door() {
    let z = Embedding(vec![0.0; 12]);
    let v = Embedding((0..12).map(|i| i as f32 - 5.0).collect());
    for tier in TIERS {
        assert_eq!(similarity::cosine_tier(tier, &z, &v), 0.0);
        assert_eq!(
            Metric::Cosine.distance_slices_tier(tier, z.as_slice(), v.as_slice()),
            1.0
        );
    }
    assert_eq!(similarity::cosine(&z, &v), 0.0);
    assert_eq!(z.cosine(&v), 0.0);
}
