//! Alternative clusterers for the generality check of the paper's Fig. 2:
//! the qualitative conclusions of the threshold sweep hold across
//! Connected Components, Best Match, UMC and the Kiraly approximation,
//! whose F1 curves are strongly correlated over δ.
//!
//! All clusterers share one bipartite contract: input is a scored
//! candidate list over a Clean-Clean dataset (left and right ids are
//! separate namespaces), output is the matched pairs in canonical
//! `(left, right)` order — except UMC, which reports in acceptance order.

use crate::kiraly::kiraly_clustering;
use crate::umc::unique_mapping_clustering;
use er_core::{sort_by_id_pair, EntityId, ScoredPair};
use std::collections::HashMap;

/// The clusterer a threshold sweep (or [`Clusterer::cluster`] caller)
/// runs at each δ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Clusterer {
    /// Unique Mapping Clustering — the paper's default (§4.3).
    #[default]
    UniqueMapping,
    /// Transitive closure over the surviving candidates: every cross-side
    /// pair inside a connected component is a match.
    ConnectedComponents,
    /// Each left entity matches its best-scoring surviving candidate.
    BestMatch,
    /// Kiraly's linear-time 3/2-approximation of maximum stable marriage.
    Kiraly,
}

impl Clusterer {
    /// Run this clusterer over the candidates at threshold `delta`.
    pub fn cluster(&self, pairs: &[ScoredPair], delta: f32) -> Vec<ScoredPair> {
        match self {
            Clusterer::UniqueMapping => unique_mapping_clustering(pairs, delta),
            Clusterer::ConnectedComponents => connected_components_clustering(pairs, delta),
            Clusterer::BestMatch => best_match_clustering(pairs, delta),
            Clusterer::Kiraly => kiraly_clustering(pairs, delta),
        }
    }
}

/// Union-find over the bipartite node space: left id `l` maps to node
/// `2·l`, right id `r` to `2·r + 1`, so the two namespaces never collide.
struct UnionFind {
    parent: HashMap<u64, u64>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, node: u64) -> u64 {
        let mut root = node;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        // Path compression.
        let mut cur = node;
        while let Some(&p) = self.parent.get(&cur) {
            if p == root {
                break;
            }
            self.parent.insert(cur, root);
            cur = p;
        }
        self.parent.entry(node).or_insert(root);
        root
    }

    fn union(&mut self, a: u64, b: u64) {
        let ra = self.find(a);
        let rb = self.find(b);
        // Deterministic root choice: the smaller node id wins.
        let (keep, merge) = if ra <= rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(merge, keep);
    }
}

/// Connected-Components clustering: keep candidates scoring ≥ `delta`,
/// take the transitive closure, and emit every cross-side pair that falls
/// inside one component. A pair that was itself a surviving candidate
/// keeps its own score; a pair implied only by transitivity carries the
/// weakest surviving score of its component (the strength of the chain
/// that connected it).
pub fn connected_components_clustering(pairs: &[ScoredPair], delta: f32) -> Vec<ScoredPair> {
    let surviving: Vec<ScoredPair> = pairs.iter().filter(|p| p.score >= delta).copied().collect();
    let mut uf = UnionFind::new();
    for p in &surviving {
        uf.union(u64::from(p.left.0) * 2, u64::from(p.right.0) * 2 + 1);
    }
    // Component root -> (left ids, right ids, weakest surviving score).
    let mut components: HashMap<u64, (Vec<EntityId>, Vec<EntityId>, f32)> = HashMap::new();
    let mut direct: HashMap<(EntityId, EntityId), f32> = HashMap::new();
    for p in &surviving {
        let root = uf.find(u64::from(p.left.0) * 2);
        let entry = components
            .entry(root)
            .or_insert_with(|| (Vec::new(), Vec::new(), p.score));
        entry.0.push(p.left);
        entry.1.push(p.right);
        if p.score < entry.2 {
            entry.2 = p.score;
        }
        let key = p.id_pair();
        let existing = direct.entry(key).or_insert(p.score);
        if p.score > *existing {
            *existing = p.score;
        }
    }
    let mut matches = Vec::new();
    for (lefts, rights, floor) in components.into_values() {
        let mut lefts = lefts;
        let mut rights = rights;
        lefts.sort_unstable();
        lefts.dedup();
        rights.sort_unstable();
        rights.dedup();
        for &l in &lefts {
            for &r in &rights {
                let score = direct.get(&(l, r)).copied().unwrap_or(floor);
                matches.push(ScoredPair::new(l, r, score));
            }
        }
    }
    sort_by_id_pair(&mut matches);
    matches
}

/// Best-Match clustering: each left entity matches its highest-scoring
/// surviving candidate (ties broken toward the smaller right id). Right
/// entities may be matched several times — the one-sided greedy baseline
/// UMC's 1–1 constraint improves on.
pub fn best_match_clustering(pairs: &[ScoredPair], delta: f32) -> Vec<ScoredPair> {
    let mut best: HashMap<EntityId, ScoredPair> = HashMap::new();
    for p in pairs.iter().filter(|p| p.score >= delta) {
        match best.get(&p.left) {
            Some(held) if held.cmp_score_desc(p).is_le() => {}
            _ => {
                best.insert(p.left, *p);
            }
        }
    }
    let mut matches: Vec<ScoredPair> = best.into_values().collect();
    sort_by_id_pair(&mut matches);
    matches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(l: u32, r: u32, s: f32) -> ScoredPair {
        ScoredPair::new(EntityId(l), EntityId(r), s)
    }

    #[test]
    fn connected_components_close_transitively() {
        // l0—r0 and l1—r0 chain l0, l1, r0 into one component; l1—r1 pulls
        // r1 in too, so all four cross pairs are matches.
        let pairs = vec![pair(0, 0, 0.9), pair(1, 0, 0.8), pair(1, 1, 0.7)];
        let matches = connected_components_clustering(&pairs, 0.0);
        assert_eq!(
            matches.iter().map(|p| p.id_pair()).collect::<Vec<_>>(),
            vec![
                (EntityId(0), EntityId(0)),
                (EntityId(0), EntityId(1)),
                (EntityId(1), EntityId(0)),
                (EntityId(1), EntityId(1)),
            ]
        );
        // Direct candidates keep their score; the implied (0,1) pair gets
        // the component floor 0.7.
        assert_eq!(matches[0].score, 0.9);
        assert_eq!(matches[1].score, 0.7);
    }

    #[test]
    fn connected_components_respect_delta() {
        let pairs = vec![pair(0, 0, 0.9), pair(1, 0, 0.2)];
        let matches = connected_components_clustering(&pairs, 0.5);
        assert_eq!(matches, vec![pair(0, 0, 0.9)]);
    }

    #[test]
    fn separate_components_stay_separate() {
        let pairs = vec![pair(0, 0, 0.9), pair(5, 5, 0.8)];
        let matches = connected_components_clustering(&pairs, 0.0);
        assert_eq!(matches.len(), 2, "no cross-component pairs");
    }

    #[test]
    fn best_match_keeps_one_pair_per_left() {
        let pairs = vec![
            pair(0, 0, 0.6),
            pair(0, 1, 0.9),
            pair(1, 1, 0.7),
            pair(1, 2, 0.7), // tie: smaller right id (1) wins
        ];
        let matches = best_match_clustering(&pairs, 0.0);
        assert_eq!(matches, vec![pair(0, 1, 0.9), pair(1, 1, 0.7)]);
    }

    #[test]
    fn best_match_is_permutation_independent() {
        let pairs = vec![pair(0, 2, 0.5), pair(0, 1, 0.5), pair(0, 3, 0.4)];
        let mut reversed = pairs.clone();
        reversed.reverse();
        let a = best_match_clustering(&pairs, 0.0);
        assert_eq!(a, best_match_clustering(&reversed, 0.0));
        assert_eq!(a, vec![pair(0, 1, 0.5)]);
    }

    #[test]
    fn clusterer_enum_dispatches_to_every_algorithm() {
        let pairs = vec![pair(0, 0, 0.9), pair(1, 0, 0.8), pair(1, 1, 0.7)];
        for clusterer in [
            Clusterer::UniqueMapping,
            Clusterer::ConnectedComponents,
            Clusterer::BestMatch,
            Clusterer::Kiraly,
        ] {
            let matches = clusterer.cluster(&pairs, 0.0);
            assert!(!matches.is_empty(), "{clusterer:?}");
            assert!(matches.iter().all(|p| p.score >= 0.7), "{clusterer:?}");
        }
        assert_eq!(Clusterer::default(), Clusterer::UniqueMapping);
    }
}
