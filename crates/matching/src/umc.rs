//! Unique Mapping Clustering (paper §4.3, Figs. 8/15) — the paper's
//! unsupervised matcher of choice for Clean-Clean ER.
//!
//! Sort the scored candidates by similarity descending and greedily accept
//! every pair whose endpoints are both still unmatched; two bitsets (one
//! per side) track the seen entities, so the whole pass after sorting is
//! O(pairs). The 1–1 constraint is what turns a noisy candidate list into
//! high-precision matches: each left entity spends its one match on its
//! highest-similarity partner that is still free.
//!
//! Determinism: the sort uses [`ScoredPair::cmp_score_desc`] — a total
//! order (`total_cmp` + id-pair tiebreak) — so the output is independent
//! of the input permutation, bit-for-bit, even when scores tie.

use er_core::{sort_by_score_desc, EntityId, ScoredPair};

/// A growable bitset over dense [`EntityId`]s — the two "seen" sets of
/// UMC's greedy pass, and the bookkeeping of the other clusterers.
#[derive(Debug, Clone, Default)]
pub(crate) struct IdBitset {
    words: Vec<u64>,
}

impl IdBitset {
    pub(crate) fn new() -> IdBitset {
        IdBitset::default()
    }

    pub(crate) fn contains(&self, id: EntityId) -> bool {
        let word = (id.0 / 64) as usize;
        self.words
            .get(word)
            .is_some_and(|w| w >> (id.0 % 64) & 1 == 1)
    }

    pub(crate) fn insert(&mut self, id: EntityId) {
        let word = (id.0 / 64) as usize;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        self.words[word] |= 1 << (id.0 % 64);
    }
}

/// Unique Mapping Clustering: accept candidates in descending-similarity
/// order while both endpoints are unseen, skipping everything below
/// `delta`. Returns the accepted matches in acceptance (score-descending)
/// order; the result is one-to-one by construction — no left or right id
/// appears twice.
pub fn unique_mapping_clustering(pairs: &[ScoredPair], delta: f32) -> Vec<ScoredPair> {
    let mut sorted: Vec<ScoredPair> = pairs.iter().filter(|p| p.score >= delta).copied().collect();
    sort_by_score_desc(&mut sorted);
    let mut left_seen = IdBitset::new();
    let mut right_seen = IdBitset::new();
    let mut matches = Vec::new();
    for pair in sorted {
        if !left_seen.contains(pair.left) && !right_seen.contains(pair.right) {
            left_seen.insert(pair.left);
            right_seen.insert(pair.right);
            matches.push(pair);
        }
    }
    matches
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(l: u32, r: u32, s: f32) -> ScoredPair {
        ScoredPair::new(EntityId(l), EntityId(r), s)
    }

    #[test]
    fn greedy_acceptance_respects_one_to_one() {
        let pairs = vec![
            pair(0, 0, 0.9),
            pair(0, 1, 0.8), // left 0 already matched
            pair(1, 0, 0.7), // right 0 already matched
            pair(1, 1, 0.6),
        ];
        let matches = unique_mapping_clustering(&pairs, 0.0);
        assert_eq!(matches, vec![pair(0, 0, 0.9), pair(1, 1, 0.6)]);
    }

    #[test]
    fn delta_filters_before_matching() {
        let pairs = vec![pair(0, 0, 0.9), pair(1, 1, 0.3)];
        let matches = unique_mapping_clustering(&pairs, 0.5);
        assert_eq!(matches, vec![pair(0, 0, 0.9)]);
        assert!(unique_mapping_clustering(&pairs, 0.95).is_empty());
        // Boundary: delta is inclusive.
        assert_eq!(unique_mapping_clustering(&pairs, 0.3).len(), 2);
    }

    #[test]
    fn output_is_independent_of_input_permutation() {
        let pairs = vec![
            pair(0, 1, 0.7),
            pair(2, 0, 0.95),
            pair(1, 1, 0.8),
            pair(0, 2, 0.65),
            pair(1, 2, 0.6),
        ];
        let forward = unique_mapping_clustering(&pairs, 0.0);
        let mut reversed = pairs.clone();
        reversed.reverse();
        assert_eq!(forward, unique_mapping_clustering(&reversed, 0.0));
    }

    #[test]
    fn ties_break_on_id_pair_not_arrival_order() {
        // Both pairs want right 0 at the same score; the smaller left id
        // must win regardless of input order.
        let a = vec![pair(5, 0, 0.5), pair(3, 0, 0.5)];
        let b = vec![pair(3, 0, 0.5), pair(5, 0, 0.5)];
        assert_eq!(unique_mapping_clustering(&a, 0.0), vec![pair(3, 0, 0.5)]);
        assert_eq!(
            unique_mapping_clustering(&a, 0.0),
            unique_mapping_clustering(&b, 0.0)
        );
    }

    #[test]
    fn bitset_handles_sparse_ids() {
        let mut set = IdBitset::new();
        assert!(!set.contains(EntityId(0)));
        assert!(!set.contains(EntityId(1000)));
        set.insert(EntityId(1000));
        assert!(set.contains(EntityId(1000)));
        assert!(!set.contains(EntityId(999)));
        assert!(!set.contains(EntityId(1001)));
        set.insert(EntityId(0));
        assert!(set.contains(EntityId(0)));
    }
}
