//! er-matching — matching algorithms (DESIGN.md inventory rows 15–21:
//! Unique Mapping Clustering + threshold sweep, the clustering family,
//! ZeroER, the supervised matchers, and the string-similarity library).
//!
//! This PR ships the first similarity features (row 21, ZeroER's inputs);
//! UMC, the threshold sweep and the matchers land with the matching PR,
//! following the `bench_matching` contract.

pub mod similarity;
