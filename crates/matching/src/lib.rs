//! er-matching — matching algorithms (DESIGN.md inventory rows 15–21:
//! Unique Mapping Clustering + threshold sweep, the clustering family,
//! ZeroER, the supervised matchers, and the string-similarity library).
//!
//! This PR ships the unsupervised matching layer on the scored-candidate
//! contract: every matcher consumes the `Vec<ScoredPair>` the blocker
//! produced — the similarity threaded out of the index, bit-identical to
//! [`similarity::cosine`] for cosine backends — and never re-scores a
//! pair. [`unique_mapping_clustering`] is the paper's default (§4.3);
//! [`Clusterer`] adds Connected Components, Best Match and the Kiraly
//! stable-marriage approximation for the Fig. 2 generality check; and
//! [`ThresholdSweep`] drives any of them across the δ grid of Fig. 15.
//! ZeroER and the supervised matchers (rows 17–20) build on the same
//! contract in a later PR.

pub mod clusterers;
pub mod kiraly;
pub mod similarity;
pub mod threshold;
pub mod umc;

pub use clusterers::{best_match_clustering, connected_components_clustering, Clusterer};
pub use kiraly::kiraly_clustering;
pub use threshold::{SweepPoint, ThresholdSweep};
pub use umc::unique_mapping_clustering;
