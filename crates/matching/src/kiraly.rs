//! Kiraly's proposal-based stable-marriage approximation (the "KRC"
//! clusterer of the paper's Fig. 2 generality check).
//!
//! A Gale–Shapley-style proposal loop where both sides rank partners by
//! the candidate score: each left entity proposes down its
//! preference list (score descending); a right entity holds the best
//! proposal it has seen and displaces the weaker suitor. Kiraly's twist —
//! the linear-time 3/2-approximation for maximum stable marriage with
//! ties — is the *promotion* step: a left entity that exhausts its list
//! unmatched restarts it once as "promoted", and promoted suitors win
//! score ties against unpromoted ones.
//!
//! Determinism: preference lists are sorted with
//! [`ScoredPair::cmp_score_desc`] (a total order) and every right-side
//! comparison tie-breaks on promotion then left id, so the matching is
//! independent of the input permutation.

use er_core::{sort_by_id_pair, sort_by_score_desc, EntityId, ScoredPair};
use std::collections::{HashMap, VecDeque};

/// A proposal currently held by a right entity.
#[derive(Debug, Clone, Copy)]
struct Held {
    pair: ScoredPair,
    promoted: bool,
}

/// Does a new proposal displace the held one? Higher score wins; on a
/// score tie a promoted suitor beats an unpromoted one; the final
/// tiebreak (smaller left id) keeps the choice total and deterministic.
fn displaces(new: &ScoredPair, new_promoted: bool, held: &Held) -> bool {
    match new.score.total_cmp(&held.pair.score) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Less => false,
        std::cmp::Ordering::Equal => match (new_promoted, held.promoted) {
            (true, false) => true,
            (false, true) => false,
            _ => new.left < held.pair.left,
        },
    }
}

/// Kiraly stable-marriage clustering over the candidates scoring ≥
/// `delta`. Returns a one-to-one matching in canonical `(left, right)`
/// order.
pub fn kiraly_clustering(pairs: &[ScoredPair], delta: f32) -> Vec<ScoredPair> {
    let mut surviving: Vec<ScoredPair> =
        pairs.iter().filter(|p| p.score >= delta).copied().collect();
    // Score-descending total order, so each per-left list comes out ranked
    // and duplicate (left, right) entries keep only their best score.
    sort_by_score_desc(&mut surviving);
    let mut prefs: HashMap<EntityId, Vec<ScoredPair>> = HashMap::new();
    for p in surviving {
        let list = prefs.entry(p.left).or_default();
        if !list.iter().any(|q| q.right == p.right) {
            list.push(p);
        }
    }
    let mut lefts: Vec<EntityId> = prefs.keys().copied().collect();
    lefts.sort_unstable();

    // next[left] = index of the next proposal; promoted[left] = second pass.
    let mut next: HashMap<EntityId, usize> = HashMap::new();
    let mut promoted: HashMap<EntityId, bool> = HashMap::new();
    let mut held: HashMap<EntityId, Held> = HashMap::new();
    let mut free: VecDeque<EntityId> = lefts.into_iter().collect();

    while let Some(left) = free.pop_front() {
        let list = &prefs[&left];
        let pos = *next.get(&left).unwrap_or(&0);
        let is_promoted = *promoted.get(&left).unwrap_or(&false);
        if pos >= list.len() {
            if !is_promoted {
                // Kiraly promotion: restart the list once with tie priority.
                promoted.insert(left, true);
                next.insert(left, 0);
                free.push_back(left);
            }
            continue;
        }
        let proposal = list[pos];
        next.insert(left, pos + 1);
        match held.get(&proposal.right) {
            None => {
                held.insert(
                    proposal.right,
                    Held {
                        pair: proposal,
                        promoted: is_promoted,
                    },
                );
            }
            Some(current) => {
                if displaces(&proposal, is_promoted, current) {
                    let displaced = current.pair.left;
                    held.insert(
                        proposal.right,
                        Held {
                            pair: proposal,
                            promoted: is_promoted,
                        },
                    );
                    free.push_back(displaced);
                } else {
                    free.push_back(left);
                }
            }
        }
    }

    let mut matches: Vec<ScoredPair> = held.into_values().map(|h| h.pair).collect();
    sort_by_id_pair(&mut matches);
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::umc::unique_mapping_clustering;

    fn pair(l: u32, r: u32, s: f32) -> ScoredPair {
        ScoredPair::new(EntityId(l), EntityId(r), s)
    }

    #[test]
    fn matching_is_one_to_one_and_stable_on_a_small_instance() {
        let pairs = vec![
            pair(0, 0, 0.9),
            pair(0, 1, 0.8),
            pair(1, 0, 0.85),
            pair(1, 1, 0.4),
        ];
        let matches = kiraly_clustering(&pairs, 0.0);
        assert_eq!(matches, vec![pair(0, 0, 0.9), pair(1, 1, 0.4)]);
    }

    #[test]
    fn displaced_suitor_falls_back_to_its_next_choice() {
        // Left 1 proposes to right 0 first but is displaced by left 0's
        // stronger claim, so it settles for right 1.
        let pairs = vec![pair(1, 0, 0.7), pair(1, 1, 0.6), pair(0, 0, 0.9)];
        let matches = kiraly_clustering(&pairs, 0.0);
        assert_eq!(matches, vec![pair(0, 0, 0.9), pair(1, 1, 0.6)]);
    }

    #[test]
    fn is_permutation_independent_and_delta_aware() {
        let pairs = vec![
            pair(0, 1, 0.7),
            pair(2, 0, 0.95),
            pair(1, 1, 0.8),
            pair(0, 2, 0.65),
            pair(1, 2, 0.6),
        ];
        let mut reversed = pairs.clone();
        reversed.reverse();
        let forward = kiraly_clustering(&pairs, 0.0);
        assert_eq!(forward, kiraly_clustering(&reversed, 0.0));
        assert!(kiraly_clustering(&pairs, 0.99).is_empty());
        // One-to-one: no endpoint repeats.
        let mut lefts: Vec<_> = forward.iter().map(|p| p.left).collect();
        let mut rights: Vec<_> = forward.iter().map(|p| p.right).collect();
        lefts.sort_unstable();
        rights.sort_unstable();
        lefts.dedup();
        rights.dedup();
        assert_eq!(lefts.len(), forward.len());
        assert_eq!(rights.len(), forward.len());
    }

    #[test]
    fn agrees_with_umc_when_preferences_are_unambiguous() {
        // Distinct scores, disjoint best partners: greedy UMC and stable
        // marriage coincide (the Fig. 2 correlation in its cleanest form).
        let pairs = vec![
            pair(0, 0, 0.9),
            pair(1, 1, 0.8),
            pair(2, 2, 0.7),
            pair(0, 1, 0.3),
            pair(2, 1, 0.2),
        ];
        let mut umc = unique_mapping_clustering(&pairs, 0.0);
        sort_by_id_pair(&mut umc);
        assert_eq!(kiraly_clustering(&pairs, 0.0), umc);
    }
}
