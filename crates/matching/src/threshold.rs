//! The threshold sweep of the paper's Fig. 15: run a clusterer at every
//! δ ∈ {0.05, 0.10, …, 0.95} over one scored candidate list, score each
//! δ's matches against the ground truth, and report the per-δ
//! [`Metrics`] curve plus the best-F1 operating point. The sweep is what
//! turns "UMC with some threshold" into a concrete, reproducible
//! configuration — the paper reads its headline unsupervised-matching
//! numbers off exactly this curve.

use crate::clusterers::Clusterer;
use er_core::{GroundTruth, ScoredPair};
use er_eval::Metrics;

/// One evaluated operating point of the sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The similarity threshold the clusterer ran at.
    pub delta: f32,
    /// The matches the clusterer produced at this δ.
    pub matches: Vec<ScoredPair>,
    /// Precision/recall/F1 of those matches against the ground truth.
    pub metrics: Metrics,
}

/// The per-δ curve of one clusterer over one candidate list.
#[derive(Debug, Clone)]
pub struct ThresholdSweep {
    /// Which clusterer produced the curve.
    pub clusterer: Clusterer,
    /// One point per δ, in ascending-δ order.
    pub points: Vec<SweepPoint>,
}

impl ThresholdSweep {
    /// The paper's δ grid: 0.05 to 0.95 in steps of 0.05 (Fig. 15).
    ///
    /// Contract: each δ is `(i as f64 * 0.05) as f32` — the nearest f32 to
    /// the *exact* multiple of 0.05, rounded independently per point. The
    /// earlier `i as f32 * 0.05` accumulated per-step f32 error (e.g.
    /// δ₇ = 0.35000002), so a candidate scored exactly at a nominal grid
    /// value could flip sides of the `score >= delta` cut. The 19 values
    /// are pinned bit-exactly in `paper_deltas_are_bit_exact`.
    pub fn paper_deltas() -> Vec<f32> {
        (1..=19).map(|i| (i as f64 * 0.05) as f32).collect()
    }

    /// Sweep Unique Mapping Clustering — the paper's default matcher —
    /// over the paper's δ grid.
    pub fn run(pairs: &[ScoredPair], gt: &GroundTruth) -> ThresholdSweep {
        ThresholdSweep::run_with(pairs, gt, Clusterer::UniqueMapping, &Self::paper_deltas())
    }

    /// Sweep an arbitrary clusterer over an arbitrary δ grid.
    pub fn run_with(
        pairs: &[ScoredPair],
        gt: &GroundTruth,
        clusterer: Clusterer,
        deltas: &[f32],
    ) -> ThresholdSweep {
        let points = deltas
            .iter()
            .map(|&delta| {
                let matches = clusterer.cluster(pairs, delta);
                let metrics = Metrics::of_pairs(&matches, gt);
                SweepPoint {
                    delta,
                    matches,
                    metrics,
                }
            })
            .collect();
        ThresholdSweep { clusterer, points }
    }

    /// The best-F1 operating point; the *lowest* δ wins ties, matching the
    /// paper's preference for recall when F1 is indifferent. `None` only
    /// for an empty grid.
    pub fn best(&self) -> Option<&SweepPoint> {
        self.points.iter().reduce(|best, point| {
            if point.metrics.f1 > best.metrics.f1 {
                point
            } else {
                best
            }
        })
    }

    /// The F1 values in δ order — the curve the Fig. 2 correlation check
    /// (`er_eval::pearson`) compares across clusterers.
    pub fn f1_curve(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.metrics.f1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::EntityId;
    use er_eval::pearson;

    fn pair(l: u32, r: u32, s: f32) -> ScoredPair {
        ScoredPair::new(EntityId(l), EntityId(r), s)
    }

    /// Three true matches at high scores, two decoys at low scores. The
    /// decoys pair otherwise-unmatched entities, so no clusterer can
    /// reject them structurally — only δ filters them out.
    fn fixture() -> (Vec<ScoredPair>, GroundTruth) {
        let pairs = vec![
            pair(0, 0, 0.92),
            pair(1, 1, 0.88),
            pair(2, 2, 0.79),
            pair(3, 4, 0.32),
            pair(5, 6, 0.11),
        ];
        let gt = GroundTruth::clean_clean((0..3).map(|i| (EntityId(i), EntityId(i))));
        (pairs, gt)
    }

    #[test]
    fn sweeps_the_paper_grid_and_finds_the_best_delta() {
        let (pairs, gt) = fixture();
        let sweep = ThresholdSweep::run(&pairs, &gt);
        assert_eq!(sweep.points.len(), 19);
        assert_eq!(sweep.clusterer, Clusterer::UniqueMapping);
        let best = sweep.best().expect("non-empty grid");
        assert_eq!(best.metrics.f1, 1.0);
        // F1 is perfect on [0.35, 0.79]: decoys gone, matches kept. The
        // tie-break picks the lowest such δ on the grid.
        assert!((best.delta - 0.35).abs() < 1e-6, "{}", best.delta);
    }

    #[test]
    fn paper_deltas_are_bit_exact() {
        // Each grid point must be the f32 nearest the exact multiple of
        // 0.05 — i.e. bit-identical to the literal — not a value with
        // accumulated f32 stepping error. In particular a pair scored
        // exactly 0.35f32 must satisfy `score >= delta` at δ₇.
        let expected: [f32; 19] = [
            0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8,
            0.85, 0.9, 0.95,
        ];
        let got = ThresholdSweep::paper_deltas();
        assert_eq!(got.len(), 19);
        for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
            assert_eq!(
                g.to_bits(),
                e.to_bits(),
                "δ{} = {g:?} is not bit-identical to the literal {e:?}",
                i + 1
            );
        }
        assert!(0.35f32 >= got[6], "nominal grid score flips the δ₇ cut");
    }

    #[test]
    fn match_count_is_monotone_non_increasing_in_delta() {
        let (pairs, gt) = fixture();
        let sweep = ThresholdSweep::run(&pairs, &gt);
        for w in sweep.points.windows(2) {
            assert!(
                w[0].matches.len() >= w[1].matches.len(),
                "δ={} has fewer matches than δ={}",
                w[0].delta,
                w[1].delta
            );
        }
    }

    #[test]
    fn clusterer_curves_are_strongly_correlated_on_easy_data() {
        // The Fig. 2 generality check in miniature: UMC, CC and Kiraly
        // produce near-identical F1 curves on well-separated scores.
        let (pairs, gt) = fixture();
        let umc = ThresholdSweep::run(&pairs, &gt).f1_curve();
        for clusterer in [Clusterer::ConnectedComponents, Clusterer::Kiraly] {
            let other =
                ThresholdSweep::run_with(&pairs, &gt, clusterer, &ThresholdSweep::paper_deltas())
                    .f1_curve();
            let r = pearson(&umc, &other);
            assert!(r > 0.9, "{clusterer:?} decorrelated from UMC: r = {r}");
        }
    }

    #[test]
    fn empty_grid_and_empty_candidates_stay_well_defined() {
        let (pairs, gt) = fixture();
        let empty_grid = ThresholdSweep::run_with(&pairs, &gt, Clusterer::UniqueMapping, &[]);
        assert!(empty_grid.best().is_none());
        let no_candidates = ThresholdSweep::run(&[], &gt);
        let best = no_candidates.best().expect("grid is non-empty");
        assert_eq!(best.metrics.f1, 0.0);
        assert!(best.matches.is_empty());
    }
}
