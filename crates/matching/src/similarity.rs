//! String similarities used as ZeroER features and matching baselines.
//! All functions return values in `[0, 1]`, higher = more similar.

use er_text::tokenize;
use std::collections::BTreeSet;

/// Token-set Jaccard similarity over normalized word tokens.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let sa: BTreeSet<String> = tokenize(a).into_iter().collect();
    let sb: BTreeSet<String> = tokenize(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Levenshtein distance normalized into a similarity:
/// `1 - dist / max_len`. Computed over chars with a two-row DP.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let max_len = av.len().max(bv.len());
    if max_len == 0 {
        return 1.0;
    }
    let mut prev: Vec<usize> = (0..=bv.len()).collect();
    let mut curr = vec![0usize; bv.len() + 1];
    for (i, &ca) in av.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in bv.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    1.0 - prev[bv.len()] as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_counts_shared_tokens() {
        assert_eq!(jaccard("golden palace grill", "golden palace grill"), 1.0);
        // {golden, palace} over {golden, palace, grill, diner}
        assert!((jaccard("golden palace grill", "golden palace diner") - 0.5).abs() < 1e-12);
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("abc", ""), 0.0);
    }

    #[test]
    fn levenshtein_counts_edits() {
        assert_eq!(levenshtein_sim("kitten", "kitten"), 1.0);
        // kitten -> sitting: 3 edits over max len 7
        assert!((levenshtein_sim("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("ab", ""), 0.0);
    }

    #[test]
    fn typo_keeps_high_levenshtein_but_kills_jaccard() {
        // The contrast ZeroER's mixed feature set exists for.
        let a = "springfield";
        let b = "springfeild";
        assert!(levenshtein_sim(a, b) > 0.8);
        assert_eq!(jaccard(a, b), 0.0);
    }
}
