//! Similarities used as ZeroER features and matching baselines: string
//! similarities over raw attribute text, and embedding similarities over
//! the vectors the blocking stage already computed. String functions
//! return values in `[0, 1]`, higher = more similar.
//!
//! The embedding similarities are thin delegates to [`er_core::kernels`] —
//! the same functions `er_index::Metric` runs its searches on — so a
//! matcher scoring a candidate pair gets the bit-identical cosine the
//! blocker ranked it by (`similarity = 1 − distance`, no kernel drift).
//! Before the kernel module, cosine/dot lived once here and once in
//! `er-index`; these wrappers are now the only er-matching entry points.

use er_core::kernels::KernelTier;
use er_core::Embedding;
use er_text::tokenize;
use std::collections::BTreeSet;

/// Dot product of two embedding vectors (unbounded; a raw model-space
/// feature). The `Reference` tier of [`dot_tier`].
pub fn dot(a: &Embedding, b: &Embedding) -> f32 {
    dot_tier(KernelTier::Reference, a, b)
}

/// Dot product on an explicit kernel tier. Every er-matching embedding
/// similarity routes through [`KernelTier`] — there is no private scalar
/// fold in this crate — so a matcher configured with the same tier as the
/// blocker scores candidates with the bit-identical kernel that ranked
/// them.
pub fn dot_tier(tier: KernelTier, a: &Embedding, b: &Embedding) -> f32 {
    tier.dot(a.as_slice(), b.as_slice())
}

/// Cosine similarity in `[-1, 1]`; zero vectors score 0.0, matching the
/// convention of `Embedding::cosine` and `Metric::Cosine` exactly (all
/// three run the same `Reference`-tier kernel).
pub fn cosine(a: &Embedding, b: &Embedding) -> f32 {
    cosine_tier(KernelTier::Reference, a, b)
}

/// Cosine similarity on an explicit kernel tier; the zero-vector → 0.0
/// convention holds in every tier.
pub fn cosine_tier(tier: KernelTier, a: &Embedding, b: &Embedding) -> f32 {
    tier.cosine(a.as_slice(), b.as_slice())
}

/// Slice form of [`cosine`], for [`er_core::EmbeddingMatrix`] rows.
pub fn cosine_slices(a: &[f32], b: &[f32]) -> f32 {
    cosine_slices_tier(KernelTier::Reference, a, b)
}

/// Slice form of [`cosine_tier`].
pub fn cosine_slices_tier(tier: KernelTier, a: &[f32], b: &[f32]) -> f32 {
    tier.cosine(a, b)
}

/// Token-set Jaccard similarity over normalized word tokens.
pub fn jaccard(a: &str, b: &str) -> f64 {
    let sa: BTreeSet<String> = tokenize(a).into_iter().collect();
    let sb: BTreeSet<String> = tokenize(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.len() + sb.len() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Levenshtein distance normalized into a similarity:
/// `1 - dist / max_len`. Computed over chars with a two-row DP.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let max_len = av.len().max(bv.len());
    if max_len == 0 {
        return 1.0;
    }
    let mut prev: Vec<usize> = (0..=bv.len()).collect();
    let mut curr = vec![0usize; bv.len() + 1];
    for (i, &ca) in av.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in bv.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    1.0 - prev[bv.len()] as f64 / max_len as f64
}

/// Jaro similarity over chars: the classic record-linkage measure built
/// from matching characters within half the longer length and the
/// transposition count.
fn jaro(a: &[char], b: &[char]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut a_matched = Vec::with_capacity(a.len());
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                a_matched.push(ca);
                break;
            }
        }
    }
    let m = a_matched.len();
    if m == 0 {
        return 0.0;
    }
    let b_matched: Vec<char> = b
        .iter()
        .zip(&b_taken)
        .filter(|(_, &taken)| taken)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = a_matched
        .iter()
        .zip(&b_matched)
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity: Jaro boosted by up to 4 chars of common
/// prefix with the standard scaling factor p = 0.1 — the measure Table
/// 5(b)'s ZeroER feature set uses for short, typo-prone attributes.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let av: Vec<char> = a.chars().collect();
    let bv: Vec<char> = b.chars().collect();
    let j = jaro(&av, &bv);
    let prefix = av
        .iter()
        .zip(&bv)
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Symmetrized Monge–Elkan similarity: tokenize both strings, score each
/// token of one side by its best [`jaro_winkler`] partner on the other,
/// average, and take the mean of both directions (plain Monge–Elkan is
/// asymmetric; the mean keeps the feature symmetric like the rest of the
/// set).
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = tokenize(a);
    let tb = tokenize(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    (monge_elkan_directed(&ta, &tb) + monge_elkan_directed(&tb, &ta)) / 2.0
}

fn monge_elkan_directed(from: &[String], to: &[String]) -> f64 {
    let total: f64 = from
        .iter()
        .map(|x| to.iter().map(|y| jaro_winkler(x, y)).fold(0.0f64, f64::max))
        .sum();
    total / from.len() as f64
}

/// The ZeroER-style string feature vector of a candidate pair:
/// `[jaccard, levenshtein_sim, jaro_winkler, monge_elkan]` — the mixed
/// token/edit/hybrid set of Table 5(b), each in `[0, 1]`.
pub fn feature_vector(a: &str, b: &str) -> Vec<f64> {
    vec![
        jaccard(a, b),
        levenshtein_sim(a, b),
        jaro_winkler(a, b),
        monge_elkan(a, b),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::rng::rng;
    use er_index::Metric;
    use rand::Rng;

    fn random_embeddings(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
        let mut r = rng(seed);
        (0..n)
            .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
            .collect()
    }

    /// The pre-kernel er-matching implementation, kept verbatim as the
    /// regression oracle: a left-to-right `zip`/`sum` fold.
    fn old_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }

    fn old_cosine(a: &[f32], b: &[f32]) -> f32 {
        let denom = old_dot(a, a).sqrt() * old_dot(b, b).sqrt();
        if denom == 0.0 {
            0.0
        } else {
            old_dot(a, b) / denom
        }
    }

    #[test]
    fn kernel_cosine_and_dot_are_bit_identical_to_the_old_folds() {
        let vectors = random_embeddings(24, 37, 90);
        for a in &vectors {
            for b in &vectors {
                assert_eq!(
                    dot(a, b).to_bits(),
                    old_dot(a.as_slice(), b.as_slice()).to_bits()
                );
                assert_eq!(
                    cosine(a, b).to_bits(),
                    old_cosine(a.as_slice(), b.as_slice()).to_bits()
                );
            }
        }
    }

    #[test]
    fn matcher_cosine_agrees_bitwise_with_core_and_index() {
        // One kernel, three call sites: Embedding::cosine, the matcher
        // similarity, and the blocker's Metric::Cosine (distance = 1 − cos)
        // must never drift apart.
        let vectors = random_embeddings(16, 24, 91);
        for a in &vectors {
            for b in &vectors {
                let sim = cosine(a, b);
                assert_eq!(sim.to_bits(), a.cosine(b).to_bits());
                assert_eq!(
                    sim.to_bits(),
                    cosine_slices(a.as_slice(), b.as_slice()).to_bits()
                );
                assert_eq!(
                    Metric::Cosine.distance(a, b).to_bits(),
                    (1.0 - sim).to_bits()
                );
            }
        }
        let zero = Embedding(vec![0.0; 4]);
        assert_eq!(cosine(&zero, &vectors[0]), 0.0);
    }

    #[test]
    fn jaccard_counts_shared_tokens() {
        assert_eq!(jaccard("golden palace grill", "golden palace grill"), 1.0);
        // {golden, palace} over {golden, palace, grill, diner}
        assert!((jaccard("golden palace grill", "golden palace diner") - 0.5).abs() < 1e-12);
        assert_eq!(jaccard("", ""), 1.0);
        assert_eq!(jaccard("abc", ""), 0.0);
    }

    #[test]
    fn levenshtein_counts_edits() {
        assert_eq!(levenshtein_sim("kitten", "kitten"), 1.0);
        // kitten -> sitting: 3 edits over max len 7
        assert!((levenshtein_sim("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("ab", ""), 0.0);
    }

    #[test]
    fn jaro_winkler_matches_the_textbook_fixtures() {
        assert_eq!(jaro_winkler("martha", "martha"), 1.0);
        assert_eq!(jaro_winkler("", ""), 1.0);
        assert_eq!(jaro_winkler("abc", ""), 0.0);
        // The classic pair: jaro(martha, marhta) = 0.944…, prefix 3 ⇒
        // jw = 0.944 + 3·0.1·(1−0.944) = 0.9611….
        let jw = jaro_winkler("martha", "marhta");
        assert!((jw - 0.9611111111).abs() < 1e-6, "{jw}");
        // DIXON/DICKSONX: jaro = 0.7667, prefix 2 ⇒ jw = 0.8133….
        let jw = jaro_winkler("dixon", "dicksonx");
        assert!((jw - 0.8133333333).abs() < 1e-6, "{jw}");
        // Prefix boost caps at 4 chars and vanishes for disjoint strings.
        assert_eq!(jaro_winkler("abc", "xyz"), 0.0);
    }

    #[test]
    fn monge_elkan_forgives_token_reordering_and_typos() {
        // Same tokens, different order: every token finds itself.
        assert_eq!(
            monge_elkan("golden palace grill", "grill golden palace"),
            1.0
        );
        // One typo in one token keeps the score high.
        let me = monge_elkan("golden palace grill", "golden palace gril");
        assert!(me > 0.95, "{me}");
        // Symmetry (plain Monge–Elkan is not symmetric; ours averages).
        let a = "golden palace grill downtown";
        let b = "palace grill";
        assert_eq!(monge_elkan(a, b), monge_elkan(b, a));
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("abc", ""), 0.0);
    }

    #[test]
    fn feature_vector_packs_the_four_features_in_order() {
        let a = "golden palace grill";
        let b = "goldn palace gril";
        let fv = feature_vector(a, b);
        assert_eq!(fv.len(), 4);
        assert_eq!(fv[0], jaccard(a, b));
        assert_eq!(fv[1], levenshtein_sim(a, b));
        assert_eq!(fv[2], jaro_winkler(a, b));
        assert_eq!(fv[3], monge_elkan(a, b));
        assert!(fv.iter().all(|v| (0.0..=1.0).contains(v)), "{fv:?}");
    }

    #[test]
    fn typo_keeps_high_levenshtein_but_kills_jaccard() {
        // The contrast ZeroER's mixed feature set exists for.
        let a = "springfield";
        let b = "springfeild";
        assert!(levenshtein_sim(a, b) > 0.8);
        assert_eq!(jaccard(a, b), 0.0);
    }
}
