//! `er-text` — the text substrate of the reproduction (DESIGN.md inventory
//! row 2): unicode normalization, the word tokenizer every static model
//! shares, the char-n-gram extractor behind FastText's hashing trick, and
//! the deterministic synthetic corpus the zoo pre-trains on.

pub mod corpus;
pub mod ngram;
pub mod normalize;
pub mod tokenize;

pub use corpus::Corpus;
pub use normalize::normalize;
pub use tokenize::{tokenize, MASK_TOKEN};
