//! Character n-gram extraction with the hashing trick (FastText's subword
//! machinery, Bojanowski et al. 2017). Words are padded with `<`/`>` so
//! prefixes and suffixes hash differently from word-internal grams.

/// FNV-1a 64-bit — the workspace's stable, dependency-free hash. Used for
/// n-gram bucketing and cache keys; must never change across releases or
/// saved models would silently re-bucket.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// All padded char n-grams of `word` with n in `[nmin, nmax]`.
///
/// The whole padded word is excluded when it coincides with a plain n-gram
/// range — FastText stores it separately as the word itself.
pub fn char_ngrams(word: &str, nmin: usize, nmax: usize) -> Vec<String> {
    assert!(nmin >= 1 && nmin <= nmax, "bad n-gram range");
    let padded: Vec<char> = std::iter::once('<')
        .chain(word.chars())
        .chain(std::iter::once('>'))
        .collect();
    let mut grams = Vec::new();
    for n in nmin..=nmax {
        if padded.len() < n {
            break;
        }
        for start in 0..=(padded.len() - n) {
            grams.push(padded[start..start + n].iter().collect());
        }
    }
    grams
}

/// Hashed bucket ids of the word's n-grams (`bucket = fnv1a(gram) % buckets`).
pub fn hashed_ngrams(word: &str, nmin: usize, nmax: usize, buckets: usize) -> Vec<u32> {
    assert!(buckets > 0, "need at least one bucket");
    char_ngrams(word, nmin, nmax)
        .iter()
        .map(|g| (fnv1a(g.as_bytes()) % buckets as u64) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_padded_ngrams() {
        let grams = char_ngrams("cat", 3, 4);
        assert_eq!(grams, vec!["<ca", "cat", "at>", "<cat", "cat>"]);
    }

    #[test]
    fn short_words_still_produce_grams() {
        assert_eq!(char_ngrams("a", 3, 5), vec!["<a>"]);
        assert!(!char_ngrams("é", 3, 5).is_empty());
    }

    #[test]
    fn hashing_is_stable() {
        // Golden values: changing fnv1a would re-bucket every saved model.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"<ca"), fnv1a(b"<ca"));
        assert_ne!(fnv1a(b"<ca"), fnv1a(b"ca>"));
    }

    #[test]
    fn buckets_are_in_range() {
        for id in hashed_ngrams("reproduction", 3, 5, 64) {
            assert!(id < 64);
        }
    }

    #[test]
    fn typod_word_shares_most_ngrams() {
        // The mechanical property behind FastText's typo robustness (Fig. 3).
        let a: std::collections::BTreeSet<_> =
            char_ngrams("restaurant", 3, 5).into_iter().collect();
        let b: std::collections::BTreeSet<_> =
            char_ngrams("restaurnat", 3, 5).into_iter().collect();
        let shared = a.intersection(&b).count();
        assert!(
            shared * 2 > a.len(),
            "typo kept fewer than half the n-grams"
        );
    }
}
