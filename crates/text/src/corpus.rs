//! Deterministic English-like training corpus for the model zoo.
//!
//! The original study pre-trains on web-scale corpora; offline we substitute
//! a generated corpus that preserves the *distributional* properties the
//! paper's findings rest on (DESIGN.md §1, row 1):
//!
//! * a Zipfian rank-frequency vocabulary mixing real English lexicon words
//!   (names, places, cuisines, product/bibliography terms) with pronounceable
//!   pseudo-words, numbers, phone numbers and alphanumeric codes — the same
//!   token classes ER records contain;
//! * record-shaped sentences (entity mention + location + numeric fields);
//! * injected typos (character edits) at a low rate, so corpora contain the
//!   near-duplicate surface forms FastText's subwords exploit and GloVe's
//!   global dictionary misses.
//!
//! Everything is drawn from the caller's seeded RNG: the same seed yields
//! the same corpus byte-for-byte, which zoo determinism depends on.

use crate::tokenize::tokenize;
use rand::prelude::*;

/// A tokenized corpus: a flat list of sentences.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Corpus {
    sentences: Vec<Vec<String>>,
}

impl Corpus {
    pub fn new() -> Self {
        Corpus::default()
    }

    pub fn sentences(&self) -> &[Vec<String>] {
        &self.sentences
    }

    /// Tokenize raw text and append it as one sentence (no-op when the text
    /// normalizes to nothing).
    pub fn push_text(&mut self, text: &str) {
        let tokens = tokenize(text);
        if !tokens.is_empty() {
            self.sentences.push(tokens);
        }
    }

    pub fn push_sentence(&mut self, tokens: Vec<String>) {
        if !tokens.is_empty() {
            self.sentences.push(tokens);
        }
    }

    pub fn len(&self) -> usize {
        self.sentences.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sentences.is_empty()
    }

    pub fn token_count(&self) -> usize {
        self.sentences.iter().map(Vec::len).sum()
    }
}

/// Real English lexicon: the token classes of the paper's ER domains
/// (restaurants, products, bibliographic records, movies, person names).
const LEXICON: &[&str] = &[
    // glue
    "the",
    "of",
    "and",
    "in",
    "at",
    "on",
    "with",
    "for",
    "by",
    "from",
    "near",
    // first names
    "james",
    "mary",
    "john",
    "patricia",
    "robert",
    "jennifer",
    "michael",
    "linda",
    "david",
    "barbara",
    "william",
    "jessica",
    "richard",
    "susan",
    "joseph",
    "sarah",
    "thomas",
    "karen",
    "charles",
    "nancy",
    "taylor",
    "morgan",
    // surnames
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "dover",
    "hill",
    // places / streets
    "main",
    "street",
    "avenue",
    "road",
    "park",
    "east",
    "west",
    "north",
    "south",
    "new",
    "union",
    "lake",
    "river",
    "forest",
    "spring",
    "downtown",
    "city",
    "plaza",
    "square",
    "boulevard",
    // restaurants / cuisines
    "restaurant",
    "grill",
    "cafe",
    "bistro",
    "kitchen",
    "palace",
    "garden",
    "golden",
    "royal",
    "italian",
    "mexican",
    "french",
    "chinese",
    "thai",
    "indian",
    "pizza",
    "sushi",
    "steak",
    // products
    "digital",
    "camera",
    "lens",
    "zoom",
    "battery",
    "charger",
    "wireless",
    "speaker",
    "stereo",
    "laptop",
    "screen",
    "memory",
    "silver",
    "black",
    "compact",
    "deluxe",
    "edition",
    "series",
    "model",
    "pack",
    // bibliographic
    "system",
    "database",
    "query",
    "distributed",
    "parallel",
    "index",
    "journal",
    "proceedings",
    "analysis",
    "learning",
    "network",
    "data",
    "entity",
    "resolution",
    "matching",
    "embedding",
    // movies
    "story",
    "night",
    "dark",
    "star",
    "return",
    "last",
    "first",
    "king",
    "world",
    "love",
];

/// Syllable inventory for pronounceable pseudo-words (the synthetic-corpus
/// analogue of out-of-lexicon web vocabulary).
const ONSETS: &[&str] = &[
    "b", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p", "r", "s", "t", "v", "w", "z", "st",
    "sk", "pr", "tr", "kr", "dr", "gl", "zh", "sh",
];
const VOWELS: &[&str] = &["a", "e", "i", "o", "u", "ai", "ei", "ou", "ur", "or"];
const CODAS: &[&str] = &[
    "", "", "n", "m", "k", "l", "r", "s", "t", "x", "nt", "sk", "rm",
];

fn pseudo_word(rng: &mut impl RngCore, syllables: usize) -> String {
    let mut w = String::new();
    for _ in 0..syllables {
        w.push_str(ONSETS.choose(rng).expect("non-empty"));
        w.push_str(VOWELS.choose(rng).expect("non-empty"));
        w.push_str(CODAS.choose(rng).expect("non-empty"));
    }
    w
}

/// One character edit: insert, delete, replace or transpose (the edit model
/// Febrl-style generators use; applied here at the corpus level). Words
/// shorter than 4 characters are returned unchanged.
///
/// Positions are drawn per-operation so *boundary* characters are fair
/// game: insert anywhere in `0..=len`, delete/replace anywhere in
/// `0..len`. Transposition stays interior (`1..len-1`) — swapping across a
/// word boundary is not a single-word edit. (An earlier version drew one
/// interior position for every operation, which systematically spared the
/// first and last characters — and with them FastText's boundary `<w` /
/// `w>` n-grams.)
pub fn inject_typo(word: &str, rng: &mut impl RngCore) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 4 {
        return word.to_string();
    }
    let mut out = chars.clone();
    match rng.gen_range(0..4u32) {
        0 => {
            let pos = rng.gen_range(0..=chars.len());
            out.insert(pos, (b'a' + rng.gen_range(0..26u8)) as char);
        }
        1 => {
            let pos = rng.gen_range(0..chars.len());
            out.remove(pos);
        }
        2 => {
            let pos = rng.gen_range(0..chars.len());
            out[pos] = (b'a' + rng.gen_range(0..26u8)) as char;
        }
        _ => {
            let pos = rng.gen_range(1..chars.len() - 1);
            out.swap(pos, pos - 1);
        }
    }
    out.into_iter().collect()
}

/// Zipfian sampler over ranked items: p(rank) ∝ 1 / (rank + 2)^s.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / (rank as f64 + 2.0).powf(s);
            cumulative.push(total);
        }
        Zipf { cumulative }
    }

    fn sample(&self, rng: &mut impl RngCore) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let target = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= target)
    }
}

/// Generate a deterministic corpus of `docs` record-like documents.
///
/// Scale: each document is 3–7 sentences of 4–13 tokens, so token count
/// grows linearly in `docs` (~40 tokens per document). Vocabulary grows
/// sublinearly: the lexicon is fixed and the pseudo-word pool is capped at
/// `400 + 12·docs` ranked entries.
pub fn synthetic_corpus(docs: usize, rng: &mut impl RngCore) -> Corpus {
    // Ranked vocabulary: interleave lexicon and pseudo-words so both real
    // and synthetic tokens appear at head and tail ranks.
    let pseudo_count = 400 + docs * 12 - LEXICON.len().min(400);
    let mut ranked: Vec<String> = Vec::with_capacity(LEXICON.len() + pseudo_count);
    let mut lex = LEXICON.iter();
    for i in 0..(LEXICON.len() + pseudo_count) {
        if i % 3 == 0 {
            if let Some(&w) = lex.next() {
                ranked.push(w.to_string());
                continue;
            }
        }
        let syllables = 1 + rng.gen_range(0..3u32) as usize;
        ranked.push(pseudo_word(rng, syllables));
    }
    let zipf = Zipf::new(ranked.len(), 1.05);

    let mut corpus = Corpus::new();
    for _ in 0..docs {
        let sentences = rng.gen_range(3..=7u32);
        for _ in 0..sentences {
            let len = rng.gen_range(4..=13u32);
            let mut sentence = Vec::with_capacity(len as usize);
            for _ in 0..len {
                let roll: f64 = rng.gen_range(0.0..1.0);
                let token = if roll < 0.04 {
                    // Street number / year / price-like integer.
                    rng.gen_range(1..10_000u32).to_string()
                } else if roll < 0.06 {
                    // Phone number.
                    format!("{:010}", rng.gen_range(2_000_000_000u64..9_999_999_999))
                } else if roll < 0.08 {
                    // Alphanumeric model code, e.g. "nb8234".
                    let a = (b'a' + rng.gen_range(0..26u8)) as char;
                    let b = (b'a' + rng.gen_range(0..26u8)) as char;
                    format!("{a}{b}{}", rng.gen_range(100..10_000u32))
                } else {
                    let word = &ranked[zipf.sample(rng)];
                    if rng.gen_bool(0.03) {
                        inject_typo(word, rng)
                    } else {
                        word.clone()
                    }
                };
                sentence.push(token);
            }
            corpus.push_sentence(sentence);
        }
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::rng::rng;
    use std::collections::HashMap;

    #[test]
    fn same_seed_same_corpus() {
        let a = synthetic_corpus(30, &mut rng(9));
        let b = synthetic_corpus(30, &mut rng(9));
        assert_eq!(a, b);
        let c = synthetic_corpus(30, &mut rng(10));
        assert_ne!(a, c);
    }

    #[test]
    fn scale_tracks_docs() {
        let small = synthetic_corpus(10, &mut rng(1));
        let large = synthetic_corpus(100, &mut rng(1));
        assert!(large.token_count() > 5 * small.token_count());
        assert!(!small.is_empty());
    }

    #[test]
    fn frequencies_are_zipf_like() {
        let corpus = synthetic_corpus(150, &mut rng(2));
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for s in corpus.sentences() {
            for t in s {
                *counts.entry(t).or_default() += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        // Head tokens dominate; the median token is rare.
        let median = freqs[freqs.len() / 2];
        assert!(freqs[0] > 20 * median, "head {} median {median}", freqs[0]);
        // And a long tail of near-singletons exists (typos + tail ranks).
        let singletons = freqs.iter().filter(|&&f| f == 1).count();
        assert!(
            singletons * 5 > freqs.len(),
            "tail too short: {singletons}/{}",
            freqs.len()
        );
    }

    #[test]
    fn typos_produce_out_of_lexicon_variants() {
        let mut r = rng(3);
        let t = inject_typo("restaurant", &mut r);
        assert_ne!(t, "restaurant");
        assert!(!t.is_empty());
        // Short words are left alone (typo would destroy them entirely).
        assert_eq!(inject_typo("the", &mut r), "the");
    }

    #[test]
    fn typos_reach_word_boundaries() {
        // The Febrl-style edit model must be able to touch the first and
        // last characters (insert/delete/replace); the interior-only bug
        // could never change either boundary character.
        let mut r = rng(4);
        let word = "restaurant";
        let (mut front, mut back, mut longer, mut shorter) = (false, false, false, false);
        for _ in 0..500 {
            let t = inject_typo(word, &mut r);
            let tc: Vec<char> = t.chars().collect();
            if tc.first() != Some(&'r') {
                front = true;
            }
            if tc.last() != Some(&'t') {
                back = true;
            }
            longer |= tc.len() > word.len();
            shorter |= tc.len() < word.len();
        }
        assert!(front, "no edit ever touched the first character");
        assert!(back, "no edit ever touched the last character");
        assert!(longer && shorter, "insert/delete did not both occur");
    }

    #[test]
    fn push_text_tokenizes_and_skips_empty() {
        let mut c = Corpus::new();
        c.push_text("Golden Palace, Grill!");
        c.push_text("  ...  ");
        assert_eq!(c.len(), 1);
        assert_eq!(c.sentences()[0], vec!["golden", "palace", "grill"]);
    }
}
