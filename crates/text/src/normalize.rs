//! Casefolding + punctuation stripping.
//!
//! All twelve language models of the study see the same normalized view of
//! a record sentence: lowercase, alphanumeric runs preserved, everything
//! else collapsed to single spaces. Digits are kept because model numbers,
//! street numbers and phone numbers carry most of the discriminating signal
//! in the product/restaurant domains (paper §6.1).

/// Normalize to lowercase alphanumeric tokens separated by single spaces.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut pending_space = false;
    for c in text.chars() {
        if c.is_alphanumeric() {
            if pending_space && !out.is_empty() {
                out.push(' ');
            }
            pending_space = false;
            for lower in c.to_lowercase() {
                out.push(lower);
            }
        } else {
            pending_space = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_strips_punctuation() {
        assert_eq!(
            normalize("Golden Palace, Grill! (123) Main-Street"),
            "golden palace grill 123 main street"
        );
    }

    #[test]
    fn collapses_whitespace_and_trims() {
        assert_eq!(normalize("  a \t b\n\nc  "), "a b c");
        assert_eq!(normalize("...!!!"), "");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn keeps_unicode_letters() {
        assert_eq!(normalize("Café MÜNCHEN"), "café münchen");
    }
}
