//! Whitespace + punctuation word tokenizer (shared by all static models
//! and the mean-pooling sentence embedder).

use crate::normalize::normalize;

/// The reserved masking token for MLM pre-training (DESIGN.md row 7).
///
/// It contains `[`/`]`, which [`normalize`] strips, so [`tokenize`] can
/// never emit it from real text — the MLM objective's mask can't collide
/// with a genuine corpus token. Vocabularies that support dynamic models
/// append it as a special entry (`er_embed::Vocab::with_special`).
pub const MASK_TOKEN: &str = "[mask]";

/// Tokenize into normalized lowercase words.
pub fn tokenize(text: &str) -> Vec<String> {
    normalize(text)
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("Sony DSC-W55 (7.2MP)"),
            vec!["sony", "dsc", "w55", "7", "2mp"]
        );
    }

    #[test]
    fn empty_and_punctuation_only_inputs_yield_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize(" .,;:!? ").is_empty());
    }

    #[test]
    fn mask_token_cannot_be_produced_by_tokenization() {
        // Even text that literally contains the mask token tokenizes to the
        // bare word — the bracketed reserved form is unreachable.
        let tokens = tokenize("a [mask] b [MASK]");
        assert_eq!(tokens, vec!["a", "mask", "b", "mask"]);
        assert!(tokens.iter().all(|t| t != MASK_TOKEN));
    }
}
