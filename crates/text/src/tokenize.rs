//! Whitespace + punctuation word tokenizer (shared by all static models
//! and the mean-pooling sentence embedder).

use crate::normalize::normalize;

/// Tokenize into normalized lowercase words.
pub fn tokenize(text: &str) -> Vec<String> {
    normalize(text)
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            tokenize("Sony DSC-W55 (7.2MP)"),
            vec!["sony", "dsc", "w55", "7", "2mp"]
        );
    }

    #[test]
    fn empty_and_punctuation_only_inputs_yield_no_tokens() {
        assert!(tokenize("").is_empty());
        assert!(tokenize(" .,;:!? ").is_empty());
    }
}
