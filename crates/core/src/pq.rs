//! Product quantization: seeded k-means codebooks + per-query asymmetric
//! distance tables (ADC).
//!
//! PQ splits each `dim`-d row into `m` contiguous subspaces and replaces
//! each sub-vector with the index of its nearest codebook centroid — one
//! byte per subspace at `k ≤ 256` centroids. A query is *not* quantized
//! (that is the "asymmetric" in ADC): per query we precompute an `m × k`
//! table of partial dots (or partial squared distances) between the query's
//! sub-vectors and every centroid, after which scoring a row is `m` table
//! lookups — independent of `dim`.
//!
//! Because the subspaces partition the coordinates, the table sums are
//! mathematically exact for the *reconstructed* row: `Σⱼ ‖qⱼ − c_{j,code}‖²
//! = ‖q − x̂‖²` and `Σⱼ ⟨qⱼ, c_{j,code}⟩ = ⟨q, x̂⟩`. The only approximation
//! is the reconstruction itself, so recall is bounded by codebook quality —
//! which is why training is seeded and deterministic (Lloyd iterations with
//! fixed init and deterministic empty-cluster reseeding).

use crate::kernels;
use crate::matrix::EmbeddingMatrix;
use crate::{ErError, Result};
use rand::Rng;

/// Training hyper-parameters. `centroids` is clamped to the row count (and
/// to 256, the capacity of a `u8` code) at train time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PqConfig {
    /// Number of subspaces `m`; must divide the matrix dimension.
    pub subspaces: usize,
    /// Centroids per subspace `k` (≤ 256).
    pub centroids: usize,
    /// Lloyd iterations per subspace.
    pub iters: usize,
    /// Seed for centroid initialisation; each subspace derives its own
    /// independent stream.
    pub seed: u64,
}

impl Default for PqConfig {
    fn default() -> PqConfig {
        PqConfig {
            subspaces: 8,
            centroids: 16,
            iters: 10,
            seed: 0x9e37_79b9,
        }
    }
}

/// Trained centroids: `subspaces × k × sub_dim` floats, row-major by
/// subspace then centroid.
#[derive(Debug, Clone, PartialEq)]
pub struct PqCodebook {
    dim: usize,
    subspaces: usize,
    centroids: usize,
    data: Vec<f32>,
}

/// Encoded rows: one `u8` per subspace per row, plus the norms of the
/// reconstructed rows (needed for cosine denominators and Euclidean
/// expansions without touching the original floats).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PqCodes {
    subspaces: usize,
    codes: Vec<u8>,
    norms: Vec<f32>,
    sq_norms: Vec<f32>,
}

impl PqCodebook {
    /// Train one k-means codebook per subspace on the rows of `matrix`.
    ///
    /// Errors (typed `ErError::Model`) when the matrix is empty, when
    /// `subspaces` is 0 or does not divide `dim`.
    pub fn train(matrix: &EmbeddingMatrix, config: &PqConfig) -> Result<PqCodebook> {
        let (rows, dim) = (matrix.len(), matrix.dim());
        if rows == 0 {
            return Err(ErError::Model(
                "PqCodebook: cannot train on an empty matrix".into(),
            ));
        }
        if config.subspaces == 0 || !dim.is_multiple_of(config.subspaces) {
            return Err(ErError::Model(format!(
                "PqCodebook: {} subspaces does not divide dim {dim}",
                config.subspaces
            )));
        }
        let m = config.subspaces;
        let sub_dim = dim / m;
        let k = config.centroids.clamp(1, 256).min(rows);
        let mut data = Vec::with_capacity(m * k * sub_dim);
        for j in 0..m {
            let col = j * sub_dim;
            let subs: Vec<&[f32]> = (0..rows)
                .map(|i| &matrix.row(i)[col..col + sub_dim])
                .collect();
            let centroids = kmeans(&subs, sub_dim, k, config.iters, config.seed, j);
            data.extend_from_slice(&centroids);
        }
        Ok(PqCodebook {
            dim,
            subspaces: m,
            centroids: k,
            data,
        })
    }

    /// Centroid `c` of subspace `j`.
    #[inline]
    pub fn centroid(&self, j: usize, c: usize) -> &[f32] {
        let sub_dim = self.sub_dim();
        let at = (j * self.centroids + c) * sub_dim;
        &self.data[at..at + sub_dim]
    }

    pub fn dim(&self) -> usize {
        self.dim
    }
    pub fn subspaces(&self) -> usize {
        self.subspaces
    }
    /// Centroids per subspace (`k`, after clamping at train time).
    pub fn centroids(&self) -> usize {
        self.centroids
    }
    pub fn sub_dim(&self) -> usize {
        self.dim / self.subspaces
    }
    /// Flat centroid storage, for persistence.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Reassemble from persisted fields (the ERBF load path).
    pub fn from_parts(
        dim: usize,
        subspaces: usize,
        centroids: usize,
        data: Vec<f32>,
    ) -> Result<PqCodebook> {
        if subspaces == 0 || !dim.is_multiple_of(subspaces) {
            return Err(ErError::Parse(format!(
                "PqCodebook: {subspaces} subspaces does not divide dim {dim}"
            )));
        }
        if centroids == 0 || centroids > 256 {
            return Err(ErError::Parse(format!(
                "PqCodebook: centroid count {centroids} out of range 1..=256"
            )));
        }
        if data.len() != subspaces * centroids * (dim / subspaces) {
            return Err(ErError::Parse(format!(
                "PqCodebook: {} floats does not match {subspaces}×{centroids}×{}",
                data.len(),
                dim / subspaces
            )));
        }
        Ok(PqCodebook {
            dim,
            subspaces,
            centroids,
            data,
        })
    }

    /// Nearest centroid (Reference-fold squared distance, ties to the
    /// lowest index) for each subspace of `row`.
    fn encode_into(&self, row: &[f32], codes: &mut Vec<u8>) {
        let sub_dim = self.sub_dim();
        for j in 0..self.subspaces {
            let sub = &row[j * sub_dim..(j + 1) * sub_dim];
            let mut best = (f32::INFINITY, 0usize);
            for c in 0..self.centroids {
                let d = kernels::squared_euclidean(sub, self.centroid(j, c));
                if d < best.0 {
                    best = (d, c);
                }
            }
            codes.push(best.1 as u8);
        }
    }

    /// Encode every row of `matrix`. Panics on a dimension mismatch (a
    /// construction bug upstream).
    pub fn encode(&self, matrix: &EmbeddingMatrix) -> PqCodes {
        assert_eq!(matrix.dim(), self.dim, "PqCodebook: dimension mismatch");
        let mut out = PqCodes::new(self.subspaces);
        for row in matrix.rows_iter() {
            self.encode_row(row, &mut out);
        }
        out
    }

    /// Encode and append one row (the incremental path).
    pub fn encode_row(&self, row: &[f32], codes: &mut PqCodes) {
        assert_eq!(row.len(), self.dim, "PqCodebook: dimension mismatch");
        assert_eq!(
            codes.subspaces, self.subspaces,
            "PqCodes: subspace mismatch"
        );
        self.encode_into(row, &mut codes.codes);
        let rec = self.reconstruct_codes(&codes.codes[codes.codes.len() - self.subspaces..]);
        codes.sq_norms.push(kernels::squared_norm(&rec));
        codes.norms.push(kernels::norm(&rec));
    }

    /// Concatenate the centroids a code row points at.
    fn reconstruct_codes(&self, row_codes: &[u8]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.dim);
        for (j, &c) in row_codes.iter().enumerate() {
            out.extend_from_slice(self.centroid(j, c as usize));
        }
        out
    }

    /// Reconstruct row `i` of `codes` — what the ADC tables "see".
    pub fn reconstruct(&self, codes: &PqCodes, i: usize) -> Vec<f32> {
        self.reconstruct_codes(codes.row(i))
    }

    /// ADC table of partial dots: `table[j*k + c] = ⟨q_j, centroid_{j,c}⟩`.
    pub fn dot_tables(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.dim, "PqCodebook: dimension mismatch");
        let sub_dim = self.sub_dim();
        let mut table = Vec::with_capacity(self.subspaces * self.centroids);
        for j in 0..self.subspaces {
            let sub = &query[j * sub_dim..(j + 1) * sub_dim];
            for c in 0..self.centroids {
                table.push(kernels::dot(sub, self.centroid(j, c)));
            }
        }
        table
    }

    /// ADC table of partial squared distances:
    /// `table[j*k + c] = ‖q_j − centroid_{j,c}‖²`.
    pub fn l2_tables(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.dim, "PqCodebook: dimension mismatch");
        let sub_dim = self.sub_dim();
        let mut table = Vec::with_capacity(self.subspaces * self.centroids);
        for j in 0..self.subspaces {
            let sub = &query[j * sub_dim..(j + 1) * sub_dim];
            for c in 0..self.centroids {
                table.push(kernels::squared_euclidean(sub, self.centroid(j, c)));
            }
        }
        table
    }
}

impl PqCodes {
    /// Empty code storage for `subspaces`-byte rows.
    pub fn new(subspaces: usize) -> PqCodes {
        PqCodes {
            subspaces,
            ..PqCodes::default()
        }
    }

    /// Code row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u8] {
        &self.codes[i * self.subspaces..(i + 1) * self.subspaces]
    }

    /// Sum the ADC table entries for row `i` — `⟨q, x̂ᵢ⟩` with a dot table,
    /// `‖q − x̂ᵢ‖²` with an L2 table.
    #[inline]
    pub fn adc_sum(&self, table: &[f32], k: usize, i: usize) -> f32 {
        let mut acc = 0.0f32;
        for (j, &c) in self.row(i).iter().enumerate() {
            acc += table[j * k + c as usize];
        }
        acc
    }

    /// Approximate cosine similarity from a dot table and the exact query
    /// norm; zero vectors keep the all-OOV 0.0 convention.
    #[inline]
    pub fn cosine(&self, table: &[f32], k: usize, i: usize, query_norm: f32) -> f32 {
        let denom = query_norm * self.norms[i];
        if denom == 0.0 {
            0.0
        } else {
            self.adc_sum(table, k, i) / denom
        }
    }

    pub fn len(&self) -> usize {
        self.norms.len()
    }
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }
    pub fn subspaces(&self) -> usize {
        self.subspaces
    }
    /// Norm of the reconstructed row `i`.
    pub fn norm(&self, i: usize) -> f32 {
        self.norms[i]
    }
    /// Flat code storage, for persistence.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Reassemble from persisted codes; the reconstructed-row norms are
    /// recomputed deterministically from the codebook.
    pub fn from_parts(codebook: &PqCodebook, codes: Vec<u8>) -> Result<PqCodes> {
        let m = codebook.subspaces();
        if !codes.len().is_multiple_of(m) {
            return Err(ErError::Parse(format!(
                "PqCodes: {} codes is not a multiple of {m} subspaces",
                codes.len()
            )));
        }
        if let Some(&c) = codes
            .iter()
            .find(|&&c| (c as usize) >= codebook.centroids())
        {
            return Err(ErError::Parse(format!(
                "PqCodes: code {c} out of range for {} centroids",
                codebook.centroids()
            )));
        }
        let mut out = PqCodes {
            subspaces: m,
            codes,
            norms: Vec::new(),
            sq_norms: Vec::new(),
        };
        for i in 0..out.codes.len() / m {
            let rec = codebook.reconstruct_codes(out.row(i));
            out.sq_norms.push(kernels::squared_norm(&rec));
            out.norms.push(kernels::norm(&rec));
        }
        Ok(out)
    }

    /// Squared norm of the reconstructed row `i`.
    pub fn sq_norm(&self, i: usize) -> f32 {
        self.sq_norms[i]
    }
}

/// Seeded Lloyd k-means over `points` (all of length `dim`). Init samples
/// `k` distinct points; empty clusters reseed to the point farthest from
/// its assigned centroid (deterministic: max distance, ties to the lowest
/// index).
fn kmeans(
    points: &[&[f32]],
    dim: usize,
    k: usize,
    iters: usize,
    seed: u64,
    subspace: usize,
) -> Vec<f32> {
    let n = points.len();
    debug_assert!(k >= 1 && k <= n);
    let mut r = crate::rng::derive(seed, &format!("pq-subspace-{subspace}"));
    // Seeded init: a k-sized sample without replacement (partial
    // Fisher-Yates over the index set).
    let mut order: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = r.gen_range(i..n);
        order.swap(i, j);
    }
    let mut centroids: Vec<f32> = Vec::with_capacity(k * dim);
    for &i in order.iter().take(k) {
        centroids.extend_from_slice(points[i]);
    }
    let mut assign = vec![0usize; n];
    for _ in 0..iters.max(1) {
        // Assignment step (ties to the lowest centroid index).
        for (i, p) in points.iter().enumerate() {
            let mut best = (f32::INFINITY, 0usize);
            for c in 0..k {
                let d = kernels::squared_euclidean(p, &centroids[c * dim..(c + 1) * dim]);
                if d < best.0 {
                    best = (d, c);
                }
            }
            assign[i] = best.1;
        }
        // Update step.
        let mut sums = vec![0.0f64; k * dim];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assign[i];
            counts[c] += 1;
            for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(*p) {
                *s += x as f64;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Reseed to the point farthest from its centroid.
                let mut far = (-1.0f32, 0usize);
                for (i, p) in points.iter().enumerate() {
                    let a = assign[i];
                    let d = kernels::squared_euclidean(p, &centroids[a * dim..(a + 1) * dim]);
                    if d > far.0 {
                        far = (d, i);
                    }
                }
                centroids[c * dim..(c + 1) * dim].copy_from_slice(points[far.1]);
                assign[far.1] = c;
            } else {
                let inv = 1.0 / counts[c] as f64;
                for (dst, &s) in centroids[c * dim..(c + 1) * dim]
                    .iter_mut()
                    .zip(&sums[c * dim..(c + 1) * dim])
                {
                    *dst = (s * inv) as f32;
                }
            }
        }
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered_matrix(rows: usize, dim: usize, seed: u64) -> EmbeddingMatrix {
        // Rows drawn near 4 well-separated anchors, so small codebooks
        // reconstruct well.
        let mut r = crate::rng::rng(seed);
        let mut m = EmbeddingMatrix::new(dim);
        for _ in 0..rows {
            let anchor = r.gen_range(0..4u32) as f32;
            let row: Vec<f32> = (0..dim)
                .map(|j| anchor * 2.0 + (j as f32 * 0.3).sin() * 0.5 + r.gen_range(-0.05f32..0.05))
                .collect();
            m.push(&row);
        }
        m
    }

    #[test]
    fn training_is_deterministic_for_a_seed() {
        let m = clustered_matrix(60, 16, 3);
        let config = PqConfig {
            subspaces: 4,
            centroids: 8,
            iters: 6,
            seed: 42,
        };
        let a = PqCodebook::train(&m, &config).unwrap();
        let b = PqCodebook::train(&m, &config).unwrap();
        assert_eq!(a, b);
        let c = PqCodebook::train(&m, &PqConfig { seed: 43, ..config }).unwrap();
        assert_ne!(a, c, "a different seed should move the centroids");
    }

    #[test]
    fn adc_tables_are_exact_for_the_reconstruction() {
        let m = clustered_matrix(50, 12, 5);
        let config = PqConfig {
            subspaces: 3,
            centroids: 8,
            iters: 8,
            seed: 7,
        };
        let book = PqCodebook::train(&m, &config).unwrap();
        let codes = book.encode(&m);
        let query: Vec<f32> = (0..12).map(|i| (i as f32 * 0.7).cos()).collect();
        let dots = book.dot_tables(&query);
        let l2s = book.l2_tables(&query);
        let k = book.centroids();
        for i in 0..m.len() {
            let rec = book.reconstruct(&codes, i);
            let want_dot = kernels::dot(&query, &rec);
            let want_l2 = kernels::squared_euclidean(&query, &rec);
            assert!((codes.adc_sum(&dots, k, i) - want_dot).abs() < 1e-4);
            assert!((codes.adc_sum(&l2s, k, i) - want_l2).abs() < 1e-4);
        }
    }

    #[test]
    fn centroids_clamp_to_row_count_and_reconstruct_exactly() {
        // k > rows: each row becomes its own centroid, reconstruction is
        // exact up to the f64 mean round-trip.
        let m = clustered_matrix(5, 8, 9);
        let config = PqConfig {
            subspaces: 2,
            centroids: 64,
            iters: 4,
            seed: 1,
        };
        let book = PqCodebook::train(&m, &config).unwrap();
        assert_eq!(book.centroids(), 5);
        let codes = book.encode(&m);
        for i in 0..m.len() {
            let rec = book.reconstruct(&codes, i);
            let err = kernels::squared_euclidean(&rec, m.row(i));
            assert!(err < 1e-8, "row {i} reconstruction error {err}");
        }
    }

    #[test]
    fn train_rejects_bad_shapes_with_typed_errors() {
        let m = clustered_matrix(10, 10, 2);
        let bad = PqCodebook::train(
            &m,
            &PqConfig {
                subspaces: 3,
                ..PqConfig::default()
            },
        );
        assert!(matches!(bad, Err(ErError::Model(_))));
        let empty = EmbeddingMatrix::new(8);
        assert!(matches!(
            PqCodebook::train(&empty, &PqConfig::default()),
            Err(ErError::Model(_))
        ));
        assert!(matches!(
            PqCodebook::train(
                &m,
                &PqConfig {
                    subspaces: 0,
                    ..PqConfig::default()
                }
            ),
            Err(ErError::Model(_))
        ));
    }

    #[test]
    fn codes_round_trip_from_parts_and_reject_out_of_range() {
        let m = clustered_matrix(20, 8, 21);
        let config = PqConfig {
            subspaces: 4,
            centroids: 4,
            iters: 5,
            seed: 3,
        };
        let book = PqCodebook::train(&m, &config).unwrap();
        let codes = book.encode(&m);
        let back = PqCodes::from_parts(&book, codes.codes().to_vec()).unwrap();
        assert_eq!(codes, back);
        assert!(PqCodes::from_parts(&book, vec![0, 1, 2]).is_err(), "ragged");
        assert!(
            PqCodes::from_parts(&book, vec![0, 1, 2, 200]).is_err(),
            "out of range"
        );
    }
}
