//! Workspace error type: coarse categories, rich messages.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErError {
    /// Filesystem / IO failures (model cache, result files).
    Io(String),
    /// Malformed persisted data (JSON parse, schema mismatch).
    Parse(String),
    /// Model misuse (unknown model code, dimension mismatch).
    Model(String),
    /// Binary persistence integrity failure (bad magic/version/checksum,
    /// truncated payload) — see `er_core::binary`.
    Corrupt(String),
    /// Invalid or self-contradictory configuration (an `OperatingPoint`
    /// that fails validation, or two explicit configs that disagree about
    /// the same knob) — see `er_core::operating_point`.
    Config(String),
}

pub type Result<T> = std::result::Result<T, ErError>;

impl fmt::Display for ErError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErError::Io(msg) => write!(f, "io error: {msg}"),
            ErError::Parse(msg) => write!(f, "parse error: {msg}"),
            ErError::Model(msg) => write!(f, "model error: {msg}"),
            ErError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            ErError::Config(msg) => write!(f, "config error: {msg}"),
        }
    }
}

impl std::error::Error for ErError {}

impl From<std::io::Error> for ErError {
    fn from(e: std::io::Error) -> Self {
        ErError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        let e = ErError::Parse("unexpected token at 12".into());
        assert_eq!(e.to_string(), "parse error: unexpected token at 12");
    }
}
