//! Int8 scalar quantization of an [`EmbeddingMatrix`].
//!
//! Blocking over millions of rows is memory-bound: a 64-d f32 scan streams
//! 256 bytes per row, and the kernels spend most of their time waiting on
//! loads. [`QuantizedMatrix`] stores each row as `i8` codes with a per-row
//! affine map (`x̂ᵢ = zero + scale · codeᵢ`), cutting the traffic 4× and
//! turning the inner loop into an integer-accumulator dot product that the
//! compiler vectorises aggressively.
//!
//! The affine dot expands exactly:
//!
//! ```text
//! Σ (z_q + s_q·aᵢ)(z_r + s_r·bᵢ)
//!   = d·z_q·z_r + z_q·s_r·Σbᵢ + z_r·s_q·Σaᵢ + s_q·s_r·Σaᵢbᵢ
//! ```
//!
//! so with the per-row code sums `Σbᵢ` precomputed at quantization time,
//! each row costs one `i32` integer dot plus O(1) float corrections. The
//! result is the *exact* dot of the dequantized vectors up to float
//! rounding — the only information loss is the rounding to 255 code levels.
//!
//! Everything here is deterministic: quantization is per-row (row-local, so
//! shard-invariant), and distances depend only on the stored codes. Scores
//! are approximate — callers that need exact results re-rank the quantized
//! top-R with the f32 kernels (see `er-index`'s `ExactIndex`).

use crate::kernels;
use crate::matrix::EmbeddingMatrix;
use crate::{ErError, Result};

/// Codes span `[-127, 127]`; `-128` is never produced, keeping the map
/// symmetric around the per-row zero point.
const CODE_LEVELS: f32 = 254.0;
const CODE_MAX: f32 = 127.0;

/// A row-major `i8` matrix with per-row affine dequantization parameters
/// and the precomputed per-row statistics the scan kernels need.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantizedMatrix {
    dim: usize,
    codes: Vec<i8>,
    /// Per-row `scale` of the affine map `x̂ᵢ = zero + scale · codeᵢ`.
    scales: Vec<f32>,
    /// Per-row `zero` (the midpoint of the row's value range).
    zeros: Vec<f32>,
    /// Per-row `Σ codeᵢ` for the affine dot expansion.
    code_sums: Vec<i32>,
    /// Euclidean norm of each *dequantized* row (Reference fold).
    norms: Vec<f32>,
    /// Squared Euclidean norm of each dequantized row (Reference fold).
    sq_norms: Vec<f32>,
}

/// A query quantized against its own range, plus the *exact* f32 norms of
/// the original query — the cosine denominator and the Euclidean expansion
/// use the true query norms so only the stored side loses precision twice.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedQuery {
    /// Query codes, pre-widened to `i16`: the scan's hot loop is then an
    /// `i16 × i8` dot whose products fit `i16×i16 → i32` multiply-add
    /// (SSE2 `pmaddwd`), which the compiler emits for the plain fold. The
    /// values are exactly the `i8` codes; only the storage is wider, and
    /// only on the transient query side — stored rows stay 1 byte/element.
    codes: Vec<i16>,
    scale: f32,
    zero: f32,
    code_sum: i32,
    /// `‖q‖` of the original f32 query (Reference fold).
    pub norm: f32,
    /// `‖q‖²` of the original f32 query (Reference fold).
    pub sq_norm: f32,
}

/// Quantize one vector: `zero` is the midpoint of its value range, `scale`
/// maps the range onto the 254 code levels. An all-equal vector (including
/// all-zero) has `scale == 0` and dequantizes exactly to its constant value.
fn quantize_into(row: &[f32], codes: &mut Vec<i8>) -> (f32, f32, i32) {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &x in row {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    if row.is_empty() || lo >= hi {
        // Empty or all-equal: scale 0, every code 0, dequant == zero point.
        let zero = if row.is_empty() { 0.0 } else { lo };
        codes.extend(std::iter::repeat_n(0i8, row.len()));
        return (0.0, zero, 0);
    }
    let zero = (lo + hi) / 2.0;
    let scale = (hi - lo) / CODE_LEVELS;
    let inv = 1.0 / scale;
    let mut sum = 0i32;
    for &x in row {
        let c = ((x - zero) * inv).round().clamp(-CODE_MAX, CODE_MAX) as i8;
        sum += c as i32;
        codes.push(c);
    }
    (scale, zero, sum)
}

/// Integer dot of two code rows with an `i32` accumulator. Integer adds are
/// associative, so the compiler is free to vectorise this reduction — the
/// result is identical in any order.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len(), "dot_i8: dimension mismatch");
    let mut acc = 0i32;
    for (&x, &y) in a.iter().zip(b) {
        acc += (x as i32) * (y as i32);
    }
    acc
}

/// The scan's hot loop: widened query codes against a stored `i8` row.
/// Identical result to [`dot_i8`] on the same code values (integer adds
/// are order-free), but the `i16` side lets SSE2 multiply-add eight
/// products per instruction instead of sign-extending both operands.
#[inline]
fn dot_query(q: &[i16], row: &[i8]) -> i32 {
    debug_assert_eq!(q.len(), row.len(), "dot_query: dimension mismatch");
    let mut acc = 0i32;
    for (&x, &y) in q.iter().zip(row) {
        acc += (x as i32) * (y as i32);
    }
    acc
}

impl QuantizedMatrix {
    /// Quantize every row of `matrix`. Per-row and deterministic.
    pub fn quantize(matrix: &EmbeddingMatrix) -> QuantizedMatrix {
        let mut q = QuantizedMatrix::new(matrix.dim());
        for row in matrix.rows_iter() {
            q.push_row(row);
        }
        q
    }

    /// An empty quantized matrix for `dim`-component rows.
    pub fn new(dim: usize) -> QuantizedMatrix {
        QuantizedMatrix {
            dim,
            ..QuantizedMatrix::default()
        }
    }

    /// Quantize and append one row (the incremental `er-serve` path).
    /// Panics if `row.len() != dim`, matching `EmbeddingMatrix::push`.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(
            row.len(),
            self.dim,
            "QuantizedMatrix: pushed a {}-d row into a {}-d matrix",
            row.len(),
            self.dim
        );
        let (scale, zero, sum) = quantize_into(row, &mut self.codes);
        let start = self.codes.len() - self.dim;
        let dequant: Vec<f32> = self.codes[start..]
            .iter()
            .map(|&c| zero + scale * c as f32)
            .collect();
        self.scales.push(scale);
        self.zeros.push(zero);
        self.code_sums.push(sum);
        self.sq_norms.push(kernels::squared_norm(&dequant));
        self.norms.push(kernels::norm(&dequant));
    }

    /// Quantize a query vector for scanning against this matrix.
    pub fn quantize_query(&self, query: &[f32]) -> QuantizedQuery {
        assert_eq!(
            query.len(),
            self.dim,
            "QuantizedMatrix: {}-d query against a {}-d matrix",
            query.len(),
            self.dim
        );
        let mut codes = Vec::with_capacity(query.len());
        let (scale, zero, code_sum) = quantize_into(query, &mut codes);
        QuantizedQuery {
            codes: codes.into_iter().map(|c| c as i16).collect(),
            scale,
            zero,
            code_sum,
            norm: kernels::norm(query),
            sq_norm: kernels::squared_norm(query),
        }
    }

    /// Approximate `⟨q, rowᵢ⟩` — the exact dot of the dequantized vectors
    /// (up to float rounding) via the affine expansion.
    #[inline]
    pub fn dot(&self, q: &QuantizedQuery, i: usize) -> f32 {
        let codes = self.row_codes(i);
        let int_dot = dot_query(&q.codes, codes) as f32;
        let d = self.dim as f32;
        d * q.zero * self.zeros[i]
            + q.zero * self.scales[i] * self.code_sums[i] as f32
            + self.zeros[i] * q.scale * q.code_sum as f32
            + q.scale * self.scales[i] * int_dot
    }

    /// Approximate cosine similarity; zero vectors (on either side) yield
    /// 0.0 — the same all-OOV convention as every f32 tier.
    #[inline]
    pub fn cosine(&self, q: &QuantizedQuery, i: usize) -> f32 {
        let denom = q.norm * self.norms[i];
        if denom == 0.0 {
            0.0
        } else {
            self.dot(q, i) / denom
        }
    }

    /// Approximate squared Euclidean distance, clamped at 0 (the expansion
    /// can dip fractionally negative from rounding).
    #[inline]
    pub fn squared_euclidean(&self, q: &QuantizedQuery, i: usize) -> f32 {
        (q.sq_norm + self.sq_norms[i] - 2.0 * self.dot(q, i)).max(0.0)
    }

    /// Reconstruct row `i` as f32 — what the approximate kernels "see".
    pub fn dequantize_row(&self, i: usize) -> Vec<f32> {
        let (scale, zero) = (self.scales[i], self.zeros[i]);
        self.row_codes(i)
            .iter()
            .map(|&c| zero + scale * c as f32)
            .collect()
    }

    /// The `i8` codes of row `i`.
    #[inline]
    pub fn row_codes(&self, i: usize) -> &[i8] {
        &self.codes[i * self.dim..(i + 1) * self.dim]
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    pub fn len(&self) -> usize {
        self.scales.len()
    }

    pub fn is_empty(&self) -> bool {
        self.scales.is_empty()
    }

    // Flat accessors for binary persistence (`er_core::binary`).
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }
    pub fn zeros(&self) -> &[f32] {
        &self.zeros
    }
    /// Norm of the dequantized row `i`.
    pub fn norm(&self, i: usize) -> f32 {
        self.norms[i]
    }

    /// Reassemble from persisted codes and affine parameters (the ERBF load
    /// path). The derived statistics (code sums, dequantized norms) are
    /// recomputed deterministically from the codes, so only the codes and
    /// the affine maps are stored.
    pub fn from_parts(
        dim: usize,
        codes: Vec<i8>,
        scales: Vec<f32>,
        zeros: Vec<f32>,
    ) -> Result<QuantizedMatrix> {
        if scales.len() != zeros.len() {
            return Err(ErError::Parse(format!(
                "QuantizedMatrix: {} scales but {} zero points",
                scales.len(),
                zeros.len()
            )));
        }
        if codes.len() != dim * scales.len() {
            return Err(ErError::Parse(format!(
                "QuantizedMatrix: {} codes is not {} rows × dim {dim}",
                codes.len(),
                scales.len()
            )));
        }
        let mut q = QuantizedMatrix {
            dim,
            codes,
            scales,
            zeros,
            code_sums: Vec::new(),
            norms: Vec::new(),
            sq_norms: Vec::new(),
        };
        for i in 0..q.scales.len() {
            q.code_sums
                .push(q.row_codes(i).iter().map(|&c| c as i32).sum());
            let dequant = q.dequantize_row(i);
            q.sq_norms.push(kernels::squared_norm(&dequant));
            q.norms.push(kernels::norm(&dequant));
        }
        Ok(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn random_matrix(rows: usize, dim: usize, seed: u64) -> EmbeddingMatrix {
        let mut r = crate::rng::rng(seed);
        let mut m = EmbeddingMatrix::new(dim);
        for _ in 0..rows {
            let row: Vec<f32> = (0..dim).map(|_| r.gen_range(-1.5..1.5)).collect();
            m.push(&row);
        }
        m
    }

    #[test]
    fn dequantization_error_is_bounded_by_half_a_step() {
        let m = random_matrix(50, 24, 7);
        let q = QuantizedMatrix::quantize(&m);
        for i in 0..m.len() {
            let step = q.scales()[i];
            for (orig, deq) in m.row(i).iter().zip(q.dequantize_row(i)) {
                assert!(
                    (orig - deq).abs() <= step * 0.51 + 1e-6,
                    "row {i}: {orig} vs {deq} (step {step})"
                );
            }
        }
    }

    #[test]
    fn affine_dot_matches_the_dequantized_dot() {
        let m = random_matrix(40, 32, 11);
        let q = QuantizedMatrix::quantize(&m);
        let query: Vec<f32> = (0..32).map(|i| (i as f32 * 0.11).sin()).collect();
        let qq = q.quantize_query(&query);
        let deq_query: Vec<f32> = {
            let mut codes = Vec::new();
            let (s, z, _) = quantize_into(&query, &mut codes);
            codes.iter().map(|&c| z + s * c as f32).collect()
        };
        for i in 0..m.len() {
            let expect = kernels::dot(&deq_query, &q.dequantize_row(i));
            let got = q.dot(&qq, i);
            assert!((expect - got).abs() <= 1e-3, "row {i}: {expect} vs {got}");
        }
    }

    #[test]
    fn quantized_cosine_tracks_exact_cosine() {
        let m = random_matrix(60, 48, 13);
        let q = QuantizedMatrix::quantize(&m);
        let query: Vec<f32> = (0..48)
            .map(|i| ((i * 7 + 3) % 19) as f32 / 10.0 - 0.9)
            .collect();
        let qq = q.quantize_query(&query);
        for i in 0..m.len() {
            let exact = kernels::cosine(&query, m.row(i));
            let approx = q.cosine(&qq, i);
            assert!(
                (exact - approx).abs() < 0.02,
                "row {i}: {exact} vs {approx}"
            );
        }
    }

    #[test]
    fn all_equal_rows_quantize_to_scale_zero_exactly() {
        let mut m = EmbeddingMatrix::new(4);
        m.push(&[2.5, 2.5, 2.5, 2.5]);
        m.push(&[0.0, 0.0, 0.0, 0.0]);
        m.push(&[-1.0, -1.0, -1.0, -1.0]);
        let q = QuantizedMatrix::quantize(&m);
        assert_eq!(q.scales(), &[0.0, 0.0, 0.0]);
        assert_eq!(q.zeros(), &[2.5, 0.0, -1.0]);
        for i in 0..3 {
            assert_eq!(
                q.dequantize_row(i),
                m.row(i),
                "constant rows dequantize exactly"
            );
        }
        // The zero row keeps the all-OOV cosine convention.
        let qq = q.quantize_query(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(q.cosine(&qq, 1), 0.0);
        let zero_q = q.quantize_query(&[0.0; 4]);
        assert_eq!(zero_q.norm, 0.0);
        assert_eq!(q.cosine(&zero_q, 0), 0.0);
    }

    #[test]
    fn incremental_push_matches_batch_quantize() {
        let m = random_matrix(12, 16, 29);
        let batch = QuantizedMatrix::quantize(&m);
        let mut inc = QuantizedMatrix::new(16);
        for row in m.rows_iter() {
            inc.push_row(row);
        }
        assert_eq!(batch, inc);
    }

    #[test]
    fn from_parts_round_trips_and_validates() {
        let m = random_matrix(9, 8, 31);
        let q = QuantizedMatrix::quantize(&m);
        let back = QuantizedMatrix::from_parts(
            8,
            q.codes().to_vec(),
            q.scales().to_vec(),
            q.zeros().to_vec(),
        )
        .unwrap();
        assert_eq!(q, back);
        assert!(QuantizedMatrix::from_parts(8, vec![0; 7], vec![0.0], vec![0.0]).is_err());
        assert!(QuantizedMatrix::from_parts(8, vec![0; 8], vec![0.0], vec![]).is_err());
    }

    #[test]
    fn empty_dim_zero_matrix_is_fine() {
        let q = QuantizedMatrix::quantize(&EmbeddingMatrix::new(0));
        assert!(q.is_empty());
        assert_eq!(q.dim(), 0);
    }
}
