//! Seeded randomness for the whole workspace.
//!
//! Every stochastic component of the reproduction (corpus generation, model
//! training, dataset noise, index construction) takes a `u64` seed and draws
//! from [`rng`], so that every table and figure is reproducible run-to-run
//! (DESIGN.md §6 "Determinism"). The generator is the vendored portable
//! xoshiro256++ — stable across platforms and releases.

pub use rand::rngs::StdRng as DetRng;
use rand::SeedableRng;

/// A deterministic generator for the given seed.
pub fn rng(seed: u64) -> DetRng {
    DetRng::seed_from_u64(seed)
}

/// Derive an independent stream from a base seed and a component tag.
/// Components that train side-by-side (e.g. the three static models of the
/// zoo) use distinct tags so they never share a stream.
pub fn derive(seed: u64, tag: &str) -> DetRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tag.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rng(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng(42);
        let mut b = rng(42);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn derived_streams_differ_per_tag() {
        let mut a = derive(42, "word2vec");
        let mut b = derive(42, "glove");
        let equal = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }
}
