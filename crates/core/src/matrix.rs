//! Columnar embedding storage: one contiguous `Vec<f32>` for a whole
//! collection instead of one heap allocation per 48-d vector.
//!
//! [`EmbeddingMatrix`] is the storage format of the vectorize → index →
//! block pipeline: the facade's matrix vectorizer fills it once per
//! collection, the `er-index` structures borrow it (never clone — see
//! [`VectorStore`]), and the blocker queries it row by row. Row norms are
//! precomputed at insertion, so cosine distances against stored rows touch
//! each row exactly once.
//!
//! Conversion from and to `Vec<Embedding>` is bit-exact in both directions:
//! the matrix is the same floats laid out contiguously, and its cached
//! norms are computed with the same kernel `Embedding::norm` uses.

use crate::kernels;
use crate::{Embedding, ErError, Result};

/// A dense row-major `rows × dim` matrix of embeddings with precomputed
/// per-row Euclidean norms.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EmbeddingMatrix {
    dim: usize,
    data: Vec<f32>,
    norms: Vec<f32>,
}

impl EmbeddingMatrix {
    /// An empty matrix whose future rows have `dim` components.
    pub fn new(dim: usize) -> EmbeddingMatrix {
        EmbeddingMatrix {
            dim,
            data: Vec::new(),
            norms: Vec::new(),
        }
    }

    /// An empty matrix with capacity for `rows` rows of `dim` components.
    pub fn with_capacity(dim: usize, rows: usize) -> EmbeddingMatrix {
        EmbeddingMatrix {
            dim,
            data: Vec::with_capacity(dim * rows),
            norms: Vec::with_capacity(rows),
        }
    }

    /// Wrap a flat row-major buffer. Fails if `data` is not a whole number
    /// of `dim`-sized rows (a `dim` of 0 only admits the empty buffer).
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Result<EmbeddingMatrix> {
        if dim == 0 && !data.is_empty() {
            return Err(ErError::Parse(
                "EmbeddingMatrix: non-empty data with dim 0".into(),
            ));
        }
        if dim != 0 && !data.len().is_multiple_of(dim) {
            return Err(ErError::Parse(format!(
                "EmbeddingMatrix: {} floats is not a multiple of dim {dim}",
                data.len()
            )));
        }
        let norms = data.chunks_exact(dim.max(1)).map(kernels::norm).collect();
        Ok(EmbeddingMatrix { dim, data, norms })
    }

    /// Reassemble a matrix from a flat buffer **and its already-computed
    /// norms** — the binary-persistence load path (`er_core::binary`),
    /// which must reconstitute the exact bits the build cached instead of
    /// re-deriving them. Validates shape only; the norms are trusted.
    pub fn from_parts(dim: usize, data: Vec<f32>, norms: Vec<f32>) -> Result<EmbeddingMatrix> {
        if dim == 0 && !data.is_empty() {
            return Err(ErError::Parse(
                "EmbeddingMatrix: non-empty data with dim 0".into(),
            ));
        }
        if data.len() != dim * norms.len() {
            return Err(ErError::Parse(format!(
                "EmbeddingMatrix: {} floats with dim {dim} needs {} norms, got {}",
                data.len(),
                data.len().checked_div(dim).unwrap_or(0),
                norms.len()
            )));
        }
        Ok(EmbeddingMatrix { dim, data, norms })
    }

    /// Copy a `Vec<Embedding>` into contiguous storage, bit-exactly.
    ///
    /// The dimension is taken from the first embedding (0 when empty).
    /// Panics on ragged input — mixed dimensions in one collection are a
    /// construction bug upstream, not a runtime condition.
    pub fn from_embeddings(embeddings: &[Embedding]) -> EmbeddingMatrix {
        let dim = embeddings.first().map(Embedding::dim).unwrap_or(0);
        let mut matrix = EmbeddingMatrix::with_capacity(dim, embeddings.len());
        for e in embeddings {
            matrix.push(e.as_slice());
        }
        matrix
    }

    /// Append one row. Panics if `row.len() != dim`.
    pub fn push(&mut self, row: &[f32]) {
        assert_eq!(
            row.len(),
            self.dim,
            "EmbeddingMatrix: pushed a {}-d row into a {}-d matrix",
            row.len(),
            self.dim
        );
        self.data.extend_from_slice(row);
        self.norms.push(kernels::norm(row));
    }

    /// Expand back into one `Embedding` per row — the bit-exact inverse of
    /// [`EmbeddingMatrix::from_embeddings`].
    pub fn to_embeddings(&self) -> Vec<Embedding> {
        self.rows_iter().map(|r| Embedding(r.to_vec())).collect()
    }

    /// Components per row.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row `i` as a slice view into the contiguous buffer.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Precomputed Euclidean norm of row `i` (bit-identical to
    /// `kernels::norm(self.row(i))`).
    #[inline]
    pub fn norm(&self, i: usize) -> f32 {
        self.norms[i]
    }

    /// The full flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// All precomputed row norms, in row order.
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// Iterate over the rows as slices.
    pub fn rows_iter(&self) -> impl ExactSizeIterator<Item = &[f32]> {
        // `chunks_exact(0)` panics, so pin the empty case explicitly.
        self.data.chunks_exact(self.dim.max(1)).take(self.len())
    }

    /// Int8-quantize every row (see [`crate::quant::QuantizedMatrix`]) —
    /// the entry point of the memory-bound scan tier. Deterministic and
    /// row-local, so quantizing shards equals quantizing the whole matrix.
    pub fn quantize(&self) -> crate::quant::QuantizedMatrix {
        crate::quant::QuantizedMatrix::quantize(self)
    }
}

impl From<&[Embedding]> for EmbeddingMatrix {
    fn from(embeddings: &[Embedding]) -> EmbeddingMatrix {
        EmbeddingMatrix::from_embeddings(embeddings)
    }
}

impl From<&EmbeddingMatrix> for Vec<Embedding> {
    fn from(matrix: &EmbeddingMatrix) -> Vec<Embedding> {
        matrix.to_embeddings()
    }
}

/// How an index holds its vectors: either it owns a matrix (built from a
/// legacy `Vec<Embedding>` constructor) or it borrows one built upstream —
/// the zero-copy contract. Indices never clone a borrowed matrix.
#[derive(Debug, Clone)]
pub enum VectorStore<'a> {
    Owned(EmbeddingMatrix),
    Borrowed(&'a EmbeddingMatrix),
}

impl VectorStore<'_> {
    /// The stored matrix, wherever it lives.
    #[inline]
    pub fn matrix(&self) -> &EmbeddingMatrix {
        match self {
            VectorStore::Owned(m) => m,
            VectorStore::Borrowed(m) => m,
        }
    }

    /// Mutable access — only for an *owned* matrix. Borrowed stores return
    /// `None`: the zero-copy contract says an index never mutates (or
    /// clones) a matrix the pipeline lent it, so incremental mutation is
    /// reserved for indices that own their storage (the `er-serve` path).
    #[inline]
    pub fn matrix_mut(&mut self) -> Option<&mut EmbeddingMatrix> {
        match self {
            VectorStore::Owned(m) => Some(m),
            VectorStore::Borrowed(_) => None,
        }
    }
}

impl std::ops::Deref for VectorStore<'_> {
    type Target = EmbeddingMatrix;

    fn deref(&self) -> &EmbeddingMatrix {
        self.matrix()
    }
}

/// Anything an index can be built from. The seam that lets the
/// `Vec<Embedding>` constructors keep working while the pipeline hands the
/// same index a borrowed [`EmbeddingMatrix`] without copying a float.
pub trait VectorSource<'a> {
    fn into_store(self) -> VectorStore<'a>;
}

/// Zero-copy: the index borrows the caller's matrix.
impl<'a> VectorSource<'a> for &'a EmbeddingMatrix {
    fn into_store(self) -> VectorStore<'a> {
        VectorStore::Borrowed(self)
    }
}

/// The index takes ownership of an already-built matrix.
impl<'a> VectorSource<'a> for EmbeddingMatrix {
    fn into_store(self) -> VectorStore<'a> {
        VectorStore::Owned(self)
    }
}

/// Legacy path: per-entity embeddings are copied once into a fresh owned
/// matrix (the same single copy the old `Vec<Embedding>` storage made).
impl<'a> VectorSource<'a> for &[Embedding] {
    fn into_store(self) -> VectorStore<'a> {
        VectorStore::Owned(EmbeddingMatrix::from_embeddings(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embeddings() -> Vec<Embedding> {
        vec![
            Embedding(vec![1.0, 0.0, 2.5]),
            Embedding(vec![-3.0, 4.0, 0.0]),
            Embedding(vec![0.0, 0.0, 0.0]),
        ]
    }

    #[test]
    fn round_trips_embeddings_bit_exactly() {
        let original = embeddings();
        let matrix = EmbeddingMatrix::from_embeddings(&original);
        assert_eq!((matrix.len(), matrix.dim()), (3, 3));
        assert_eq!(matrix.to_embeddings(), original);
        for (i, e) in original.iter().enumerate() {
            assert_eq!(matrix.row(i), e.as_slice());
            assert_eq!(matrix.norm(i).to_bits(), e.norm().to_bits());
        }
    }

    #[test]
    fn norms_are_cached_at_push_time() {
        let mut matrix = EmbeddingMatrix::new(2);
        matrix.push(&[3.0, 4.0]);
        matrix.push(&[0.0, 0.0]);
        assert_eq!(matrix.norms(), &[5.0, 0.0]);
        assert_eq!(matrix.norm(0), 5.0);
    }

    #[test]
    fn empty_and_degenerate_shapes() {
        let empty = EmbeddingMatrix::from_embeddings(&[]);
        assert!(empty.is_empty());
        assert_eq!((empty.len(), empty.dim()), (0, 0));
        assert!(empty.to_embeddings().is_empty());
        assert_eq!(empty.rows_iter().count(), 0);

        let zero_rows = EmbeddingMatrix::new(4);
        assert_eq!(zero_rows.len(), 0);
        assert!(zero_rows.is_empty());
    }

    #[test]
    fn from_flat_validates_shape() {
        let ok = EmbeddingMatrix::from_flat(2, vec![1.0, 0.0, 3.0, 4.0]).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok.norms(), &[1.0, 5.0]);
        assert!(EmbeddingMatrix::from_flat(3, vec![1.0; 4]).is_err());
        assert!(EmbeddingMatrix::from_flat(0, vec![1.0]).is_err());
        assert!(EmbeddingMatrix::from_flat(0, vec![]).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "pushed a 2-d row into a 3-d matrix")]
    fn push_rejects_ragged_rows() {
        let mut matrix = EmbeddingMatrix::new(3);
        matrix.push(&[1.0, 2.0]);
    }

    #[test]
    fn vector_store_derefs_to_the_same_matrix() {
        let matrix = EmbeddingMatrix::from_embeddings(&embeddings());
        let borrowed = (&matrix).into_store();
        assert_eq!(borrowed.matrix(), &matrix);
        assert_eq!(borrowed.row(1), matrix.row(1));
        let owned = embeddings().as_slice().into_store();
        assert_eq!(owned.matrix(), &matrix);
    }
}
