//! Write-ahead journal record codec — the crash-durability companion of
//! [`crate::binary`].
//!
//! The serving layer appends every accepted mutation to a per-shard journal
//! file *before* applying it to the in-memory index; after a crash, the
//! journal tail is replayed over the last ERBF checkpoint. This module owns
//! the byte layout only — file handling (append, fsync, truncate) lives
//! with the caller:
//!
//! ```text
//! file   := header record*
//! header := magic(4 = "JRNL") version(u16) shard(u32) epoch(u64)
//! record := len(u32) body[len] checksum(u64)
//! body   := op(u8) id(u32) [row: len(u64) f32*len]
//! ```
//!
//! Everything is little-endian. `checksum` is FNV-1a 64 over the length
//! prefix *and* the body, so a flipped bit anywhere in a committed record —
//! including its length field — fails loudly with [`ErError::Corrupt`].
//! `epoch` ties the journal to the checkpoint it extends: replay is only
//! valid when the journal epoch equals the epoch stamped in the ERBF save
//! (see [`crate::binary::read_container_epoch`]).
//!
//! **Commit rule.** A record is *committed* once all of its bytes are on
//! disk. [`parse_journal`] stops cleanly at a torn tail (a record whose
//! declared length overruns the file — the signature of a crash mid-append)
//! and returns everything before it; a record that is fully present but
//! fails its checksum is *corruption*, not a torn write, and surfaces as a
//! typed error so recovery never builds garbage state.

use crate::binary::{fnv1a64, BinReader, BinWriter};
use crate::{ErError, Result};

/// File magic: "JouRNaL".
pub const JOURNAL_MAGIC: [u8; 4] = *b"JRNL";
/// Journal layout version; bump on any incompatible change.
pub const JOURNAL_VERSION: u16 = 1;
/// Fixed header size in bytes (magic + version + shard + epoch).
pub const JOURNAL_HEADER_LEN: usize = 18;

const OP_INSERT: u8 = 1;
const OP_UPSERT: u8 = 2;
const OP_DELETE: u8 = 3;

/// One committed mutation. `id` is the caller's `EntityId` payload; the row
/// is carried verbatim so replay re-applies the exact float bits.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalRecord {
    Insert { id: u32, row: Vec<f32> },
    Upsert { id: u32, row: Vec<f32> },
    Delete { id: u32 },
}

impl JournalRecord {
    /// The entity the record touches.
    pub fn id(&self) -> u32 {
        match self {
            JournalRecord::Insert { id, .. }
            | JournalRecord::Upsert { id, .. }
            | JournalRecord::Delete { id } => *id,
        }
    }
}

/// The fixed prefix of a journal file: which shard it belongs to and which
/// checkpoint epoch it extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    pub shard: u32,
    pub epoch: u64,
}

/// Serialize a journal file header.
pub fn header_to_bytes(shard: u32, epoch: u64) -> [u8; JOURNAL_HEADER_LEN] {
    let mut out = [0u8; JOURNAL_HEADER_LEN];
    out[0..4].copy_from_slice(&JOURNAL_MAGIC);
    out[4..6].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    out[6..10].copy_from_slice(&shard.to_le_bytes());
    out[10..18].copy_from_slice(&epoch.to_le_bytes());
    out
}

/// Serialize one record: length prefix, body, checksum over both.
pub fn record_to_bytes(rec: &JournalRecord) -> Vec<u8> {
    let mut w = BinWriter::new();
    match rec {
        JournalRecord::Insert { id, row } => {
            w.put_u8(OP_INSERT);
            w.put_u32(*id);
            w.put_f32_slice(row);
        }
        JournalRecord::Upsert { id, row } => {
            w.put_u8(OP_UPSERT);
            w.put_u32(*id);
            w.put_f32_slice(row);
        }
        JournalRecord::Delete { id } => {
            w.put_u8(OP_DELETE);
            w.put_u32(*id);
        }
    }
    let body = w.into_bytes();
    let len = (body.len() as u32).to_le_bytes();
    let mut framed = Vec::with_capacity(4 + body.len() + 8);
    framed.extend_from_slice(&len);
    framed.extend_from_slice(&body);
    let mut summed = Vec::with_capacity(4 + body.len());
    summed.extend_from_slice(&len);
    summed.extend_from_slice(&body);
    framed.extend_from_slice(&fnv1a64(&summed).to_le_bytes());
    framed
}

/// The decoded view of a journal file: its header (if any), the committed
/// record prefix, and the byte offset where that prefix ends — the caller
/// truncates to `committed_bytes` before appending again so a torn tail is
/// never extended.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalContents {
    /// `None` when the file is shorter than a full header — the signature
    /// of a crash during journal creation; nothing was committed.
    pub header: Option<JournalHeader>,
    pub records: Vec<JournalRecord>,
    pub committed_bytes: usize,
}

fn corrupt(what: impl std::fmt::Display) -> ErError {
    ErError::Corrupt(what.to_string())
}

/// Decode a journal file into its longest committed prefix.
///
/// Torn tails (truncated header, truncated final record) terminate the scan
/// cleanly; a *complete* record whose checksum or body does not decode is a
/// typed [`ErError::Corrupt`] — flipped bits never replay as garbage.
pub fn parse_journal(bytes: &[u8]) -> Result<JournalContents> {
    if bytes.len() < JOURNAL_HEADER_LEN {
        return Ok(JournalContents {
            header: None,
            records: Vec::new(),
            committed_bytes: 0,
        });
    }
    if bytes[0..4] != JOURNAL_MAGIC {
        return Err(corrupt("bad magic (not a JRNL journal)"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != JOURNAL_VERSION {
        return Err(corrupt(format!(
            "journal version {version} unsupported (expected {JOURNAL_VERSION})"
        )));
    }
    let shard = u32::from_le_bytes(bytes[6..10].try_into().expect("4 bytes"));
    let epoch = u64::from_le_bytes(bytes[10..18].try_into().expect("8 bytes"));

    let mut records = Vec::new();
    let mut pos = JOURNAL_HEADER_LEN;
    while bytes.len() - pos >= 4 {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        // A record needs its length prefix, body, and checksum on disk to be
        // committed. Anything shorter is a torn tail: stop, don't error.
        let Some(total) = len.checked_add(12) else {
            break;
        };
        if bytes.len() - pos < total {
            break;
        }
        let summed = &bytes[pos..pos + 4 + len];
        let stored = u64::from_le_bytes(
            bytes[pos + 4 + len..pos + total]
                .try_into()
                .expect("8 bytes"),
        );
        if fnv1a64(summed) != stored {
            return Err(corrupt(format!(
                "journal record checksum mismatch at offset {pos}"
            )));
        }
        let mut r = BinReader::new(&summed[4..]);
        let op = r.get_u8()?;
        let id = r.get_u32()?;
        let rec = match op {
            OP_INSERT => JournalRecord::Insert {
                id,
                row: r.get_f32_vec()?,
            },
            OP_UPSERT => JournalRecord::Upsert {
                id,
                row: r.get_f32_vec()?,
            },
            OP_DELETE => JournalRecord::Delete { id },
            other => {
                return Err(corrupt(format!(
                    "unknown journal op {other} at offset {pos}"
                )))
            }
        };
        if r.remaining() != 0 {
            return Err(corrupt(format!(
                "{} trailing bytes inside the journal record at offset {pos}",
                r.remaining()
            )));
        }
        records.push(rec);
        pos += total;
    }
    Ok(JournalContents {
        header: Some(JournalHeader { shard, epoch }),
        records,
        committed_bytes: pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<JournalRecord> {
        vec![
            JournalRecord::Insert {
                id: 7,
                row: vec![1.0, -0.0, 2.5],
            },
            JournalRecord::Delete { id: 7 },
            JournalRecord::Upsert {
                id: 9,
                row: vec![f32::MIN_POSITIVE, -8.125, 4.0],
            },
        ]
    }

    fn sample_file() -> Vec<u8> {
        let mut file = header_to_bytes(3, 11).to_vec();
        for rec in sample_records() {
            file.extend_from_slice(&record_to_bytes(&rec));
        }
        file
    }

    #[test]
    fn records_round_trip_bit_for_bit() {
        let parsed = parse_journal(&sample_file()).unwrap();
        assert_eq!(
            parsed.header,
            Some(JournalHeader {
                shard: 3,
                epoch: 11
            })
        );
        assert_eq!(parsed.records, sample_records());
        assert_eq!(parsed.committed_bytes, sample_file().len());
        // Float payloads survive exactly, including -0.0.
        let JournalRecord::Insert { row, .. } = &parsed.records[0] else {
            panic!("first record must be an insert");
        };
        assert_eq!(row[1].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn truncation_at_any_byte_yields_a_committed_prefix() {
        let file = sample_file();
        // Find each record's end offset so we know the expected prefix.
        let mut ends = vec![JOURNAL_HEADER_LEN];
        for rec in sample_records() {
            ends.push(ends.last().unwrap() + record_to_bytes(&rec).len());
        }
        for cut in 0..file.len() {
            let parsed = parse_journal(&file[..cut]).unwrap();
            let expect_n = ends
                .iter()
                .filter(|&&e| e > JOURNAL_HEADER_LEN && e <= cut)
                .count();
            assert_eq!(
                parsed.records.len(),
                expect_n,
                "cut at {cut} must recover exactly the committed prefix"
            );
            assert_eq!(parsed.records, sample_records()[..expect_n].to_vec());
            if cut < JOURNAL_HEADER_LEN {
                assert!(parsed.header.is_none());
            } else {
                assert_eq!(parsed.committed_bytes, ends[expect_n]);
            }
        }
    }

    #[test]
    fn flipped_bits_in_committed_records_are_typed_corruption() {
        let file = sample_file();
        // Flip one bit in every byte of the record region (past the header).
        // Each flip must surface as ErError::Corrupt — never as a silently
        // different record, because the checksum covers len and body both.
        for pos in JOURNAL_HEADER_LEN..file.len() {
            let mut bad = file.clone();
            bad[pos] ^= 0x10;
            match parse_journal(&bad) {
                Err(ErError::Corrupt(_)) => {}
                Ok(parsed) => {
                    // A flip in a length prefix can masquerade as a torn
                    // tail; that is still a valid committed *prefix* (never
                    // garbage), and must have consumed fewer records.
                    assert!(
                        parsed.records.len() < sample_records().len(),
                        "flip at {pos} parsed all records without error"
                    );
                    let n = parsed.records.len();
                    assert_eq!(parsed.records, sample_records()[..n].to_vec());
                }
                Err(e) => panic!("flip at {pos} gave unexpected error {e:?}"),
            }
        }
    }

    #[test]
    fn header_corruption_is_rejected() {
        let mut bad_magic = sample_file();
        bad_magic[0] = b'X';
        assert!(matches!(
            parse_journal(&bad_magic),
            Err(ErError::Corrupt(_))
        ));
        let mut bad_version = sample_file();
        bad_version[4] = JOURNAL_VERSION as u8 + 1;
        assert!(matches!(
            parse_journal(&bad_version),
            Err(ErError::Corrupt(_))
        ));
    }

    #[test]
    fn empty_and_header_only_files_are_clean() {
        let parsed = parse_journal(&[]).unwrap();
        assert!(parsed.header.is_none());
        assert!(parsed.records.is_empty());
        let parsed = parse_journal(&header_to_bytes(0, 5)).unwrap();
        assert_eq!(parsed.header, Some(JournalHeader { shard: 0, epoch: 5 }));
        assert!(parsed.records.is_empty());
        assert_eq!(parsed.committed_bytes, JOURNAL_HEADER_LEN);
    }
}
