//! The unified operating point: every retrieval knob of the workspace —
//! `k`, metric, backend choice and its parameters, scan tier/quantization,
//! Dirty-ER mode — composed into **one** config type, plus the tuning
//! goals (`recall_target`, `budget_ns`) the `er-tune` autotuner optimizes
//! against.
//!
//! Before this type, the same run was configured through five structs
//! (`TopKConfig`, `ScanConfig`, `HnswConfig`, `LshConfig`, `ServeConfig`)
//! that could silently disagree — e.g. a `ServeConfig.scan` quantized while
//! the blocker's `TopKConfig.scan` was not. An [`OperatingPoint`] is the
//! single source of truth: `er-blocking`, the `Pipeline` facade and the
//! `er-serve` `Resolver` all accept one directly (`From` impls derive the
//! legacy structs), and [`OperatingPoint::validate`] rejects
//! self-contradictory settings with a typed [`ErError::Config`].
//!
//! Query-time parameters (HNSW beam width, LSH probes/tables) are carried
//! separately in [`QueryParams`] so the tuner can sweep them against one
//! built index without rebuilding — see `er_index::IndexReader`'s
//! `search_counted`.

use crate::error::{ErError, Result};
use crate::json::Json;
use crate::kernels::KernelTier;
use crate::metric::Metric;
use crate::scan::{Quantization, ScanConfig};

/// HNSW graph parameters, decoupled from `er_index::HnswConfig` (which
/// additionally carries the metric and tier — here those are fields of the
/// enclosing [`OperatingPoint`], stated exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HnswParams {
    /// Max links per node on layers ≥ 1 (layer 0 allows `2·m`).
    pub m: usize,
    /// Beam width while inserting.
    pub ef_construction: usize,
    /// Beam width while querying (raised to `k` when `k` is larger).
    /// A *runtime* parameter: sweeping it never rebuilds the graph.
    pub ef_search: usize,
    /// Seed for the level-sampling stream.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            seed: 42,
        }
    }
}

/// Hyperplane-LSH parameters, decoupled from `er_index::LshConfig` the
/// same way as [`HnswParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshParams {
    /// Hyperplanes (signature bits) per table, at most 64.
    pub planes: usize,
    /// Independent tables; more tables ⇒ higher recall. A *runtime*
    /// parameter when querying an index built with at least this many
    /// tables: table `t`'s hyperplane stream is independent of the table
    /// count, so probing the first `tables` of a wider index is
    /// bit-identical to an index built with exactly `tables`.
    pub tables: usize,
    /// Extra buckets probed per table by flipping the lowest-margin bits.
    /// A *runtime* parameter: probing never rebuilds the tables.
    pub probes: usize,
    /// Seed for the hyperplane streams.
    pub seed: u64,
}

impl Default for LshParams {
    fn default() -> Self {
        LshParams {
            planes: 12,
            tables: 8,
            probes: 2,
            seed: 42,
        }
    }
}

/// Which index backend serves the queries, with its parameters. The
/// metric and scan tier live on the enclosing [`OperatingPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendParams {
    /// Brute-force scan — exact, O(rows) per query.
    Exact,
    /// HNSW graph (the scalable default).
    #[default]
    Hnsw,
    /// HNSW with explicit parameters.
    HnswWith(HnswParams),
    /// Hyperplane LSH with default parameters.
    Lsh,
    /// Hyperplane LSH with explicit parameters.
    LshWith(LshParams),
}

impl BackendParams {
    /// Resolved HNSW parameters (defaults for the parameterless variant);
    /// `None` for non-HNSW backends.
    pub fn hnsw(&self) -> Option<HnswParams> {
        match self {
            BackendParams::Hnsw => Some(HnswParams::default()),
            BackendParams::HnswWith(p) => Some(*p),
            _ => None,
        }
    }

    /// Resolved LSH parameters; `None` for non-LSH backends.
    pub fn lsh(&self) -> Option<LshParams> {
        match self {
            BackendParams::Lsh => Some(LshParams::default()),
            BackendParams::LshWith(p) => Some(*p),
            _ => None,
        }
    }

    /// Short stable name, used by [`OperatingPoint::to_json`] and reports.
    pub fn name(&self) -> &'static str {
        match self {
            BackendParams::Exact => "exact",
            BackendParams::Hnsw | BackendParams::HnswWith(_) => "hnsw",
            BackendParams::Lsh | BackendParams::LshWith(_) => "lsh",
        }
    }
}

/// Runtime query-parameter overrides — the knobs that change a search
/// without changing the index: HNSW beam width, LSH probes, and the LSH
/// table prefix. `None` means "use the value the index was built with".
/// `QueryParams::default()` (all `None`) is the pre-redesign behavior,
/// bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryParams {
    /// HNSW: beam width on layer 0 (raised to `k` when `k` is larger).
    pub ef_search: Option<usize>,
    /// LSH: extra buckets probed per table.
    pub probes: Option<usize>,
    /// LSH: probe only the first `tables` tables (clamped to the built
    /// count). Bit-identical to an index built with exactly that many.
    pub tables: Option<usize>,
}

impl QueryParams {
    pub fn with_ef_search(ef_search: usize) -> QueryParams {
        QueryParams {
            ef_search: Some(ef_search),
            ..QueryParams::default()
        }
    }

    pub fn with_probes(probes: usize) -> QueryParams {
        QueryParams {
            probes: Some(probes),
            ..QueryParams::default()
        }
    }
}

/// One retrieval configuration for the whole stack — see the module docs.
///
/// Build one with the builder (`OperatingPoint::recall_target(0.95)
/// .budget(500_000.0).k(10)`) or field-by-field; validate with
/// [`OperatingPoint::validate`] before handing it to a backend.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatingPoint {
    /// Neighbours kept per query entity.
    pub k: usize,
    /// The distance every backend minimizes and every score derives from.
    pub metric: Metric,
    pub backend: BackendParams,
    /// Kernel tier + quantization. The tier applies to *every* backend;
    /// quantization only to `Exact` (validation rejects the rest).
    pub scan: ScanConfig,
    /// Dirty ER: both sides are the same collection.
    pub dirty: bool,
    /// Tuning goal: the fraction of the exact-scan top-k the chosen
    /// configuration must retrieve (`None`: no constraint).
    pub recall_target: Option<f32>,
    /// Tuning goal: estimated per-query budget in nanoseconds (`None`: no
    /// budget — the tuner picks the cheapest point meeting the recall
    /// target).
    pub budget_ns: Option<f64>,
}

impl Default for OperatingPoint {
    /// Mirrors the blocker's historical defaults: `k = 10`, HNSW under
    /// cosine, Reference kernels, no quantization, Clean-Clean.
    fn default() -> Self {
        OperatingPoint {
            k: 10,
            metric: Metric::Cosine,
            backend: BackendParams::Hnsw,
            scan: ScanConfig::default(),
            dirty: false,
            recall_target: None,
            budget_ns: None,
        }
    }
}

impl OperatingPoint {
    /// Start a builder from a recall target — the autotuner's entry point:
    /// `OperatingPoint::recall_target(0.95).budget(250_000.0)`.
    pub fn recall_target(target: f32) -> OperatingPoint {
        OperatingPoint {
            recall_target: Some(target),
            ..OperatingPoint::default()
        }
    }

    /// Per-query cost budget in estimated nanoseconds.
    pub fn budget(mut self, budget_ns: f64) -> OperatingPoint {
        self.budget_ns = Some(budget_ns);
        self
    }

    pub fn k(mut self, k: usize) -> OperatingPoint {
        self.k = k;
        self
    }

    pub fn metric(mut self, metric: Metric) -> OperatingPoint {
        self.metric = metric;
        self
    }

    /// Use the exact brute-force backend.
    pub fn exact(mut self) -> OperatingPoint {
        self.backend = BackendParams::Exact;
        self
    }

    /// Use the HNSW backend with explicit parameters.
    pub fn hnsw(mut self, params: HnswParams) -> OperatingPoint {
        self.backend = BackendParams::HnswWith(params);
        self
    }

    /// Use the LSH backend with explicit parameters.
    pub fn lsh(mut self, params: LshParams) -> OperatingPoint {
        self.backend = BackendParams::LshWith(params);
        self
    }

    pub fn scan(mut self, scan: ScanConfig) -> OperatingPoint {
        self.scan = scan;
        self
    }

    pub fn tier(mut self, tier: KernelTier) -> OperatingPoint {
        self.scan.tier = tier;
        self
    }

    pub fn dirty(mut self, dirty: bool) -> OperatingPoint {
        self.dirty = dirty;
        self
    }

    /// The runtime query-parameter slice of this point — what a search
    /// against an already-built index needs to honor it.
    pub fn query_params(&self) -> QueryParams {
        QueryParams {
            ef_search: self.backend.hnsw().map(|p| p.ef_search),
            probes: self.backend.lsh().map(|p| p.probes),
            tables: self.backend.lsh().map(|p| p.tables),
        }
    }

    /// Reject self-contradictory settings with a typed
    /// [`ErError::Config`]. Every conversion into a legacy config struct
    /// validates first, so an invalid point can never reach a backend.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| Err(ErError::Config(msg));
        if !matches!(self.scan.quant, Quantization::None)
            && !matches!(self.backend, BackendParams::Exact)
        {
            return fail(format!(
                "operating point: quantized scans only apply to the Exact \
                 backend, not {}",
                self.backend.name()
            ));
        }
        if let Some(p) = self.backend.hnsw() {
            if p.m < 2 {
                return fail(format!("operating point: HNSW needs m >= 2, got {}", p.m));
            }
            if p.ef_construction == 0 || p.ef_search == 0 {
                return fail("operating point: HNSW beam widths must be >= 1".to_string());
            }
        }
        if let Some(p) = self.backend.lsh() {
            if !(1..=64).contains(&p.planes) {
                return fail(format!(
                    "operating point: LSH signatures are u64 bitmasks, \
                     need 1 <= planes <= 64, got {}",
                    p.planes
                ));
            }
            if p.tables == 0 {
                return fail("operating point: LSH needs at least one table".to_string());
            }
        }
        if let Some(t) = self.recall_target {
            if !(t > 0.0 && t <= 1.0) {
                return fail(format!(
                    "operating point: recall target must be in (0, 1], got {t}"
                ));
            }
        }
        if let Some(b) = self.budget_ns {
            if b.is_nan() || b <= 0.0 {
                return fail(format!(
                    "operating point: budget must be positive nanoseconds, got {b}"
                ));
            }
        }
        Ok(())
    }

    /// Canonical JSON rendering — stable field order, so two points are
    /// equal iff their JSON is byte-identical (the autotuner-determinism
    /// contract is pinned on this).
    pub fn to_json(&self) -> String {
        let metric = match self.metric {
            Metric::Euclidean => "euclidean",
            Metric::Cosine => "cosine",
        };
        let quant = match self.scan.quant {
            Quantization::None => Json::from_str_value("none"),
            Quantization::Int8 { rerank } => Json::Obj(vec![
                ("kind".into(), Json::from_str_value("int8")),
                ("rerank".into(), Json::from_usize(rerank)),
            ]),
            Quantization::Pq { config, rerank } => Json::Obj(vec![
                ("kind".into(), Json::from_str_value("pq")),
                ("subspaces".into(), Json::from_usize(config.subspaces)),
                ("centroids".into(), Json::from_usize(config.centroids)),
                ("rerank".into(), Json::from_usize(rerank)),
            ]),
        };
        let mut fields = vec![
            ("k".into(), Json::from_usize(self.k)),
            ("metric".into(), Json::from_str_value(metric)),
            ("backend".into(), Json::from_str_value(self.backend.name())),
        ];
        if let Some(p) = self.backend.hnsw() {
            fields.push((
                "hnsw".into(),
                Json::Obj(vec![
                    ("m".into(), Json::from_usize(p.m)),
                    (
                        "ef_construction".into(),
                        Json::from_usize(p.ef_construction),
                    ),
                    ("ef_search".into(), Json::from_usize(p.ef_search)),
                    ("seed".into(), Json::from_u64(p.seed)),
                ]),
            ));
        }
        if let Some(p) = self.backend.lsh() {
            fields.push((
                "lsh".into(),
                Json::Obj(vec![
                    ("planes".into(), Json::from_usize(p.planes)),
                    ("tables".into(), Json::from_usize(p.tables)),
                    ("probes".into(), Json::from_usize(p.probes)),
                    ("seed".into(), Json::from_u64(p.seed)),
                ]),
            ));
        }
        fields.push((
            "scan".into(),
            Json::Obj(vec![
                ("tier".into(), Json::from_str_value(self.scan.tier.name())),
                ("quant".into(), quant),
            ]),
        ));
        fields.push(("dirty".into(), Json::Bool(self.dirty)));
        if let Some(t) = self.recall_target {
            fields.push(("recall_target".into(), Json::from_f32(t)));
        }
        if let Some(b) = self.budget_ns {
            fields.push(("budget_ns".into(), Json::from_f32(b as f32)));
        }
        Json::Obj(fields).to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes_goals_and_knobs() {
        let op = OperatingPoint::recall_target(0.95)
            .budget(250_000.0)
            .k(5)
            .metric(Metric::Euclidean)
            .lsh(LshParams {
                tables: 4,
                ..LshParams::default()
            })
            .dirty(true);
        assert_eq!(op.k, 5);
        assert_eq!(op.metric, Metric::Euclidean);
        assert_eq!(op.recall_target, Some(0.95));
        assert_eq!(op.budget_ns, Some(250_000.0));
        assert!(op.dirty);
        assert_eq!(op.backend.lsh().unwrap().tables, 4);
        assert!(op.validate().is_ok());
    }

    #[test]
    fn default_mirrors_the_blocker_defaults() {
        let op = OperatingPoint::default();
        assert_eq!(op.k, 10);
        assert_eq!(op.metric, Metric::Cosine);
        assert_eq!(op.backend.hnsw(), Some(HnswParams::default()));
        assert_eq!(op.scan, ScanConfig::default());
        assert!(!op.dirty);
        assert!(op.validate().is_ok());
    }

    #[test]
    fn quantization_on_approximate_backends_is_a_config_error() {
        let op = OperatingPoint::default().scan(ScanConfig {
            tier: KernelTier::Reference,
            quant: Quantization::Int8 { rerank: 32 },
        });
        let err = op.validate().unwrap_err();
        assert!(matches!(err, ErError::Config(_)), "{err}");
        // The same scan on the Exact backend is fine.
        assert!(op.exact().validate().is_ok());
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        let bad_m = OperatingPoint::default().hnsw(HnswParams {
            m: 1,
            ..HnswParams::default()
        });
        assert!(matches!(bad_m.validate(), Err(ErError::Config(_))));
        let bad_planes = OperatingPoint::default().lsh(LshParams {
            planes: 65,
            ..LshParams::default()
        });
        assert!(matches!(bad_planes.validate(), Err(ErError::Config(_))));
        let bad_target = OperatingPoint::recall_target(1.5);
        assert!(matches!(bad_target.validate(), Err(ErError::Config(_))));
        let bad_budget = OperatingPoint::default().budget(0.0);
        assert!(matches!(bad_budget.validate(), Err(ErError::Config(_))));
    }

    #[test]
    fn query_params_surface_only_the_active_backend() {
        let hnsw = OperatingPoint::default().hnsw(HnswParams {
            ef_search: 32,
            ..HnswParams::default()
        });
        assert_eq!(
            hnsw.query_params(),
            QueryParams {
                ef_search: Some(32),
                probes: None,
                tables: None
            }
        );
        let lsh = OperatingPoint::default().lsh(LshParams {
            probes: 3,
            tables: 6,
            ..LshParams::default()
        });
        assert_eq!(
            lsh.query_params(),
            QueryParams {
                ef_search: None,
                probes: Some(3),
                tables: Some(6)
            }
        );
        assert_eq!(
            OperatingPoint::default().exact().query_params(),
            QueryParams::default()
        );
    }

    #[test]
    fn json_is_canonical_and_distinguishes_points() {
        let a = OperatingPoint::recall_target(0.9);
        let b = OperatingPoint::recall_target(0.9);
        assert_eq!(a.to_json(), b.to_json());
        let c = a.clone().k(7);
        assert_ne!(a.to_json(), c.to_json());
        // Round-trips through the workspace JSON parser.
        let parsed = Json::parse(&a.to_json()).unwrap();
        assert_eq!(parsed.expect("backend").unwrap().as_str().unwrap(), "hnsw");
        assert_eq!(parsed.expect("k").unwrap().as_usize().unwrap(), 10);
    }
}
