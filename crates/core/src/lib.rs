//! `er-core` — the shared vocabulary of the `embeddings4er` workspace
//! (DESIGN.md inventory row 26 feeds off it; every other crate imports it).
//!
//! Provides the entity model ([`Entity`], [`EntityId`], [`SerializationMode`]),
//! the vector type every language model emits ([`Embedding`]), the columnar
//! collection storage the pipeline trades in ([`EmbeddingMatrix`] with the
//! [`VectorSource`] seam), the shared distance kernels ([`kernels`]),
//! evaluation primitives ([`GroundTruth`], [`ScoredPair`]), the shared
//! distance [`Metric`] and scan knobs ([`ScanConfig`], [`Quantization`]),
//! the unified retrieval configuration ([`OperatingPoint`] with its
//! runtime [`QueryParams`] slice — the `er-tune` autotuner's output type),
//! the workspace error type ([`ErError`]), a portable seeded RNG
//! ([`rng::rng`]), a
//! dependency-free JSON reader/writer ([`json`]) used for model persistence,
//! the checksummed little-endian binary container ([`binary`]) the
//! serving path persists matrices, indices and resolvers with, and the
//! write-ahead journal record codec ([`journal`]) that makes serving
//! mutations crash-durable between checkpoints.

pub mod binary;
pub mod entity;
pub mod error;
pub mod journal;
pub mod json;
pub mod kernels;
pub mod matrix;
pub mod metric;
pub mod operating_point;
pub mod pq;
pub mod quant;
pub mod rng;
pub mod scan;

pub use entity::{
    sort_by_id_pair, sort_by_score_desc, Embedding, Entity, EntityId, GroundTruth, ScoredPair,
    SerializationMode,
};
pub use error::{ErError, Result};
pub use journal::{JournalContents, JournalHeader, JournalRecord};
pub use kernels::KernelTier;
pub use matrix::{EmbeddingMatrix, VectorSource, VectorStore};
pub use metric::Metric;
pub use operating_point::{BackendParams, HnswParams, LshParams, OperatingPoint, QueryParams};
pub use pq::{PqCodebook, PqCodes, PqConfig};
pub use quant::{QuantizedMatrix, QuantizedQuery};
pub use scan::{Quantization, ScanConfig};
