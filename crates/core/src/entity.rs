//! The entity model of the paper's pipeline (§2): records with attribute
//! name/value pairs, serialized to sentences either schema-agnostically
//! (all values concatenated) or schema-based (a single title-like
//! attribute — the appendix variant, Figs. 17–22).

use std::collections::BTreeSet;
use std::fmt;

/// Identifier of an entity inside one collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A record: ordered attribute name/value pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Entity {
    pub id: EntityId,
    pub attributes: Vec<(String, String)>,
}

impl Entity {
    pub fn new(id: EntityId, attributes: Vec<(String, String)>) -> Self {
        Entity { id, attributes }
    }

    /// Attribute value by name, if present.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The sentence handed to a language model under the given mode.
    pub fn serialize(&self, mode: &SerializationMode) -> String {
        match mode {
            SerializationMode::SchemaAgnostic => self
                .attributes
                .iter()
                .map(|(_, v)| v.as_str())
                .filter(|v| !v.is_empty())
                .collect::<Vec<_>>()
                .join(" "),
            SerializationMode::SchemaBased(attribute) => {
                self.attribute(attribute).unwrap_or_default().to_string()
            }
        }
    }
}

/// How an entity is turned into a sentence (paper §5, appendix).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerializationMode {
    /// Concatenate every attribute value (the paper's main setting).
    SchemaAgnostic,
    /// Use only the named title-like attribute (appendix, Figs. 17–22).
    SchemaBased(String),
}

/// A dense vector produced by a language model.
#[derive(Debug, Clone, PartialEq)]
pub struct Embedding(pub Vec<f32>);

impl Embedding {
    pub fn zeros(dim: usize) -> Self {
        Embedding(vec![0.0; dim])
    }

    pub fn dim(&self) -> usize {
        self.0.len()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    pub fn dot(&self, other: &Embedding) -> f32 {
        debug_assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        crate::kernels::dot(&self.0, &other.0)
    }

    pub fn norm(&self) -> f32 {
        crate::kernels::norm(&self.0)
    }

    /// Cosine similarity; zero vectors yield 0.0 (the paper's convention for
    /// models that cannot embed a record, e.g. GloVe on all-OOV input).
    pub fn cosine(&self, other: &Embedding) -> f32 {
        crate::kernels::cosine(&self.0, &other.0)
    }

    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

/// A candidate pair with a similarity score (higher = more similar).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPair {
    pub left: EntityId,
    pub right: EntityId,
    pub score: f32,
}

impl ScoredPair {
    pub fn new(left: EntityId, right: EntityId, score: f32) -> Self {
        ScoredPair { left, right, score }
    }

    /// The `(left, right)` ids without the score — the key blocking dedups
    /// and the clusterers' output ordering sort on.
    pub fn id_pair(&self) -> (EntityId, EntityId) {
        (self.left, self.right)
    }

    /// Descending-score total order with an id-pair tiebreak: `total_cmp`
    /// makes it total over every f32 (NaN included), and the tiebreak makes
    /// sorts independent of input permutation — the determinism UMC's
    /// greedy acceptance and the threshold sweep rely on.
    pub fn cmp_score_desc(&self, other: &ScoredPair) -> std::cmp::Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.id_pair().cmp(&other.id_pair()))
    }

    /// Ascending `(left, right)` order — the canonical order of deduped
    /// candidate lists and clusterer match sets.
    pub fn cmp_id_pair(&self, other: &ScoredPair) -> std::cmp::Ordering {
        self.id_pair().cmp(&other.id_pair())
    }
}

/// Sort scored pairs by descending score, with a deterministic tiebreak on
/// the id pair (stable across runs, which UMC and threshold sweeps need).
pub fn sort_by_score_desc(pairs: &mut [ScoredPair]) {
    pairs.sort_by(|a, b| a.cmp_score_desc(b));
}

/// Sort scored pairs by ascending `(left, right)` id pair.
pub fn sort_by_id_pair(pairs: &mut [ScoredPair]) {
    pairs.sort_by(|a, b| a.cmp_id_pair(b));
}

/// The set of true matches of a dataset.
///
/// Clean-Clean ground truth relates two disjoint collections, so `(l, r)`
/// is stored as-is; Dirty-ER ground truth is order-free, so pairs are
/// normalized to `(min, max)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    pairs: BTreeSet<(EntityId, EntityId)>,
    dirty: bool,
}

impl GroundTruth {
    pub fn clean_clean(pairs: impl IntoIterator<Item = (EntityId, EntityId)>) -> Self {
        GroundTruth {
            pairs: pairs.into_iter().collect(),
            dirty: false,
        }
    }

    pub fn dirty(pairs: impl IntoIterator<Item = (EntityId, EntityId)>) -> Self {
        GroundTruth {
            pairs: pairs
                .into_iter()
                .map(|(a, b)| if a <= b { (a, b) } else { (b, a) })
                .collect(),
            dirty: true,
        }
    }

    pub fn contains(&self, left: EntityId, right: EntityId) -> bool {
        if self.dirty && left > right {
            self.pairs.contains(&(right, left))
        } else {
            self.pairs.contains(&(left, right))
        }
    }

    /// Whether this ground truth is order-free (Dirty ER). Evaluators use
    /// it to normalize predicted pairs the same way the stored pairs were.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (EntityId, EntityId)> + '_ {
        self.pairs.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn restaurant() -> Entity {
        Entity::new(
            EntityId(7),
            vec![
                ("name".into(), "golden palace grill".into()),
                ("address".into(), "123 main street".into()),
                ("cuisine".into(), "".into()),
                ("phone".into(), "5551234567".into()),
            ],
        )
    }

    #[test]
    fn schema_agnostic_concatenates_non_empty_values() {
        let s = restaurant().serialize(&SerializationMode::SchemaAgnostic);
        assert_eq!(s, "golden palace grill 123 main street 5551234567");
    }

    #[test]
    fn schema_based_picks_one_attribute() {
        let e = restaurant();
        let s = e.serialize(&SerializationMode::SchemaBased("name".into()));
        assert_eq!(s, "golden palace grill");
        let missing = e.serialize(&SerializationMode::SchemaBased("title".into()));
        assert_eq!(missing, "");
    }

    #[test]
    fn cosine_handles_zero_vectors() {
        let z = Embedding::zeros(4);
        let v = Embedding(vec![1.0, 0.0, 0.0, 0.0]);
        assert_eq!(z.cosine(&v), 0.0);
        assert!((v.cosine(&v) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ground_truth_dirty_is_order_free() {
        let gt = GroundTruth::dirty([(EntityId(5), EntityId(2))]);
        assert!(gt.contains(EntityId(2), EntityId(5)));
        assert!(gt.contains(EntityId(5), EntityId(2)));
        let cc = GroundTruth::clean_clean([(EntityId(5), EntityId(2))]);
        assert!(cc.contains(EntityId(5), EntityId(2)));
        assert!(!cc.contains(EntityId(2), EntityId(5)));
    }

    #[test]
    fn sort_by_score_breaks_ties_deterministically() {
        let mut pairs = vec![
            ScoredPair::new(EntityId(2), EntityId(0), 0.5),
            ScoredPair::new(EntityId(1), EntityId(0), 0.5),
            ScoredPair::new(EntityId(0), EntityId(0), 0.9),
        ];
        sort_by_score_desc(&mut pairs);
        assert_eq!(pairs[0].left, EntityId(0));
        assert_eq!(pairs[1].left, EntityId(1));
        assert_eq!(pairs[2].left, EntityId(2));
    }
}
