//! Distance metrics shared by every index.
//!
//! The paper's blocking experiments retrieve by cosine similarity over the
//! (often unnormalized) sentence embeddings, while the scalability study's
//! FAISS indices operate on (squared) Euclidean distance. Both are exposed
//! behind one enum so the indices and the blocker agree on what a returned
//! "distance" means: always *lower is closer*.
//!
//! All arithmetic lives in [`crate::kernels`] — the same functions
//! `er_matching::similarity` calls — so a distance computed here is
//! bit-identical to the similarity the matcher derives from it.
//!
//! Historically this type lived in `er-index`; it moved down into er-core
//! with the [`crate::OperatingPoint`] redesign (the unified config names a
//! metric without depending on the index crate). `er_index::Metric`
//! re-exports it, so existing imports keep compiling.

use crate::entity::Embedding;
use crate::kernels::{self, KernelTier};

/// The distance an index minimizes. Every `er_index::NnIndex` reports
/// which one it was built with via its `metric()` accessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// Squared Euclidean distance (monotone in Euclidean, cheaper — the
    /// FAISS convention the paper's blocking code relies on).
    #[default]
    Euclidean,
    /// Cosine *distance*, `1 − cos(a, b)`; zero vectors are maximally far
    /// (distance 1), matching `Embedding::cosine`'s zero-vector convention.
    Cosine,
}

impl Metric {
    /// Distance between two embeddings; lower is closer for both variants.
    pub fn distance(&self, a: &Embedding, b: &Embedding) -> f32 {
        self.distance_slices(a.as_slice(), b.as_slice())
    }

    /// Slice form of [`Metric::distance`], for raw [`crate::EmbeddingMatrix`]
    /// rows. Always the bit-exact Reference tier.
    #[inline]
    pub fn distance_slices(&self, a: &[f32], b: &[f32]) -> f32 {
        self.distance_slices_tier(KernelTier::Reference, a, b)
    }

    /// [`Metric::distance_slices`] computed with an explicit kernel tier.
    /// `Reference` is bit-exact; `Lanes` is the unrolled kernel (same
    /// ≤-tolerance contract as [`KernelTier`]).
    #[inline]
    pub fn distance_slices_tier(&self, tier: KernelTier, a: &[f32], b: &[f32]) -> f32 {
        match self {
            Metric::Euclidean => tier.squared_euclidean(a, b),
            Metric::Cosine => 1.0 - tier.cosine(a, b),
        }
    }

    /// Distance with caller-cached norms — the hot path of every index scan
    /// over an [`crate::EmbeddingMatrix`], whose row norms are precomputed.
    /// Norms are ignored for Euclidean; for cosine, passing the true norms
    /// makes this bit-identical to [`Metric::distance_slices`].
    #[inline]
    pub fn distance_prenorm(&self, a: &[f32], a_norm: f32, b: &[f32], b_norm: f32) -> f32 {
        self.distance_prenorm_tier(KernelTier::Reference, a, a_norm, b, b_norm)
    }

    /// [`Metric::distance_prenorm`] computed with an explicit kernel tier.
    /// The cached row norms stay Reference-computed in every tier (they are
    /// part of the persistence contract); only the per-row accumulation
    /// changes, so the zero-vector convention (distance 1.0 under cosine)
    /// holds in every tier.
    #[inline]
    pub fn distance_prenorm_tier(
        &self,
        tier: KernelTier,
        a: &[f32],
        a_norm: f32,
        b: &[f32],
        b_norm: f32,
    ) -> f32 {
        match self {
            Metric::Euclidean => tier.squared_euclidean(a, b),
            Metric::Cosine => 1.0 - tier.cosine_prenorm(a, a_norm, b, b_norm),
        }
    }

    /// The query norm needed by [`Metric::distance_prenorm`]: computed once
    /// per query, or skipped entirely (0.0) when the metric ignores norms.
    #[inline]
    pub fn query_norm(&self, query: &[f32]) -> f32 {
        self.query_norm_tier(KernelTier::Reference, query)
    }

    /// [`Metric::query_norm`] computed with an explicit kernel tier.
    #[inline]
    pub fn query_norm_tier(&self, tier: KernelTier, query: &[f32]) -> f32 {
        match self {
            Metric::Euclidean => 0.0,
            Metric::Cosine => tier.norm(query),
        }
    }

    /// The similarity a matcher should consume for a hit this metric
    /// returned — the scored-candidate contract of the blocker.
    ///
    /// Cosine recomputes `cos(a, b)` via [`kernels::cosine_prenorm`] with
    /// the cached row norms rather than subtracting the hit distance from 1:
    /// `1 − (1 − c)` drifts from `c` by an ulp whenever `1 − c` rounds
    /// (every `c < 0.5`), while the prenorm recomputation is bit-identical
    /// to [`kernels::cosine`] — and hence to
    /// `er_matching::similarity::cosine` — because the matrices cache
    /// exactly `kernels::norm(row)`. Squared Euclidean has no bounded
    /// similarity twin, so it maps the distance monotonically through
    /// `1 / (1 + d)` ∈ (0, 1]. Both forms are symmetric in `(a, b)` at the
    /// bit level, which lets Dirty-ER dedup order-normalize pairs without
    /// rescoring.
    ///
    /// Deliberately tier-less: scored-candidate similarities are pinned to
    /// the Reference kernel no matter which tier ranked the scan, so the
    /// matcher-facing score contract never drifts when a faster tier is
    /// enabled.
    #[inline]
    pub fn hit_similarity(&self, a: &[f32], a_norm: f32, b: &[f32], b_norm: f32, dist: f32) -> f32 {
        match self {
            Metric::Euclidean => 1.0 / (1.0 + dist),
            Metric::Cosine => kernels::cosine_prenorm(a, a_norm, b, b_norm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Hand-computed three-vector fixture: a = (1,0), b = (0,2), c = (3,4).
    fn fixture() -> (Embedding, Embedding, Embedding) {
        (
            Embedding(vec![1.0, 0.0]),
            Embedding(vec![0.0, 2.0]),
            Embedding(vec![3.0, 4.0]),
        )
    }

    #[test]
    fn euclidean_is_squared() {
        let (a, b, c) = fixture();
        // |a-b|² = 1 + 4, |a-c|² = 4 + 16, |b-c|² = 9 + 4.
        assert_eq!(Metric::Euclidean.distance(&a, &b), 5.0);
        assert_eq!(Metric::Euclidean.distance(&a, &c), 20.0);
        assert_eq!(Metric::Euclidean.distance(&b, &c), 13.0);
        assert_eq!(Metric::Euclidean.distance(&a, &a), 0.0);
    }

    #[test]
    fn cosine_is_one_minus_similarity() {
        let (a, b, c) = fixture();
        // a ⊥ b ⇒ cos = 0 ⇒ distance 1.
        assert_eq!(Metric::Cosine.distance(&a, &b), 1.0);
        // cos(a, c) = 3 / (1·5) = 0.6; cos(b, c) = 8 / (2·5) = 0.8.
        assert!((Metric::Cosine.distance(&a, &c) - 0.4).abs() < 1e-6);
        assert!((Metric::Cosine.distance(&b, &c) - 0.2).abs() < 1e-6);
        assert!(Metric::Cosine.distance(&a, &a).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_is_maximally_far_under_cosine() {
        let (a, _, _) = fixture();
        let z = Embedding::zeros(2);
        assert_eq!(Metric::Cosine.distance(&a, &z), 1.0);
        assert_eq!(Metric::Cosine.distance(&z, &z), 1.0);
    }

    #[test]
    fn prenorm_path_is_bit_identical_to_recomputed_path() {
        let (a, b, c) = fixture();
        let z = Embedding::zeros(2);
        for metric in [Metric::Euclidean, Metric::Cosine] {
            for (x, y) in [(&a, &b), (&a, &c), (&b, &c), (&a, &z), (&z, &z)] {
                let fresh = metric.distance(x, y);
                let cached = metric.distance_prenorm(
                    x.as_slice(),
                    metric.query_norm(x.as_slice()),
                    y.as_slice(),
                    y.norm(),
                );
                assert_eq!(fresh.to_bits(), cached.to_bits(), "{metric:?} {x:?} {y:?}");
            }
        }
    }

    #[test]
    fn hit_similarity_matches_the_kernel_cosine_bitwise() {
        let (a, b, c) = fixture();
        let z = Embedding::zeros(2);
        for (x, y) in [(&a, &b), (&a, &c), (&b, &c), (&a, &z), (&z, &z)] {
            let dist = Metric::Cosine.distance(x, y);
            let sim =
                Metric::Cosine.hit_similarity(x.as_slice(), x.norm(), y.as_slice(), y.norm(), dist);
            assert_eq!(
                sim.to_bits(),
                kernels::cosine(x.as_slice(), y.as_slice()).to_bits(),
                "cosine similarity drifted from the kernel"
            );
        }
        // Euclidean maps distance monotonically into (0, 1].
        let d_ab = Metric::Euclidean.distance(&a, &b);
        let d_ac = Metric::Euclidean.distance(&a, &c);
        let s_ab = Metric::Euclidean.hit_similarity(a.as_slice(), 0.0, b.as_slice(), 0.0, d_ab);
        let s_ac = Metric::Euclidean.hit_similarity(a.as_slice(), 0.0, c.as_slice(), 0.0, d_ac);
        assert!(d_ab < d_ac && s_ab > s_ac);
        assert_eq!(s_ab, 1.0 / 6.0);
    }

    #[test]
    fn metrics_rank_neighbours_differently() {
        // Under Euclidean, (10,0) is far from (1,0); under cosine they are
        // identical directions — the contract-drift case the blocker hit.
        let q = Embedding(vec![1.0, 0.0]);
        let scaled = Embedding(vec![10.0, 0.0]);
        let nearby = Embedding(vec![1.0, 1.0]);
        assert!(Metric::Euclidean.distance(&q, &scaled) > Metric::Euclidean.distance(&q, &nearby));
        assert!(Metric::Cosine.distance(&q, &scaled) < Metric::Cosine.distance(&q, &nearby));
    }
}
