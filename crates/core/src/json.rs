//! Dependency-free JSON reader/writer for model persistence.
//!
//! The container this workspace builds in has no crates.io access, so
//! `serde`/`serde_json` are unavailable; the zoo cache (DESIGN.md inventory
//! row 27) is small enough that a hand-rolled value type suffices.
//!
//! Finite `f32` values round-trip **bit-exactly**: they are written with
//! Rust's shortest-round-trip `Display` and re-parsed with
//! `str::parse::<f32>`, both of which are correctly rounded. Non-finite
//! floats have no JSON number representation (`NaN` bare would be an
//! invalid token), so [`Json::from_f32`] writes them as the string
//! sentinels `"NaN"` / `"inf"` / `"-inf"` — still valid JSON — and
//! [`Json::as_f32`] maps exactly those three strings back. A degenerate
//! (diverged) trained model therefore saves a cache that *re-loads*,
//! rather than one that can never be parsed again; any other string where
//! a number is expected is a clear [`ErError::Parse`].

use crate::error::{ErError, Result};
use std::fmt::Write as _;

/// A parsed JSON value. Numbers keep their raw text so integers above 2^53
/// and floats both survive untouched; object key order is preserved so a
/// load/save cycle is byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Raw number text exactly as written/parsed.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    // ---- constructors ----------------------------------------------------

    /// Serialize an `f32`. Finite values become JSON numbers (bit-exact on
    /// re-parse); NaN and ±Inf become the string sentinels `"NaN"`,
    /// `"inf"`, `"-inf"` that [`Json::as_f32`] understands.
    pub fn from_f32(v: f32) -> Json {
        if v.is_finite() {
            Json::Num(format!("{v}"))
        } else if v.is_nan() {
            Json::Str("NaN".to_string())
        } else if v > 0.0 {
            Json::Str("inf".to_string())
        } else {
            Json::Str("-inf".to_string())
        }
    }

    pub fn from_u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    pub fn from_usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    pub fn from_str_value(v: &str) -> Json {
        Json::Str(v.to_string())
    }

    pub fn from_f32_slice(vs: &[f32]) -> Json {
        Json::Arr(vs.iter().map(|&v| Json::from_f32(v)).collect())
    }

    // ---- accessors -------------------------------------------------------

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object field lookup that fails loudly with the missing key name.
    pub fn expect(&self, key: &str) -> Result<&Json> {
        self.get(key)
            .ok_or_else(|| ErError::Parse(format!("missing field `{key}`")))
    }

    pub fn as_str(&self) -> Result<&str> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(ErError::Parse(format!("expected string, got {other:?}"))),
        }
    }

    /// Read an `f32`: a JSON number, or one of the non-finite sentinels
    /// `"NaN"` / `"inf"` / `"-inf"` written by [`Json::from_f32`]. Any
    /// other string is an error — finite floats never hide in strings.
    pub fn as_f32(&self) -> Result<f32> {
        match self {
            Json::Num(raw) => raw
                .parse::<f32>()
                .map_err(|e| ErError::Parse(format!("bad f32 `{raw}`: {e}"))),
            Json::Str(s) => match s.as_str() {
                "NaN" => Ok(f32::NAN),
                "inf" => Ok(f32::INFINITY),
                "-inf" => Ok(f32::NEG_INFINITY),
                other => Err(ErError::Parse(format!(
                    "expected number or non-finite sentinel, got string `{other}`"
                ))),
            },
            other => Err(ErError::Parse(format!("expected number, got {other:?}"))),
        }
    }

    pub fn as_u64(&self) -> Result<u64> {
        match self {
            Json::Num(raw) => raw
                .parse::<u64>()
                .map_err(|e| ErError::Parse(format!("bad u64 `{raw}`: {e}"))),
            other => Err(ErError::Parse(format!("expected number, got {other:?}"))),
        }
    }

    pub fn as_usize(&self) -> Result<usize> {
        Ok(self.as_u64()? as usize)
    }

    pub fn as_arr(&self) -> Result<&[Json]> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(ErError::Parse(format!("expected array, got {other:?}"))),
        }
    }

    pub fn as_obj(&self) -> Result<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(ErError::Parse(format!("expected object, got {other:?}"))),
        }
    }

    pub fn as_f32_vec(&self) -> Result<Vec<f32>> {
        self.as_arr()?.iter().map(Json::as_f32).collect()
    }

    // ---- writer ----------------------------------------------------------

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(raw) => out.push_str(raw),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    // ---- parser ----------------------------------------------------------

    pub fn parse(text: &str) -> Result<Json> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(ErError::Parse(format!(
                "trailing data at byte {} of {}",
                p.pos,
                p.bytes.len()
            )));
        }
        Ok(value)
    }
}

/// Compact rendering; `Json::parse(&v.to_string())` round-trips exactly.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn fail(&self, what: &str) -> ErError {
        ErError::Parse(format!("{what} at byte {}", self.pos))
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek().ok_or_else(|| self.fail("unexpected end"))? {
            b'n' => {
                self.eat_literal("null")?;
                Ok(Json::Null)
            }
            b't' => {
                self.eat_literal("true")?;
                Ok(Json::Bool(true))
            }
            b'f' => {
                self.eat_literal("false")?;
                Ok(Json::Bool(false))
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(self.fail(&format!("unexpected byte `{}`", other as char))),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.fail("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.fail("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .peek()
                .ok_or_else(|| self.fail("unterminated string"))?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.fail("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xd800..0xdc00).contains(&first) {
                                // Surrogate pair.
                                self.eat_literal("\\u")?;
                                let second = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&second) {
                                    return Err(self.fail("bad low surrogate"));
                                }
                                0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("bad unicode escape"))?,
                            );
                        }
                        _ => return Err(self.fail("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 char (input is a &str, so this is safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.fail("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.fail("short unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.fail("bad unicode escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.fail("bad unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if self.pos == start {
            return Err(self.fail("expected number"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.fail("bad number"))?;
        Ok(Json::Num(raw.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let text = r#"{"a":[1,2.5,-3e2],"b":{"nested":"yes"},"c":null,"d":true,"e":""}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.to_string(), text);
        assert_eq!(
            parsed
                .get("b")
                .unwrap()
                .get("nested")
                .unwrap()
                .as_str()
                .unwrap(),
            "yes"
        );
    }

    #[test]
    fn f32_round_trip_is_bit_exact() {
        let values = [
            0.0f32,
            -0.0,
            1.0,
            -1.5,
            std::f32::consts::PI,
            1.1754944e-38,
            3.4028235e38,
            -4.2e-12,
            0.1 + 0.2,
        ];
        for v in values {
            let json = Json::from_f32(v);
            let back = Json::parse(&json.to_string()).unwrap().as_f32().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "value {v} changed bits");
        }
    }

    #[test]
    fn non_finite_f32s_round_trip_via_sentinels() {
        // NaN / ±Inf cannot be JSON numbers; they must survive a full
        // write → parse → read cycle as the string sentinels, so a
        // degenerate trained model still produces a loadable cache.
        let json = Json::from_f32_slice(&[f32::NAN, f32::INFINITY, f32::NEG_INFINITY, 1.5]);
        let text = json.to_string();
        assert_eq!(text, r#"["NaN","inf","-inf",1.5]"#);
        let back = Json::parse(&text).unwrap().as_f32_vec().unwrap();
        assert!(back[0].is_nan());
        assert_eq!(back[1], f32::INFINITY);
        assert_eq!(back[2], f32::NEG_INFINITY);
        assert_eq!(back[3].to_bits(), 1.5f32.to_bits());
    }

    #[test]
    fn arbitrary_strings_are_not_numbers() {
        assert!(Json::Str("1.5".to_string()).as_f32().is_err());
        assert!(Json::Str("Infinity".to_string()).as_f32().is_err());
        assert!(Json::Null.as_f32().is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let s = "line\nbreak \"quote\" back\\slash tab\t unicode é 中 \u{0007}";
        let json = Json::Str(s.to_string());
        let back = Json::parse(&json.to_string()).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
    }

    #[test]
    fn surrogate_pairs_parse() {
        let escaped = Json::parse(r#""\ud83e\udd80""#).unwrap();
        assert_eq!(escaped.as_str().unwrap(), "🦀");
        let literal = Json::parse(r#""🦀""#).unwrap();
        assert_eq!(literal.as_str().unwrap(), "🦀");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }
}
