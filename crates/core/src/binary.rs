//! Compact binary persistence — the serving-path companion of [`crate::json`].
//!
//! The JSON codec keeps the model zoo human-inspectable; the indices the
//! `er-serve` Resolver persists are pure float/integer payloads where JSON
//! would triple the size and burn the load path on text parsing. This
//! module defines the one binary container every persisted artifact
//! (matrix, index, resolver) shares:
//!
//! ```text
//! file    := header payload
//! header  := magic(4 = "ERBF") version(u16) kind(u16)
//!            section_count(u32) epoch(u64) payload_len(u64) checksum(u64)
//! payload := section*
//! section := tag(u32) len(u64) bytes[len]
//! ```
//!
//! Everything is **little-endian**; `checksum` is FNV-1a 64 over the
//! epoch field followed by the raw payload bytes (the epoch drives replay
//! decisions, so it gets the same bit-flip protection as the data), so a
//! flipped bit anywhere in the file fails loudly with
//! [`ErError::Corrupt`] instead of reconstituting a silently wrong index.
//! `kind` names what the payload is (matrix, HNSW graph, resolver, …) so a
//! file saved as one artifact can never be loaded as another; `version` is
//! bumped on any layout change and old readers reject newer files.
//!
//! Loads are *reconstruction-free*: every derived quantity that is
//! expensive or float-sensitive (row norms, graph adjacency, LSH
//! hyperplanes and signatures) is stored verbatim and read back with
//! `f32::from_le_bytes`, bit-for-bit — a load never re-derives what the
//! build already computed (see [`matrix_from_reader`], which trusts the
//! stored norms instead of calling `kernels::norm` again).
//!
//! `epoch` is the **journal epoch**: a counter the serving layer bumps on
//! every checkpoint so a save file and the write-ahead journals beside it
//! (see [`crate::journal`]) compose deterministically — a journal tail is
//! replayed over a loaded container only when their epochs agree.
//! Artifacts that never journal write epoch `0`.

use crate::pq::{PqCodebook, PqCodes};
use crate::quant::QuantizedMatrix;
use crate::{EmbeddingMatrix, ErError, Result};

/// File magic: "ER Binary Format".
pub const MAGIC: [u8; 4] = *b"ERBF";
/// Container layout version; bump on any incompatible change.
/// Version 2 widened the header with the journal-epoch field.
pub const VERSION: u16 = 2;
/// Fixed header size in bytes (magic + version + kind + section_count +
/// epoch + payload_len + checksum).
pub const HEADER_LEN: usize = 36;

/// `kind` values of the artifacts persisted across the workspace. Kept in
/// one place so two crates can never claim the same kind byte.
pub mod kind {
    pub const MATRIX: u16 = 1;
    pub const EXACT_INDEX: u16 = 2;
    pub const HNSW_INDEX: u16 = 3;
    pub const LSH_INDEX: u16 = 4;
    pub const RESOLVER: u16 = 5;
}

/// FNV-1a 64 over raw bytes (the byte twin of `er_text::ngram::fnv1a`,
/// which `er-core` cannot depend on).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn corrupt(what: impl std::fmt::Display) -> ErError {
    ErError::Corrupt(what.to_string())
}

/// Append-only little-endian byte writer for one section payload.
#[derive(Debug, Default, Clone)]
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    pub fn new() -> BinWriter {
        BinWriter::default()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed f32 run — the bulk payload of matrices/hyperplanes.
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.put_usize(vs.len());
        self.buf.reserve(vs.len() * 4);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Length-prefixed u32 run (adjacency lists, id maps).
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_usize(vs.len());
        self.buf.reserve(vs.len() * 4);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Length-prefixed u64 run (LSH signatures).
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        self.buf.reserve(vs.len() * 8);
        for v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Length-prefixed i8 run (int8 quantization codes).
    pub fn put_i8_slice(&mut self, vs: &[i8]) {
        self.put_usize(vs.len());
        self.buf.extend(vs.iter().map(|&v| v as u8));
    }

    /// Length-prefixed u8 run (PQ codes).
    pub fn put_u8_slice(&mut self, vs: &[u8]) {
        self.put_usize(vs.len());
        self.buf.extend_from_slice(vs);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed raw bytes (nested containers).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// One bit per flag, packed 8-per-byte (tombstone maps).
    pub fn put_bitmap(&mut self, flags: &[bool]) {
        self.put_usize(flags.len());
        for chunk in flags.chunks(8) {
            let mut byte = 0u8;
            for (i, &f) in chunk.iter().enumerate() {
                if f {
                    byte |= 1 << i;
                }
            }
            self.buf.push(byte);
        }
    }

    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a section payload; every read is bounds-checked and returns
/// [`ErError::Corrupt`] on truncation rather than panicking.
#[derive(Debug, Clone)]
pub struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    pub fn new(buf: &'a [u8]) -> BinReader<'a> {
        BinReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "truncated payload: needed {n} bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// A u64 length that must also fit the remaining buffer when each item
    /// occupies at least `item_bytes` — rejects hostile lengths before the
    /// allocation, not after.
    fn get_len(&mut self, item_bytes: usize) -> Result<usize> {
        let len = self.get_u64()? as usize;
        if len
            .checked_mul(item_bytes)
            .is_none_or(|b| b > self.remaining())
        {
            return Err(corrupt(format!(
                "length {len} overruns the remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }

    pub fn get_usize(&mut self) -> Result<usize> {
        Ok(self.get_u64()? as usize)
    }

    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn get_f32_vec(&mut self) -> Result<Vec<f32>> {
        let len = self.get_len(4)?;
        let bytes = self.take(len * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>> {
        let len = self.get_len(4)?;
        let bytes = self.take(len * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
            .collect())
    }

    pub fn get_u64_vec(&mut self) -> Result<Vec<u64>> {
        let len = self.get_len(8)?;
        let bytes = self.take(len * 8)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }

    pub fn get_i8_vec(&mut self) -> Result<Vec<i8>> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        Ok(bytes.iter().map(|&b| b as i8).collect())
    }

    pub fn get_u8_vec(&mut self) -> Result<Vec<u8>> {
        let len = self.get_len(1)?;
        Ok(self.take(len)?.to_vec())
    }

    pub fn get_str(&mut self) -> Result<String> {
        let len = self.get_len(1)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("string section is not valid UTF-8"))
    }

    pub fn get_bytes(&mut self) -> Result<&'a [u8]> {
        let len = self.get_len(1)?;
        self.take(len)
    }

    pub fn get_bitmap(&mut self) -> Result<Vec<bool>> {
        let len = self.get_len(0)?;
        let bytes = self.take(len.div_ceil(8))?;
        Ok((0..len)
            .map(|i| bytes[i / 8] & (1 << (i % 8)) != 0)
            .collect())
    }
}

/// Assemble a complete file at epoch 0: checksummed header + the given
/// `(tag, bytes)` sections in order. Artifacts that never journal use this.
pub fn write_container(kind: u16, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    write_container_epoch(kind, 0, sections)
}

/// Assemble a complete file stamped with a journal epoch.
pub fn write_container_epoch(kind: u16, epoch: u64, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut payload = Vec::new();
    for (tag, bytes) in sections {
        payload.extend_from_slice(&tag.to_le_bytes());
        payload.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        payload.extend_from_slice(bytes);
    }
    let mut summed = Vec::with_capacity(8 + payload.len());
    summed.extend_from_slice(&epoch.to_le_bytes());
    summed.extend_from_slice(&payload);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(&summed).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// The `kind` of a container without validating its payload — how a loader
/// holding a nested blob (e.g. one resolver shard) dispatches to the right
/// index decoder.
pub fn peek_kind(bytes: &[u8]) -> Result<u16> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "header needs {HEADER_LEN} bytes, got {}",
            bytes.len()
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(corrupt("bad magic (not an ERBF container)"));
    }
    Ok(u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes")))
}

/// Validate the header (magic, version, kind, length, checksum) and return
/// the payload sections as `(tag, bytes)` in file order, discarding the
/// journal epoch.
pub fn read_container(bytes: &[u8], expect_kind: u16) -> Result<Vec<(u32, &[u8])>> {
    read_container_epoch(bytes, expect_kind).map(|(_, sections)| sections)
}

/// The payload sections of a container as `(tag, bytes)` in file order.
pub type Sections<'a> = Vec<(u32, &'a [u8])>;

/// Validate the header (magic, version, kind, length, checksum) and return
/// the journal epoch plus the payload sections as `(tag, bytes)` in file
/// order.
pub fn read_container_epoch(bytes: &[u8], expect_kind: u16) -> Result<(u64, Sections<'_>)> {
    if bytes.len() < HEADER_LEN {
        return Err(corrupt(format!(
            "header needs {HEADER_LEN} bytes, got {}",
            bytes.len()
        )));
    }
    if bytes[0..4] != MAGIC {
        return Err(corrupt("bad magic (not an ERBF container)"));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(corrupt(format!(
            "container version {version} unsupported (expected {VERSION})"
        )));
    }
    let kind = u16::from_le_bytes(bytes[6..8].try_into().expect("2 bytes"));
    if kind != expect_kind {
        return Err(corrupt(format!(
            "container holds kind {kind}, expected kind {expect_kind}"
        )));
    }
    let section_count = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes")) as usize;
    let epoch = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload_len = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes")) as usize;
    let checksum = u64::from_le_bytes(bytes[28..36].try_into().expect("8 bytes"));
    let payload = &bytes[HEADER_LEN..];
    if payload.len() != payload_len {
        return Err(corrupt(format!(
            "payload is {} bytes, header declares {payload_len}",
            payload.len()
        )));
    }
    let mut summed = Vec::with_capacity(8 + payload.len());
    summed.extend_from_slice(&epoch.to_le_bytes());
    summed.extend_from_slice(payload);
    if fnv1a64(&summed) != checksum {
        return Err(corrupt("payload checksum mismatch"));
    }
    let mut sections = Vec::with_capacity(section_count);
    let mut reader = BinReader::new(payload);
    for _ in 0..section_count {
        let tag = reader.get_u32()?;
        let bytes = reader.get_bytes()?;
        sections.push((tag, bytes));
    }
    if reader.remaining() != 0 {
        return Err(corrupt(format!(
            "{} trailing bytes after the last section",
            reader.remaining()
        )));
    }
    Ok((epoch, sections))
}

/// The section of a container with the given tag, or a typed error naming
/// what is missing.
pub fn section<'a>(sections: &[(u32, &'a [u8])], tag: u32, name: &str) -> Result<&'a [u8]> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, b)| *b)
        .ok_or_else(|| corrupt(format!("missing section {name} (tag {tag})")))
}

/// Serialize a matrix: dim, flat row-major floats, and the *cached norms*
/// verbatim — the load path must never recompute them.
pub fn matrix_to_writer(w: &mut BinWriter, m: &EmbeddingMatrix) {
    w.put_usize(m.dim());
    w.put_f32_slice(m.data());
    w.put_f32_slice(m.norms());
}

/// Deserialize a matrix written by [`matrix_to_writer`]: one pass over the
/// byte buffer straight into the final buffers, norms trusted bit-for-bit
/// via [`EmbeddingMatrix::from_parts`] (no `kernels::norm` calls).
pub fn matrix_from_reader(r: &mut BinReader) -> Result<EmbeddingMatrix> {
    let dim = r.get_usize()?;
    let data = r.get_f32_vec()?;
    let norms = r.get_f32_vec()?;
    EmbeddingMatrix::from_parts(dim, data, norms)
}

/// Convenience: a standalone `kind::MATRIX` container.
pub fn matrix_to_bytes(m: &EmbeddingMatrix) -> Vec<u8> {
    let mut w = BinWriter::new();
    matrix_to_writer(&mut w, m);
    write_container(kind::MATRIX, &[(1, w.into_bytes())])
}

/// Inverse of [`matrix_to_bytes`].
pub fn matrix_from_bytes(bytes: &[u8]) -> Result<EmbeddingMatrix> {
    let sections = read_container(bytes, kind::MATRIX)?;
    let body = section(&sections, 1, "matrix")?;
    matrix_from_reader(&mut BinReader::new(body))
}

/// Serialize an int8-quantized matrix: dim, codes, and the per-row affine
/// maps. The derived statistics (code sums, dequantized norms) are
/// deterministic functions of the codes and are recomputed at load — unlike
/// f32 row norms there is no rounding freedom to preserve.
pub fn quantized_to_writer(w: &mut BinWriter, q: &QuantizedMatrix) {
    w.put_usize(q.dim());
    w.put_i8_slice(q.codes());
    w.put_f32_slice(q.scales());
    w.put_f32_slice(q.zeros());
}

/// Inverse of [`quantized_to_writer`]; shape mismatches surface as typed
/// [`ErError::Parse`] from `QuantizedMatrix::from_parts`.
pub fn quantized_from_reader(r: &mut BinReader) -> Result<QuantizedMatrix> {
    let dim = r.get_usize()?;
    let codes = r.get_i8_vec()?;
    let scales = r.get_f32_vec()?;
    let zeros = r.get_f32_vec()?;
    QuantizedMatrix::from_parts(dim, codes, scales, zeros)
}

/// Serialize a PQ codebook: shape header + flat centroid floats verbatim.
pub fn codebook_to_writer(w: &mut BinWriter, book: &PqCodebook) {
    w.put_usize(book.dim());
    w.put_usize(book.subspaces());
    w.put_usize(book.centroids());
    w.put_f32_slice(book.data());
}

/// Inverse of [`codebook_to_writer`].
pub fn codebook_from_reader(r: &mut BinReader) -> Result<PqCodebook> {
    let dim = r.get_usize()?;
    let subspaces = r.get_usize()?;
    let centroids = r.get_usize()?;
    let data = r.get_f32_vec()?;
    PqCodebook::from_parts(dim, subspaces, centroids, data)
}

/// Serialize PQ codes (one byte per subspace per row). Reconstructed-row
/// norms are recomputed from the codebook at load.
pub fn pq_codes_to_writer(w: &mut BinWriter, codes: &PqCodes) {
    w.put_u8_slice(codes.codes());
}

/// Inverse of [`pq_codes_to_writer`]; out-of-range codes are typed errors.
pub fn pq_codes_from_reader(r: &mut BinReader, book: &PqCodebook) -> Result<PqCodes> {
    let codes = r.get_u8_vec()?;
    PqCodes::from_parts(book, codes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_and_slice_round_trips() {
        let mut w = BinWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(-0.0);
        w.put_f32_slice(&[1.5, f32::MIN_POSITIVE, -3.25]);
        w.put_u32_slice(&[0, 42]);
        w.put_u64_slice(&[u64::MAX]);
        w.put_str("golden palace");
        w.put_bitmap(&[true, false, false, true, true, false, true, true, true]);
        let bytes = w.into_bytes();
        let mut r = BinReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap().to_bits(), (-0.0f32).to_bits());
        let fs = r.get_f32_vec().unwrap();
        assert_eq!(fs.len(), 3);
        assert_eq!(fs[1].to_bits(), f32::MIN_POSITIVE.to_bits());
        assert_eq!(r.get_u32_vec().unwrap(), vec![0, 42]);
        assert_eq!(r.get_u64_vec().unwrap(), vec![u64::MAX]);
        assert_eq!(r.get_str().unwrap(), "golden palace");
        assert_eq!(
            r.get_bitmap().unwrap(),
            vec![true, false, false, true, true, false, true, true, true]
        );
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_are_typed_errors() {
        let mut w = BinWriter::new();
        w.put_f32_slice(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        // Chop the buffer mid-slice: every prefix must fail cleanly.
        for cut in 0..bytes.len() - 1 {
            let mut r = BinReader::new(&bytes[..cut]);
            assert!(
                matches!(r.get_f32_vec(), Err(ErError::Corrupt(_))),
                "cut at {cut} did not fail as Corrupt"
            );
        }
    }

    #[test]
    fn hostile_length_is_rejected_before_allocation() {
        let mut w = BinWriter::new();
        w.put_u64(u64::MAX); // declares ~1.8e19 items
        let bytes = w.into_bytes();
        assert!(matches!(
            BinReader::new(&bytes).get_f32_vec(),
            Err(ErError::Corrupt(_))
        ));
        assert!(matches!(
            BinReader::new(&bytes).get_str(),
            Err(ErError::Corrupt(_))
        ));
    }

    #[test]
    fn container_round_trips_and_checks_integrity() {
        let sections = vec![(1u32, vec![1u8, 2, 3]), (7u32, vec![]), (2u32, vec![9u8])];
        let file = write_container(kind::MATRIX, &sections);
        assert_eq!(peek_kind(&file).unwrap(), kind::MATRIX);
        let back = read_container(&file, kind::MATRIX).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[0], (1, &[1u8, 2, 3][..]));
        assert_eq!(back[1], (7, &[][..]));
        assert_eq!(section(&back, 2, "third").unwrap(), &[9u8][..]);
        assert!(matches!(
            section(&back, 99, "nope"),
            Err(ErError::Corrupt(_))
        ));

        // Wrong kind, wrong magic, flipped payload bit, truncation: all typed.
        assert!(matches!(
            read_container(&file, kind::HNSW_INDEX),
            Err(ErError::Corrupt(_))
        ));
        let mut bad_magic = file.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            read_container(&bad_magic, kind::MATRIX),
            Err(ErError::Corrupt(_))
        ));
        let mut flipped = file.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x40;
        assert!(matches!(
            read_container(&flipped, kind::MATRIX),
            Err(ErError::Corrupt(_))
        ));
        for cut in 0..file.len() {
            assert!(
                matches!(
                    read_container(&file[..cut], kind::MATRIX),
                    Err(ErError::Corrupt(_))
                ),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn epoch_round_trips_and_defaults_to_zero() {
        let sections = vec![(1u32, vec![5u8, 6])];
        let stamped = write_container_epoch(kind::RESOLVER, 42, &sections);
        let (epoch, back) = read_container_epoch(&stamped, kind::RESOLVER).unwrap();
        assert_eq!(epoch, 42);
        assert_eq!(back[0], (1, &[5u8, 6][..]));
        // The epoch-less writer stamps 0, and the epoch-less reader accepts
        // any epoch (it only discards it).
        let plain = write_container(kind::RESOLVER, &sections);
        let (epoch, _) = read_container_epoch(&plain, kind::RESOLVER).unwrap();
        assert_eq!(epoch, 0);
        assert!(read_container(&stamped, kind::RESOLVER).is_ok());
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut file = write_container(kind::MATRIX, &[(1, vec![0u8])]);
        file[4] = VERSION as u8 + 1;
        assert!(matches!(
            read_container(&file, kind::MATRIX),
            Err(ErError::Corrupt(_))
        ));
    }

    #[test]
    fn matrix_round_trip_is_bit_identical_without_renorming() {
        let mut m = EmbeddingMatrix::new(3);
        m.push(&[1.0, -0.0, 2.5]);
        m.push(&[f32::MIN_POSITIVE, 4.0, -8.125]);
        let bytes = matrix_to_bytes(&m);
        let back = matrix_from_bytes(&bytes).unwrap();
        assert_eq!(back.dim(), 3);
        assert_eq!(back.len(), 2);
        for i in 0..2 {
            for (a, b) in m.row(i).iter().zip(back.row(i)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(m.norm(i).to_bits(), back.norm(i).to_bits());
        }
        // An empty matrix (dim preserved) survives too.
        let empty = EmbeddingMatrix::new(48);
        let back = matrix_from_bytes(&matrix_to_bytes(&empty)).unwrap();
        assert_eq!(back.dim(), 48);
        assert!(back.is_empty());
    }
}
