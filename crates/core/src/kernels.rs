//! The single home of the dense distance kernels.
//!
//! Every similarity the pipeline computes — the indices' search distances,
//! the blocker's top-k ranking, the matchers' embedding features — reduces
//! to three slice operations: dot product, (squared) Euclidean distance and
//! cosine. Before this module they were re-implemented per crate
//! (`Embedding::dot`, `er_index::Metric`, the LSH signature loop), which is
//! how kernel drift starts; now `er-index`, `er-matching` and `er-tensor`
//! all call these functions, and the accumulation order is fixed (a plain
//! left-to-right fold) so results are bit-identical wherever they are
//! computed.
//!
//! The `_prenorm` variants take cached norms — the point of
//! [`crate::EmbeddingMatrix`]'s precomputed row norms: cosine against a
//! stored row touches the row once for the dot product instead of twice.

/// Left-to-right dot product. Accumulation order is part of the contract:
/// it matches what `a.iter().zip(b).map(|(x, y)| x * y).sum()` produced
/// before this module existed, so cached and recomputed paths agree bitwise.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `Σ aᵢ²` — the dot of a slice with itself.
#[inline]
pub fn squared_norm(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    squared_norm(a).sqrt()
}

/// Squared Euclidean distance `‖a − b‖²` (monotone in Euclidean, cheaper —
/// the FAISS convention the blocking code relies on).
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "squared_euclidean: dimension mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Cosine similarity with both norms recomputed; zero vectors yield 0.0
/// (the paper's convention for models that cannot embed a record, e.g.
/// GloVe on all-OOV input).
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    cosine_prenorm(a, norm(a), b, norm(b))
}

/// Cosine similarity with caller-supplied norms — the cached-norm fast
/// path. Passing `norm(a)`/`norm(b)` makes it bit-identical to [`cosine`];
/// the denominator is the same `‖a‖·‖b‖` product either way.
#[inline]
pub fn cosine_prenorm(a: &[f32], a_norm: f32, b: &[f32], b_norm: f32) -> f32 {
    let denom = a_norm * b_norm;
    if denom == 0.0 {
        0.0
    } else {
        dot(a, b) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_the_iterator_fold_bitwise() {
        // The exact expression the kernels replaced, on awkward values
        // where f32 addition order matters.
        let a = [1.0e7f32, 1.0, -1.0e7, 0.25, 3.5e-4];
        let b = [0.3f32, 1.0e7, 0.3, -4.0, 7.0];
        let folded: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot(&a, &b).to_bits(), folded.to_bits());
    }

    #[test]
    fn squared_euclidean_matches_hand_fixture() {
        // a = (1,0), b = (0,2), c = (3,4).
        assert_eq!(squared_euclidean(&[1.0, 0.0], &[0.0, 2.0]), 5.0);
        assert_eq!(squared_euclidean(&[1.0, 0.0], &[3.0, 4.0]), 20.0);
        assert_eq!(squared_euclidean(&[0.0, 2.0], &[3.0, 4.0]), 13.0);
        assert_eq!(squared_euclidean(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_handles_zero_vectors_and_matches_prenorm() {
        let a = [1.0f32, 0.0];
        let c = [3.0f32, 4.0];
        assert_eq!(cosine(&[0.0, 0.0], &a), 0.0);
        assert!((cosine(&a, &c) - 0.6).abs() < 1e-6);
        let pre = cosine_prenorm(&a, norm(&a), &c, norm(&c));
        assert_eq!(cosine(&a, &c).to_bits(), pre.to_bits());
    }

    #[test]
    fn norm_is_sqrt_of_squared_norm() {
        let v = [3.0f32, 4.0];
        assert_eq!(squared_norm(&v), 25.0);
        assert_eq!(norm(&v), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }
}
