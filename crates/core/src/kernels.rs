//! The single home of the dense distance kernels.
//!
//! Every similarity the pipeline computes — the indices' search distances,
//! the blocker's top-k ranking, the matchers' embedding features — reduces
//! to three slice operations: dot product, (squared) Euclidean distance and
//! cosine. Before this module they were re-implemented per crate
//! (`Embedding::dot`, `er_index::Metric`, the LSH signature loop), which is
//! how kernel drift starts; now `er-index`, `er-matching` and `er-tensor`
//! all call these functions, and the accumulation order is fixed (a plain
//! left-to-right fold) so results are bit-identical wherever they are
//! computed.
//!
//! The `_prenorm` variants take cached norms — the point of
//! [`crate::EmbeddingMatrix`]'s precomputed row norms: cosine against a
//! stored row touches the row once for the dot product instead of twice.

/// Left-to-right dot product. Accumulation order is part of the contract:
/// it matches what `a.iter().zip(b).map(|(x, y)| x * y).sum()` produced
/// before this module existed, so cached and recomputed paths agree bitwise.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot: dimension mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// `Σ aᵢ²` — the dot of a slice with itself.
#[inline]
pub fn squared_norm(a: &[f32]) -> f32 {
    dot(a, a)
}

/// Euclidean norm `‖a‖`.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    squared_norm(a).sqrt()
}

/// Squared Euclidean distance `‖a − b‖²` (monotone in Euclidean, cheaper —
/// the FAISS convention the blocking code relies on).
#[inline]
pub fn squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "squared_euclidean: dimension mismatch");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Cosine similarity with both norms recomputed; zero vectors yield 0.0
/// (the paper's convention for models that cannot embed a record, e.g.
/// GloVe on all-OOV input).
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    cosine_prenorm(a, norm(a), b, norm(b))
}

/// Cosine similarity with caller-supplied norms — the cached-norm fast
/// path. Passing `norm(a)`/`norm(b)` makes it bit-identical to [`cosine`];
/// the denominator is the same `‖a‖·‖b‖` product either way.
#[inline]
pub fn cosine_prenorm(a: &[f32], a_norm: f32, b: &[f32], b_norm: f32) -> f32 {
    let denom = a_norm * b_norm;
    if denom == 0.0 {
        0.0
    } else {
        dot(a, b) / denom
    }
}

// ---------------------------------------------------------------------------
// Lanes tier: 8-accumulator unrolled kernels.
//
// The reference fold above carries one loop-dependent f32 accumulator, so the
// CPU serialises every add (and the compiler may not reorder float adds).
// Splitting the sum across 8 independent lane accumulators breaks that chain:
// the loop body becomes 8 independent multiply-adds that vectorise to SSE/AVX
// lanes. The price is a *different* (but still fixed) accumulation order, so
// Lanes results are deterministic run-to-run and machine-independent in
// ordering, yet not bit-identical to the Reference fold — see `KernelTier`
// for the contract.
// ---------------------------------------------------------------------------

/// Number of independent accumulator lanes in the unrolled kernels.
pub const LANES: usize = 8;

/// Fixed lane reduction: pairwise tree `((0+4)+(2+6)) + ((1+5)+(3+7))`.
/// The order is part of the Lanes contract — changing it changes results.
#[inline]
fn reduce_lanes(acc: [f32; LANES]) -> f32 {
    ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]))
}

/// 8-lane dot product. Element `i` lands in lane `i % 8` (the trailing
/// partial chunk continues the same assignment), then lanes reduce in the
/// fixed tree order of `reduce_lanes`.
#[inline]
pub fn dot_lanes(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot_lanes: dimension mismatch");
    let mut acc = [0.0f32; LANES];
    let main = a.len() - a.len() % LANES;
    let (a_main, a_tail) = a.split_at(main);
    let (b_main, b_tail) = b.split_at(main);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for j in 0..LANES {
            acc[j] += ca[j] * cb[j];
        }
    }
    for (j, (x, y)) in a_tail.iter().zip(b_tail).enumerate() {
        acc[j] += x * y;
    }
    reduce_lanes(acc)
}

/// 8-lane squared Euclidean distance; same lane assignment and reduction
/// order as [`dot_lanes`].
#[inline]
pub fn squared_euclidean_lanes(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(
        a.len(),
        b.len(),
        "squared_euclidean_lanes: dimension mismatch"
    );
    let mut acc = [0.0f32; LANES];
    let main = a.len() - a.len() % LANES;
    let (a_main, a_tail) = a.split_at(main);
    let (b_main, b_tail) = b.split_at(main);
    for (ca, cb) in a_main.chunks_exact(LANES).zip(b_main.chunks_exact(LANES)) {
        for j in 0..LANES {
            let d = ca[j] - cb[j];
            acc[j] += d * d;
        }
    }
    for (j, (x, y)) in a_tail.iter().zip(b_tail).enumerate() {
        let d = x - y;
        acc[j] += d * d;
    }
    reduce_lanes(acc)
}

/// `Σ aᵢ²` via the 8-lane kernel.
#[inline]
pub fn squared_norm_lanes(a: &[f32]) -> f32 {
    dot_lanes(a, a)
}

/// Selector between the scalar reference fold and the unrolled lane kernels.
///
/// The contract, per tier:
///
/// * [`KernelTier::Reference`] — the original left-to-right fold, verbatim.
///   Bit-exact: results equal `a.iter().zip(b).map(|(x, y)| x * y).sum()`
///   and every cached value in the repo (row norms, persisted scores).
///   This is the default everywhere.
/// * [`KernelTier::Lanes`] — 8 independent accumulators with a fixed tree
///   reduction. Deterministic run-to-run, but a different rounding path:
///   agreement with Reference is ≤-tolerance (relative error ≤ 1e-6 of the
///   absolute-value sum), not bitwise.
///
/// Invariants that hold in *every* tier: zero-vector cosine is 0.0 (the
/// paper's all-OOV convention), and `f(a, b)` with `a.len() == b.len() == 0`
/// is 0.0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelTier {
    /// Bit-exact left-to-right scalar fold (the pre-tier kernels, verbatim).
    #[default]
    Reference,
    /// 8-lane unrolled kernels with a fixed lane-reduction order.
    Lanes,
}

impl KernelTier {
    /// Dot product in this tier.
    #[inline]
    pub fn dot(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            KernelTier::Reference => dot(a, b),
            KernelTier::Lanes => dot_lanes(a, b),
        }
    }

    /// `Σ aᵢ²` in this tier.
    #[inline]
    pub fn squared_norm(self, a: &[f32]) -> f32 {
        match self {
            KernelTier::Reference => squared_norm(a),
            KernelTier::Lanes => squared_norm_lanes(a),
        }
    }

    /// Euclidean norm in this tier (`sqrt` of the tier's squared norm).
    #[inline]
    pub fn norm(self, a: &[f32]) -> f32 {
        self.squared_norm(a).sqrt()
    }

    /// Squared Euclidean distance in this tier.
    #[inline]
    pub fn squared_euclidean(self, a: &[f32], b: &[f32]) -> f32 {
        match self {
            KernelTier::Reference => squared_euclidean(a, b),
            KernelTier::Lanes => squared_euclidean_lanes(a, b),
        }
    }

    /// Cosine similarity in this tier; zero vectors yield 0.0 in every tier.
    #[inline]
    pub fn cosine(self, a: &[f32], b: &[f32]) -> f32 {
        self.cosine_prenorm(a, self.norm(a), b, self.norm(b))
    }

    /// Cosine with caller-supplied norms. The zero-denominator convention
    /// (0.0) is tier-independent; only the dot accumulation order varies.
    #[inline]
    pub fn cosine_prenorm(self, a: &[f32], a_norm: f32, b: &[f32], b_norm: f32) -> f32 {
        let denom = a_norm * b_norm;
        if denom == 0.0 {
            0.0
        } else {
            self.dot(a, b) / denom
        }
    }

    /// Stable lowercase name, used in bench output and persisted headers.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Reference => "reference",
            KernelTier::Lanes => "lanes",
        }
    }

    /// Persisted single-byte code (see `er-index` persistence).
    pub fn code(self) -> u8 {
        match self {
            KernelTier::Reference => 0,
            KernelTier::Lanes => 1,
        }
    }

    /// Inverse of [`KernelTier::code`]; `None` on an unknown byte.
    pub fn from_code(code: u8) -> Option<KernelTier> {
        match code {
            0 => Some(KernelTier::Reference),
            1 => Some(KernelTier::Lanes),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_the_iterator_fold_bitwise() {
        // The exact expression the kernels replaced, on awkward values
        // where f32 addition order matters.
        let a = [1.0e7f32, 1.0, -1.0e7, 0.25, 3.5e-4];
        let b = [0.3f32, 1.0e7, 0.3, -4.0, 7.0];
        let folded: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(dot(&a, &b).to_bits(), folded.to_bits());
    }

    #[test]
    fn squared_euclidean_matches_hand_fixture() {
        // a = (1,0), b = (0,2), c = (3,4).
        assert_eq!(squared_euclidean(&[1.0, 0.0], &[0.0, 2.0]), 5.0);
        assert_eq!(squared_euclidean(&[1.0, 0.0], &[3.0, 4.0]), 20.0);
        assert_eq!(squared_euclidean(&[0.0, 2.0], &[3.0, 4.0]), 13.0);
        assert_eq!(squared_euclidean(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_handles_zero_vectors_and_matches_prenorm() {
        let a = [1.0f32, 0.0];
        let c = [3.0f32, 4.0];
        assert_eq!(cosine(&[0.0, 0.0], &a), 0.0);
        assert!((cosine(&a, &c) - 0.6).abs() < 1e-6);
        let pre = cosine_prenorm(&a, norm(&a), &c, norm(&c));
        assert_eq!(cosine(&a, &c).to_bits(), pre.to_bits());
    }

    #[test]
    fn norm_is_sqrt_of_squared_norm() {
        let v = [3.0f32, 4.0];
        assert_eq!(squared_norm(&v), 25.0);
        assert_eq!(norm(&v), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn lanes_dot_matches_the_documented_lane_assignment() {
        // 11 elements: 8 in the main chunk, tail elements continue into
        // lanes 0..3. Recompute by hand with the same assignment + tree.
        let a: Vec<f32> = (0..11).map(|i| (i as f32) * 0.37 - 1.5).collect();
        let b: Vec<f32> = (0..11).map(|i| 2.0 - (i as f32) * 0.21).collect();
        let mut lanes = [0.0f32; LANES];
        for i in 0..11 {
            lanes[i % LANES] += a[i] * b[i];
        }
        let expect = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
            + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
        assert_eq!(dot_lanes(&a, &b).to_bits(), expect.to_bits());
    }

    #[test]
    fn lanes_tier_is_deterministic_and_close_to_reference() {
        let a: Vec<f32> = (0..133)
            .map(|i| ((i * 37 + 11) % 97) as f32 / 31.0 - 1.2)
            .collect();
        let b: Vec<f32> = (0..133)
            .map(|i| ((i * 53 + 7) % 89) as f32 / 29.0 - 1.4)
            .collect();
        let first = KernelTier::Lanes.dot(&a, &b);
        for _ in 0..4 {
            assert_eq!(KernelTier::Lanes.dot(&a, &b).to_bits(), first.to_bits());
        }
        let scale: f32 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        assert!((first - KernelTier::Reference.dot(&a, &b)).abs() <= 1e-6 * scale);
    }

    #[test]
    fn every_tier_keeps_the_zero_vector_cosine_convention() {
        let z = [0.0f32; 9];
        let v: Vec<f32> = (0..9).map(|i| i as f32 - 4.0).collect();
        for tier in [KernelTier::Reference, KernelTier::Lanes] {
            assert_eq!(tier.cosine(&z, &v), 0.0);
            assert_eq!(tier.cosine(&v, &z), 0.0);
            assert_eq!(tier.cosine(&[], &[]), 0.0);
            assert_eq!(tier.dot(&[], &[]), 0.0);
            assert_eq!(tier.squared_euclidean(&[], &[]), 0.0);
        }
    }

    #[test]
    fn tier_codes_round_trip() {
        for tier in [KernelTier::Reference, KernelTier::Lanes] {
            assert_eq!(KernelTier::from_code(tier.code()), Some(tier));
        }
        assert_eq!(KernelTier::from_code(9), None);
        assert_eq!(KernelTier::default(), KernelTier::Reference);
    }
}
