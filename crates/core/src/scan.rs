//! Scan configuration for the exact brute-force backend: which f32 kernel
//! tier ranks the rows, and whether a quantized (int8 / PQ) first pass
//! replaces the full-precision scan.
//!
//! Historically these types lived in `er_index::exact`; they moved down
//! into er-core with the [`crate::OperatingPoint`] redesign so one config
//! crate-layer owns every knob. `er_index::{ScanConfig, Quantization}`
//! re-export them, so existing imports keep compiling.

use crate::kernels::KernelTier;
use crate::pq::PqConfig;

/// Which storage the brute-force scan ranks rows with.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Quantization {
    /// Rank with the full f32 rows — the exact scan.
    #[default]
    None,
    /// Rank with int8 codes (4× less traffic), then re-rank the best
    /// `rerank.max(k)` candidates with the exact f32 kernels.
    Int8 {
        /// Candidates re-ranked exactly; clamped up to `k` at query time.
        rerank: usize,
    },
    /// Rank with product-quantization ADC tables (`subspaces` bytes per
    /// row), then re-rank the best `rerank.max(k)` candidates exactly.
    Pq {
        config: PqConfig,
        /// Candidates re-ranked exactly; clamped up to `k` at query time.
        rerank: usize,
    },
}

/// Full scan configuration: the f32 kernel tier plus the optional
/// quantized first pass. The default (`Reference`, no quantization) is the
/// pre-tier behavior, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScanConfig {
    pub tier: KernelTier,
    pub quant: Quantization,
}

impl ScanConfig {
    /// The exact scan on the given kernel tier.
    pub fn with_tier(tier: KernelTier) -> ScanConfig {
        ScanConfig {
            tier,
            quant: Quantization::None,
        }
    }
}
