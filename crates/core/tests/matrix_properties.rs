//! Property tests for the columnar refactor's conversion contract:
//! `Vec<Embedding> -> EmbeddingMatrix -> Vec<Embedding>` is the identity
//! down to the bit, for arbitrary shapes including zero rows — and the
//! matrix's cached norms are bit-identical to `Embedding::norm`, so the
//! prenorm cosine path can never drift from the recomputed one.

use er_core::rng::rng;
use er_core::{Embedding, EmbeddingMatrix};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    fn round_trip_is_bit_identical(rows in 0..40usize, dim in 1..48usize, seed in 0..1_000_000u64) {
        let mut r = rng(seed);
        let original: Vec<Embedding> = (0..rows)
            .map(|_| Embedding((0..dim).map(|_| r.gen_range(-8.0f32..8.0)).collect()))
            .collect();
        let matrix = EmbeddingMatrix::from_embeddings(&original);
        assert_eq!(matrix.len(), rows);
        let back = matrix.to_embeddings();
        assert_eq!(back.len(), original.len());
        for (i, (a, b)) in original.iter().zip(&back).enumerate() {
            assert_eq!(a.dim(), b.dim());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "row {i} drifted");
            }
            assert_eq!(
                matrix.norm(i).to_bits(),
                a.norm().to_bits(),
                "cached norm of row {i} drifted"
            );
            assert_eq!(matrix.row(i), a.as_slice());
        }
    }
}

#[test]
fn round_trip_preserves_special_float_values() {
    // Signed zeros and subnormals must survive the copy bit-for-bit;
    // `assert_eq!` on f32 treats -0.0 == 0.0, so compare bits.
    let original = vec![
        Embedding(vec![0.0, -0.0, f32::MIN_POSITIVE]),
        Embedding(vec![f32::MAX, f32::MIN, 1.0e-40]),
    ];
    let back = EmbeddingMatrix::from_embeddings(&original).to_embeddings();
    for (a, b) in original.iter().zip(&back) {
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
