//! Kernel-tier equivalence suite (PR 7 satellite): the `Lanes` tier must
//! track the bit-exact `Reference` fold within the documented tolerance on
//! arbitrary inputs — including dimensions that are not multiples of the
//! lane width, degenerate lengths, subnormals and signed zeros — and the
//! `Reference` tier itself must stay bitwise equal to the pre-tier fold it
//! replaced (the `zip`/`map`/`sum` expression, kept verbatim below as the
//! regression oracle).

use er_core::kernels::{self, KernelTier, LANES};
use er_core::rng::rng;
use proptest::prelude::*;
use rand::Rng;

const TIERS: [KernelTier; 2] = [KernelTier::Reference, KernelTier::Lanes];

// ---------------------------------------------------------------------------
// The pre-PR kernels, verbatim. These are the exact expressions that lived
// in er-core before the tier enum existed; `Reference` pins to them bitwise.
// ---------------------------------------------------------------------------

fn pre_pr_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

fn pre_pr_squared_euclidean(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

fn pre_pr_cosine(a: &[f32], b: &[f32]) -> f32 {
    let denom = pre_pr_dot(a, a).sqrt() * pre_pr_dot(b, b).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        pre_pr_dot(a, b) / denom
    }
}

/// The documented Lanes tolerance: relative error at most `1e-6` of the
/// absolute-value sum of the products (the natural condition-number scale
/// of a float dot product — cancellation-heavy inputs widen it).
fn abs_scale(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x * y).abs()).sum::<f32>()
}

fn sqeuclid_scale(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f32>()
}

/// A pair of equal-length vectors mixing magnitudes, exact zeros and
/// negative zeros — the seeded replacement for upstream proptest's
/// composite strategies (the vendored `proptest!` only draws scalars).
fn vector_pair(dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let mut r = rng(seed);
    let mut gen = |_: usize| -> f32 {
        match r.gen_range(0..8u32) {
            0..=4 => r.gen_range(-100.0f32..100.0),
            5 => r.gen_range(-1.0e-3f32..1.0e-3),
            6 => 0.0,
            _ => -0.0,
        }
    };
    let a: Vec<f32> = (0..dim).map(&mut gen).collect();
    let b: Vec<f32> = (0..dim).map(&mut gen).collect();
    (a, b)
}

proptest! {
    fn reference_is_bit_exact_to_the_pre_pr_fold(dim in 0usize..=40, seed in 0..1_000_000u64) {
        let (a, b) = vector_pair(dim, seed);
        let t = KernelTier::Reference;
        assert_eq!(t.dot(&a, &b).to_bits(), pre_pr_dot(&a, &b).to_bits());
        assert_eq!(
            t.squared_euclidean(&a, &b).to_bits(),
            pre_pr_squared_euclidean(&a, &b).to_bits()
        );
        assert_eq!(t.cosine(&a, &b).to_bits(), pre_pr_cosine(&a, &b).to_bits());
        assert_eq!(t.squared_norm(&a).to_bits(), pre_pr_dot(&a, &a).to_bits());
        // The free functions are the Reference tier.
        assert_eq!(t.dot(&a, &b).to_bits(), kernels::dot(&a, &b).to_bits());
        assert_eq!(t.cosine(&a, &b).to_bits(), kernels::cosine(&a, &b).to_bits());
    }

    fn lanes_tracks_reference_within_tolerance(dim in 0usize..=40, seed in 0..1_000_000u64) {
        let (a, b) = vector_pair(dim, seed);
        let r = KernelTier::Reference;
        let l = KernelTier::Lanes;
        let tol = 1e-6f32;
        assert!((l.dot(&a, &b) - r.dot(&a, &b)).abs() <= tol * abs_scale(&a, &b));
        assert!(
            (l.squared_euclidean(&a, &b) - r.squared_euclidean(&a, &b)).abs()
                <= tol * sqeuclid_scale(&a, &b)
        );
        assert!((l.squared_norm(&a) - r.squared_norm(&a)).abs() <= tol * abs_scale(&a, &a));
        // Cosine is a ratio of two toleranced quantities on a [-1, 1]
        // scale; 1e-5 of slack is far below any ranking-visible drift.
        let (rc, lc) = (r.cosine(&a, &b), l.cosine(&a, &b));
        assert!((rc - lc).abs() <= 1e-5, "cosine drift: {rc} vs {lc}");
    }

    fn lanes_is_deterministic_across_calls(dim in 0usize..=40, seed in 0..1_000_000u64) {
        let (a, b) = vector_pair(dim, seed);
        let l = KernelTier::Lanes;
        let first = (l.dot(&a, &b), l.squared_euclidean(&a, &b), l.cosine(&a, &b));
        for _ in 0..3 {
            assert_eq!(l.dot(&a, &b).to_bits(), first.0.to_bits());
            assert_eq!(l.squared_euclidean(&a, &b).to_bits(), first.1.to_bits());
            assert_eq!(l.cosine(&a, &b).to_bits(), first.2.to_bits());
        }
    }
}

#[test]
fn boundary_lengths_agree_in_every_tier() {
    // 0, 1, LANES−1, LANES, LANES+1: the empty kernel, the no-main-chunk
    // path, and both sides of the unrolled boundary.
    for len in [0usize, 1, LANES - 1, LANES, LANES + 1] {
        let a: Vec<f32> = (0..len).map(|i| (i as f32) * 0.7 - 1.3).collect();
        let b: Vec<f32> = (0..len).map(|i| 2.1 - (i as f32) * 0.4).collect();
        let want_dot = pre_pr_dot(&a, &b);
        let want_sq = pre_pr_squared_euclidean(&a, &b);
        for tier in TIERS {
            let tol = 1e-6 * abs_scale(&a, &b) + f32::EPSILON;
            assert!(
                (tier.dot(&a, &b) - want_dot).abs() <= tol,
                "len {len}, tier {tier:?}"
            );
            assert!(
                (tier.squared_euclidean(&a, &b) - want_sq).abs()
                    <= 1e-6 * sqeuclid_scale(&a, &b) + f32::EPSILON,
                "len {len}, tier {tier:?}"
            );
        }
        // Reference at these lengths is bitwise, not just toleranced.
        assert_eq!(
            KernelTier::Reference.dot(&a, &b).to_bits(),
            want_dot.to_bits()
        );
    }
}

#[test]
fn subnormals_and_signed_zeros_do_not_diverge() {
    let tiny = f32::MIN_POSITIVE / 8.0; // subnormal
    assert!(tiny > 0.0 && !tiny.is_normal());
    let a = [tiny, -tiny, 0.0, -0.0, tiny, tiny, -tiny, 0.0, tiny];
    let b = [1.0f32, 1.0, -0.0, 0.0, 2.0, -2.0, 4.0, 8.0, 0.5];
    for tier in TIERS {
        let d = tier.dot(&a, &b);
        assert!(d.is_finite(), "{tier:?}: {d}");
        // Products of subnormals with small powers of two stay exact, so
        // the tiers must agree to within one subnormal step (no fast-math
        // means no flush-to-zero in any tier).
        assert!(
            (d - pre_pr_dot(&a, &b)).abs() <= f32::MIN_POSITIVE,
            "{tier:?}"
        );
        // ±0.0 inputs are fine everywhere.
        let z = [0.0f32, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0, -0.0, 0.0];
        assert_eq!(tier.dot(&z, &b), 0.0);
        assert_eq!(tier.cosine(&z, &b), 0.0, "zero-vector cosine convention");
        assert_eq!(tier.squared_norm(&z), 0.0);
    }
}

#[test]
fn norm_routes_through_the_tier_squared_norm() {
    let v: Vec<f32> = (0..19).map(|i| (i as f32).sin() * 3.0).collect();
    for tier in TIERS {
        assert_eq!(
            tier.norm(&v).to_bits(),
            tier.squared_norm(&v).sqrt().to_bits()
        );
    }
    // Reference norm == the pre-PR `dot(a, a).sqrt()`.
    assert_eq!(
        kernels::norm(&v).to_bits(),
        pre_pr_dot(&v, &v).sqrt().to_bits()
    );
}
