//! Service-level contract of the `er-serve` Resolver: streaming
//! mutations with queries legal in between, shard/merge equivalence, and
//! whole-service persistence.

use er_blocking::BlockerBackend;
use er_core::{Embedding, Entity, EntityId, ErError, SerializationMode};
use er_embed::{LanguageModel, ModelCode};
use er_index::{ExactIndex, HnswConfig, LshConfig, Metric, NnIndex};
use er_serve::{Resolver, ServeConfig, ShardedIndex};
use rand::Rng;
use std::time::Duration;

/// A deterministic toy model: hashes character trigrams into a fixed-dim
/// vector. Cheap enough for service tests, faithful enough that similar
/// strings land near each other.
struct TrigramModel {
    dim: usize,
}

impl LanguageModel for TrigramModel {
    fn code(&self) -> ModelCode {
        ModelCode::FT
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn init_time(&self) -> Duration {
        Duration::ZERO
    }

    fn embed(&self, text: &str) -> Embedding {
        let mut v = vec![0.0f32; self.dim];
        let chars: Vec<char> = text.chars().collect();
        for w in chars.windows(3) {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &c in w {
                h ^= c as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            v[(h % self.dim as u64) as usize] += if h & 1 == 0 { 1.0 } else { -1.0 };
        }
        Embedding(v)
    }
}

fn entity(id: u32, name: &str) -> Entity {
    Entity::new(EntityId(id), vec![("name".into(), name.into())])
}

fn random_rows(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut r = er_core::rng::rng(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| r.gen_range(-1.0..1.0)).collect())
        .collect()
}

#[test]
fn streaming_insert_then_query_finds_the_record() {
    let model = TrigramModel { dim: 24 };
    let resolver = Resolver::new(
        &model,
        SerializationMode::SchemaAgnostic,
        ServeConfig::new(),
    )
    .unwrap();
    assert!(resolver.is_empty());
    assert!(resolver.query_text("anything", 5).is_empty());

    for (id, name) in [
        (1, "golden palace hotel athens"),
        (2, "hotel golden palace, athens"),
        (3, "blue lagoon resort crete"),
    ] {
        assert!(resolver.insert(&entity(id, name)).unwrap());
    }
    assert_eq!(resolver.len(), 3);
    // Re-inserting a live id is a no-op, not a replace.
    assert!(!resolver.insert(&entity(1, "something else")).unwrap());
    assert_eq!(resolver.len(), 3);

    let hits = resolver.query(&entity(99, "golden palace hotel athens"), 2);
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].id, EntityId(1), "exact text matches itself first");
    assert!(hits[0].distance <= hits[1].distance);
    assert_eq!(hits[1].id, EntityId(2), "near-duplicate ranks second");
}

#[test]
fn delete_and_upsert_between_queries() {
    let model = TrigramModel { dim: 24 };
    let resolver = Resolver::new(
        &model,
        SerializationMode::SchemaAgnostic,
        ServeConfig::new().shards(3),
    )
    .unwrap();
    for id in 0..20u32 {
        resolver
            .insert(&entity(id, &format!("record number {id}")))
            .unwrap();
    }
    assert_eq!(resolver.len(), 20);
    assert!(resolver.contains(EntityId(7)));

    // Delete: the id disappears from results immediately.
    assert!(resolver.delete(EntityId(7)).unwrap());
    assert!(
        !resolver.delete(EntityId(7)).unwrap(),
        "double delete is a no-op"
    );
    assert!(!resolver.contains(EntityId(7)));
    assert_eq!(resolver.len(), 19);
    let hits = resolver.query(&entity(99, "record number 7"), 19);
    assert!(hits.iter().all(|h| h.id != EntityId(7)));
    assert_eq!(hits.len(), 19);

    // Upsert: replaces in place; the old vector stops matching.
    assert!(resolver
        .upsert(&entity(3, "completely different text"))
        .unwrap());
    assert_eq!(resolver.len(), 19);
    let hits = resolver.query(&entity(99, "completely different text"), 1);
    assert_eq!(hits[0].id, EntityId(3));
    // Upsert of a fresh id inserts.
    assert!(!resolver.upsert(&entity(7, "record number 7")).unwrap());
    assert_eq!(resolver.len(), 20);

    // k > live count truncates; k = 0 is empty.
    assert_eq!(resolver.query_text("record", 500).len(), 20);
    assert!(resolver.query_text("record", 0).is_empty());
}

/// The shard/merge contract at the vector level: an N-shard exact search
/// returns the bit-identical hit list of one exact index over the same
/// rows, for both metrics, regardless of shard count.
#[test]
fn scatter_gather_exact_is_bit_identical_to_single_index() {
    let dim = 8;
    let rows = random_rows(60, dim, 41);
    let queries = random_rows(10, dim, 42);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        // Ids 0..n inserted in order: the oracle's row index == the id.
        let mut oracle_matrix = er_core::EmbeddingMatrix::new(dim);
        for row in &rows {
            oracle_matrix.push(row);
        }
        let oracle = ExactIndex::from_source(oracle_matrix, metric);
        for shards in [1usize, 2, 5] {
            let sharded = ShardedIndex::new(dim, shards, BlockerBackend::Exact(metric));
            for (i, row) in rows.iter().enumerate() {
                assert!(sharded.insert(EntityId(i as u32), row).unwrap());
            }
            assert_eq!(sharded.len(), rows.len());
            for q in &queries {
                let expect = oracle.search_slice(q, 7);
                let got = sharded.search_ids(q, 7);
                assert_eq!(got.len(), expect.len());
                for (g, e) in got.iter().zip(&expect) {
                    assert_eq!(g.id.0 as usize, e.index, "{shards} shards, {metric:?}");
                    assert_eq!(g.distance.to_bits(), e.distance.to_bits());
                }
            }
        }
    }
}

#[test]
fn sharding_routes_deterministically_and_covers_all_shards() {
    let sharded = ShardedIndex::new(4, 5, BlockerBackend::Exact(Metric::Euclidean));
    let mut seen = [false; 5];
    for id in 0..200u32 {
        let s = sharded.shard_of(EntityId(id));
        assert!(s < 5);
        assert_eq!(s, sharded.shard_of(EntityId(id)), "routing is pure");
        seen[s] = true;
    }
    assert!(seen.iter().all(|&s| s), "200 ids should touch every shard");
}

#[test]
fn resolver_round_trips_through_bytes_and_files() {
    let model = TrigramModel { dim: 24 };
    for backend in [
        BlockerBackend::Exact(Metric::Cosine),
        BlockerBackend::Hnsw(HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        }),
        BlockerBackend::Lsh(LshConfig::default()),
    ] {
        let resolver = Resolver::new(
            &model,
            SerializationMode::SchemaAgnostic,
            ServeConfig::new().shards(3).backend(backend),
        )
        .unwrap();
        for id in 0..30u32 {
            resolver
                .insert(&entity(id, &format!("streamed record {id}")))
                .unwrap();
        }
        resolver.delete(EntityId(4)).unwrap();
        resolver
            .upsert(&entity(11, "revised record eleven"))
            .unwrap();

        let bytes = resolver.to_bytes();
        let back = Resolver::from_bytes(&bytes, &model).unwrap();
        assert_eq!(back.len(), resolver.len());
        assert_eq!(back.mode(), resolver.mode());
        for probe in [
            "streamed record 17",
            "revised record eleven",
            "nothing alike",
        ] {
            let a = resolver.query_text(probe, 8);
            let b = back.query_text(probe, 8);
            assert_eq!(a, b, "loaded resolver answers bit-identically");
        }
        // Serialization is deterministic, and mutation streams continue
        // identically on both sides of a round trip.
        assert_eq!(bytes, back.to_bytes());
        let back = back;
        resolver.insert(&entity(77, "post-reload insert")).unwrap();
        back.insert(&entity(77, "post-reload insert")).unwrap();
        assert_eq!(resolver.to_bytes(), back.to_bytes());
    }

    // File round trip.
    let dir = std::env::temp_dir().join("er_serve_service_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("resolver.erbf");
    let resolver = Resolver::new(
        &model,
        SerializationMode::SchemaAgnostic,
        ServeConfig::new(),
    )
    .unwrap();
    resolver.insert(&entity(1, "only record")).unwrap();
    resolver.save(&path).unwrap();
    let back = Resolver::load(&path, &model).unwrap();
    assert_eq!(
        back.query_text("only record", 1),
        resolver.query_text("only record", 1)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn loading_rejects_wrong_models_and_corrupt_bytes() {
    let model = TrigramModel { dim: 24 };
    let resolver = Resolver::new(
        &model,
        SerializationMode::SchemaAgnostic,
        ServeConfig::new(),
    )
    .unwrap();
    resolver.insert(&entity(1, "a record")).unwrap();
    let bytes = resolver.to_bytes();

    // A model with a different dimension is a typed Model error.
    let wrong = TrigramModel { dim: 16 };
    assert!(matches!(
        Resolver::from_bytes(&bytes, &wrong),
        Err(ErError::Model(_))
    ));
    // Truncations and flipped bits are typed Corrupt errors.
    for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
        assert!(matches!(
            Resolver::from_bytes(&bytes[..cut], &model),
            Err(ErError::Corrupt(_))
        ));
    }
    let mut flipped = bytes.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x10;
    assert!(matches!(
        Resolver::from_bytes(&flipped, &model),
        Err(ErError::Corrupt(_))
    ));
    // An index container is not a resolver container.
    let solo = ExactIndex::build(&[Embedding(vec![0.0; 4])]).to_bytes();
    assert!(matches!(
        Resolver::from_bytes(&solo, &model),
        Err(ErError::Corrupt(_))
    ));
}

#[test]
fn all_deleted_shards_return_empty_not_panic() {
    let model = TrigramModel { dim: 24 };
    let resolver = Resolver::new(
        &model,
        SerializationMode::SchemaAgnostic,
        ServeConfig::new().shards(4),
    )
    .unwrap();
    for id in 0..12u32 {
        resolver.insert(&entity(id, &format!("r{id}"))).unwrap();
    }
    for id in 0..12u32 {
        assert!(resolver.delete(EntityId(id)).unwrap());
    }
    assert!(resolver.is_empty());
    assert!(resolver.query_text("r3", 5).is_empty());
    // The service keeps working after total deletion.
    assert!(resolver.insert(&entity(100, "fresh start")).unwrap());
    let hits = resolver.query_text("fresh start", 5);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].id, EntityId(100));
}

/// SchemaBased serialization modes survive persistence (the mode string
/// is part of the container).
#[test]
fn schema_based_mode_round_trips() {
    let model = TrigramModel { dim: 24 };
    let mode = SerializationMode::SchemaBased("title".into());
    let resolver = Resolver::new(&model, mode.clone(), ServeConfig::new()).unwrap();
    let e = Entity::new(
        EntityId(5),
        vec![
            ("title".into(), "the load-bearing attribute".into()),
            ("junk".into(), "ignored by this mode".into()),
        ],
    );
    resolver.insert(&e).unwrap();
    let back = Resolver::from_bytes(&resolver.to_bytes(), &model).unwrap();
    assert_eq!(back.mode(), &mode);
    assert_eq!(
        back.query_text("the load-bearing attribute", 1),
        resolver.query_text("the load-bearing attribute", 1)
    );
}

// ---------------------------------------------------------------------------
// Quantized scans in the streaming service (PR 7): int8 tracks streaming
// inserts per-row, PQ is rejected up front, and the quantized service
// persists through the same ERBF container.
// ---------------------------------------------------------------------------

#[test]
fn int8_service_with_full_rerank_matches_the_f32_service_bitwise() {
    use er_core::pq::PqConfig;
    use er_core::KernelTier;
    use er_index::{Quantization, ScanConfig};

    let model = TrigramModel { dim: 24 };
    let names = [
        "golden palace hotel athens",
        "hotel golden palace, athens",
        "blue lagoon resort crete",
        "lagoon blue resort, crete",
        "white tower suites thessaloniki",
        "acropolis view rooms",
    ];
    // Same tier on both sides: the int8 pass only *selects* candidates,
    // and with the re-rank budget covering every row the selection is
    // total, so the exact re-rank must reproduce the f32 scan bitwise.
    let tier = KernelTier::Lanes;
    let plain = Resolver::new(
        &model,
        SerializationMode::SchemaAgnostic,
        ServeConfig::new()
            .shards(2)
            .backend(BlockerBackend::Exact(Metric::Cosine))
            .scan(ScanConfig::with_tier(tier)),
    )
    .unwrap();
    let quantized = Resolver::new(
        &model,
        SerializationMode::SchemaAgnostic,
        ServeConfig::new()
            .shards(2)
            .backend(BlockerBackend::Exact(Metric::Cosine))
            .scan(ScanConfig {
                tier,
                quant: Quantization::Int8 { rerank: 100 },
            }),
    )
    .unwrap();
    for (i, name) in names.iter().enumerate() {
        plain.insert(&entity(i as u32, name)).unwrap();
        quantized.insert(&entity(i as u32, name)).unwrap();
    }
    // Mutations keep the int8 companion storage in sync.
    plain.delete(EntityId(2)).unwrap();
    quantized.delete(EntityId(2)).unwrap();
    plain.upsert(&entity(3, "renamed lagoon resort")).unwrap();
    quantized
        .upsert(&entity(3, "renamed lagoon resort"))
        .unwrap();

    for probe in ["golden palace", "resort crete", "acropolis"] {
        let a = plain.query_text(probe, 4);
        let b = quantized.query_text(probe, 4);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id, "probe {probe:?}: candidate diverged");
            assert_eq!(
                x.distance.to_bits(),
                y.distance.to_bits(),
                "probe {probe:?}: re-ranked distance is not the f32 distance"
            );
        }
    }

    // The quantized service round-trips through bytes like any other.
    let bytes = quantized.to_bytes();
    let back = Resolver::from_bytes(&bytes, &model).unwrap();
    assert_eq!(back.len(), quantized.len());
    for probe in ["golden palace", "resort crete"] {
        let a = quantized.query_text(probe, 3);
        let b = back.query_text(probe, 3);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
        }
    }
    assert_eq!(back.to_bytes(), bytes);

    // PQ needs a trained codebook; the empty streaming service refuses it
    // with a typed error instead of training on nothing.
    let err = Resolver::new(
        &model,
        SerializationMode::SchemaAgnostic,
        ServeConfig::new()
            .backend(BlockerBackend::Exact(Metric::Cosine))
            .scan(ScanConfig {
                tier: KernelTier::Reference,
                quant: Quantization::Pq {
                    config: PqConfig::default(),
                    rerank: 10,
                },
            }),
    );
    assert!(matches!(err, Err(ErError::Model(_))));
}

#[test]
fn operating_point_is_the_single_source_of_truth_for_both_configs() {
    use er_blocking::TopKConfig;
    use er_core::{KernelTier as Tier, OperatingPoint, Quantization, ScanConfig as Scan};
    use er_serve::unified_operating_point;

    // Derived from one point, blocking and serving configs always agree.
    let point = OperatingPoint::default().k(5).exact().tier(Tier::Lanes);
    let blocking = TopKConfig::from_point(&point).unwrap();
    let serve = ServeConfig::from_point(&point).unwrap();
    let unified = unified_operating_point(&blocking, &serve).unwrap();
    assert_eq!(unified.to_json(), point.clone().k(5).to_json());

    // The historical footgun: same pipeline run, two hand-built configs
    // whose scans silently disagree — now a typed Config error.
    let hand_blocking = TopKConfig::new(5).backend(BlockerBackend::Exact(Metric::Cosine));
    let hand_serve = ServeConfig::new()
        .backend(BlockerBackend::Exact(Metric::Cosine))
        .scan(Scan {
            tier: Tier::Reference,
            quant: Quantization::Int8 { rerank: 20 },
        });
    let err = unified_operating_point(&hand_blocking, &hand_serve).unwrap_err();
    assert!(matches!(err, ErError::Config(_)), "{err}");

    // Disagreeing backends are caught the same way.
    let lsh_serve = ServeConfig::new().backend(BlockerBackend::Lsh(LshConfig::default()));
    let err = unified_operating_point(&hand_blocking, &lsh_serve).unwrap_err();
    assert!(matches!(err, ErError::Config(_)), "{err}");

    // A resolver built from the point serves the same backend the blocker
    // ranks with.
    let model = TrigramModel { dim: 16 };
    let resolver = Resolver::with_point(&model, SerializationMode::SchemaAgnostic, &point).unwrap();
    assert!(resolver.is_empty());
    // An invalid point is rejected with the same typed error.
    let bad = OperatingPoint::default().scan(Scan {
        tier: Tier::Reference,
        quant: Quantization::Int8 { rerank: 8 },
    });
    assert!(matches!(
        Resolver::with_point(&model, SerializationMode::SchemaAgnostic, &bad),
        Err(ErError::Config(_))
    ));
}
