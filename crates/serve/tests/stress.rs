//! Concurrency stress for the snapshot-swap serving core (ISSUE 8): N
//! scoped reader threads query while one writer inserts, deletes, upserts
//! and compacts. The pinned invariants:
//!
//! 1. **Committed states only** — every snapshot a reader observes carries
//!    a `(version, live-id-set)` pair the writer actually committed; a
//!    half-applied op or a torn live set is a failure.
//! 2. **Monotonicity** — successive loads of one shard never go backwards
//!    in version.
//! 3. **Pinned-snapshot repeatability** — re-running a query against a
//!    pinned snapshot set returns bit-identical hits regardless of
//!    concurrent churn (snapshots are immutable once published).
//! 4. **Quiescent equivalence** — after the churn, scatter-gather search
//!    is bit-identical to a serially rebuilt index over the same live
//!    records (neither concurrency nor compaction history affects
//!    answers).
//!
//! The heavy run is wall-clock-bounded by op count and gated to release
//! builds (the CI `serve-durability` job); a small smoke version runs
//! everywhere.

use er_blocking::BlockerBackend;
use er_core::binary::fnv1a64;
use er_core::EntityId;
use er_index::{Metric, ScanConfig};
use er_serve::{search_snapshots, CompactionPolicy, ShardedIndex};
use rand::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const SHARDS: usize = 4;

/// The row stored for `(id, generation)` — deterministic, so the writer,
/// the replayed oracle, and the serial rebuild all agree bit-for-bit.
fn row_for(id: u32, generation: u32, dim: usize) -> Vec<f32> {
    let mut r = er_core::rng::rng(((id as u64) << 32) | generation as u64);
    (0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()
}

fn live_set_hash(ids: &[EntityId]) -> u64 {
    let mut bytes = Vec::with_capacity(ids.len() * 4);
    for id in ids {
        bytes.extend_from_slice(&id.0.to_le_bytes());
    }
    fnv1a64(&bytes)
}

/// One observation a reader made: which shard, which version, and the
/// hash of the live-id set it saw.
type Observation = (usize, u64, u64);

fn run_churn(ops: usize, readers: usize, dim: usize) {
    let index = ShardedIndex::with_options(
        dim,
        SHARDS,
        BlockerBackend::Exact(Metric::Cosine),
        ScanConfig::default(),
        CompactionPolicy {
            max_deleted_fraction: 0.3,
            min_stored: 32,
        },
    )
    .unwrap();

    // version → live-set hash, per shard. The writer records every state
    // it commits; readers validate their observations against it after
    // the churn (a reader may observe a state moments before the writer
    // records it, so validation is deferred, not inline).
    let committed: Vec<Mutex<HashMap<u64, u64>>> =
        (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect();
    for shard in &committed {
        shard.lock().unwrap().insert(0, live_set_hash(&[]));
    }
    let done = AtomicBool::new(false);
    let observations: Mutex<Vec<Observation>> = Mutex::new(Vec::new());
    // Live (id, generation) at quiescence, filled in by the writer.
    let final_state: Mutex<HashMap<u32, u32>> = Mutex::new(HashMap::new());

    let started = Instant::now();
    std::thread::scope(|scope| {
        // The writer: seeded churn of inserts/deletes/upserts with
        // periodic manual compactions.
        scope.spawn(|| {
            let mut rng = er_core::rng::rng(97);
            let mut generation: HashMap<u32, u32> = HashMap::new();
            // Writer-side mirror of each shard's committed (version, live
            // set) — the sole mutator can track this exactly. Versions
            // advance once per *effective* op; no-ops never publish.
            let mut versions = vec![0u64; SHARDS];
            let mut shard_live: Vec<Vec<EntityId>> = vec![Vec::new(); SHARDS];
            let mut live: HashMap<u32, u32> = HashMap::new();
            let record = |shard: usize, versions: &mut Vec<u64>, ids: &[EntityId]| {
                versions[shard] += 1;
                let mut sorted = ids.to_vec();
                sorted.sort_unstable_by_key(|id| id.0);
                committed[shard]
                    .lock()
                    .unwrap()
                    .insert(versions[shard], live_set_hash(&sorted));
            };
            for op in 0..ops {
                let id = rng.gen_range(0..200u32);
                let shard = index.shard_of(EntityId(id));
                match op % 7 {
                    // Mostly inserts, some deletes, some upserts.
                    0..=3 => {
                        let gen = *generation.entry(id).or_insert(0);
                        if index.insert(EntityId(id), &row_for(id, gen, dim)).unwrap() {
                            live.insert(id, gen);
                            shard_live[shard].push(EntityId(id));
                            record(shard, &mut versions, &shard_live[shard]);
                        }
                    }
                    4 | 5 => {
                        if index.delete(EntityId(id)).unwrap() {
                            live.remove(&id);
                            shard_live[shard].retain(|e| e.0 != id);
                            record(shard, &mut versions, &shard_live[shard]);
                        }
                    }
                    _ => {
                        let gen = generation.entry(id).or_insert(0);
                        *gen += 1;
                        index.upsert(EntityId(id), &row_for(id, *gen, dim)).unwrap();
                        if live.insert(id, *gen).is_none() {
                            shard_live[shard].push(EntityId(id));
                        }
                        record(shard, &mut versions, &shard_live[shard]);
                    }
                }
                if op % 97 == 96 {
                    // Manual compaction of one shard, interleaved with the
                    // churn. Effective (publishes a version) only when
                    // tombstones exist — the sole mutator can check that
                    // race-free.
                    let target = op % SHARDS;
                    if index.stats()[target].tombstoned > 0 {
                        index.compact_shard(target).unwrap();
                        record(target, &mut versions, &shard_live[target]);
                    }
                }
            }
            *final_state.lock().unwrap() = live;
            done.store(true, Ordering::Release);
        });

        for reader in 0..readers {
            let observations = &observations;
            let done = &done;
            let index = &index;
            scope.spawn(move || {
                let mut rng = er_core::rng::rng(1000 + reader as u64);
                let mut local: Vec<Observation> = Vec::new();
                let mut last_version = [0u64; SHARDS];
                let mut passes = 0usize;
                // At least one pass even if the writer already finished
                // (release builds can drain the op budget in microseconds).
                while passes == 0 || !done.load(Ordering::Acquire) {
                    passes += 1;
                    let snaps = index.snapshots();
                    for (shard, snap) in snaps.iter().enumerate() {
                        assert!(
                            snap.version() >= last_version[shard],
                            "shard {shard} went backwards: {} after {}",
                            snap.version(),
                            last_version[shard]
                        );
                        last_version[shard] = snap.version();
                        let ids = snap.live_ids();
                        assert_eq!(snap.live_count(), ids.len(), "tombstone bookkeeping tore");
                        local.push((shard, snap.version(), live_set_hash(&ids)));
                    }
                    // Pinned-snapshot repeatability under churn.
                    let query: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                    let first = search_snapshots(&snaps, &query, 5);
                    let second = search_snapshots(&snaps, &query, 5);
                    assert_eq!(first.len(), second.len());
                    for (a, b) in first.iter().zip(&second) {
                        assert_eq!(a.id, b.id);
                        assert_eq!(a.distance.to_bits(), b.distance.to_bits());
                    }
                    for hit in &first {
                        assert!(hit.distance.is_finite());
                    }
                }
                observations.lock().unwrap().extend(local);
            });
        }
    });

    // Deferred validation: every state any reader observed must be one
    // the writer committed.
    let observations = observations.into_inner().unwrap();
    assert!(!observations.is_empty());
    for (shard, version, hash) in &observations {
        let map = committed[*shard].lock().unwrap();
        let expected = map.get(version).unwrap_or_else(|| {
            panic!("shard {shard} exposed version {version}, which was never committed")
        });
        assert_eq!(
            expected, hash,
            "shard {shard} version {version}: observed live set differs from \
             the committed one"
        );
    }

    // Quiescent equivalence: scatter-gather over the churned (and
    // compacted) index is bit-identical to a serially rebuilt one holding
    // the same final records — neither the concurrency nor the compaction
    // history changes exact answers.
    let serial = ShardedIndex::with_options(
        dim,
        SHARDS,
        BlockerBackend::Exact(Metric::Cosine),
        ScanConfig::default(),
        CompactionPolicy::never(),
    )
    .unwrap();
    let final_state = final_state.into_inner().unwrap();
    let mut final_ids: Vec<u32> = final_state.keys().copied().collect();
    final_ids.sort_unstable();
    for &id in &final_ids {
        serial
            .insert(EntityId(id), &row_for(id, final_state[&id], dim))
            .unwrap();
    }
    let mut rng = er_core::rng::rng(7777);
    for _ in 0..20 {
        let query: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let churned = index.search_ids(&query, 10);
        let clean = serial.search_ids(&query, 10);
        assert_eq!(churned.len(), clean.len());
        for (a, b) in churned.iter().zip(&clean) {
            assert_eq!(a.id, b.id, "hit order diverged from the serial oracle");
            assert_eq!(
                a.distance.to_bits(),
                b.distance.to_bits(),
                "distance drifted from the serial oracle"
            );
        }
    }

    let elapsed = started.elapsed();
    assert!(
        elapsed.as_secs() < 120,
        "stress run exceeded its wall-clock bound: {elapsed:?}"
    );
}

#[test]
fn concurrent_readers_observe_only_committed_snapshots_smoke() {
    run_churn(400, 2, 8);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "heavy: run in release (CI serve-durability job)"
)]
fn concurrent_readers_observe_only_committed_snapshots_heavy() {
    run_churn(6000, 4, 16);
}
