//! Crash-recovery contract of the durable Resolver (ISSUE 8): a reopened
//! service holds **exactly the committed prefix** of its history —
//! kill-at-any-point is simulated by truncating the write-ahead journal at
//! every byte boundary — and corruption (flipped bits in journal or save)
//! surfaces as typed [`ErError::Corrupt`], never as garbage state or a
//! panic. Epoch rules are pinned: stale journals are discarded, journals
//! newer than the save refuse to load, and journal replay re-derives
//! automatic compactions deterministically.

use er_blocking::BlockerBackend;
use er_core::{Embedding, Entity, EntityId, ErError, SerializationMode};
use er_embed::{LanguageModel, ModelCode};
use er_index::Metric;
use er_serve::{CompactionPolicy, Resolver, ServeConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The same deterministic toy model the service tests use: character
/// trigrams hashed into a fixed-dim vector.
struct TrigramModel {
    dim: usize,
}

impl LanguageModel for TrigramModel {
    fn code(&self) -> ModelCode {
        ModelCode::FT
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn init_time(&self) -> Duration {
        Duration::ZERO
    }

    fn embed(&self, text: &str) -> Embedding {
        let mut v = vec![0.0f32; self.dim];
        let chars: Vec<char> = text.chars().collect();
        for w in chars.windows(3) {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &c in w {
                h ^= c as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            v[(h % self.dim as u64) as usize] += if h & 1 == 0 { 1.0 } else { -1.0 };
        }
        Embedding(v)
    }
}

fn entity(id: u32, name: &str) -> Entity {
    Entity::new(EntityId(id), vec![("name".into(), name.into())])
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("er_serve_recovery_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn single_shard_exact() -> ServeConfig {
    ServeConfig::new()
        .shards(1)
        .backend(BlockerBackend::Exact(Metric::Cosine))
}

/// The mixed mutation history the prefix tests replay: every op is
/// effective (no-ops are never journaled, so an ineffective op would not
/// produce a journal record).
fn apply_op(resolver: &Resolver, op: usize) {
    match op {
        0..=5 => {
            assert!(resolver
                .insert(&entity(op as u32, &format!("record number {op} payload")))
                .unwrap());
        }
        6 => {
            assert!(resolver
                .upsert(&entity(2, "record number two, revised edition"))
                .unwrap());
        }
        7 => {
            assert!(resolver.delete(EntityId(4)).unwrap());
        }
        _ => unreachable!(),
    }
}
const OPS: usize = 8;

#[test]
fn reopen_without_checkpoint_replays_the_whole_journal() {
    let model = TrigramModel { dim: 16 };
    let dir = fresh_dir("replay_all");
    let bytes_live;
    {
        let resolver = Resolver::open(
            &dir,
            &model,
            SerializationMode::SchemaAgnostic,
            ServeConfig::new().shards(3),
        )
        .unwrap();
        for op in 0..OPS {
            apply_op(&resolver, op);
        }
        assert_eq!(resolver.epoch(), 0, "no checkpoint ran");
        bytes_live = resolver.to_bytes();
    }
    let resolver = Resolver::open(
        &dir,
        &model,
        SerializationMode::SchemaAgnostic,
        ServeConfig::new().shards(3),
    )
    .unwrap();
    assert_eq!(resolver.len(), 5, "6 inserts, 1 upsert (replace), 1 delete");
    assert!(!resolver.contains(EntityId(4)), "the delete survived");
    assert_eq!(
        resolver.to_bytes(),
        bytes_live,
        "replayed state is bit-identical to the pre-crash state"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoint_advances_epoch_resets_journals_and_survives_reopen() {
    let model = TrigramModel { dim: 16 };
    let dir = fresh_dir("checkpoint");
    {
        let resolver = Resolver::open(
            &dir,
            &model,
            SerializationMode::SchemaAgnostic,
            ServeConfig::new().shards(2),
        )
        .unwrap();
        for op in 0..6 {
            apply_op(&resolver, op);
        }
        let journaled: u64 = resolver.stats().iter().map(|s| s.journal_len).sum();
        assert_eq!(journaled, 6);
        resolver.checkpoint().unwrap();
        assert_eq!(resolver.epoch(), 1);
        let journaled: u64 = resolver.stats().iter().map(|s| s.journal_len).sum();
        assert_eq!(journaled, 0, "checkpoint folds journals into the save");
        // Post-checkpoint mutations land in the fresh epoch-1 journals.
        apply_op(&resolver, 6);
        apply_op(&resolver, 7);
        let journaled: u64 = resolver.stats().iter().map(|s| s.journal_len).sum();
        assert_eq!(journaled, 2);
    }
    let resolver = Resolver::open(
        &dir,
        &model,
        SerializationMode::SchemaAgnostic,
        ServeConfig::new().shards(2),
    )
    .unwrap();
    assert_eq!(resolver.epoch(), 1, "epoch restored from the save");
    assert_eq!(resolver.len(), 5);
    assert!(!resolver.contains(EntityId(4)));
    assert!(resolver.contains(EntityId(2)));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Build the reference history once: after each op, record the journal
/// length in bytes (the commit boundary) and the resolver's serialized
/// state. Returns (journal bytes, boundaries, expected state per prefix).
fn committed_history(model: &TrigramModel) -> (Vec<u8>, Vec<u64>, Vec<Vec<u8>>) {
    let dir = fresh_dir("history");
    let journal_path = dir.join("shard-0.jrnl");
    let mut boundaries = Vec::with_capacity(OPS);
    let mut expected = Vec::with_capacity(OPS + 1);
    let journal;
    {
        let resolver = Resolver::open(
            &dir,
            model,
            SerializationMode::SchemaAgnostic,
            single_shard_exact(),
        )
        .unwrap();
        expected.push(resolver.to_bytes());
        for op in 0..OPS {
            apply_op(&resolver, op);
            boundaries.push(std::fs::metadata(&journal_path).unwrap().len());
            expected.push(resolver.to_bytes());
        }
        journal = std::fs::read(&journal_path).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
    (journal, boundaries, expected)
}

fn open_with_journal<'m>(
    dir: &Path,
    model: &'m TrigramModel,
    journal: &[u8],
) -> er_core::Result<Resolver<'m>> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("shard-0.jrnl"), journal).unwrap();
    Resolver::open(
        dir,
        model,
        SerializationMode::SchemaAgnostic,
        single_shard_exact(),
    )
}

#[test]
fn truncating_the_journal_anywhere_recovers_the_committed_prefix() {
    let model = TrigramModel { dim: 16 };
    let (journal, boundaries, expected) = committed_history(&model);
    let dir = fresh_dir("truncate");
    // Kill-at-any-point: cut the journal at every byte boundary. The
    // reopened state must be byte-identical to the state after the last
    // op whose record fits entirely below the cut — nothing more, nothing
    // less, and never an error (a torn tail is not corruption).
    for cut in 0..=journal.len() {
        let resolver = open_with_journal(&dir, &model, &journal[..cut])
            .unwrap_or_else(|e| panic!("cut at {cut}: torn tails must recover, got {e}"));
        let prefix_ops = boundaries.iter().filter(|&&b| b <= cut as u64).count();
        assert_eq!(
            resolver.to_bytes(),
            expected[prefix_ops],
            "cut at byte {cut} must recover exactly {prefix_ops} committed ops"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipping_any_journal_bit_is_corrupt_or_a_committed_prefix() {
    let model = TrigramModel { dim: 16 };
    let (journal, _, expected) = committed_history(&model);
    let dir = fresh_dir("flip");
    // A flipped bit must either be detected (typed Corrupt) or be
    // indistinguishable from a torn tail — in which case the recovered
    // state must still be one of the committed prefixes. Garbage states
    // and panics are the two forbidden outcomes.
    for pos in 0..journal.len() {
        for bit in [0, 3, 7] {
            let mut bytes = journal.clone();
            bytes[pos] ^= 1 << bit;
            match open_with_journal(&dir, &model, &bytes) {
                Err(ErError::Corrupt(_)) => {}
                Err(e) => panic!("flip at {pos}/{bit}: expected Corrupt, got {e}"),
                Ok(resolver) => {
                    let state = resolver.to_bytes();
                    assert!(
                        expected.contains(&state),
                        "flip at byte {pos} bit {bit} recovered a state that was \
                         never committed"
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn flipping_save_file_bits_is_corrupt_never_garbage() {
    let model = TrigramModel { dim: 16 };
    let dir = fresh_dir("flip_save");
    {
        let resolver = Resolver::open(
            &dir,
            &model,
            SerializationMode::SchemaAgnostic,
            single_shard_exact(),
        )
        .unwrap();
        for op in 0..OPS {
            apply_op(&resolver, op);
        }
        resolver.checkpoint().unwrap();
    }
    let save_path = dir.join("resolver.erbf");
    let save = std::fs::read(&save_path).unwrap();
    for pos in (0..save.len()).step_by(7) {
        let mut bytes = save.clone();
        bytes[pos] ^= 0x10;
        std::fs::write(&save_path, &bytes).unwrap();
        match Resolver::open(
            &dir,
            &model,
            SerializationMode::SchemaAgnostic,
            single_shard_exact(),
        ) {
            Err(ErError::Corrupt(_)) => {}
            Err(e) => panic!("save flip at {pos}: expected Corrupt, got {e}"),
            Ok(_) => panic!("save flip at {pos} loaded silently"),
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_journal_from_before_the_checkpoint_is_discarded() {
    let model = TrigramModel { dim: 16 };
    let dir = fresh_dir("stale");
    let journal_path = dir.join("shard-0.jrnl");
    let at_checkpoint;
    let pre_checkpoint_journal;
    {
        let resolver = Resolver::open(
            &dir,
            &model,
            SerializationMode::SchemaAgnostic,
            single_shard_exact(),
        )
        .unwrap();
        for op in 0..6 {
            apply_op(&resolver, op);
        }
        pre_checkpoint_journal = std::fs::read(&journal_path).unwrap();
        resolver.checkpoint().unwrap();
        at_checkpoint = resolver.to_bytes();
    }
    // Simulate a crash between the save rename and the journal reset: the
    // epoch-0 journal is still on disk next to the epoch-1 save. Its
    // records are already folded into the save, so recovery must discard
    // it (replaying would double-apply) and keep exactly the save state.
    std::fs::write(&journal_path, &pre_checkpoint_journal).unwrap();
    let resolver = Resolver::open(
        &dir,
        &model,
        SerializationMode::SchemaAgnostic,
        single_shard_exact(),
    )
    .unwrap();
    assert_eq!(resolver.epoch(), 1);
    assert_eq!(resolver.to_bytes(), at_checkpoint);
    let journaled: u64 = resolver.stats().iter().map(|s| s.journal_len).sum();
    assert_eq!(journaled, 0, "the stale journal was rewritten, not resumed");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn journal_newer_than_the_save_refuses_to_load() {
    let model = TrigramModel { dim: 16 };
    let dir = fresh_dir("newer");
    {
        let resolver = Resolver::open(
            &dir,
            &model,
            SerializationMode::SchemaAgnostic,
            single_shard_exact(),
        )
        .unwrap();
        for op in 0..6 {
            apply_op(&resolver, op);
        }
        resolver.checkpoint().unwrap();
        apply_op(&resolver, 6);
    }
    // Losing the save while an epoch-1 journal exists means losing
    // checkpointed data — recovery must refuse loudly, not silently
    // restart from the journal alone.
    std::fs::remove_file(dir.join("resolver.erbf")).unwrap();
    match Resolver::open(
        &dir,
        &model,
        SerializationMode::SchemaAgnostic,
        single_shard_exact(),
    ) {
        Err(ErError::Corrupt(msg)) => {
            assert!(msg.contains("stale"), "unexpected message: {msg}");
        }
        other => panic!("expected Corrupt, got {:?}", other.map(|r| r.len())),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn replay_rederives_automatic_compaction_bit_identically() {
    let model = TrigramModel { dim: 16 };
    let dir = fresh_dir("autocompact");
    let policy = CompactionPolicy {
        max_deleted_fraction: 0.25,
        min_stored: 16,
    };
    let config = single_shard_exact().compaction(policy);
    let bytes_live;
    {
        let resolver = Resolver::open(
            &dir,
            &model,
            SerializationMode::SchemaAgnostic,
            config.clone(),
        )
        .unwrap();
        for id in 0..40u32 {
            assert!(resolver
                .insert(&entity(id, &format!("auto compact record {id}")))
                .unwrap());
        }
        for id in 0..14u32 {
            assert!(resolver.delete(EntityId(id)).unwrap());
        }
        let stats = &resolver.stats()[0];
        assert!(
            stats.deleted_fraction <= policy.max_deleted_fraction,
            "auto-compaction kept the tombstone fraction below threshold, \
             got {}",
            stats.deleted_fraction
        );
        assert_eq!(resolver.len(), 26);
        bytes_live = resolver.to_bytes();
    }
    // No checkpoint ran: recovery replays all 54 records, re-deriving the
    // same automatic compactions at the same points. The physical state
    // (row layout after compaction) must match bit-for-bit.
    let resolver = Resolver::open(&dir, &model, SerializationMode::SchemaAgnostic, config).unwrap();
    assert_eq!(resolver.to_bytes(), bytes_live);
    std::fs::remove_dir_all(&dir).unwrap();
}
