//! Hash-sharded vector storage with scatter-gather top-k queries.
//!
//! [`ShardedIndex`] fronts N independent [`er_index::MutableIndex`]
//! backends. Records are routed to a shard by an FNV-1a hash of their
//! [`EntityId`] (stable across runs and across save/load), every shard
//! answers a query independently — fanned out over scoped threads, the
//! same pool discipline as `NnIndex::search_batch` — and the per-shard
//! top-k lists are combined by a `BinaryHeap` k-way merge.
//!
//! **Merge contract**: hits are globally ordered by
//! `(distance.total_cmp, EntityId)`. Each shard's list is put into that
//! order before merging (per-shard backends tie-break on *row* position,
//! which need not agree with id order), so an N-shard exact search returns
//! the bit-identical hit list a single exact index over the same records
//! would — sharding never changes exact results, only distributes them
//! (pinned by the equivalence suite).

use crate::Hit;
use er_blocking::BlockerBackend;
use er_core::binary::{self, fnv1a64, kind};
use er_core::{EmbeddingMatrix, EntityId, ErError, Result};
use er_index::{
    ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, LshConfig, Metric, MutableIndex, Neighbor,
    NnIndex, Quantization, ScanConfig,
};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};

/// One owned index of any backend — the per-shard storage. All three
/// variants share the [`MutableIndex`] mutation surface and the binary
/// persistence format of `er_index::persist`.
#[derive(Debug, Clone)]
pub enum AnyIndex {
    Exact(ExactIndex<'static>),
    Hnsw(HnswIndex<'static>),
    Lsh(HyperplaneLsh<'static>),
}

impl AnyIndex {
    /// An empty index of the given backend over `dim`-component vectors,
    /// with the default scan (Reference kernels, no quantization).
    ///
    /// Every shard is built from the same backend config — including the
    /// seed, which is safe because shards hold disjoint records, so no
    /// cross-shard draw ever compares two streams.
    pub fn empty(backend: &BlockerBackend, dim: usize) -> AnyIndex {
        AnyIndex::empty_scan(backend, dim, ScanConfig::default())
            .expect("the default scan config cannot fail")
    }

    /// [`AnyIndex::empty`] with an explicit [`ScanConfig`] for the Exact
    /// backend. Errors (typed [`ErError::Model`]) for scan configs the
    /// streaming service cannot honour: PQ needs a trained codebook but
    /// the service starts empty (use `Int8` or `None`), and quantized
    /// scans only apply to the Exact backend (HNSW and LSH carry their
    /// own kernel `tier` in their configs).
    pub fn empty_scan(backend: &BlockerBackend, dim: usize, scan: ScanConfig) -> Result<AnyIndex> {
        if matches!(scan.quant, Quantization::Pq { .. }) {
            return Err(ErError::Model(
                "er-serve: PQ quantization needs a trained codebook, but the \
                 streaming service starts empty — use Int8 or None"
                    .into(),
            ));
        }
        let matrix = EmbeddingMatrix::new(dim);
        match backend {
            BlockerBackend::Exact(metric) => Ok(AnyIndex::Exact(ExactIndex::from_source_scan(
                matrix, *metric, scan,
            )?)),
            BlockerBackend::Hnsw(config) => {
                if scan.quant != Quantization::None {
                    return Err(ErError::Model(
                        "er-serve: quantized scans require the Exact backend".into(),
                    ));
                }
                Ok(AnyIndex::Hnsw(HnswIndex::from_source(
                    matrix,
                    config.clone(),
                )))
            }
            BlockerBackend::Lsh(config) => {
                if scan.quant != Quantization::None {
                    return Err(ErError::Model(
                        "er-serve: quantized scans require the Exact backend".into(),
                    ));
                }
                Ok(AnyIndex::Lsh(HyperplaneLsh::from_source(
                    matrix,
                    config.clone(),
                )))
            }
        }
    }

    /// The backend config this index was built with — how a loaded shard
    /// reconstitutes the `ShardedIndex`-level [`BlockerBackend`].
    pub fn backend(&self) -> BlockerBackend {
        match self {
            AnyIndex::Exact(i) => BlockerBackend::Exact(i.metric()),
            AnyIndex::Hnsw(i) => BlockerBackend::Hnsw(i.config().clone()),
            AnyIndex::Lsh(i) => BlockerBackend::Lsh(i.config().clone()),
        }
    }

    /// Serialize via the backend's own `er_index::persist` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            AnyIndex::Exact(i) => i.to_bytes(),
            AnyIndex::Hnsw(i) => i.to_bytes(),
            AnyIndex::Lsh(i) => i.to_bytes(),
        }
    }

    /// Dispatch on the container's `kind` header to the right loader.
    pub fn from_bytes(bytes: &[u8]) -> Result<AnyIndex> {
        match binary::peek_kind(bytes)? {
            kind::EXACT_INDEX => Ok(AnyIndex::Exact(ExactIndex::from_bytes(bytes)?)),
            kind::HNSW_INDEX => Ok(AnyIndex::Hnsw(HnswIndex::from_bytes(bytes)?)),
            kind::LSH_INDEX => Ok(AnyIndex::Lsh(HyperplaneLsh::from_bytes(bytes)?)),
            other => Err(ErError::Corrupt(format!(
                "shard container holds kind {other}, expected an index kind"
            ))),
        }
    }
}

impl NnIndex for AnyIndex {
    fn len(&self) -> usize {
        match self {
            AnyIndex::Exact(i) => i.len(),
            AnyIndex::Hnsw(i) => i.len(),
            AnyIndex::Lsh(i) => i.len(),
        }
    }

    fn metric(&self) -> Metric {
        match self {
            AnyIndex::Exact(i) => i.metric(),
            AnyIndex::Hnsw(i) => i.metric(),
            AnyIndex::Lsh(i) => i.metric(),
        }
    }

    fn search_slice(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        match self {
            AnyIndex::Exact(i) => i.search_slice(query, k),
            AnyIndex::Hnsw(i) => i.search_slice(query, k),
            AnyIndex::Lsh(i) => i.search_slice(query, k),
        }
    }
}

impl MutableIndex for AnyIndex {
    fn insert_row(&mut self, row: &[f32]) -> Result<usize> {
        match self {
            AnyIndex::Exact(i) => i.insert_row(row),
            AnyIndex::Hnsw(i) => i.insert_row(row),
            AnyIndex::Lsh(i) => i.insert_row(row),
        }
    }

    fn delete_row(&mut self, index: usize) -> bool {
        match self {
            AnyIndex::Exact(i) => i.delete_row(index),
            AnyIndex::Hnsw(i) => i.delete_row(index),
            AnyIndex::Lsh(i) => i.delete_row(index),
        }
    }

    fn is_deleted(&self, index: usize) -> bool {
        match self {
            AnyIndex::Exact(i) => i.is_deleted(index),
            AnyIndex::Hnsw(i) => i.is_deleted(index),
            AnyIndex::Lsh(i) => i.is_deleted(index),
        }
    }

    fn live_count(&self) -> usize {
        match self {
            AnyIndex::Exact(i) => i.live_count(),
            AnyIndex::Hnsw(i) => i.live_count(),
            AnyIndex::Lsh(i) => i.live_count(),
        }
    }
}

/// One shard: an index plus the id ↔ row bookkeeping. Rows are append-only
/// (tombstones, never compaction), so `ids[row]` is the full insertion
/// history and `rows` maps only the currently-live ids.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    pub(crate) index: AnyIndex,
    /// Row → the entity id inserted at that row (including tombstoned rows).
    pub(crate) ids: Vec<EntityId>,
    /// Live entity id → its row.
    pub(crate) rows: HashMap<EntityId, usize>,
}

impl Shard {
    fn new(backend: &BlockerBackend, dim: usize, scan: ScanConfig) -> Result<Shard> {
        Ok(Shard {
            index: AnyIndex::empty_scan(backend, dim, scan)?,
            ids: Vec::new(),
            rows: HashMap::new(),
        })
    }

    /// Rebuild the live-id map from the insertion history + tombstones —
    /// the load path. Fails if the history disagrees with the index (two
    /// live rows claiming one id, or a row count mismatch).
    pub(crate) fn from_parts(index: AnyIndex, ids: Vec<EntityId>) -> Result<Shard> {
        if ids.len() != index.len() {
            return Err(ErError::Corrupt(format!(
                "shard id history covers {} rows, index stores {}",
                ids.len(),
                index.len()
            )));
        }
        let mut rows = HashMap::new();
        for (row, &id) in ids.iter().enumerate() {
            if !index.is_deleted(row) && rows.insert(id, row).is_some() {
                return Err(ErError::Corrupt(format!(
                    "shard holds two live rows for entity id {}",
                    id.0
                )));
            }
        }
        Ok(Shard { index, ids, rows })
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self
            .index
            .search_slice(query, k)
            .into_iter()
            .map(|n| Hit {
                id: self.ids[n.index],
                distance: n.distance,
            })
            .collect();
        // Re-order by (distance, id): backends tie-break equal distances
        // on row position, which need not agree with id order — the merge
        // contract requires id order.
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.id.0.cmp(&b.id.0))
        });
        hits
    }
}

/// An entry in the k-way merge heap: the current head of one shard's
/// sorted hit list, ordered by the global `(distance, id)` contract.
struct MergeHead {
    hit: Hit,
    shard: usize,
    pos: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for MergeHead {}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        self.hit
            .distance
            .total_cmp(&other.hit.distance)
            .then_with(|| self.hit.id.0.cmp(&other.hit.id.0))
    }
}

/// N hash-routed shards behind one `NnIndex`-shaped query surface.
///
/// The vector-level half of the `er-serve` Resolver: callers hand it
/// `(EntityId, row)` pairs; embedding happens a layer up.
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    shards: Vec<Shard>,
    backend: BlockerBackend,
    dim: usize,
}

impl ShardedIndex {
    /// `shards` empty indices of the given backend over `dim`-component
    /// vectors, with the default scan (Reference kernels, no quantization).
    pub fn new(dim: usize, shards: usize, backend: BlockerBackend) -> ShardedIndex {
        assert!(shards >= 1, "need at least one shard");
        ShardedIndex::with_scan(dim, shards, backend, ScanConfig::default())
            .expect("the default scan config cannot fail")
    }

    /// [`ShardedIndex::new`] with an explicit [`ScanConfig`]. Errors
    /// (typed [`ErError::Model`]) for zero shards or a scan config the
    /// service cannot honour (see [`AnyIndex::empty_scan`]).
    pub fn with_scan(
        dim: usize,
        shards: usize,
        backend: BlockerBackend,
        scan: ScanConfig,
    ) -> Result<ShardedIndex> {
        if shards == 0 {
            return Err(ErError::Model("need at least one shard".into()));
        }
        let shards = (0..shards)
            .map(|_| Shard::new(&backend, dim, scan))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedIndex {
            shards,
            backend,
            dim,
        })
    }

    pub(crate) fn from_shards(shards: Vec<Shard>, dim: usize) -> Result<ShardedIndex> {
        let backend = shards
            .first()
            .map(|s| s.index.backend())
            .ok_or_else(|| ErError::Corrupt("sharded index with zero shards".into()))?;
        Ok(ShardedIndex {
            shards,
            backend,
            dim,
        })
    }

    /// Which shard an id lives on: FNV-1a over the id's little-endian
    /// bytes, mod shard count. Pure and stable — the routing survives
    /// save/load and is the same on every machine.
    pub fn shard_of(&self, id: EntityId) -> usize {
        (fnv1a64(&id.0.to_le_bytes()) % self.shards.len() as u64) as usize
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live rows per shard (the observability hook the bench reports).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.index.live_count()).collect()
    }

    pub fn backend(&self) -> &BlockerBackend {
        &self.backend
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether `id` is currently live.
    pub fn contains(&self, id: EntityId) -> bool {
        self.shards[self.shard_of(id)].rows.contains_key(&id)
    }

    /// Insert a new record. Returns `Ok(false)` (and stores nothing) if
    /// the id is already live — use [`ShardedIndex::upsert`] to replace.
    pub fn insert(&mut self, id: EntityId, row: &[f32]) -> Result<bool> {
        let shard_idx = self.shard_of(id);
        let shard = &mut self.shards[shard_idx];
        if shard.rows.contains_key(&id) {
            return Ok(false);
        }
        let row_idx = shard.index.insert_row(row)?;
        debug_assert_eq!(row_idx, shard.ids.len());
        shard.ids.push(id);
        shard.rows.insert(id, row_idx);
        Ok(true)
    }

    /// Insert, replacing any live record with the same id (the old row is
    /// tombstoned first). Returns whether a record was replaced.
    pub fn upsert(&mut self, id: EntityId, row: &[f32]) -> Result<bool> {
        let shard_idx = self.shard_of(id);
        let shard = &mut self.shards[shard_idx];
        let replaced = match shard.rows.get(&id) {
            Some(&old_row) => {
                shard.index.delete_row(old_row);
                shard.rows.remove(&id);
                true
            }
            None => false,
        };
        let row_idx = shard.index.insert_row(row)?;
        shard.ids.push(id);
        shard.rows.insert(id, row_idx);
        Ok(replaced)
    }

    /// Tombstone a record. Returns `false` when the id is not live.
    pub fn delete(&mut self, id: EntityId) -> bool {
        let shard_idx = self.shard_of(id);
        let shard = &mut self.shards[shard_idx];
        match shard.rows.remove(&id) {
            Some(row) => shard.index.delete_row(row),
            None => false,
        }
    }

    /// Scatter-gather top-k: fan the query out across all shards on
    /// scoped threads (one per shard, mirroring `search_batch`), then
    /// k-way merge the per-shard sorted lists with a `BinaryHeap` that
    /// preserves the `(distance, id)` total order.
    pub fn search_ids(&self, query: &[f32], k: usize) -> Vec<Hit> {
        if k == 0 {
            return Vec::new();
        }
        let per_shard: Vec<Vec<Hit>> = if self.shards.len() == 1 {
            vec![self.shards[0].search(query, k)]
        } else {
            let mut out = Vec::with_capacity(self.shards.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter()
                    .map(|shard| scope.spawn(move || shard.search(query, k)))
                    .collect();
                for handle in handles {
                    out.push(handle.join().expect("shard search worker panicked"));
                }
            });
            out
        };
        let mut heap: BinaryHeap<Reverse<MergeHead>> = BinaryHeap::with_capacity(per_shard.len());
        for (shard, hits) in per_shard.iter().enumerate() {
            if let Some(&hit) = hits.first() {
                heap.push(Reverse(MergeHead { hit, shard, pos: 0 }));
            }
        }
        let mut merged = Vec::with_capacity(k);
        while merged.len() < k {
            let Some(Reverse(head)) = heap.pop() else {
                break;
            };
            merged.push(head.hit);
            let next_pos = head.pos + 1;
            if let Some(&hit) = per_shard[head.shard].get(next_pos) {
                heap.push(Reverse(MergeHead {
                    hit,
                    shard: head.shard,
                    pos: next_pos,
                }));
            }
        }
        merged
    }

    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }
}

/// The `NnIndex`-shaped query surface: `Neighbor.index` carries the
/// **entity id** (`EntityId.0 as usize`), not a row position — sharding
/// has no global row space. `len()` counts live records.
impl NnIndex for ShardedIndex {
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.index.live_count()).sum()
    }

    fn metric(&self) -> Metric {
        self.backend.metric()
    }

    fn search_slice(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_ids(query, k)
            .into_iter()
            .map(|h| Neighbor::new(h.id.0 as usize, h.distance))
            .collect()
    }
}

/// Convenience constructors for the three stock backends.
pub fn exact_backend(metric: Metric) -> BlockerBackend {
    BlockerBackend::Exact(metric)
}

pub fn hnsw_backend(config: HnswConfig) -> BlockerBackend {
    BlockerBackend::Hnsw(config)
}

pub fn lsh_backend(config: LshConfig) -> BlockerBackend {
    BlockerBackend::Lsh(config)
}
