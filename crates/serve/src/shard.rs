//! Hash-sharded vector storage with snapshot-swap concurrency and
//! scatter-gather top-k queries.
//!
//! [`ShardedIndex`] fronts N independent [`er_index::MutableIndex`]
//! backends. Records are routed to a shard by an FNV-1a hash of their
//! [`EntityId`] (stable across runs and across save/load).
//!
//! **Snapshot-swap**: each shard keeps two [`SegmentSnapshot`]s — a
//! *published* side that readers clone an `Arc` of (the only reader lock is
//! the clone itself) and a *standby* side owned by the writer. A mutation
//! catches the standby up from the op backlog, probes for no-ops, appends
//! to the write-ahead journal (if attached), applies to the standby, and
//! swaps the sides. Readers never block writers and never observe a
//! half-applied op; a query runs against whatever snapshot was committed
//! when it started. Lock order is always writer → published, so the paths
//! cannot deadlock.
//!
//! **Merge contract**: hits are globally ordered by
//! `(distance.total_cmp, EntityId)`. Each shard's list is put into that
//! order before merging (per-shard backends tie-break on *row* position,
//! which need not agree with id order), so an N-shard exact search returns
//! the bit-identical hit list a single exact index over the same records
//! would — sharding never changes exact results, only distributes them
//! (pinned by the equivalence suite).

use crate::snapshot::{CompactionPolicy, SegmentSnapshot, ShardStats, WriteOp};
use crate::wal::JournalWriter;
use crate::Hit;
use er_blocking::BlockerBackend;
use er_core::binary::{self, fnv1a64, kind};
use er_core::journal::JournalRecord;
use er_core::{EmbeddingMatrix, EntityId, ErError, Result};
use er_index::{
    ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, IndexReader, LshConfig, Metric, MutableIndex,
    Neighbor, NnIndex, Quantization, ScanConfig,
};
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::sync::{Arc, Mutex};

/// One owned index of any backend — the per-shard storage. All three
/// variants share the [`MutableIndex`] mutation surface and the binary
/// persistence format of `er_index::persist`.
#[derive(Debug, Clone)]
pub enum AnyIndex {
    Exact(ExactIndex<'static>),
    Hnsw(HnswIndex<'static>),
    Lsh(HyperplaneLsh<'static>),
}

impl AnyIndex {
    /// An empty index of the given backend over `dim`-component vectors,
    /// with the default scan (Reference kernels, no quantization).
    ///
    /// Every shard is built from the same backend config — including the
    /// seed, which is safe because shards hold disjoint records, so no
    /// cross-shard draw ever compares two streams.
    pub fn empty(backend: &BlockerBackend, dim: usize) -> AnyIndex {
        AnyIndex::empty_scan(backend, dim, ScanConfig::default())
            .expect("the default scan config cannot fail")
    }

    /// [`AnyIndex::empty`] with an explicit [`ScanConfig`] for the Exact
    /// backend. Errors (typed [`ErError::Model`]) for scan configs the
    /// streaming service cannot honour: PQ needs a trained codebook but
    /// the service starts empty (use `Int8` or `None`), and quantized
    /// scans only apply to the Exact backend (HNSW and LSH carry their
    /// own kernel `tier` in their configs).
    pub fn empty_scan(backend: &BlockerBackend, dim: usize, scan: ScanConfig) -> Result<AnyIndex> {
        if matches!(scan.quant, Quantization::Pq { .. }) {
            return Err(ErError::Model(
                "er-serve: PQ quantization needs a trained codebook, but the \
                 streaming service starts empty — use Int8 or None"
                    .into(),
            ));
        }
        let matrix = EmbeddingMatrix::new(dim);
        match backend {
            BlockerBackend::Exact(metric) => Ok(AnyIndex::Exact(ExactIndex::from_source_scan(
                matrix, *metric, scan,
            )?)),
            BlockerBackend::Hnsw(config) => {
                if scan.quant != Quantization::None {
                    return Err(ErError::Model(
                        "er-serve: quantized scans require the Exact backend".into(),
                    ));
                }
                Ok(AnyIndex::Hnsw(HnswIndex::from_source(
                    matrix,
                    config.clone(),
                )))
            }
            BlockerBackend::Lsh(config) => {
                if scan.quant != Quantization::None {
                    return Err(ErError::Model(
                        "er-serve: quantized scans require the Exact backend".into(),
                    ));
                }
                Ok(AnyIndex::Lsh(HyperplaneLsh::from_source(
                    matrix,
                    config.clone(),
                )))
            }
        }
    }

    /// The backend config this index was built with — how a loaded shard
    /// reconstitutes the `ShardedIndex`-level [`BlockerBackend`].
    pub fn backend(&self) -> BlockerBackend {
        match self {
            AnyIndex::Exact(i) => BlockerBackend::Exact(i.metric()),
            AnyIndex::Hnsw(i) => BlockerBackend::Hnsw(i.config().clone()),
            AnyIndex::Lsh(i) => BlockerBackend::Lsh(i.config().clone()),
        }
    }

    /// Serialize via the backend's own `er_index::persist` container.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            AnyIndex::Exact(i) => i.to_bytes(),
            AnyIndex::Hnsw(i) => i.to_bytes(),
            AnyIndex::Lsh(i) => i.to_bytes(),
        }
    }

    /// Dispatch on the container's `kind` header to the right loader.
    pub fn from_bytes(bytes: &[u8]) -> Result<AnyIndex> {
        match binary::peek_kind(bytes)? {
            kind::EXACT_INDEX => Ok(AnyIndex::Exact(ExactIndex::from_bytes(bytes)?)),
            kind::HNSW_INDEX => Ok(AnyIndex::Hnsw(HnswIndex::from_bytes(bytes)?)),
            kind::LSH_INDEX => Ok(AnyIndex::Lsh(HyperplaneLsh::from_bytes(bytes)?)),
            other => Err(ErError::Corrupt(format!(
                "shard container holds kind {other}, expected an index kind"
            ))),
        }
    }
}

impl NnIndex for AnyIndex {
    fn len(&self) -> usize {
        match self {
            AnyIndex::Exact(i) => i.len(),
            AnyIndex::Hnsw(i) => i.len(),
            AnyIndex::Lsh(i) => i.len(),
        }
    }

    fn metric(&self) -> Metric {
        match self {
            AnyIndex::Exact(i) => i.metric(),
            AnyIndex::Hnsw(i) => i.metric(),
            AnyIndex::Lsh(i) => i.metric(),
        }
    }

    fn search_slice(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        match self {
            AnyIndex::Exact(i) => i.search_slice(query, k),
            AnyIndex::Hnsw(i) => i.search_slice(query, k),
            AnyIndex::Lsh(i) => i.search_slice(query, k),
        }
    }
}

impl IndexReader for AnyIndex {
    fn is_deleted(&self, index: usize) -> bool {
        match self {
            AnyIndex::Exact(i) => i.is_deleted(index),
            AnyIndex::Hnsw(i) => i.is_deleted(index),
            AnyIndex::Lsh(i) => i.is_deleted(index),
        }
    }

    fn live_count(&self) -> usize {
        match self {
            AnyIndex::Exact(i) => i.live_count(),
            AnyIndex::Hnsw(i) => i.live_count(),
            AnyIndex::Lsh(i) => i.live_count(),
        }
    }

    fn search_counted(
        &self,
        query: &[f32],
        k: usize,
        params: &er_core::QueryParams,
    ) -> (Vec<Neighbor>, u64) {
        match self {
            AnyIndex::Exact(i) => i.search_counted(query, k, params),
            AnyIndex::Hnsw(i) => i.search_counted(query, k, params),
            AnyIndex::Lsh(i) => i.search_counted(query, k, params),
        }
    }
}

impl MutableIndex for AnyIndex {
    fn insert_row(&mut self, row: &[f32]) -> Result<usize> {
        match self {
            AnyIndex::Exact(i) => i.insert_row(row),
            AnyIndex::Hnsw(i) => i.insert_row(row),
            AnyIndex::Lsh(i) => i.insert_row(row),
        }
    }

    fn delete_row(&mut self, index: usize) -> bool {
        match self {
            AnyIndex::Exact(i) => i.delete_row(index),
            AnyIndex::Hnsw(i) => i.delete_row(index),
            AnyIndex::Lsh(i) => i.delete_row(index),
        }
    }

    fn compact(&mut self) -> Result<Vec<u32>> {
        match self {
            AnyIndex::Exact(i) => i.compact(),
            AnyIndex::Hnsw(i) => i.compact(),
            AnyIndex::Lsh(i) => i.compact(),
        }
    }
}

fn op_to_record(op: &WriteOp) -> Option<JournalRecord> {
    match op {
        WriteOp::Insert { id, row } => Some(JournalRecord::Insert {
            id: id.0,
            row: row.clone(),
        }),
        WriteOp::Upsert { id, row } => Some(JournalRecord::Upsert {
            id: id.0,
            row: row.clone(),
        }),
        WriteOp::Delete { id } => Some(JournalRecord::Delete { id: id.0 }),
        // Logically invisible — recovery re-derives any *automatic*
        // compaction deterministically inside `SegmentSnapshot::apply`,
        // and a crash merely loses a manual one (an optimization, never
        // data).
        WriteOp::Compact => None,
    }
}

fn record_to_op(rec: &JournalRecord) -> WriteOp {
    match rec {
        JournalRecord::Insert { id, row } => WriteOp::Insert {
            id: EntityId(*id),
            row: row.clone(),
        },
        JournalRecord::Upsert { id, row } => WriteOp::Upsert {
            id: EntityId(*id),
            row: row.clone(),
        },
        JournalRecord::Delete { id } => WriteOp::Delete { id: EntityId(*id) },
    }
}

/// The writer's half of a shard: the standby snapshot, the ops it is
/// missing (applied to the published side but not yet here), and the
/// write-ahead journal.
#[derive(Debug)]
struct WriterState {
    standby: Arc<SegmentSnapshot>,
    /// Ops applied to the published side since the standby was last caught
    /// up. At most one publish behind, so this holds at most the ops of
    /// one commit — drained at the start of the next.
    backlog: Vec<WriteOp>,
    journal: Option<JournalWriter>,
    journal_len: u64,
}

/// One shard of the serving core: a published snapshot readers clone
/// lock-free, and a writer side that mutates a standby copy and swaps it
/// in. See the module docs for the concurrency contract.
#[derive(Debug)]
pub(crate) struct Shard {
    /// The committed snapshot. Readers hold this lock only long enough to
    /// clone the `Arc`; the writer only long enough to swap two pointers.
    published: Mutex<Arc<SegmentSnapshot>>,
    writer: Mutex<WriterState>,
}

impl Shard {
    fn new(backend: &BlockerBackend, dim: usize, scan: ScanConfig) -> Result<Shard> {
        Ok(Shard::from_snapshot(SegmentSnapshot::from_index(
            AnyIndex::empty_scan(backend, dim, scan)?,
        )))
    }

    pub(crate) fn from_snapshot(snapshot: SegmentSnapshot) -> Shard {
        let arc = Arc::new(snapshot);
        Shard {
            published: Mutex::new(Arc::clone(&arc)),
            writer: Mutex::new(WriterState {
                standby: arc,
                backlog: Vec::new(),
                journal: None,
                journal_len: 0,
            }),
        }
    }

    /// The committed snapshot — the reader entry point. The returned `Arc`
    /// stays valid (and immutable) for as long as the caller holds it,
    /// regardless of concurrent writes.
    pub(crate) fn load(&self) -> Arc<SegmentSnapshot> {
        Arc::clone(
            &self
                .published
                .lock()
                .expect("shard published lock poisoned"),
        )
    }

    /// Bring the standby up to date with the published side by applying
    /// the backlog. `Arc::make_mut` clones the payload only when a
    /// straggler reader still holds the snapshot from two publishes ago.
    fn catch_up(w: &mut WriterState, policy: &CompactionPolicy) -> Result<()> {
        if w.backlog.is_empty() {
            return Ok(());
        }
        let backlog = std::mem::take(&mut w.backlog);
        let standby = Arc::make_mut(&mut w.standby);
        for op in &backlog {
            standby.apply(op, policy)?;
        }
        Ok(())
    }

    /// The single mutation path: catch up, probe for no-ops (which are
    /// neither journaled nor published), journal, apply to the standby,
    /// swap the sides. `journal: false` is used for replay (the record is
    /// already on disk) and for manual compaction (never journaled).
    pub(crate) fn write(
        &self,
        op: WriteOp,
        policy: &CompactionPolicy,
        journal: bool,
    ) -> Result<bool> {
        let mut w = self.writer.lock().expect("shard writer lock poisoned");
        Shard::catch_up(&mut w, policy)?;
        // No-op probe on the caught-up standby: an insert of a live id, a
        // delete of an absent one, or a compaction with nothing to reclaim
        // changes no state, so it must not reach the journal (replay would
        // then diverge from the live no-op) or publish a new version.
        match &op {
            WriteOp::Insert { id, .. } if w.standby.contains(*id) => return Ok(false),
            WriteOp::Delete { id } if !w.standby.contains(*id) => return Ok(false),
            WriteOp::Compact if w.standby.stored() == w.standby.live_count() => return Ok(true),
            _ => {}
        }
        if journal {
            if let Some(rec) = op_to_record(&op) {
                if let Some(j) = w.journal.as_mut() {
                    j.append(&rec)?;
                    w.journal_len += 1;
                }
            }
        }
        let out = Arc::make_mut(&mut w.standby).apply(&op, policy)?;
        {
            let mut slot = self
                .published
                .lock()
                .expect("shard published lock poisoned");
            std::mem::swap(&mut *slot, &mut w.standby);
        }
        w.backlog.push(op);
        Ok(out)
    }

    pub(crate) fn stats(&self) -> ShardStats {
        let snap = self.load();
        let journal_len = self
            .writer
            .lock()
            .expect("shard writer lock poisoned")
            .journal_len;
        let stored = snap.stored();
        let live = snap.live_count();
        let tombstoned = stored - live;
        ShardStats {
            live,
            tombstoned,
            deleted_fraction: if stored == 0 {
                0.0
            } else {
                tombstoned as f32 / stored as f32
            },
            journal_len,
        }
    }

    /// Attach (or replace) the shard's write-ahead journal. `journal_len`
    /// is the number of records already committed in the file (non-zero
    /// when resuming after recovery).
    pub(crate) fn set_journal(&self, journal: JournalWriter, journal_len: u64) {
        let mut w = self.writer.lock().expect("shard writer lock poisoned");
        w.journal = Some(journal);
        w.journal_len = journal_len;
    }
}

/// An entry in the k-way merge heap: the current head of one shard's
/// sorted hit list, ordered by the global `(distance, id)` contract.
struct MergeHead {
    hit: Hit,
    shard: usize,
    pos: usize,
}

impl PartialEq for MergeHead {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for MergeHead {}

impl PartialOrd for MergeHead {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for MergeHead {
    fn cmp(&self, other: &Self) -> Ordering {
        self.hit
            .distance
            .total_cmp(&other.hit.distance)
            .then_with(|| self.hit.id.0.cmp(&other.hit.id.0))
    }
}

/// Scatter-gather top-k over an explicit set of per-shard snapshots: fan
/// the query out across the shards on scoped threads (one per shard,
/// mirroring `search_batch`), then k-way merge the per-shard sorted lists
/// with a `BinaryHeap` that preserves the `(distance, id)` total order.
///
/// Public so callers holding a pinned snapshot set (from
/// [`ShardedIndex::snapshots`]) can re-run queries against exactly that
/// committed state, regardless of concurrent writes.
pub fn search_snapshots(snaps: &[Arc<SegmentSnapshot>], query: &[f32], k: usize) -> Vec<Hit> {
    if k == 0 {
        return Vec::new();
    }
    let per_shard: Vec<Vec<Hit>> = if snaps.len() == 1 {
        vec![snaps[0].search(query, k)]
    } else {
        let mut out = Vec::with_capacity(snaps.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = snaps
                .iter()
                .map(|snap| scope.spawn(move || snap.search(query, k)))
                .collect();
            for handle in handles {
                out.push(handle.join().expect("shard search worker panicked"));
            }
        });
        out
    };
    let mut heap: BinaryHeap<Reverse<MergeHead>> = BinaryHeap::with_capacity(per_shard.len());
    for (shard, hits) in per_shard.iter().enumerate() {
        if let Some(&hit) = hits.first() {
            heap.push(Reverse(MergeHead { hit, shard, pos: 0 }));
        }
    }
    let mut merged = Vec::with_capacity(k);
    while merged.len() < k {
        let Some(Reverse(head)) = heap.pop() else {
            break;
        };
        merged.push(head.hit);
        let next_pos = head.pos + 1;
        if let Some(&hit) = per_shard[head.shard].get(next_pos) {
            heap.push(Reverse(MergeHead {
                hit,
                shard: head.shard,
                pos: next_pos,
            }));
        }
    }
    merged
}

/// N hash-routed shards behind one `NnIndex`-shaped query surface.
///
/// The vector-level half of the `er-serve` Resolver: callers hand it
/// `(EntityId, row)` pairs; embedding happens a layer up. All mutation
/// methods take `&self` — each shard serializes its own writes internally
/// while readers proceed lock-free on published snapshots.
#[derive(Debug)]
pub struct ShardedIndex {
    shards: Vec<Shard>,
    backend: BlockerBackend,
    dim: usize,
    policy: CompactionPolicy,
}

impl ShardedIndex {
    /// `shards` empty indices of the given backend over `dim`-component
    /// vectors, with the default scan (Reference kernels, no quantization)
    /// and the default [`CompactionPolicy`].
    pub fn new(dim: usize, shards: usize, backend: BlockerBackend) -> ShardedIndex {
        assert!(shards >= 1, "need at least one shard");
        ShardedIndex::with_scan(dim, shards, backend, ScanConfig::default())
            .expect("the default scan config cannot fail")
    }

    /// [`ShardedIndex::new`] with an explicit [`ScanConfig`]. Errors
    /// (typed [`ErError::Model`]) for zero shards or a scan config the
    /// service cannot honour (see [`AnyIndex::empty_scan`]).
    pub fn with_scan(
        dim: usize,
        shards: usize,
        backend: BlockerBackend,
        scan: ScanConfig,
    ) -> Result<ShardedIndex> {
        ShardedIndex::with_options(dim, shards, backend, scan, CompactionPolicy::default())
    }

    /// The full constructor: explicit scan config and compaction policy.
    pub fn with_options(
        dim: usize,
        shards: usize,
        backend: BlockerBackend,
        scan: ScanConfig,
        policy: CompactionPolicy,
    ) -> Result<ShardedIndex> {
        if shards == 0 {
            return Err(ErError::Model("need at least one shard".into()));
        }
        let shards = (0..shards)
            .map(|_| Shard::new(&backend, dim, scan))
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedIndex {
            shards,
            backend,
            dim,
            policy,
        })
    }

    /// Rebuild from per-shard snapshots — the load path.
    pub(crate) fn from_snapshots(
        snapshots: Vec<SegmentSnapshot>,
        dim: usize,
        policy: CompactionPolicy,
    ) -> Result<ShardedIndex> {
        let backend = snapshots
            .first()
            .map(|s| s.index.backend())
            .ok_or_else(|| ErError::Corrupt("sharded index with zero shards".into()))?;
        Ok(ShardedIndex {
            shards: snapshots.into_iter().map(Shard::from_snapshot).collect(),
            backend,
            dim,
            policy,
        })
    }

    /// Which shard an id lives on: FNV-1a over the id's little-endian
    /// bytes, mod shard count. Pure and stable — the routing survives
    /// save/load and is the same on every machine.
    pub fn shard_of(&self, id: EntityId) -> usize {
        (fnv1a64(&id.0.to_le_bytes()) % self.shards.len() as u64) as usize
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live rows per shard (the observability hook the bench reports).
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.load().live_count()).collect()
    }

    /// Per-shard stats: live/tombstoned counts, deleted fraction, and
    /// journal length since the last checkpoint.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats()).collect()
    }

    /// Hash-skew factor: the largest shard's live count over the mean
    /// (1.0 = perfectly balanced; `1.0` for an empty index). FNV-1a keeps
    /// this near 1 for uniformly drawn ids; a factor much above ~2 with
    /// many records signals adversarial or degenerate id patterns.
    pub fn skew(&self) -> f32 {
        let sizes = self.shard_sizes();
        let total: usize = sizes.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f32 / sizes.len() as f32;
        let max = sizes.iter().copied().max().unwrap_or(0) as f32;
        max / mean
    }

    pub fn backend(&self) -> &BlockerBackend {
        &self.backend
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The compaction policy applied after tombstoning ops.
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.policy
    }

    /// Whether `id` is currently live (in the latest committed snapshot of
    /// its shard).
    pub fn contains(&self, id: EntityId) -> bool {
        self.shards[self.shard_of(id)].load().contains(id)
    }

    fn check_dim(&self, row: &[f32]) -> Result<()> {
        if self.dim != 0 && row.len() != self.dim {
            return Err(ErError::Model(format!(
                "er-serve: record has {} components, index stores {}-dim vectors",
                row.len(),
                self.dim
            )));
        }
        Ok(())
    }

    /// Insert a new record. Returns `Ok(false)` (and stores, journals,
    /// and publishes nothing) if the id is already live — use
    /// [`ShardedIndex::upsert`] to replace.
    pub fn insert(&self, id: EntityId, row: &[f32]) -> Result<bool> {
        self.check_dim(row)?;
        self.shards[self.shard_of(id)].write(
            WriteOp::Insert {
                id,
                row: row.to_vec(),
            },
            &self.policy,
            true,
        )
    }

    /// Insert, replacing any live record with the same id (the old row is
    /// tombstoned first). Returns whether a record was replaced.
    pub fn upsert(&self, id: EntityId, row: &[f32]) -> Result<bool> {
        self.check_dim(row)?;
        self.shards[self.shard_of(id)].write(
            WriteOp::Upsert {
                id,
                row: row.to_vec(),
            },
            &self.policy,
            true,
        )
    }

    /// Tombstone a record. Returns `Ok(false)` when the id is not live.
    /// (Errors are I/O failures appending to the write-ahead journal.)
    pub fn delete(&self, id: EntityId) -> Result<bool> {
        self.shards[self.shard_of(id)].write(WriteOp::Delete { id }, &self.policy, true)
    }

    /// Manually compact every shard, dropping tombstoned rows. Live top-k
    /// answers are unchanged. Not journaled: a compaction lost to a crash
    /// costs storage, never data, and automatic compactions are re-derived
    /// deterministically during replay.
    pub fn compact(&self) -> Result<()> {
        for shard in 0..self.shards.len() {
            self.compact_shard(shard)?;
        }
        Ok(())
    }

    /// Manually compact one shard (see [`ShardedIndex::compact`]).
    pub fn compact_shard(&self, shard: usize) -> Result<()> {
        self.shards[shard].write(WriteOp::Compact, &self.policy, false)?;
        Ok(())
    }

    /// The latest committed snapshot of every shard. Not mutually
    /// consistent across shards (each may advance independently), but each
    /// is individually immutable — pin the set and use
    /// [`search_snapshots`] for repeatable queries.
    pub fn snapshots(&self) -> Vec<Arc<SegmentSnapshot>> {
        self.shards.iter().map(|s| s.load()).collect()
    }

    /// A mutually consistent snapshot set: all shard writers are held
    /// while the published sides are read, so no shard can advance
    /// in between.
    pub(crate) fn consistent_snapshots(&self) -> Vec<Arc<SegmentSnapshot>> {
        let _writers: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.writer.lock().expect("shard writer lock poisoned"))
            .collect();
        self.shards.iter().map(|s| s.load()).collect()
    }

    /// Checkpoint: under every shard's writer lock (taken in index order),
    /// hand the mutually consistent snapshot set to `write` (which
    /// persists it), then reset all journals to `epoch_next`. Writes are
    /// blocked for the duration; readers are not.
    pub(crate) fn checkpoint_with<F>(&self, epoch_next: u64, write: F) -> Result<()>
    where
        F: FnOnce(&[Arc<SegmentSnapshot>]) -> Result<()>,
    {
        let mut writers: Vec<_> = self
            .shards
            .iter()
            .map(|s| s.writer.lock().expect("shard writer lock poisoned"))
            .collect();
        let snaps: Vec<Arc<SegmentSnapshot>> = self.shards.iter().map(|s| s.load()).collect();
        write(&snaps)?;
        for (i, w) in writers.iter_mut().enumerate() {
            if let Some(j) = w.journal.as_mut() {
                j.reset(i as u32, epoch_next)?;
                w.journal_len = 0;
            }
        }
        Ok(())
    }

    /// Re-apply journal records to `shard` without re-journaling them —
    /// the recovery path. Records route-checked against the shard they
    /// claim to belong to.
    pub(crate) fn replay(&self, shard: usize, records: &[JournalRecord]) -> Result<()> {
        for rec in records {
            let id = EntityId(rec.id());
            if self.shard_of(id) != shard {
                return Err(ErError::Corrupt(format!(
                    "journal for shard {shard} holds a record for entity id {} \
                     which routes to shard {}",
                    id.0,
                    self.shard_of(id)
                )));
            }
            self.shards[shard].write(record_to_op(rec), &self.policy, false)?;
        }
        Ok(())
    }

    /// Attach a write-ahead journal to `shard`. See [`Shard::set_journal`].
    pub(crate) fn attach_journal(&self, shard: usize, journal: JournalWriter, journal_len: u64) {
        self.shards[shard].set_journal(journal, journal_len);
    }
}

/// The `NnIndex`-shaped query surface: `Neighbor.index` carries the
/// **entity id** (`EntityId.0 as usize`), not a row position — sharding
/// has no global row space. `len()` counts live records.
impl NnIndex for ShardedIndex {
    fn len(&self) -> usize {
        self.shards.iter().map(|s| s.load().live_count()).sum()
    }

    fn metric(&self) -> Metric {
        self.backend.metric()
    }

    fn search_slice(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_ids(query, k)
            .into_iter()
            .map(|h| Neighbor::new(h.id.0 as usize, h.distance))
            .collect()
    }
}

impl ShardedIndex {
    /// Scatter-gather top-k over the latest committed snapshots: see
    /// [`search_snapshots`]. Each query pins the snapshot set once at the
    /// start, so concurrent writes cannot tear it.
    pub fn search_ids(&self, query: &[f32], k: usize) -> Vec<Hit> {
        if k == 0 {
            return Vec::new();
        }
        let snaps = self.snapshots();
        search_snapshots(&snaps, query, k)
    }
}

/// Convenience constructors for the three stock backends.
pub fn exact_backend(metric: Metric) -> BlockerBackend {
    BlockerBackend::Exact(metric)
}

pub fn hnsw_backend(config: HnswConfig) -> BlockerBackend {
    BlockerBackend::Hnsw(config)
}

pub fn lsh_backend(config: LshConfig) -> BlockerBackend {
    BlockerBackend::Lsh(config)
}
