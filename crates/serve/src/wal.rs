//! File handling for the per-shard write-ahead journal.
//!
//! The byte layout (header, length-prefixed FNV-checksummed records) is
//! owned by [`er_core::journal`]; this module owns the `std::fs` side:
//! create-with-header, append, resume-after-recovery (truncating any torn
//! tail so it is never extended), and the checkpoint-time reset that
//! restarts the file at a new epoch.
//!
//! Appends are flushed to the OS on every record, so a committed mutation
//! survives a process crash; an OS/power crash may lose the tail, which
//! recovery handles as a torn write (see `er_core::journal`'s commit
//! rule).

use er_core::journal::{header_to_bytes, record_to_bytes, JournalRecord};
use er_core::Result;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// An open journal file positioned at its committed end.
#[derive(Debug)]
pub(crate) struct JournalWriter {
    file: File,
    path: PathBuf,
}

impl JournalWriter {
    /// Create (or overwrite) the journal with a fresh header.
    pub(crate) fn create(path: &Path, shard: u32, epoch: u64) -> Result<JournalWriter> {
        let mut file = File::create(path)?;
        file.write_all(&header_to_bytes(shard, epoch))?;
        file.flush()?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Reopen an existing journal after recovery: truncate to the end of
    /// the committed prefix (dropping any torn tail) and position appends
    /// there.
    pub(crate) fn resume(path: &Path, committed_bytes: u64) -> Result<JournalWriter> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(committed_bytes)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Append one committed record.
    pub(crate) fn append(&mut self, rec: &JournalRecord) -> Result<()> {
        self.file.write_all(&record_to_bytes(rec))?;
        self.file.flush()?;
        Ok(())
    }

    /// Checkpoint: restart the file with a fresh header at `epoch` (the
    /// replayable history now lives in the ERBF save).
    pub(crate) fn reset(&mut self, shard: u32, epoch: u64) -> Result<()> {
        *self = JournalWriter::create(&self.path, shard, epoch)?;
        Ok(())
    }
}
