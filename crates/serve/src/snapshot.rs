//! The immutable unit of the snapshot-swap serving core.
//!
//! A [`SegmentSnapshot`] is one shard's complete, self-consistent state:
//! the index (with its tombstone bitmap), the row ↔ id maps, and a version
//! counter. Snapshots are **immutable once published** — readers clone an
//! `Arc<SegmentSnapshot>` out of the shard's published slot and search it
//! lock-free for as long as they like, while the writer mutates its own
//! *standby* copy (via `Arc::make_mut`, which only physically clones when
//! a straggler reader still holds the standby from two publishes ago) and
//! swaps it in. Every mutation therefore observes an atomic all-or-nothing
//! transition: no torn reads, ever.
//!
//! The same `apply_*` functions run on the live write path and during
//! journal replay, and the auto-compaction check runs *inside* them — so a
//! recovered shard re-derives the bit-identical physical state (including
//! HNSW graph layout) that the pre-crash writer built, as long as the
//! [`CompactionPolicy`] persisted alongside the save is used.

use crate::shard::AnyIndex;
use crate::Hit;
use er_core::{EntityId, ErError, Result};
use er_index::{IndexReader, MutableIndex, NnIndex};
use std::collections::HashMap;

/// When a shard compacts automatically. The check runs after every delete
/// or upsert (the only ops that create tombstones), inside the
/// deterministic apply path shared by live writes and journal replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionPolicy {
    /// Compact once `tombstoned / stored` exceeds this fraction.
    pub max_deleted_fraction: f32,
    /// Never compact shards storing fewer rows than this — tiny shards
    /// rebuild often and reclaim almost nothing.
    pub min_stored: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy {
            max_deleted_fraction: 0.3,
            min_stored: 64,
        }
    }
}

impl CompactionPolicy {
    /// A policy that never triggers — the pre-snapshot behaviour
    /// (tombstones accumulate until a manual
    /// [`crate::ShardedIndex::compact`]).
    pub fn never() -> CompactionPolicy {
        CompactionPolicy {
            max_deleted_fraction: f32::INFINITY,
            min_stored: usize::MAX,
        }
    }

    /// Whether a shard with `stored` rows of which `live` are not
    /// tombstoned should compact now.
    pub fn should_compact(&self, live: usize, stored: usize) -> bool {
        stored >= self.min_stored
            && stored > 0
            && (stored - live) as f32 / stored as f32 > self.max_deleted_fraction
    }
}

/// Per-shard observability: the numbers the compaction policy and the
/// (future) rebalancer act on. Returned by `ShardedIndex::stats`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardStats {
    /// Live (searchable) records.
    pub live: usize,
    /// Tombstoned rows still occupying storage.
    pub tombstoned: usize,
    /// `tombstoned / (live + tombstoned)`, 0 for an empty shard.
    pub deleted_fraction: f32,
    /// Records appended to the shard's write-ahead journal since the last
    /// checkpoint (0 when the shard does not journal).
    pub journal_len: u64,
}

/// One committed mutation, as routed to a shard. The writer applies ops to
/// its standby side, keeps them in a backlog to catch the other side up
/// after the swap, and (for the first three) appends them to the
/// write-ahead journal before applying.
#[derive(Debug, Clone)]
pub(crate) enum WriteOp {
    Insert {
        id: EntityId,
        row: Vec<f32>,
    },
    Upsert {
        id: EntityId,
        row: Vec<f32>,
    },
    Delete {
        id: EntityId,
    },
    /// Manual compaction. Not journaled: logically invisible (same live
    /// records, same answers), so recovery simply skips it.
    Compact,
}

/// One shard's immutable, searchable state. See the module docs.
#[derive(Debug, Clone)]
pub struct SegmentSnapshot {
    pub(crate) index: AnyIndex,
    /// Row → the entity id inserted at that row (including tombstoned
    /// rows; rebuilt on compaction).
    pub(crate) ids: Vec<EntityId>,
    /// Live entity id → its row.
    pub(crate) rows: HashMap<EntityId, usize>,
    /// Ops applied since the shard was created — every published snapshot
    /// has a distinct version, so a reader can tell which committed state
    /// it observed.
    pub(crate) version: u64,
}

impl SegmentSnapshot {
    pub(crate) fn from_index(index: AnyIndex) -> SegmentSnapshot {
        SegmentSnapshot {
            index,
            ids: Vec::new(),
            rows: HashMap::new(),
            version: 0,
        }
    }

    /// Rebuild the live-id map from the insertion history + tombstones —
    /// the load path. Fails if the history disagrees with the index (two
    /// live rows claiming one id, or a row count mismatch).
    pub(crate) fn from_parts(index: AnyIndex, ids: Vec<EntityId>) -> Result<SegmentSnapshot> {
        if ids.len() != index.len() {
            return Err(ErError::Corrupt(format!(
                "shard id history covers {} rows, index stores {}",
                ids.len(),
                index.len()
            )));
        }
        let mut rows = HashMap::new();
        for (row, &id) in ids.iter().enumerate() {
            if !index.is_deleted(row) && rows.insert(id, row).is_some() {
                return Err(ErError::Corrupt(format!(
                    "shard holds two live rows for entity id {}",
                    id.0
                )));
            }
        }
        Ok(SegmentSnapshot {
            index,
            ids,
            rows,
            version: 0,
        })
    }

    /// Live (searchable) records in this snapshot.
    pub fn live_count(&self) -> usize {
        self.index.live_count()
    }

    /// Stored rows, tombstones included.
    pub fn stored(&self) -> usize {
        self.index.len()
    }

    /// Whether `id` is live in this snapshot.
    pub fn contains(&self, id: EntityId) -> bool {
        self.rows.contains_key(&id)
    }

    /// Ops applied to this shard when the snapshot was committed.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The underlying index (read-only).
    pub fn index(&self) -> &AnyIndex {
        &self.index
    }

    /// The live entity ids in this snapshot, sorted ascending. An
    /// observability hook — and the stress suite's witness that every
    /// observed snapshot is a committed state.
    pub fn live_ids(&self) -> Vec<EntityId> {
        let mut ids: Vec<EntityId> = self.rows.keys().copied().collect();
        ids.sort_unstable_by_key(|id| id.0);
        ids
    }

    /// Top-k over this snapshot's live records, ordered by the global
    /// `(distance, id)` merge contract.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let mut hits: Vec<Hit> = self
            .index
            .search_slice(query, k)
            .into_iter()
            .map(|n| Hit {
                id: self.ids[n.index],
                distance: n.distance,
            })
            .collect();
        // Re-order by (distance, id): backends tie-break equal distances
        // on row position, which need not agree with id order — the merge
        // contract requires id order.
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.id.0.cmp(&b.id.0))
        });
        hits
    }

    /// Apply one op. This is the **only** mutation path — live writes and
    /// journal replay both funnel through it, so the two produce
    /// bit-identical states. Returns what the op's public API reports
    /// (insert: stored; upsert: replaced; delete: existed).
    pub(crate) fn apply(&mut self, op: &WriteOp, policy: &CompactionPolicy) -> Result<bool> {
        self.version += 1;
        match op {
            WriteOp::Insert { id, row } => {
                if self.rows.contains_key(id) {
                    return Ok(false);
                }
                let row_idx = self.index.insert_row(row)?;
                debug_assert_eq!(row_idx, self.ids.len());
                self.ids.push(*id);
                self.rows.insert(*id, row_idx);
                Ok(true)
            }
            WriteOp::Upsert { id, row } => {
                let replaced = match self.rows.get(id) {
                    Some(&old_row) => {
                        self.index.delete_row(old_row);
                        self.rows.remove(id);
                        true
                    }
                    None => false,
                };
                let row_idx = self.index.insert_row(row)?;
                self.ids.push(*id);
                self.rows.insert(*id, row_idx);
                if replaced {
                    self.maybe_compact(policy)?;
                }
                Ok(replaced)
            }
            WriteOp::Delete { id } => {
                let existed = match self.rows.remove(id) {
                    Some(row) => self.index.delete_row(row),
                    None => false,
                };
                if existed {
                    self.maybe_compact(policy)?;
                }
                Ok(existed)
            }
            WriteOp::Compact => {
                self.compact()?;
                Ok(true)
            }
        }
    }

    fn maybe_compact(&mut self, policy: &CompactionPolicy) -> Result<()> {
        if policy.should_compact(self.index.live_count(), self.index.len()) {
            self.compact()?;
        }
        Ok(())
    }

    /// Rebuild without tombstoned rows. The index-level
    /// [`MutableIndex::compact`] preserves live-row order and returns the
    /// new→old mapping, which rebuilds the id history; live top-k answers
    /// are unchanged (bit-identical for exact/LSH, fresh-batch-build
    /// semantics for HNSW).
    pub(crate) fn compact(&mut self) -> Result<()> {
        let mapping = self.index.compact()?;
        let ids: Vec<EntityId> = mapping.iter().map(|&old| self.ids[old as usize]).collect();
        let rows = ids.iter().enumerate().map(|(row, &id)| (id, row)).collect();
        self.ids = ids;
        self.rows = rows;
        Ok(())
    }
}
