//! The [`Resolver`]: entity resolution as a long-running service.
//!
//! A `Resolver` owns a [`ShardedIndex`] and a reference to one language
//! model + serialization mode (the same pair `embeddings4er::Pipeline`
//! vectorizes with, so an entity embeds bit-identically whether it flows
//! through the batch pipeline or the streaming service). Mutations —
//! [`Resolver::insert`], [`Resolver::upsert`], [`Resolver::delete`] — are
//! legal at any point; queries between mutations always see exactly the
//! currently-live records.
//!
//! Persistence: [`Resolver::save`] writes one `kind::RESOLVER` ERBF
//! container holding the serving metadata plus every shard's id history
//! and the shard's own nested index container. [`Resolver::load`] needs
//! the model back (models are persisted separately by the zoo cache) and
//! verifies its dimension against the saved one.

use crate::shard::{AnyIndex, Shard, ShardedIndex};
use crate::Hit;
use er_blocking::BlockerBackend;
use er_core::binary::{self, kind, BinReader, BinWriter};
use er_core::{Embedding, Entity, EntityId, ErError, Result, SerializationMode};
use er_embed::LanguageModel;
use er_index::ScanConfig;
use std::path::Path;

mod tag {
    pub const META: u32 = 1;
    pub const SHARDS: u32 = 2;
}

/// How a [`Resolver`] is laid out: shard count and index backend.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of hash shards (each an independent index).
    pub shards: usize,
    /// Index backend every shard runs; all shards share the config —
    /// including the seed, which is safe because shards hold disjoint
    /// records.
    pub backend: BlockerBackend,
    /// Kernel tier / quantization for Exact-backend shards. Int8 is
    /// per-row (shard-invariant) and tracks streaming inserts; PQ is
    /// rejected at construction — it needs a trained codebook and the
    /// service starts empty.
    pub scan: ScanConfig,
}

impl ServeConfig {
    /// Start from the defaults (4 shards, HNSW/cosine — the blocker's
    /// default backend).
    pub fn new() -> ServeConfig {
        ServeConfig::default()
    }

    pub fn shards(mut self, shards: usize) -> ServeConfig {
        self.shards = shards;
        self
    }

    pub fn backend(mut self, backend: BlockerBackend) -> ServeConfig {
        self.backend = backend;
        self
    }

    /// Choose the Exact backend's kernel tier / quantization.
    pub fn scan(mut self, scan: ScanConfig) -> ServeConfig {
        self.scan = scan;
        self
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            backend: BlockerBackend::default(),
            scan: ScanConfig::default(),
        }
    }
}

fn mode_to_writer(w: &mut BinWriter, mode: &SerializationMode) {
    match mode {
        SerializationMode::SchemaAgnostic => w.put_u8(0),
        SerializationMode::SchemaBased(attr) => {
            w.put_u8(1);
            w.put_str(attr);
        }
    }
}

fn mode_from_reader(r: &mut BinReader) -> Result<SerializationMode> {
    match r.get_u8()? {
        0 => Ok(SerializationMode::SchemaAgnostic),
        1 => Ok(SerializationMode::SchemaBased(r.get_str()?)),
        other => Err(ErError::Corrupt(format!(
            "unknown serialization mode code {other}"
        ))),
    }
}

/// A streaming entity-resolution service over hash-sharded indices.
pub struct Resolver<'m> {
    model: &'m dyn LanguageModel,
    mode: SerializationMode,
    index: ShardedIndex,
}

impl<'m> Resolver<'m> {
    /// An empty resolver: `config.shards` empty indices sized to the
    /// model's embedding dimension. Errors (typed [`ErError::Model`]) for
    /// zero shards or a scan config the service cannot honour — PQ
    /// quantization (needs a trained codebook, the service starts empty)
    /// or quantization on a non-Exact backend.
    pub fn new(
        model: &'m dyn LanguageModel,
        mode: SerializationMode,
        config: ServeConfig,
    ) -> Result<Resolver<'m>> {
        Ok(Resolver {
            model,
            mode,
            index: ShardedIndex::with_scan(
                model.dim(),
                config.shards,
                config.backend,
                config.scan,
            )?,
        })
    }

    /// Embed an entity exactly as the batch pipeline would: serialize
    /// under the resolver's mode, then run the model.
    pub fn embed(&self, entity: &Entity) -> Embedding {
        self.model.embed(&entity.serialize(&self.mode))
    }

    /// Insert a new record. `Ok(false)` (nothing stored) if the entity's
    /// id is already live — use [`Resolver::upsert`] to replace.
    pub fn insert(&mut self, entity: &Entity) -> Result<bool> {
        // Skip the embedding work when the id is already live.
        if self.index.contains(entity.id) {
            return Ok(false);
        }
        let embedding = self.embed(entity);
        self.index.insert(entity.id, embedding.as_slice())
    }

    /// Insert, replacing any live record with the same id. Returns
    /// whether a record was replaced.
    pub fn upsert(&mut self, entity: &Entity) -> Result<bool> {
        let embedding = self.embed(entity);
        self.index.upsert(entity.id, embedding.as_slice())
    }

    /// Tombstone a record. Returns `false` when the id is not live.
    pub fn delete(&mut self, id: EntityId) -> bool {
        self.index.delete(id)
    }

    /// The `k` nearest live records to `entity` (which need not be
    /// stored): embed, scatter across shards, gather-merge.
    pub fn query(&self, entity: &Entity, k: usize) -> Vec<Hit> {
        self.query_embedding(&self.embed(entity), k)
    }

    /// Query with a raw sentence (embedded under the resolver's model).
    pub fn query_text(&self, text: &str, k: usize) -> Vec<Hit> {
        self.query_embedding(&self.model.embed(text), k)
    }

    /// Query with a precomputed embedding.
    pub fn query_embedding(&self, embedding: &Embedding, k: usize) -> Vec<Hit> {
        self.index.search_ids(embedding.as_slice(), k)
    }

    /// Live records across all shards.
    pub fn len(&self) -> usize {
        self.index.shard_sizes().iter().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `id` is currently live.
    pub fn contains(&self, id: EntityId) -> bool {
        self.index.contains(id)
    }

    /// The underlying sharded index (vector-level API, shard statistics).
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    pub fn mode(&self) -> &SerializationMode {
        &self.mode
    }

    /// Serialize into one `kind::RESOLVER` container: serving metadata +
    /// every shard's id history and nested index container. The bytes are
    /// deterministic for a given mutation history.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = BinWriter::new();
        meta.put_usize(self.index.dim());
        meta.put_usize(self.index.shard_count());
        mode_to_writer(&mut meta, &self.mode);
        let mut shards = BinWriter::new();
        for shard in self.index.shards() {
            let ids: Vec<u32> = shard.ids.iter().map(|id| id.0).collect();
            shards.put_u32_slice(&ids);
            shards.put_bytes(&shard.index.to_bytes());
        }
        binary::write_container(
            kind::RESOLVER,
            &[
                (tag::META, meta.into_bytes()),
                (tag::SHARDS, shards.into_bytes()),
            ],
        )
    }

    /// Write [`Resolver::to_bytes`] to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Inverse of [`Resolver::to_bytes`]. The model is not part of the
    /// bytes (the zoo cache persists models); it must match the saved
    /// embedding dimension.
    pub fn from_bytes(bytes: &[u8], model: &'m dyn LanguageModel) -> Result<Resolver<'m>> {
        let sections = binary::read_container(bytes, kind::RESOLVER)?;
        let mut meta = BinReader::new(binary::section(&sections, tag::META, "meta")?);
        let dim = meta.get_usize()?;
        let shard_count = meta.get_usize()?;
        let mode = mode_from_reader(&mut meta)?;
        if shard_count == 0 {
            return Err(ErError::Corrupt("resolver with zero shards".into()));
        }
        if model.dim() != dim {
            return Err(ErError::Model(format!(
                "resolver was saved over {dim}-d embeddings, model {} emits {}-d",
                model.code(),
                model.dim()
            )));
        }
        let mut shards_reader = BinReader::new(binary::section(&sections, tag::SHARDS, "shards")?);
        let mut shards = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let ids: Vec<EntityId> = shards_reader
                .get_u32_vec()?
                .into_iter()
                .map(EntityId)
                .collect();
            let index = AnyIndex::from_bytes(shards_reader.get_bytes()?)?;
            shards.push(Shard::from_parts(index, ids)?);
        }
        if shards_reader.remaining() != 0 {
            return Err(ErError::Corrupt(format!(
                "{} trailing bytes after the last shard",
                shards_reader.remaining()
            )));
        }
        Ok(Resolver {
            model,
            mode,
            index: ShardedIndex::from_shards(shards, dim)?,
        })
    }

    /// Load from a file written by [`Resolver::save`].
    pub fn load(path: impl AsRef<Path>, model: &'m dyn LanguageModel) -> Result<Resolver<'m>> {
        Resolver::from_bytes(&std::fs::read(path)?, model)
    }
}
