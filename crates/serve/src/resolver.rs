//! The [`Resolver`]: entity resolution as a long-running service.
//!
//! A `Resolver` owns a [`ShardedIndex`] and a reference to one language
//! model + serialization mode (the same pair `embeddings4er::Pipeline`
//! vectorizes with, so an entity embeds bit-identically whether it flows
//! through the batch pipeline or the streaming service). Mutations —
//! [`Resolver::insert`], [`Resolver::upsert`], [`Resolver::delete`] — take
//! `&self` and are legal at any point, including while other threads
//! query: each shard publishes immutable snapshots that queries pin at
//! their start (see `crate::snapshot`).
//!
//! Persistence comes in two flavours:
//!
//! - **Export**: [`Resolver::save`]/[`Resolver::load`] write/read one
//!   `kind::RESOLVER` ERBF container — a point-in-time copy with no
//!   durability obligations.
//! - **Durable**: [`Resolver::open`] binds the resolver to a directory
//!   holding the ERBF save plus one write-ahead journal per shard
//!   (`shard-<i>.jrnl`). Every committed mutation is journaled before it
//!   is applied; on reopen, the journal tail newer than the save is
//!   replayed, so a crash loses at most a torn (uncommitted) record.
//!   [`Resolver::checkpoint`] folds the journals into a fresh save and
//!   advances the epoch.
//!
//! **Epoch rule**: the save's epoch counts completed checkpoints; each
//! journal's header names the epoch it extends. On open, a journal at the
//! save's epoch is replayed; one at an older epoch is stale (crash
//! between the save rename and the journal reset) and is discarded; one
//! at a *newer* epoch means the save file itself is stale — a corruption
//! error, never silent data loss.

use crate::shard::{AnyIndex, ShardedIndex};
use crate::snapshot::{CompactionPolicy, SegmentSnapshot, ShardStats};
use crate::wal::JournalWriter;
use crate::Hit;
use er_blocking::BlockerBackend;
use er_core::binary::{self, kind, BinReader, BinWriter};
use er_core::journal::parse_journal;
use er_core::{Embedding, Entity, EntityId, ErError, Result, SerializationMode};
use er_embed::LanguageModel;
use er_index::ScanConfig;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

mod tag {
    pub const META: u32 = 1;
    pub const SHARDS: u32 = 2;
}

/// File names inside a durable resolver directory.
const SAVE_FILE: &str = "resolver.erbf";
const SAVE_TMP: &str = "resolver.erbf.tmp";

fn journal_file(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.jrnl"))
}

/// How a [`Resolver`] is laid out: shard count, index backend, and the
/// compaction policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Number of hash shards (each an independent index).
    pub shards: usize,
    /// Index backend every shard runs; all shards share the config —
    /// including the seed, which is safe because shards hold disjoint
    /// records.
    pub backend: BlockerBackend,
    /// Kernel tier / quantization for Exact-backend shards. Int8 is
    /// per-row (shard-invariant) and tracks streaming inserts; PQ is
    /// rejected at construction — it needs a trained codebook and the
    /// service starts empty.
    pub scan: ScanConfig,
    /// When shards compact automatically (after deletes/upserts push the
    /// tombstone fraction past the threshold). Persisted with the save so
    /// journal replay re-derives the identical physical state.
    pub compaction: CompactionPolicy,
}

impl ServeConfig {
    /// Start from the defaults (4 shards, HNSW/cosine — the blocker's
    /// default backend — and the default compaction policy).
    pub fn new() -> ServeConfig {
        ServeConfig::default()
    }

    pub fn shards(mut self, shards: usize) -> ServeConfig {
        self.shards = shards;
        self
    }

    pub fn backend(mut self, backend: BlockerBackend) -> ServeConfig {
        self.backend = backend;
        self
    }

    /// Choose the Exact backend's kernel tier / quantization.
    pub fn scan(mut self, scan: ScanConfig) -> ServeConfig {
        self.scan = scan;
        self
    }

    /// Choose when shards compact automatically
    /// ([`CompactionPolicy::never`] restores accumulate-until-manual).
    pub fn compaction(mut self, compaction: CompactionPolicy) -> ServeConfig {
        self.compaction = compaction;
        self
    }

    /// Derive a serving config from a unified [`er_core::OperatingPoint`]
    /// — the single-source-of-truth path: the point's backend and scan
    /// feed both this config and any `TopKConfig` derived from the same
    /// point, so the two can never silently disagree. Shard count and
    /// compaction policy keep their defaults (chain the builder:
    /// `ServeConfig::from_point(&op)?.shards(8)`). Validates the point
    /// (typed [`ErError::Config`] on contradictions).
    pub fn from_point(point: &er_core::OperatingPoint) -> Result<ServeConfig> {
        let blocking = er_blocking::TopKConfig::from_point(point)?;
        Ok(ServeConfig::default()
            .backend(blocking.backend)
            .scan(blocking.scan))
    }
}

/// Reconcile a blocking config and a serving config that are supposed to
/// describe the same run into one [`er_core::OperatingPoint`] — the fix
/// for the config-duplication footgun where `TopKConfig.scan` and
/// `ServeConfig.scan` (or the two backends) silently disagreed. Agreement
/// is judged on the unified form: both configs are lifted and must render
/// the identical canonical JSON (k is taken from the blocking side — the
/// serving side has no k). On disagreement this returns a typed
/// [`ErError::Config`] naming both forms instead of letting one config
/// win silently.
pub fn unified_operating_point(
    blocking: &er_blocking::TopKConfig,
    serve: &ServeConfig,
) -> Result<er_core::OperatingPoint> {
    let from_blocking = er_core::OperatingPoint::from(blocking);
    let serve_as_blocking = er_blocking::TopKConfig {
        k: blocking.k,
        backend: serve.backend.clone(),
        dirty: blocking.dirty,
        scan: serve.scan,
    };
    let from_serve = er_core::OperatingPoint::from(&serve_as_blocking);
    if from_blocking.to_json() != from_serve.to_json() {
        return Err(ErError::Config(format!(
            "blocking and serving configs disagree: blocking resolves to \
             {} but serving to {}",
            from_blocking.to_json(),
            from_serve.to_json()
        )));
    }
    Ok(from_blocking)
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            backend: BlockerBackend::default(),
            scan: ScanConfig::default(),
            compaction: CompactionPolicy::default(),
        }
    }
}

fn mode_to_writer(w: &mut BinWriter, mode: &SerializationMode) {
    match mode {
        SerializationMode::SchemaAgnostic => w.put_u8(0),
        SerializationMode::SchemaBased(attr) => {
            w.put_u8(1);
            w.put_str(attr);
        }
    }
}

fn mode_from_reader(r: &mut BinReader) -> Result<SerializationMode> {
    match r.get_u8()? {
        0 => Ok(SerializationMode::SchemaAgnostic),
        1 => Ok(SerializationMode::SchemaBased(r.get_str()?)),
        other => Err(ErError::Corrupt(format!(
            "unknown serialization mode code {other}"
        ))),
    }
}

/// A streaming entity-resolution service over hash-sharded indices.
pub struct Resolver<'m> {
    model: &'m dyn LanguageModel,
    mode: SerializationMode,
    index: ShardedIndex,
    /// Completed checkpoints (0 until the first [`Resolver::checkpoint`]).
    epoch: Mutex<u64>,
    /// Set by [`Resolver::open`]; `None` for in-memory / export-only use.
    dir: Option<PathBuf>,
}

impl<'m> Resolver<'m> {
    /// An empty in-memory resolver: `config.shards` empty indices sized to
    /// the model's embedding dimension. Errors (typed [`ErError::Model`])
    /// for zero shards or a scan config the service cannot honour — PQ
    /// quantization (needs a trained codebook, the service starts empty)
    /// or quantization on a non-Exact backend.
    pub fn new(
        model: &'m dyn LanguageModel,
        mode: SerializationMode,
        config: ServeConfig,
    ) -> Result<Resolver<'m>> {
        Ok(Resolver {
            model,
            mode,
            index: ShardedIndex::with_options(
                model.dim(),
                config.shards,
                config.backend,
                config.scan,
                config.compaction,
            )?,
            epoch: Mutex::new(0),
            dir: None,
        })
    }

    /// [`Resolver::new`] from a unified [`er_core::OperatingPoint`] —
    /// e.g. the point an `er-tune` autotune run chose. Equivalent to
    /// `Resolver::new(model, mode, ServeConfig::from_point(&point)?)`.
    pub fn with_point(
        model: &'m dyn LanguageModel,
        mode: SerializationMode,
        point: &er_core::OperatingPoint,
    ) -> Result<Resolver<'m>> {
        Resolver::new(model, mode, ServeConfig::from_point(point)?)
    }

    /// Open (or create) a **durable** resolver in `dir`.
    ///
    /// If `dir` holds a save, it is loaded and `mode`/`config` are
    /// ignored — the saved layout (mode, shard count, backend, compaction
    /// policy) is authoritative, which is what makes journal replay
    /// deterministic. Then each shard's journal is examined: records newer
    /// than the save are replayed, torn tails are truncated, stale
    /// journals (older epoch) are discarded, and appends resume where the
    /// committed history ends.
    pub fn open(
        dir: impl AsRef<Path>,
        model: &'m dyn LanguageModel,
        mode: SerializationMode,
        config: ServeConfig,
    ) -> Result<Resolver<'m>> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let save_path = dir.join(SAVE_FILE);
        let mut resolver = if save_path.exists() {
            Resolver::from_bytes(&std::fs::read(&save_path)?, model)?
        } else {
            Resolver::new(model, mode, config)?
        };
        resolver.dir = Some(dir.to_path_buf());
        resolver.recover_journals()?;
        Ok(resolver)
    }

    /// Replay + reattach every shard journal against the current epoch.
    fn recover_journals(&self) -> Result<()> {
        let dir = self.dir.as_ref().expect("recover_journals needs a dir");
        let epoch = *self.epoch.lock().expect("resolver epoch lock poisoned");
        for i in 0..self.index.shard_count() {
            let path = journal_file(dir, i);
            let mut resume: Option<(u64, u64)> = None;
            if path.exists() {
                let bytes = std::fs::read(&path)?;
                let parsed = parse_journal(&bytes)?;
                if let Some(header) = &parsed.header {
                    if header.shard != i as u32 {
                        return Err(ErError::Corrupt(format!(
                            "journal {} carries shard id {}, expected {i}",
                            path.display(),
                            header.shard
                        )));
                    }
                    if header.epoch > epoch {
                        return Err(ErError::Corrupt(format!(
                            "journal for shard {i} is at epoch {} but the save is at \
                             epoch {epoch} — the save file is stale",
                            header.epoch
                        )));
                    }
                    if header.epoch == epoch {
                        self.index.replay(i, &parsed.records)?;
                        resume = Some((parsed.committed_bytes as u64, parsed.records.len() as u64));
                    }
                    // Older epoch: a crash hit between the save rename and
                    // the journal reset. Its records are already in the
                    // save — discard by rewriting below.
                }
                // No header: a crash tore the first write — rewrite.
            }
            let (writer, len) = match resume {
                Some((committed_bytes, len)) => {
                    (JournalWriter::resume(&path, committed_bytes)?, len)
                }
                None => (JournalWriter::create(&path, i as u32, epoch)?, 0),
            };
            self.index.attach_journal(i, writer, len);
        }
        Ok(())
    }

    /// Fold the journals into a fresh save and advance the epoch: write
    /// the ERBF atomically (temp file + rename), *then* reset every
    /// journal — a crash in between leaves stale journals that the next
    /// [`Resolver::open`] discards. Writes are blocked for the duration;
    /// queries are not. Errors for non-durable resolvers.
    pub fn checkpoint(&self) -> Result<()> {
        let dir = self.dir.as_ref().ok_or_else(|| {
            ErError::Model(
                "er-serve: checkpoint needs a durable resolver — open it with Resolver::open"
                    .into(),
            )
        })?;
        let mut epoch = self.epoch.lock().expect("resolver epoch lock poisoned");
        let next = *epoch + 1;
        self.index.checkpoint_with(next, |snaps| {
            let bytes = self.serialize_snapshots(snaps, next);
            let tmp = dir.join(SAVE_TMP);
            std::fs::write(&tmp, bytes)?;
            std::fs::rename(&tmp, dir.join(SAVE_FILE))?;
            Ok(())
        })?;
        *epoch = next;
        Ok(())
    }

    /// Completed checkpoints (0 for a fresh or export-loaded resolver).
    pub fn epoch(&self) -> u64 {
        *self.epoch.lock().expect("resolver epoch lock poisoned")
    }

    /// The durable directory, when opened via [`Resolver::open`].
    pub fn durable_dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Embed an entity exactly as the batch pipeline would: serialize
    /// under the resolver's mode, then run the model.
    pub fn embed(&self, entity: &Entity) -> Embedding {
        self.model.embed(&entity.serialize(&self.mode))
    }

    /// Insert a new record. `Ok(false)` (nothing stored) if the entity's
    /// id is already live — use [`Resolver::upsert`] to replace.
    pub fn insert(&self, entity: &Entity) -> Result<bool> {
        // Skip the embedding work when the id is already live.
        if self.index.contains(entity.id) {
            return Ok(false);
        }
        let embedding = self.embed(entity);
        self.index.insert(entity.id, embedding.as_slice())
    }

    /// Insert, replacing any live record with the same id. Returns
    /// whether a record was replaced.
    pub fn upsert(&self, entity: &Entity) -> Result<bool> {
        let embedding = self.embed(entity);
        self.index.upsert(entity.id, embedding.as_slice())
    }

    /// Tombstone a record. `Ok(false)` when the id is not live. (Errors
    /// are I/O failures appending to the write-ahead journal.)
    pub fn delete(&self, id: EntityId) -> Result<bool> {
        self.index.delete(id)
    }

    /// Manually compact every shard (see [`ShardedIndex::compact`]).
    pub fn compact(&self) -> Result<()> {
        self.index.compact()
    }

    /// The `k` nearest live records to `entity` (which need not be
    /// stored): embed, scatter across shards, gather-merge.
    pub fn query(&self, entity: &Entity, k: usize) -> Vec<Hit> {
        self.query_embedding(&self.embed(entity), k)
    }

    /// Query with a raw sentence (embedded under the resolver's model).
    pub fn query_text(&self, text: &str, k: usize) -> Vec<Hit> {
        self.query_embedding(&self.model.embed(text), k)
    }

    /// Query with a precomputed embedding.
    pub fn query_embedding(&self, embedding: &Embedding, k: usize) -> Vec<Hit> {
        self.index.search_ids(embedding.as_slice(), k)
    }

    /// Live records across all shards.
    pub fn len(&self) -> usize {
        self.index.shard_sizes().iter().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Live records per shard.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.index.shard_sizes()
    }

    /// Per-shard stats: live/tombstoned counts, deleted fraction, journal
    /// length since the last checkpoint.
    pub fn stats(&self) -> Vec<ShardStats> {
        self.index.stats()
    }

    /// Whether `id` is currently live.
    pub fn contains(&self, id: EntityId) -> bool {
        self.index.contains(id)
    }

    /// The underlying sharded index (vector-level API, shard statistics).
    pub fn index(&self) -> &ShardedIndex {
        &self.index
    }

    pub fn mode(&self) -> &SerializationMode {
        &self.mode
    }

    fn serialize_snapshots(&self, snaps: &[Arc<SegmentSnapshot>], epoch: u64) -> Vec<u8> {
        let mut meta = BinWriter::new();
        meta.put_usize(self.index.dim());
        meta.put_usize(snaps.len());
        mode_to_writer(&mut meta, &self.mode);
        let policy = self.index.compaction_policy();
        meta.put_f32(policy.max_deleted_fraction);
        meta.put_usize(policy.min_stored);
        let mut shards = BinWriter::new();
        for snap in snaps {
            let ids: Vec<u32> = snap.ids.iter().map(|id| id.0).collect();
            shards.put_u32_slice(&ids);
            shards.put_bytes(&snap.index.to_bytes());
        }
        binary::write_container_epoch(
            kind::RESOLVER,
            epoch,
            &[
                (tag::META, meta.into_bytes()),
                (tag::SHARDS, shards.into_bytes()),
            ],
        )
    }

    /// Serialize into one `kind::RESOLVER` container: serving metadata +
    /// every shard's id history and nested index container, stamped with
    /// the current epoch. The shard set is taken under all writer locks,
    /// so the bytes are a mutually consistent point-in-time copy —
    /// deterministic for a given mutation history.
    pub fn to_bytes(&self) -> Vec<u8> {
        let snaps = self.index.consistent_snapshots();
        self.serialize_snapshots(&snaps, self.epoch())
    }

    /// Write [`Resolver::to_bytes`] to a file — a point-in-time **export**
    /// with no journal side effects (journals keep accumulating; use
    /// [`Resolver::checkpoint`] for the durable flow).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }

    /// Inverse of [`Resolver::to_bytes`]. The model is not part of the
    /// bytes (the zoo cache persists models); it must match the saved
    /// embedding dimension.
    pub fn from_bytes(bytes: &[u8], model: &'m dyn LanguageModel) -> Result<Resolver<'m>> {
        let (epoch, sections) = binary::read_container_epoch(bytes, kind::RESOLVER)?;
        let mut meta = BinReader::new(binary::section(&sections, tag::META, "meta")?);
        let dim = meta.get_usize()?;
        let shard_count = meta.get_usize()?;
        let mode = mode_from_reader(&mut meta)?;
        let policy = CompactionPolicy {
            max_deleted_fraction: meta.get_f32()?,
            min_stored: meta.get_usize()?,
        };
        if shard_count == 0 {
            return Err(ErError::Corrupt("resolver with zero shards".into()));
        }
        if model.dim() != dim {
            return Err(ErError::Model(format!(
                "resolver was saved over {dim}-d embeddings, model {} emits {}-d",
                model.code(),
                model.dim()
            )));
        }
        let mut shards_reader = BinReader::new(binary::section(&sections, tag::SHARDS, "shards")?);
        let mut snapshots = Vec::with_capacity(shard_count);
        for _ in 0..shard_count {
            let ids: Vec<EntityId> = shards_reader
                .get_u32_vec()?
                .into_iter()
                .map(EntityId)
                .collect();
            let index = AnyIndex::from_bytes(shards_reader.get_bytes()?)?;
            snapshots.push(SegmentSnapshot::from_parts(index, ids)?);
        }
        if shards_reader.remaining() != 0 {
            return Err(ErError::Corrupt(format!(
                "{} trailing bytes after the last shard",
                shards_reader.remaining()
            )));
        }
        Ok(Resolver {
            model,
            mode,
            index: ShardedIndex::from_snapshots(snapshots, dim, policy)?,
            epoch: Mutex::new(epoch),
            dir: None,
        })
    }

    /// Load from a file written by [`Resolver::save`] (an export — for
    /// the durable flow, use [`Resolver::open`] on the directory).
    pub fn load(path: impl AsRef<Path>, model: &'m dyn LanguageModel) -> Result<Resolver<'m>> {
        Resolver::from_bytes(&std::fs::read(path)?, model)
    }
}
