//! er-serve — entity resolution as a long-running service (ROADMAP open
//! item 3: the serving arc of the north-star production system).
//!
//! Every other crate in the workspace runs the paper's *batch*
//! experiments: embed a frozen collection, build an index once, block,
//! match. This crate turns the same machinery into a service that
//! survives records arriving, changing and disappearing while queries
//! run:
//!
//! * [`Resolver`] — the service type: streaming [`Resolver::insert`] /
//!   [`Resolver::upsert`] / [`Resolver::delete`] of [`er_core::Entity`]
//!   records (all `&self` — mutations and queries may run concurrently),
//!   with top-k queries legal at any point. Embedding runs through the
//!   same `LanguageModel` + serialization mode the batch pipeline uses,
//!   so a record embeds bit-identically on both paths.
//! * [`ShardedIndex`] — the vector-level half: N hash-routed shards
//!   (FNV-1a over the entity id) of any `er_index` backend, queried
//!   scatter-gather with a `BinaryHeap` k-way merge that preserves the
//!   `(distance, id)` total order. An N-shard exact search is
//!   bit-identical to a single exact index over the same records.
//! * Snapshot-swap concurrency — each shard publishes an immutable
//!   [`SegmentSnapshot`] readers pin with one `Arc` clone; the writer
//!   mutates a standby copy and swaps it in, so queries never block
//!   writes and never observe a half-applied mutation (`crate::snapshot`
//!   has the full contract).
//! * Durability — [`Resolver::open`] binds the service to a directory:
//!   every committed mutation is appended to a per-shard write-ahead
//!   journal (`er_core::journal` layout) before it is applied, and
//!   [`Resolver::checkpoint`] folds the journals into an atomic
//!   epoch-stamped ERBF save. Crash recovery replays exactly the
//!   committed journal prefix. [`Resolver::save`] / [`Resolver::load`]
//!   remain as journal-free point-in-time exports.
//! * Compaction — tombstoned rows are reclaimed automatically once a
//!   shard crosses its [`CompactionPolicy`] threshold (or manually via
//!   [`Resolver::compact`]), with live top-k answers unchanged;
//!   [`ShardStats`] reports live/tombstoned/journal depth per shard.
//!
//! Incremental index mutation itself (HNSW streaming insertion that is
//! bit-identical to batch construction, tombstone-masked search,
//! order-preserving `compact`) lives in `er_index::MutableIndex`; this
//! crate composes it with routing, merging, journaling, and the
//! entity/embedding layer.

pub mod resolver;
pub mod shard;
pub mod snapshot;
mod wal;

pub use resolver::{unified_operating_point, Resolver, ServeConfig};
pub use shard::{search_snapshots, AnyIndex, ShardedIndex};
pub use snapshot::{CompactionPolicy, SegmentSnapshot, ShardStats};

use er_core::EntityId;

/// One query hit: a live record's id and its distance from the query
/// under the backend's metric (lower is closer). The service-level twin
/// of `er_index::Neighbor`, which carries a row position instead — a
/// sharded service has no global row space, so hits are keyed by id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    pub id: EntityId,
    pub distance: f32,
}

impl Hit {
    pub fn new(id: EntityId, distance: f32) -> Hit {
        Hit { id, distance }
    }
}
