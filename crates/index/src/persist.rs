//! Binary persistence for the three index backends — the `er-serve`
//! save/load path, built on the `er_core::binary` ERBF container.
//!
//! Each index serializes into one container of its own `kind` (so an LSH
//! file can never be loaded as an HNSW graph) holding length-prefixed
//! sections:
//!
//! | section       | exact | HNSW | LSH | contents                          |
//! |---------------|-------|------|-----|-----------------------------------|
//! | `MATRIX`      | ✓     | ✓    | ✓   | dim, flat f32 rows, cached norms  |
//! | `META`        | ✓     | ✓    | ✓   | config fields, metric code        |
//! | `TOMBSTONES`  | ✓     | ✓    | ✓   | packed deletion bitmap            |
//! | `GRAPH`       |       | ✓    |     | per-node per-layer adjacency      |
//! | `HYPERPLANES` |       |      | ✓   | per-table per-plane f32 rows      |
//! | `SIGNATURES`  |       |      | ✓   | per-table per-vector u64 sketches |
//!
//! Loads are **reconstruction-free** in the float sense: row norms, graph
//! adjacency, hyperplanes and signatures come back verbatim with
//! `from_le_bytes`, so a loaded index answers every query bit-identically
//! to the index that was saved (pinned by round-trip tests). The only
//! recomputation on load is cheap and float-free: LSH bucket maps are
//! rebuilt from the stored signatures in id order, and the HNSW level
//! stream is repositioned by replaying one draw per stored row (the draw
//! count always equals the row count, so no generator internals are
//! persisted).
//!
//! Every malformed input — bad magic, wrong kind, flipped bit, truncation,
//! out-of-range ids, mismatched section shapes — surfaces as a typed
//! [`ErError::Corrupt`], never a panic.

use crate::exact::{QuantState, Quantization, ScanConfig};
use crate::lsh::Table;
use crate::{ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, LshConfig, Metric};
use er_core::binary::{self, kind, BinReader, BinWriter};
use er_core::pq::PqConfig;
use er_core::{ErError, KernelTier, Result, VectorStore};
use std::collections::HashMap;
use std::path::Path;

/// Section tags shared by the three index containers (disjoint use is
/// keyed by the container `kind`).
mod tag {
    pub const MATRIX: u32 = 1;
    pub const META: u32 = 2;
    pub const TOMBSTONES: u32 = 3;
    pub const GRAPH: u32 = 4;
    pub const HYPERPLANES: u32 = 5;
    pub const SIGNATURES: u32 = 6;
    /// Int8 quantized companion matrix (exact index only).
    pub const QUANT: u32 = 7;
    /// PQ codebook centroids (exact index only).
    pub const CODEBOOK: u32 = 8;
    /// PQ codes, one byte per subspace per row (exact index only).
    pub const PQ_CODES: u32 = 9;
}

fn corrupt(what: impl std::fmt::Display) -> ErError {
    ErError::Corrupt(what.to_string())
}

fn metric_code(metric: Metric) -> u8 {
    match metric {
        Metric::Euclidean => 0,
        Metric::Cosine => 1,
    }
}

fn metric_from_code(code: u8) -> Result<Metric> {
    match code {
        0 => Ok(Metric::Euclidean),
        1 => Ok(Metric::Cosine),
        other => Err(corrupt(format!("unknown metric code {other}"))),
    }
}

fn tier_from_code(code: u8) -> Result<KernelTier> {
    KernelTier::from_code(code).ok_or_else(|| corrupt(format!("unknown kernel tier code {code}")))
}

fn tombstones_to_bytes(deleted: &[bool]) -> Vec<u8> {
    let mut w = BinWriter::new();
    w.put_bitmap(deleted);
    w.into_bytes()
}

/// Read the tombstone bitmap and require it to cover exactly `rows` rows.
fn tombstones_from(sections: &[(u32, &[u8])], rows: usize) -> Result<(Vec<bool>, usize)> {
    let body = binary::section(sections, tag::TOMBSTONES, "tombstones")?;
    let deleted = BinReader::new(body).get_bitmap()?;
    if deleted.len() != rows {
        return Err(corrupt(format!(
            "tombstone map covers {} rows, matrix has {rows}",
            deleted.len()
        )));
    }
    let count = deleted.iter().filter(|&&d| d).count();
    Ok((deleted, count))
}

fn matrix_section(sections: &[(u32, &[u8])]) -> Result<er_core::EmbeddingMatrix> {
    let body = binary::section(sections, tag::MATRIX, "matrix")?;
    binary::matrix_from_reader(&mut BinReader::new(body))
}

impl ExactIndex<'_> {
    /// Serialize into one `kind::EXACT_INDEX` container (works for owned
    /// *and* borrowed stores — the bytes capture the matrix contents).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut matrix = BinWriter::new();
        binary::matrix_to_writer(&mut matrix, self.store.matrix());
        let mut meta = BinWriter::new();
        meta.put_u8(metric_code(self.metric));
        meta.put_u8(self.scan.tier.code());
        match self.scan.quant {
            Quantization::None => meta.put_u8(0),
            Quantization::Int8 { rerank } => {
                meta.put_u8(1);
                meta.put_usize(rerank);
            }
            Quantization::Pq { config, rerank } => {
                meta.put_u8(2);
                meta.put_usize(rerank);
                meta.put_usize(config.subspaces);
                meta.put_usize(config.centroids);
                meta.put_usize(config.iters);
                meta.put_u64(config.seed);
            }
        }
        let mut sections = vec![
            (tag::MATRIX, matrix.into_bytes()),
            (tag::META, meta.into_bytes()),
            (tag::TOMBSTONES, tombstones_to_bytes(&self.deleted)),
        ];
        // The quantized companion storage serializes verbatim — a load
        // must see the codes the build produced, not re-quantize (the
        // codebook in particular is a trained artifact).
        match &self.quant {
            QuantState::None => {}
            QuantState::Int8(qm) => {
                let mut w = BinWriter::new();
                binary::quantized_to_writer(&mut w, qm);
                sections.push((tag::QUANT, w.into_bytes()));
            }
            QuantState::Pq { book, codes } => {
                let mut w = BinWriter::new();
                binary::codebook_to_writer(&mut w, book);
                sections.push((tag::CODEBOOK, w.into_bytes()));
                let mut w = BinWriter::new();
                binary::pq_codes_to_writer(&mut w, codes);
                sections.push((tag::PQ_CODES, w.into_bytes()));
            }
        }
        binary::write_container(kind::EXACT_INDEX, &sections)
    }

    /// Write [`ExactIndex::to_bytes`] to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }
}

impl ExactIndex<'static> {
    /// Inverse of [`ExactIndex::to_bytes`]: an owned index whose searches
    /// are bit-identical to the saved one's.
    pub fn from_bytes(bytes: &[u8]) -> Result<ExactIndex<'static>> {
        let sections = binary::read_container(bytes, kind::EXACT_INDEX)?;
        let matrix = matrix_section(&sections)?;
        let mut meta = BinReader::new(binary::section(&sections, tag::META, "meta")?);
        let metric = metric_from_code(meta.get_u8()?)?;
        let tier = tier_from_code(meta.get_u8()?)?;
        let quant_cfg = match meta.get_u8()? {
            0 => Quantization::None,
            1 => Quantization::Int8 {
                rerank: meta.get_usize()?,
            },
            2 => Quantization::Pq {
                rerank: meta.get_usize()?,
                config: PqConfig {
                    subspaces: meta.get_usize()?,
                    centroids: meta.get_usize()?,
                    iters: meta.get_usize()?,
                    seed: meta.get_u64()?,
                },
            },
            other => return Err(corrupt(format!("unknown quantization code {other}"))),
        };
        let quant = match quant_cfg {
            Quantization::None => QuantState::None,
            Quantization::Int8 { .. } => {
                let body = binary::section(&sections, tag::QUANT, "quantized matrix")?;
                let qm =
                    binary::quantized_from_reader(&mut BinReader::new(body)).map_err(corrupt)?;
                if qm.dim() != matrix.dim() || qm.len() != matrix.len() {
                    return Err(corrupt(format!(
                        "quantized matrix is {}×{}, f32 matrix is {}×{}",
                        qm.len(),
                        qm.dim(),
                        matrix.len(),
                        matrix.dim()
                    )));
                }
                QuantState::Int8(qm)
            }
            Quantization::Pq { .. } => {
                let body = binary::section(&sections, tag::CODEBOOK, "PQ codebook")?;
                let book =
                    binary::codebook_from_reader(&mut BinReader::new(body)).map_err(corrupt)?;
                if book.dim() != matrix.dim() {
                    return Err(corrupt(format!(
                        "PQ codebook dim {} does not match matrix dim {}",
                        book.dim(),
                        matrix.dim()
                    )));
                }
                let body = binary::section(&sections, tag::PQ_CODES, "PQ codes")?;
                let codes = binary::pq_codes_from_reader(&mut BinReader::new(body), &book)
                    .map_err(corrupt)?;
                if codes.len() != matrix.len() {
                    return Err(corrupt(format!(
                        "PQ codes cover {} rows, matrix has {}",
                        codes.len(),
                        matrix.len()
                    )));
                }
                QuantState::Pq { book, codes }
            }
        };
        let (deleted, deleted_count) = tombstones_from(&sections, matrix.len())?;
        Ok(ExactIndex {
            store: VectorStore::Owned(matrix),
            metric,
            deleted,
            deleted_count,
            scan: ScanConfig {
                tier,
                quant: quant_cfg,
            },
            quant,
        })
    }

    /// Load from a file written by [`ExactIndex::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<ExactIndex<'static>> {
        ExactIndex::from_bytes(&std::fs::read(path)?)
    }
}

impl HnswIndex<'_> {
    /// Serialize into one `kind::HNSW_INDEX` container: matrix, config,
    /// entry point, and the full per-node per-layer adjacency — a load
    /// never re-runs construction.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut matrix = BinWriter::new();
        binary::matrix_to_writer(&mut matrix, self.store.matrix());
        let mut meta = BinWriter::new();
        meta.put_usize(self.config.m);
        meta.put_usize(self.config.ef_construction);
        meta.put_usize(self.config.ef_search);
        meta.put_u64(self.config.seed);
        meta.put_u8(metric_code(self.config.metric));
        meta.put_u8(self.config.tier.code());
        meta.put_u32(self.entry);
        meta.put_usize(self.max_level);
        let mut graph = BinWriter::new();
        graph.put_usize(self.neighbors.len());
        for layers in &self.neighbors {
            graph.put_usize(layers.len());
            for links in layers {
                graph.put_u32_slice(links);
            }
        }
        binary::write_container(
            kind::HNSW_INDEX,
            &[
                (tag::MATRIX, matrix.into_bytes()),
                (tag::META, meta.into_bytes()),
                (tag::TOMBSTONES, tombstones_to_bytes(&self.deleted)),
                (tag::GRAPH, graph.into_bytes()),
            ],
        )
    }

    /// Write [`HnswIndex::to_bytes`] to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }
}

impl HnswIndex<'static> {
    /// Inverse of [`HnswIndex::to_bytes`]: an owned index with the
    /// bit-identical graph, whose level stream resumes exactly where the
    /// saved index's left off (so `insert_row` after a reload draws the
    /// same levels the original would have).
    pub fn from_bytes(bytes: &[u8]) -> Result<HnswIndex<'static>> {
        let sections = binary::read_container(bytes, kind::HNSW_INDEX)?;
        let matrix = matrix_section(&sections)?;
        let n = matrix.len();
        let mut meta = BinReader::new(binary::section(&sections, tag::META, "meta")?);
        let config = HnswConfig {
            m: meta.get_usize()?,
            ef_construction: meta.get_usize()?,
            ef_search: meta.get_usize()?,
            seed: meta.get_u64()?,
            metric: metric_from_code(meta.get_u8()?)?,
            tier: tier_from_code(meta.get_u8()?)?,
        };
        if config.m < 2 || config.ef_construction < 1 || config.ef_search < 1 {
            return Err(corrupt(format!(
                "HNSW config out of range (m {}, ef_construction {}, ef_search {})",
                config.m, config.ef_construction, config.ef_search
            )));
        }
        let entry = meta.get_u32()?;
        let max_level = meta.get_usize()?;
        if n > 0 && (entry as usize >= n || max_level > crate::hnsw::MAX_LEVEL) {
            return Err(corrupt(format!(
                "HNSW entry {entry} / max level {max_level} out of range for {n} nodes"
            )));
        }
        let mut graph = BinReader::new(binary::section(&sections, tag::GRAPH, "graph")?);
        let nodes = graph.get_usize()?;
        if nodes != n {
            return Err(corrupt(format!(
                "HNSW graph has {nodes} nodes, matrix has {n} rows"
            )));
        }
        let mut neighbors = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let layer_count = graph.get_usize()?;
            if layer_count == 0 || layer_count > crate::hnsw::MAX_LEVEL + 1 {
                return Err(corrupt(format!(
                    "HNSW node {node} claims {layer_count} layers"
                )));
            }
            let mut layers = Vec::with_capacity(layer_count);
            for _ in 0..layer_count {
                let links = graph.get_u32_vec()?;
                if let Some(&bad) = links.iter().find(|&&id| id as usize >= n) {
                    return Err(corrupt(format!(
                        "HNSW node {node} links to out-of-range node {bad}"
                    )));
                }
                layers.push(links);
            }
            neighbors.push(layers);
        }
        let (deleted, deleted_count) = tombstones_from(&sections, n)?;
        let level_rng = HnswIndex::level_rng_after(config.seed, n);
        Ok(HnswIndex {
            store: VectorStore::Owned(matrix),
            neighbors,
            entry,
            max_level,
            config,
            level_rng,
            deleted,
            deleted_count,
        })
    }

    /// Load from a file written by [`HnswIndex::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<HnswIndex<'static>> {
        HnswIndex::from_bytes(&std::fs::read(path)?)
    }
}

impl HyperplaneLsh<'_> {
    /// Serialize into one `kind::LSH_INDEX` container: matrix, config,
    /// hyperplanes and signatures verbatim — a load redoes none of the dot
    /// products that produced them.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut matrix = BinWriter::new();
        binary::matrix_to_writer(&mut matrix, self.store.matrix());
        let mut meta = BinWriter::new();
        meta.put_usize(self.config.planes);
        meta.put_usize(self.config.tables);
        meta.put_usize(self.config.probes);
        meta.put_u64(self.config.seed);
        meta.put_u8(metric_code(self.config.metric));
        meta.put_u8(self.config.tier.code());
        let mut planes = BinWriter::new();
        for table in &self.tables {
            for plane in &table.hyperplanes {
                planes.put_f32_slice(plane);
            }
        }
        let mut sigs = BinWriter::new();
        for table in &self.tables {
            sigs.put_u64_slice(&table.signatures);
        }
        binary::write_container(
            kind::LSH_INDEX,
            &[
                (tag::MATRIX, matrix.into_bytes()),
                (tag::META, meta.into_bytes()),
                (tag::TOMBSTONES, tombstones_to_bytes(&self.deleted)),
                (tag::HYPERPLANES, planes.into_bytes()),
                (tag::SIGNATURES, sigs.into_bytes()),
            ],
        )
    }

    /// Write [`HyperplaneLsh::to_bytes`] to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        Ok(std::fs::write(path, self.to_bytes())?)
    }
}

impl HyperplaneLsh<'static> {
    /// Inverse of [`HyperplaneLsh::to_bytes`]: bucket maps are rebuilt
    /// from the stored signatures in id order (float-free), everything
    /// else is read back verbatim.
    pub fn from_bytes(bytes: &[u8]) -> Result<HyperplaneLsh<'static>> {
        let sections = binary::read_container(bytes, kind::LSH_INDEX)?;
        let matrix = matrix_section(&sections)?;
        let n = matrix.len();
        let dim = matrix.dim();
        let mut meta = BinReader::new(binary::section(&sections, tag::META, "meta")?);
        let config = LshConfig {
            planes: meta.get_usize()?,
            tables: meta.get_usize()?,
            probes: meta.get_usize()?,
            seed: meta.get_u64()?,
            metric: metric_from_code(meta.get_u8()?)?,
            tier: tier_from_code(meta.get_u8()?)?,
        };
        if !(1..=64).contains(&config.planes) || config.tables < 1 {
            return Err(corrupt(format!(
                "LSH config out of range ({} planes, {} tables)",
                config.planes, config.tables
            )));
        }
        let mut planes =
            BinReader::new(binary::section(&sections, tag::HYPERPLANES, "hyperplanes")?);
        let mut sigs = BinReader::new(binary::section(&sections, tag::SIGNATURES, "signatures")?);
        let mut tables = Vec::with_capacity(config.tables);
        for t in 0..config.tables {
            let mut hyperplanes = Vec::with_capacity(config.planes);
            for p in 0..config.planes {
                let plane = planes.get_f32_vec()?;
                if plane.len() != dim {
                    return Err(corrupt(format!(
                        "LSH table {t} plane {p} has {} components, dim is {dim}",
                        plane.len()
                    )));
                }
                hyperplanes.push(plane);
            }
            let signatures = sigs.get_u64_vec()?;
            if signatures.len() != n {
                return Err(corrupt(format!(
                    "LSH table {t} has {} signatures, matrix has {n} rows",
                    signatures.len()
                )));
            }
            let mut table = Table {
                hyperplanes,
                buckets: HashMap::new(),
                signatures,
            };
            table.rebuild_buckets();
            tables.push(table);
        }
        let (deleted, deleted_count) = tombstones_from(&sections, n)?;
        Ok(HyperplaneLsh {
            store: VectorStore::Owned(matrix),
            tables,
            config,
            deleted,
            deleted_count,
        })
    }

    /// Load from a file written by [`HyperplaneLsh::save`].
    pub fn load(path: impl AsRef<Path>) -> Result<HyperplaneLsh<'static>> {
        HyperplaneLsh::from_bytes(&std::fs::read(path)?)
    }
}

#[cfg(test)]
mod tests {
    use crate::{
        ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, IndexReader, LshConfig, Metric,
        MutableIndex, NnIndex,
    };
    use er_core::binary::{self, kind};
    use er_core::{Embedding, ErError};
    use rand::Rng;

    fn vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
        let mut r = er_core::rng::rng(seed);
        (0..n)
            .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
            .collect()
    }

    #[test]
    fn exact_round_trip_preserves_hits_and_tombstones() {
        let vs = vectors(30, 6, 9);
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let mut index = ExactIndex::with_metric(&vs, metric);
            assert!(index.delete_row(4) && index.delete_row(17));
            let back = ExactIndex::from_bytes(&index.to_bytes()).unwrap();
            assert_eq!(back.live_count(), 28);
            assert!(back.is_deleted(4) && back.is_deleted(17));
            for q in &vs {
                assert_eq!(index.search(q, 7), back.search(q, 7));
            }
        }
    }

    #[test]
    fn hnsw_round_trip_is_bit_identical_and_resumes_the_level_stream() {
        let vs = vectors(40, 6, 10);
        let mut index = HnswIndex::build(&vs, HnswConfig::default());
        index.delete_row(3);
        let bytes = index.to_bytes();
        let mut back = HnswIndex::from_bytes(&bytes).unwrap();
        assert_eq!(index.adjacency(), back.adjacency());
        assert_eq!(index.max_level(), back.max_level());
        for q in &vs {
            assert_eq!(index.search(q, 5), back.search(q, 5));
        }
        // The reloaded index continues the level stream exactly where the
        // original would: the next insert yields identical graphs.
        let extra = Embedding(vec![0.5; 6]);
        index.insert_row(extra.as_slice()).unwrap();
        back.insert_row(extra.as_slice()).unwrap();
        assert_eq!(index.adjacency(), back.adjacency());
    }

    #[test]
    fn lsh_round_trip_rebuilds_buckets_without_rehashing() {
        let vs = vectors(50, 8, 11);
        let mut index = HyperplaneLsh::build(&vs, LshConfig::default());
        index.delete_row(25);
        let back = HyperplaneLsh::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(index.signatures(), back.signatures());
        for q in &vs {
            assert_eq!(index.search(q, 5), back.search(q, 5));
            assert_eq!(index.candidates(q), back.candidates(q));
        }
    }

    #[test]
    fn wrong_kind_and_corruption_are_typed_errors() {
        let vs = vectors(10, 4, 12);
        let exact = ExactIndex::build(&vs).to_bytes();
        // An exact file is not an HNSW file.
        assert!(matches!(
            HnswIndex::from_bytes(&exact),
            Err(ErError::Corrupt(_))
        ));
        // A graph whose adjacency points past the matrix is rejected.
        let hnsw = HnswIndex::build(&vs, HnswConfig::default());
        let bytes = hnsw.to_bytes();
        assert_eq!(binary::peek_kind(&bytes).unwrap(), kind::HNSW_INDEX);
        for cut in [0, 10, bytes.len() / 2, bytes.len() - 1] {
            assert!(matches!(
                HnswIndex::from_bytes(&bytes[..cut]),
                Err(ErError::Corrupt(_))
            ));
        }
    }
}
