//! Exact k-NN by brute-force scan with a bounded max-heap — the ground
//! truth every approximate index is measured against. The scan walks the
//! contiguous rows of an [`EmbeddingMatrix`] with precomputed row norms,
//! so a cosine pass reads each stored vector exactly once.
//!
//! The scan has tiers (see [`ScanConfig`]): the f32 pass can run on the
//! bit-exact `Reference` kernels or the unrolled `Lanes` kernels, and the
//! whole pass can be replaced by a memory-bound quantized scan (int8 or
//! PQ) that ranks *approximate* distances and then re-ranks the best `R`
//! candidates with the exact f32 kernels. The re-ranked prefix carries
//! exact distances, so with `R ≥` live rows the output is bit-identical to
//! the pure exact scan.

use crate::{IndexReader, Metric, MutableIndex, Neighbor, NnIndex};
use er_core::pq::{PqCodebook, PqCodes};
use er_core::quant::QuantizedMatrix;
use er_core::{Embedding, EmbeddingMatrix, ErError, QueryParams, VectorSource, VectorStore};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

// `ScanConfig` / `Quantization` moved down into er-core with the
// `OperatingPoint` redesign; re-exported here so existing
// `er_index::{ScanConfig, Quantization}` imports keep compiling.
pub use er_core::{Quantization, ScanConfig};

/// The quantized companion storage of an [`ExactIndex`], kept in sync with
/// the f32 matrix on inserts.
#[derive(Debug, Clone)]
pub(crate) enum QuantState {
    None,
    Int8(QuantizedMatrix),
    Pq { book: PqCodebook, codes: PqCodes },
}

/// A heap entry ordered by distance (max-heap keeps the worst of the
/// current top-k on top, ready for eviction).
struct Hit {
    dist: f32,
    idx: usize,
}

impl PartialEq for Hit {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Hit {}

impl PartialOrd for Hit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Hit {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.idx.cmp(&other.idx))
    }
}

#[derive(Debug, Clone)]
pub struct ExactIndex<'a> {
    pub(crate) store: VectorStore<'a>,
    pub(crate) metric: Metric,
    /// Tombstones: deleted rows stay in the matrix (ids are stable) but
    /// the scan skips them.
    pub(crate) deleted: Vec<bool>,
    pub(crate) deleted_count: usize,
    pub(crate) scan: ScanConfig,
    pub(crate) quant: QuantState,
}

impl ExactIndex<'static> {
    /// Build with the default metric (squared Euclidean). Copies the
    /// embeddings once into an owned matrix (the legacy path).
    pub fn build(vectors: &[Embedding]) -> ExactIndex<'static> {
        ExactIndex::with_metric(vectors, Metric::Euclidean)
    }

    pub fn with_metric(vectors: &[Embedding], metric: Metric) -> ExactIndex<'static> {
        ExactIndex::from_source(vectors, metric)
    }
}

impl<'a> ExactIndex<'a> {
    /// Zero-copy: borrow a matrix the pipeline already built.
    pub fn from_matrix(matrix: &'a EmbeddingMatrix, metric: Metric) -> ExactIndex<'a> {
        ExactIndex::from_source(matrix, metric)
    }

    /// The [`VectorSource`] seam: build from anything that yields a
    /// [`VectorStore`] — a borrowed matrix, an owned matrix, or a legacy
    /// `&[Embedding]` (copied once).
    pub fn from_source(source: impl VectorSource<'a>, metric: Metric) -> ExactIndex<'a> {
        ExactIndex::from_source_scan(source, metric, ScanConfig::default())
            .expect("the default scan config cannot fail")
    }

    /// Build with an explicit [`ScanConfig`]. Errors (typed
    /// [`ErError::Model`]) only for PQ configurations that cannot train —
    /// an empty matrix or `subspaces` not dividing the dimension.
    pub fn from_source_scan(
        source: impl VectorSource<'a>,
        metric: Metric,
        scan: ScanConfig,
    ) -> er_core::Result<ExactIndex<'a>> {
        let store = source.into_store();
        let n = store.len();
        let quant = match scan.quant {
            Quantization::None => QuantState::None,
            Quantization::Int8 { .. } => QuantState::Int8(store.matrix().quantize()),
            Quantization::Pq { config, .. } => {
                let book = PqCodebook::train(store.matrix(), &config)?;
                let codes = book.encode(store.matrix());
                QuantState::Pq { book, codes }
            }
        };
        Ok(ExactIndex {
            store,
            metric,
            deleted: vec![false; n],
            deleted_count: 0,
            scan,
            quant,
        })
    }

    /// The stored vectors (owned or borrowed).
    pub fn matrix(&self) -> &EmbeddingMatrix {
        self.store.matrix()
    }

    /// The scan configuration this index ranks with.
    pub fn scan_config(&self) -> ScanConfig {
        self.scan
    }

    /// The exact f32 top-k scan on the configured kernel tier, ignoring any
    /// quantized storage — the re-rank pass and the ground-truth scan.
    /// Returns the hits plus the number of full-width distance evaluations
    /// (one per live row).
    fn search_exact(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, u64) {
        let matrix = self.store.matrix();
        let tier = self.scan.tier;
        let query_norm = self.metric.query_norm_tier(tier, query);
        let mut heap: BinaryHeap<Hit> = BinaryHeap::with_capacity(k + 1);
        let mut evals = 0u64;
        for (idx, row) in matrix.rows_iter().enumerate() {
            if self.deleted[idx] {
                continue;
            }
            let dist =
                self.metric
                    .distance_prenorm_tier(tier, query, query_norm, row, matrix.norm(idx));
            evals += 1;
            push_bounded(&mut heap, k, dist, idx);
        }
        (drain_sorted(heap), evals)
    }

    /// The shared body of [`NnIndex::search_slice`] and
    /// [`IndexReader::search_counted`]: the scan plus its full-width
    /// distance-evaluation count. A pure exact scan evaluates every live
    /// row; a quantized scan evaluates only the re-ranked candidates (the
    /// quantized first pass runs over int8/PQ codes, which the kernel cost
    /// tables price separately — see `er-tune`).
    fn search_counted_inner(&self, query: &[f32], k: usize) -> (Vec<Neighbor>, u64) {
        if k == 0 || self.live_count() == 0 {
            return (Vec::new(), 0);
        }
        let rerank = match self.scan.quant {
            Quantization::None => return self.search_exact(query, k),
            Quantization::Int8 { rerank } | Quantization::Pq { rerank, .. } => rerank,
        };
        // Quantized first pass over the best R = max(rerank, k) rows, then
        // an exact re-rank: every returned distance comes from the f32
        // kernels, the quantized codes only choose *which* rows compete.
        let r = rerank.max(k);
        let candidates = self.search_approx(query, r);
        let evals = candidates.len() as u64;
        let matrix = self.store.matrix();
        let tier = self.scan.tier;
        let query_norm = self.metric.query_norm_tier(tier, query);
        let mut hits: Vec<Neighbor> = candidates
            .into_iter()
            .map(|c| {
                let dist = self.metric.distance_prenorm_tier(
                    tier,
                    query,
                    query_norm,
                    matrix.row(c.index),
                    matrix.norm(c.index),
                );
                Neighbor::new(c.index, dist)
            })
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.index.cmp(&b.index))
        });
        hits.truncate(k);
        (hits, evals)
    }

    /// Quantized first pass: rank every live row by its approximate
    /// distance and keep the best `r`.
    fn search_approx(&self, query: &[f32], r: usize) -> Vec<Neighbor> {
        let mut heap: BinaryHeap<Hit> = BinaryHeap::with_capacity(r + 1);
        match &self.quant {
            QuantState::None => unreachable!("search_approx without quantized storage"),
            QuantState::Int8(qm) => {
                let qq = qm.quantize_query(query);
                for idx in 0..qm.len() {
                    if self.deleted[idx] {
                        continue;
                    }
                    let dist = match self.metric {
                        Metric::Euclidean => qm.squared_euclidean(&qq, idx),
                        Metric::Cosine => 1.0 - qm.cosine(&qq, idx),
                    };
                    push_bounded(&mut heap, r, dist, idx);
                }
            }
            QuantState::Pq { book, codes } => {
                let k_cents = book.centroids();
                match self.metric {
                    Metric::Euclidean => {
                        let table = book.l2_tables(query);
                        for idx in 0..codes.len() {
                            if self.deleted[idx] {
                                continue;
                            }
                            let dist = codes.adc_sum(&table, k_cents, idx);
                            push_bounded(&mut heap, r, dist, idx);
                        }
                    }
                    Metric::Cosine => {
                        let table = book.dot_tables(query);
                        let query_norm = er_core::kernels::norm(query);
                        for idx in 0..codes.len() {
                            if self.deleted[idx] {
                                continue;
                            }
                            let dist = 1.0 - codes.cosine(&table, k_cents, idx, query_norm);
                            push_bounded(&mut heap, r, dist, idx);
                        }
                    }
                }
            }
        }
        drain_sorted(heap)
    }
}

/// Keep the best `k` `(dist, idx)` pairs in a bounded max-heap.
#[inline]
fn push_bounded(heap: &mut BinaryHeap<Hit>, k: usize, dist: f32, idx: usize) {
    if heap.len() < k {
        heap.push(Hit { dist, idx });
    } else if dist < heap.peek().expect("non-empty").dist {
        heap.pop();
        heap.push(Hit { dist, idx });
    }
}

/// Heap → neighbors sorted by `(distance, index)`.
fn drain_sorted(heap: BinaryHeap<Hit>) -> Vec<Neighbor> {
    let mut hits: Vec<Neighbor> = heap
        .into_iter()
        .map(|h| Neighbor::new(h.idx, h.dist))
        .collect();
    hits.sort_by(|a, b| {
        a.distance
            .total_cmp(&b.distance)
            .then_with(|| a.index.cmp(&b.index))
    });
    hits
}

impl NnIndex for ExactIndex<'_> {
    fn len(&self) -> usize {
        self.store.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn search_slice(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_counted_inner(query, k).0
    }
}

impl IndexReader for ExactIndex<'_> {
    fn is_deleted(&self, index: usize) -> bool {
        self.deleted.get(index).copied().unwrap_or(false)
    }

    fn live_count(&self) -> usize {
        self.store.len() - self.deleted_count
    }

    /// The scan has no runtime query parameters, so `params` is ignored;
    /// the counter is live rows (pure scan) or re-ranked candidates
    /// (quantized scan).
    fn search_counted(
        &self,
        query: &[f32],
        k: usize,
        _params: &QueryParams,
    ) -> (Vec<Neighbor>, u64) {
        self.search_counted_inner(query, k)
    }
}

impl MutableIndex for ExactIndex<'_> {
    fn insert_row(&mut self, row: &[f32]) -> er_core::Result<usize> {
        let matrix = self.store.matrix_mut().ok_or_else(|| {
            ErError::Model(
                "ExactIndex::insert_row: the index borrows its matrix; \
                 streaming mutation needs an owned store"
                    .into(),
            )
        })?;
        if matrix.is_empty() && matrix.dim() == 0 && !row.is_empty() {
            // An index built over nothing adopts the first row's dimension.
            *matrix = EmbeddingMatrix::new(row.len());
        }
        if matrix.dim() != row.len() {
            return Err(ErError::Model(format!(
                "ExactIndex::insert_row: pushed a {}-d row into a {}-d index",
                row.len(),
                matrix.dim()
            )));
        }
        matrix.push(row);
        self.deleted.push(false);
        // Keep the quantized companion storage in sync.
        match &mut self.quant {
            QuantState::None => {}
            QuantState::Int8(qm) => {
                if qm.is_empty() && qm.dim() != row.len() {
                    // The empty index adopted this row's dimension above.
                    *qm = QuantizedMatrix::new(row.len());
                }
                qm.push_row(row);
            }
            QuantState::Pq { book, codes } => book.encode_row(row, codes),
        }
        Ok(self.store.len() - 1)
    }

    fn delete_row(&mut self, index: usize) -> bool {
        if index >= self.deleted.len() || self.deleted[index] {
            return false;
        }
        self.deleted[index] = true;
        self.deleted_count += 1;
        true
    }

    /// Float-free compaction: live rows, their cached norms, and any
    /// quantized companion codes are copied verbatim in stable order, so
    /// every distance the compacted index computes is bit-identical to the
    /// tombstoned original's.
    fn compact(&mut self) -> er_core::Result<Vec<u32>> {
        let keep: Vec<u32> = (0..self.store.len())
            .filter(|&i| !self.deleted[i])
            .map(|i| i as u32)
            .collect();
        if self.deleted_count == 0 {
            return Ok(keep);
        }
        {
            let matrix = self.store.matrix_mut().ok_or_else(|| {
                ErError::Model(
                    "ExactIndex::compact: the index borrows its matrix; \
                     compaction needs an owned store"
                        .into(),
                )
            })?;
            let dim = matrix.dim();
            let mut data = Vec::with_capacity(keep.len() * dim);
            let mut norms = Vec::with_capacity(keep.len());
            for &old in &keep {
                data.extend_from_slice(matrix.row(old as usize));
                norms.push(matrix.norm(old as usize));
            }
            *matrix = EmbeddingMatrix::from_parts(dim, data, norms)?;
        }
        match &mut self.quant {
            QuantState::None => {}
            QuantState::Int8(qm) => {
                let dim = qm.dim();
                let mut codes = Vec::with_capacity(keep.len() * dim);
                let mut scales = Vec::with_capacity(keep.len());
                let mut zeros = Vec::with_capacity(keep.len());
                for &old in &keep {
                    let o = old as usize;
                    codes.extend_from_slice(&qm.codes()[o * dim..(o + 1) * dim]);
                    scales.push(qm.scales()[o]);
                    zeros.push(qm.zeros()[o]);
                }
                *qm = QuantizedMatrix::from_parts(dim, codes, scales, zeros)?;
            }
            QuantState::Pq { book, codes } => {
                let m = book.subspaces();
                let mut kept = Vec::with_capacity(keep.len() * m);
                for &old in &keep {
                    let o = old as usize;
                    kept.extend_from_slice(&codes.codes()[o * m..(o + 1) * m]);
                }
                *codes = PqCodes::from_parts(book, kept)?;
            }
        }
        self.deleted = vec![false; keep.len()];
        self.deleted_count = 0;
        Ok(keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<Embedding> {
        vec![
            Embedding(vec![0.0, 0.0]),
            Embedding(vec![1.0, 0.0]),
            Embedding(vec![0.0, 3.0]),
            Embedding(vec![5.0, 5.0]),
        ]
    }

    #[test]
    fn returns_nearest_first() {
        let index = ExactIndex::build(&points());
        assert_eq!(index.metric(), Metric::Euclidean);
        let hits = index.search(&Embedding(vec![0.9, 0.1]), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].index, 1, "closest point is (1,0)");
        assert_eq!(hits[1].index, 0);
        assert!(hits[0].distance <= hits[1].distance);
    }

    #[test]
    fn k_larger_than_corpus_returns_everything() {
        let index = ExactIndex::build(&points());
        assert_eq!(index.search(&Embedding(vec![0.0, 0.0]), 10).len(), 4);
        assert_eq!(index.len(), 4);
        assert!(index.search(&Embedding(vec![0.0, 0.0]), 0).is_empty());
    }

    #[test]
    fn hand_computed_euclidean_fixture() {
        // a = (1,0), b = (0,2), c = (3,4); query (1,0): |q-a|² = 0,
        // |q-b|² = 1+4 = 5, |q-c|² = 4+16 = 20.
        let vectors = vec![
            Embedding(vec![1.0, 0.0]),
            Embedding(vec![0.0, 2.0]),
            Embedding(vec![3.0, 4.0]),
        ];
        let index = ExactIndex::with_metric(&vectors, Metric::Euclidean);
        let hits = index.search(&Embedding(vec![1.0, 0.0]), 3);
        assert_eq!(
            hits,
            vec![
                Neighbor::new(0, 0.0),
                Neighbor::new(1, 5.0),
                Neighbor::new(2, 20.0)
            ]
        );
    }

    #[test]
    fn hand_computed_cosine_fixture() {
        // Same fixture, query (1,0): cos distances 0, 1, 1−3/5 = 0.4 — the
        // scaled-but-colinear ranking Euclidean gets wrong.
        let vectors = vec![
            Embedding(vec![1.0, 0.0]),
            Embedding(vec![0.0, 2.0]),
            Embedding(vec![3.0, 4.0]),
        ];
        let index = ExactIndex::with_metric(&vectors, Metric::Cosine);
        assert_eq!(index.metric(), Metric::Cosine);
        let hits = index.search(&Embedding(vec![1.0, 0.0]), 3);
        assert_eq!(hits[0].index, 0);
        assert_eq!(
            hits[1].index, 2,
            "colinear-ish beats orthogonal under cosine"
        );
        assert_eq!(hits[2].index, 1);
        assert!((hits[1].distance - 0.4).abs() < 1e-6);
        assert!((hits[2].distance - 1.0).abs() < 1e-6);

        // Under Euclidean the order of those two flips: 20 > 5.
        let euclid = ExactIndex::build(&vectors);
        let hits = euclid.search(&Embedding(vec![1.0, 0.0]), 3);
        assert_eq!(hits[1].index, 1);
        assert_eq!(hits[2].index, 2);
    }

    #[test]
    fn borrowed_matrix_gives_the_same_hits_as_the_owned_copy() {
        let vectors = points();
        let matrix = EmbeddingMatrix::from_embeddings(&vectors);
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let owned = ExactIndex::with_metric(&vectors, metric);
            let borrowed = ExactIndex::from_matrix(&matrix, metric);
            for q in &vectors {
                assert_eq!(owned.search(q, 3), borrowed.search(q, 3));
            }
        }
    }
}
