//! Exact k-NN by brute-force scan with a bounded max-heap — the ground
//! truth every approximate index is measured against. The scan walks the
//! contiguous rows of an [`EmbeddingMatrix`] with precomputed row norms,
//! so a cosine pass reads each stored vector exactly once.

use crate::{Metric, MutableIndex, Neighbor, NnIndex};
use er_core::{Embedding, EmbeddingMatrix, ErError, VectorSource, VectorStore};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A heap entry ordered by distance (max-heap keeps the worst of the
/// current top-k on top, ready for eviction).
struct Hit {
    dist: f32,
    idx: usize,
}

impl PartialEq for Hit {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Hit {}

impl PartialOrd for Hit {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Hit {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.idx.cmp(&other.idx))
    }
}

#[derive(Debug, Clone)]
pub struct ExactIndex<'a> {
    pub(crate) store: VectorStore<'a>,
    pub(crate) metric: Metric,
    /// Tombstones: deleted rows stay in the matrix (ids are stable) but
    /// the scan skips them.
    pub(crate) deleted: Vec<bool>,
    pub(crate) deleted_count: usize,
}

impl ExactIndex<'static> {
    /// Build with the default metric (squared Euclidean). Copies the
    /// embeddings once into an owned matrix (the legacy path).
    pub fn build(vectors: &[Embedding]) -> ExactIndex<'static> {
        ExactIndex::with_metric(vectors, Metric::Euclidean)
    }

    pub fn with_metric(vectors: &[Embedding], metric: Metric) -> ExactIndex<'static> {
        ExactIndex::from_source(vectors, metric)
    }
}

impl<'a> ExactIndex<'a> {
    /// Zero-copy: borrow a matrix the pipeline already built.
    pub fn from_matrix(matrix: &'a EmbeddingMatrix, metric: Metric) -> ExactIndex<'a> {
        ExactIndex::from_source(matrix, metric)
    }

    /// The [`VectorSource`] seam: build from anything that yields a
    /// [`VectorStore`] — a borrowed matrix, an owned matrix, or a legacy
    /// `&[Embedding]` (copied once).
    pub fn from_source(source: impl VectorSource<'a>, metric: Metric) -> ExactIndex<'a> {
        let store = source.into_store();
        let n = store.len();
        ExactIndex {
            store,
            metric,
            deleted: vec![false; n],
            deleted_count: 0,
        }
    }

    /// The stored vectors (owned or borrowed).
    pub fn matrix(&self) -> &EmbeddingMatrix {
        self.store.matrix()
    }
}

impl NnIndex for ExactIndex<'_> {
    fn len(&self) -> usize {
        self.store.len()
    }

    fn metric(&self) -> Metric {
        self.metric
    }

    fn search_slice(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        if k == 0 || self.live_count() == 0 {
            return Vec::new();
        }
        let matrix = self.store.matrix();
        let query_norm = self.metric.query_norm(query);
        let mut heap: BinaryHeap<Hit> = BinaryHeap::with_capacity(k + 1);
        for (idx, row) in matrix.rows_iter().enumerate() {
            if self.deleted[idx] {
                continue;
            }
            let dist = self
                .metric
                .distance_prenorm(query, query_norm, row, matrix.norm(idx));
            if heap.len() < k {
                heap.push(Hit { dist, idx });
            } else if dist < heap.peek().expect("non-empty").dist {
                heap.pop();
                heap.push(Hit { dist, idx });
            }
        }
        let mut hits: Vec<Neighbor> = heap
            .into_iter()
            .map(|h| Neighbor::new(h.idx, h.dist))
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.index.cmp(&b.index))
        });
        hits
    }
}

impl MutableIndex for ExactIndex<'_> {
    fn insert_row(&mut self, row: &[f32]) -> er_core::Result<usize> {
        let matrix = self.store.matrix_mut().ok_or_else(|| {
            ErError::Model(
                "ExactIndex::insert_row: the index borrows its matrix; \
                 streaming mutation needs an owned store"
                    .into(),
            )
        })?;
        if matrix.is_empty() && matrix.dim() == 0 && !row.is_empty() {
            // An index built over nothing adopts the first row's dimension.
            *matrix = EmbeddingMatrix::new(row.len());
        }
        if matrix.dim() != row.len() {
            return Err(ErError::Model(format!(
                "ExactIndex::insert_row: pushed a {}-d row into a {}-d index",
                row.len(),
                matrix.dim()
            )));
        }
        matrix.push(row);
        self.deleted.push(false);
        Ok(self.store.len() - 1)
    }

    fn delete_row(&mut self, index: usize) -> bool {
        if index >= self.deleted.len() || self.deleted[index] {
            return false;
        }
        self.deleted[index] = true;
        self.deleted_count += 1;
        true
    }

    fn is_deleted(&self, index: usize) -> bool {
        self.deleted.get(index).copied().unwrap_or(false)
    }

    fn live_count(&self) -> usize {
        self.store.len() - self.deleted_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<Embedding> {
        vec![
            Embedding(vec![0.0, 0.0]),
            Embedding(vec![1.0, 0.0]),
            Embedding(vec![0.0, 3.0]),
            Embedding(vec![5.0, 5.0]),
        ]
    }

    #[test]
    fn returns_nearest_first() {
        let index = ExactIndex::build(&points());
        assert_eq!(index.metric(), Metric::Euclidean);
        let hits = index.search(&Embedding(vec![0.9, 0.1]), 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].index, 1, "closest point is (1,0)");
        assert_eq!(hits[1].index, 0);
        assert!(hits[0].distance <= hits[1].distance);
    }

    #[test]
    fn k_larger_than_corpus_returns_everything() {
        let index = ExactIndex::build(&points());
        assert_eq!(index.search(&Embedding(vec![0.0, 0.0]), 10).len(), 4);
        assert_eq!(index.len(), 4);
        assert!(index.search(&Embedding(vec![0.0, 0.0]), 0).is_empty());
    }

    #[test]
    fn hand_computed_euclidean_fixture() {
        // a = (1,0), b = (0,2), c = (3,4); query (1,0): |q-a|² = 0,
        // |q-b|² = 1+4 = 5, |q-c|² = 4+16 = 20.
        let vectors = vec![
            Embedding(vec![1.0, 0.0]),
            Embedding(vec![0.0, 2.0]),
            Embedding(vec![3.0, 4.0]),
        ];
        let index = ExactIndex::with_metric(&vectors, Metric::Euclidean);
        let hits = index.search(&Embedding(vec![1.0, 0.0]), 3);
        assert_eq!(
            hits,
            vec![
                Neighbor::new(0, 0.0),
                Neighbor::new(1, 5.0),
                Neighbor::new(2, 20.0)
            ]
        );
    }

    #[test]
    fn hand_computed_cosine_fixture() {
        // Same fixture, query (1,0): cos distances 0, 1, 1−3/5 = 0.4 — the
        // scaled-but-colinear ranking Euclidean gets wrong.
        let vectors = vec![
            Embedding(vec![1.0, 0.0]),
            Embedding(vec![0.0, 2.0]),
            Embedding(vec![3.0, 4.0]),
        ];
        let index = ExactIndex::with_metric(&vectors, Metric::Cosine);
        assert_eq!(index.metric(), Metric::Cosine);
        let hits = index.search(&Embedding(vec![1.0, 0.0]), 3);
        assert_eq!(hits[0].index, 0);
        assert_eq!(
            hits[1].index, 2,
            "colinear-ish beats orthogonal under cosine"
        );
        assert_eq!(hits[2].index, 1);
        assert!((hits[1].distance - 0.4).abs() < 1e-6);
        assert!((hits[2].distance - 1.0).abs() < 1e-6);

        // Under Euclidean the order of those two flips: 20 > 5.
        let euclid = ExactIndex::build(&vectors);
        let hits = euclid.search(&Embedding(vec![1.0, 0.0]), 3);
        assert_eq!(hits[1].index, 1);
        assert_eq!(hits[2].index, 2);
    }

    #[test]
    fn borrowed_matrix_gives_the_same_hits_as_the_owned_copy() {
        let vectors = points();
        let matrix = EmbeddingMatrix::from_embeddings(&vectors);
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let owned = ExactIndex::with_metric(&vectors, metric);
            let borrowed = ExactIndex::from_matrix(&matrix, metric);
            for q in &vectors {
                assert_eq!(owned.search(q, 3), borrowed.search(q, 3));
            }
        }
    }
}
