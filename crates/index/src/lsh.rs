//! Random-hyperplane LSH with multi-table probing (DESIGN.md inventory
//! row 11; the DeepER / AutoBlock lineage baseline).
//!
//! Each table draws `planes` Gaussian hyperplanes; a vector's signature is
//! the bit pattern of its dot-product signs, so two vectors collide with
//! probability `1 − θ/π` — the classic cosine sketch. Queries look up
//! their bucket in every table, optionally probe the buckets reached by
//! flipping the lowest-margin signature bits (multi-probe), then exactly
//! re-rank the gathered candidates under the configured [`Metric`] over
//! the stored [`EmbeddingMatrix`] (owned, or borrowed zero-copy).
//!
//! Determinism: table `t` draws its hyperplanes from the stream
//! `derive(seed, "lsh-table-{t}")`, so the same seed reproduces identical
//! signatures — and table `t` is identical regardless of how many tables
//! follow it, which makes recall provably non-decreasing in `tables` for a
//! fixed seed (the candidate union only grows).

use crate::{IndexReader, Metric, MutableIndex, Neighbor, NnIndex};
use er_core::rng::derive;
use er_core::{
    Embedding, EmbeddingMatrix, ErError, KernelTier, QueryParams, VectorSource, VectorStore,
};
use rand::{Rng, RngCore};
use std::collections::HashMap;

#[derive(Debug, Clone)]
pub struct LshConfig {
    /// Hyperplanes (signature bits) per table, at most 64.
    pub planes: usize,
    /// Number of independent tables; more tables ⇒ higher recall.
    pub tables: usize,
    /// Extra buckets probed per table by flipping the lowest-margin bits.
    pub probes: usize,
    /// Metric used for the exact re-ranking of gathered candidates.
    pub metric: Metric,
    pub seed: u64,
    /// Kernel tier for the signature dots and the candidate re-ranking.
    /// Signatures are sign bits, so they rarely change across tiers, but
    /// the tier is part of the build contract and is persisted with the
    /// index: a loaded index probes with the same tier it hashed with.
    pub tier: KernelTier,
}

impl Default for LshConfig {
    fn default() -> Self {
        LshConfig {
            planes: 12,
            tables: 8,
            probes: 2,
            // Hyperplane sketches approximate angles, so cosine is the
            // native re-ranking metric.
            metric: Metric::Cosine,
            seed: 42,
            tier: KernelTier::Reference,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Table {
    /// `planes × dim`, row-major.
    pub(crate) hyperplanes: Vec<Vec<f32>>,
    /// Signature → vector ids, ids in insertion (= index) order.
    pub(crate) buckets: HashMap<u64, Vec<u32>>,
    /// Per-vector signature, for the determinism contract.
    pub(crate) signatures: Vec<u64>,
}

impl Table {
    /// Rebuild the signature → ids map from stored signatures, in id order
    /// — the persistence load path, which must never redo the float dot
    /// products that produced the signatures.
    pub(crate) fn rebuild_buckets(&mut self) {
        self.buckets.clear();
        for (id, &sig) in self.signatures.iter().enumerate() {
            self.buckets.entry(sig).or_default().push(id as u32);
        }
    }
}

#[derive(Debug, Clone)]
pub struct HyperplaneLsh<'a> {
    pub(crate) store: VectorStore<'a>,
    pub(crate) tables: Vec<Table>,
    pub(crate) config: LshConfig,
    /// Tombstones: deleted ids stay hashed in their buckets (ids are
    /// stable) but candidate gathering skips them.
    pub(crate) deleted: Vec<bool>,
    pub(crate) deleted_count: usize,
}

/// Standard normal via Box–Muller (the vendored `rand` has no
/// distributions module).
fn gaussian(rng: &mut impl RngCore) -> f32 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

impl HyperplaneLsh<'static> {
    /// Legacy path: copy the embeddings once into an owned matrix.
    pub fn build(vectors: &[Embedding], config: LshConfig) -> HyperplaneLsh<'static> {
        HyperplaneLsh::from_source(vectors, config)
    }
}

impl<'a> HyperplaneLsh<'a> {
    /// Zero-copy: borrow a matrix the pipeline already built.
    pub fn from_matrix(matrix: &'a EmbeddingMatrix, config: LshConfig) -> HyperplaneLsh<'a> {
        HyperplaneLsh::from_source(matrix, config)
    }

    /// The [`VectorSource`] seam: hash any vector storage into the tables.
    pub fn from_source(source: impl VectorSource<'a>, config: LshConfig) -> HyperplaneLsh<'a> {
        assert!(
            (1..=64).contains(&config.planes),
            "signatures are u64 bitmasks: 1 <= planes <= 64"
        );
        assert!(config.tables >= 1, "need at least one table");
        let store = source.into_store();
        let matrix = store.matrix();
        let dim = matrix.dim();
        let tables = (0..config.tables)
            .map(|t| {
                let mut rng = derive(config.seed, &format!("lsh-table-{t}"));
                let hyperplanes: Vec<Vec<f32>> = (0..config.planes)
                    .map(|_| (0..dim).map(|_| gaussian(&mut rng)).collect())
                    .collect();
                let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
                let mut signatures = Vec::with_capacity(matrix.len());
                for (id, row) in matrix.rows_iter().enumerate() {
                    let sig = signature(&hyperplanes, row, config.tier);
                    signatures.push(sig);
                    buckets.entry(sig).or_default().push(id as u32);
                }
                Table {
                    hyperplanes,
                    buckets,
                    signatures,
                }
            })
            .collect();
        let n = store.len();
        HyperplaneLsh {
            store,
            tables,
            config,
            deleted: vec![false; n],
            deleted_count: 0,
        }
    }

    pub fn config(&self) -> &LshConfig {
        &self.config
    }

    /// The stored vectors (owned or borrowed).
    pub fn matrix(&self) -> &EmbeddingMatrix {
        self.store.matrix()
    }

    /// Per-table signatures, `[table][vector] -> u64` — exposed so the
    /// determinism tests can assert bit-identity across builds.
    pub fn signatures(&self) -> Vec<&[u64]> {
        self.tables
            .iter()
            .map(|t| t.signatures.as_slice())
            .collect()
    }

    /// Gather the deduplicated candidate ids the probing scheme reaches for
    /// `query` (exposed for the recall analysis; `search` re-ranks these).
    pub fn candidates(&self, query: &Embedding) -> Vec<u32> {
        self.candidates_slice(query.as_slice())
    }

    /// Slice form of [`HyperplaneLsh::candidates`].
    pub fn candidates_slice(&self, query: &[f32]) -> Vec<u32> {
        self.candidates_slice_with(query, self.config.probes, self.config.tables)
    }

    /// The cost hook for `er-tune`'s occupancy model: the live occupancy
    /// of every bucket `query` would probe under `(probes, tables)`, one
    /// entry per probed bucket in probe order, **without** the cross-table
    /// dedup that [`HyperplaneLsh::candidates_slice_with`] applies. The
    /// estimator turns these raw per-bucket counts into an expected
    /// *unique* candidate count analytically, so it must see the overlaps.
    pub fn probed_occupancy(&self, query: &[f32], probes: usize, tables: usize) -> Vec<usize> {
        if self.store.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for table in &self.tables[..tables.clamp(1, self.tables.len())] {
            let (sig, margins) =
                signature_with_margins(&table.hyperplanes, query, self.config.tier);
            let mut order: Vec<usize> = (0..self.config.planes).collect();
            order.sort_by(|&a, &b| {
                margins[a]
                    .abs()
                    .total_cmp(&margins[b].abs())
                    .then_with(|| a.cmp(&b))
            });
            let probe_sigs =
                std::iter::once(sig).chain(order.iter().take(probes).map(|&bit| sig ^ (1 << bit)));
            for probe in probe_sigs {
                let count = table
                    .buckets
                    .get(&probe)
                    .map(|bucket| {
                        bucket
                            .iter()
                            .filter(|&&id| !self.deleted[id as usize])
                            .count()
                    })
                    .unwrap_or(0);
                out.push(count);
            }
        }
        out
    }

    /// [`HyperplaneLsh::candidates_slice`] with runtime probe settings:
    /// probe `probes` extra buckets per table, over only the first
    /// `tables` tables (clamped to the built count). Because table `t`'s
    /// hyperplane stream is independent of how many tables follow it, the
    /// prefix gather is bit-identical to an index *built* with `tables`
    /// tables — which is what lets the tuner sweep both knobs against one
    /// build.
    pub fn candidates_slice_with(&self, query: &[f32], probes: usize, tables: usize) -> Vec<u32> {
        if self.store.is_empty() {
            // An empty index hashed nothing; probing its dim-0 hyperplanes
            // against a real query would be a shape mismatch.
            return Vec::new();
        }
        let mut seen = vec![false; self.store.len()];
        let mut out = Vec::new();
        for table in &self.tables[..tables.clamp(1, self.tables.len())] {
            let (sig, margins) =
                signature_with_margins(&table.hyperplanes, query, self.config.tier);
            // Probe order: the base bucket, then single-bit flips of the
            // least-confident (smallest |margin|) bits.
            let mut order: Vec<usize> = (0..self.config.planes).collect();
            order.sort_by(|&a, &b| {
                margins[a]
                    .abs()
                    .total_cmp(&margins[b].abs())
                    .then_with(|| a.cmp(&b))
            });
            let probes =
                std::iter::once(sig).chain(order.iter().take(probes).map(|&bit| sig ^ (1 << bit)));
            for probe in probes {
                if let Some(bucket) = table.buckets.get(&probe) {
                    for &id in bucket {
                        if !self.deleted[id as usize]
                            && !std::mem::replace(&mut seen[id as usize], true)
                        {
                            out.push(id);
                        }
                    }
                }
            }
        }
        out
    }
}

/// Signature bits via the tier selector — no private scalar fold here: the
/// dots come from [`KernelTier::dot`], the same entry point every other
/// crate ranks with.
fn signature(hyperplanes: &[Vec<f32>], v: &[f32], tier: KernelTier) -> u64 {
    let mut sig = 0u64;
    for (bit, plane) in hyperplanes.iter().enumerate() {
        if tier.dot(plane, v) >= 0.0 {
            sig |= 1 << bit;
        }
    }
    sig
}

fn signature_with_margins(
    hyperplanes: &[Vec<f32>],
    v: &[f32],
    tier: KernelTier,
) -> (u64, Vec<f32>) {
    let mut sig = 0u64;
    let mut margins = Vec::with_capacity(hyperplanes.len());
    for (bit, plane) in hyperplanes.iter().enumerate() {
        let dot = tier.dot(plane, v);
        if dot >= 0.0 {
            sig |= 1 << bit;
        }
        margins.push(dot);
    }
    (sig, margins)
}

impl NnIndex for HyperplaneLsh<'_> {
    fn len(&self) -> usize {
        self.store.len()
    }

    fn metric(&self) -> Metric {
        self.config.metric
    }

    fn search_slice(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_counted_inner(query, k, self.config.probes, self.config.tables)
            .0
    }
}

impl HyperplaneLsh<'_> {
    /// The shared body of [`NnIndex::search_slice`] and
    /// [`IndexReader::search_counted`]: gather candidates under the given
    /// probe settings and re-rank them exactly. The eval counter is the
    /// candidate count — one full-width distance per gathered row (the
    /// signature dots are priced separately by the cost model).
    fn search_counted_inner(
        &self,
        query: &[f32],
        k: usize,
        probes: usize,
        tables: usize,
    ) -> (Vec<Neighbor>, u64) {
        if k == 0 || self.live_count() == 0 {
            return (Vec::new(), 0);
        }
        let matrix = self.store.matrix();
        let tier = self.config.tier;
        let query_norm = self.config.metric.query_norm_tier(tier, query);
        let candidates = self.candidates_slice_with(query, probes, tables);
        let evals = candidates.len() as u64;
        let mut hits: Vec<Neighbor> = candidates
            .into_iter()
            .map(|id| {
                let dist = self.config.metric.distance_prenorm_tier(
                    tier,
                    query,
                    query_norm,
                    matrix.row(id as usize),
                    matrix.norm(id as usize),
                );
                Neighbor::new(id as usize, dist)
            })
            .collect();
        hits.sort_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then_with(|| a.index.cmp(&b.index))
        });
        hits.truncate(k);
        (hits, evals)
    }
}

impl IndexReader for HyperplaneLsh<'_> {
    fn is_deleted(&self, index: usize) -> bool {
        self.deleted.get(index).copied().unwrap_or(false)
    }

    fn live_count(&self) -> usize {
        self.store.len() - self.deleted_count
    }

    /// Honors `params.probes` and `params.tables` (runtime probe settings
    /// — the table prefix is bit-identical to an index built with that
    /// many tables); `ef_search` is ignored.
    fn search_counted(
        &self,
        query: &[f32],
        k: usize,
        params: &QueryParams,
    ) -> (Vec<Neighbor>, u64) {
        let probes = params.probes.unwrap_or(self.config.probes);
        let tables = params.tables.unwrap_or(self.config.tables);
        self.search_counted_inner(query, k, probes, tables)
    }
}

impl MutableIndex for HyperplaneLsh<'_> {
    fn insert_row(&mut self, row: &[f32]) -> er_core::Result<usize> {
        let matrix = self.store.matrix_mut().ok_or_else(|| {
            ErError::Model(
                "HyperplaneLsh::insert_row: the index borrows its matrix; \
                 streaming mutation needs an owned store"
                    .into(),
            )
        })?;
        // No dimension adoption here: the hyperplanes were drawn against
        // the build-time dimension, so a mismatched row cannot be hashed.
        if matrix.dim() != row.len() {
            return Err(ErError::Model(format!(
                "HyperplaneLsh::insert_row: pushed a {}-d row into a {}-d index \
                 (build over `EmbeddingMatrix::new(dim)` for an empty start)",
                row.len(),
                matrix.dim()
            )));
        }
        matrix.push(row);
        let id = (self.store.len() - 1) as u32;
        self.deleted.push(false);
        let tier = self.config.tier;
        for table in &mut self.tables {
            let sig = signature(&table.hyperplanes, row, tier);
            table.signatures.push(sig);
            table.buckets.entry(sig).or_default().push(id);
        }
        Ok(id as usize)
    }

    fn delete_row(&mut self, index: usize) -> bool {
        if index >= self.deleted.len() || self.deleted[index] {
            return false;
        }
        self.deleted[index] = true;
        self.deleted_count += 1;
        true
    }

    /// Float-free compaction: the hyperplanes are untouched, live rows
    /// (with their cached norms) and their stored signatures are copied
    /// verbatim in stable order, and the buckets are rebuilt from the kept
    /// signatures — no dot product is ever recomputed, so candidate sets
    /// and re-ranked distances stay bit-identical.
    fn compact(&mut self) -> er_core::Result<Vec<u32>> {
        let keep: Vec<u32> = (0..self.store.len())
            .filter(|&i| !self.deleted[i])
            .map(|i| i as u32)
            .collect();
        if self.deleted_count == 0 {
            return Ok(keep);
        }
        {
            let matrix = self.store.matrix_mut().ok_or_else(|| {
                ErError::Model(
                    "HyperplaneLsh::compact: the index borrows its matrix; \
                     compaction needs an owned store"
                        .into(),
                )
            })?;
            let dim = matrix.dim();
            let mut data = Vec::with_capacity(keep.len() * dim);
            let mut norms = Vec::with_capacity(keep.len());
            for &old in &keep {
                data.extend_from_slice(matrix.row(old as usize));
                norms.push(matrix.norm(old as usize));
            }
            *matrix = EmbeddingMatrix::from_parts(dim, data, norms)?;
        }
        for table in &mut self.tables {
            table.signatures = keep
                .iter()
                .map(|&old| table.signatures[old as usize])
                .collect();
            table.rebuild_buckets();
        }
        self.deleted = vec![false; keep.len()];
        self.deleted_count = 0;
        Ok(keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::rng::rng;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
        let mut r = rng(seed);
        (0..n)
            .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
            .collect()
    }

    #[test]
    fn identical_vectors_always_collide() {
        let vectors = random_vectors(20, 8, 1);
        let lsh = HyperplaneLsh::build(&vectors, LshConfig::default());
        for (id, v) in vectors.iter().enumerate() {
            // A vector is always a candidate for itself (same signature in
            // every table), so search finds it at distance ~0.
            let hits = lsh.search(v, 1);
            assert_eq!(hits[0].index, id);
            assert!(hits[0].distance < 1e-6);
        }
    }

    #[test]
    fn probing_expands_the_candidate_set() {
        let vectors = random_vectors(200, 8, 2);
        let base = HyperplaneLsh::build(
            &vectors,
            LshConfig {
                probes: 0,
                ..LshConfig::default()
            },
        );
        let probed = HyperplaneLsh::build(
            &vectors,
            LshConfig {
                probes: 4,
                ..LshConfig::default()
            },
        );
        let q = Embedding(vec![0.3; 8]);
        let narrow = base.candidates(&q).len();
        let wide = probed.candidates(&q).len();
        assert!(wide >= narrow, "probing must not shrink candidates");
    }

    #[test]
    fn empty_index_and_zero_k() {
        let lsh = HyperplaneLsh::build(&[], LshConfig::default());
        assert!(lsh.is_empty());
        assert!(lsh.search(&Embedding(vec![1.0]), 5).is_empty());
        let one = HyperplaneLsh::build(&[Embedding(vec![1.0, 2.0])], LshConfig::default());
        assert!(one.search(&Embedding(vec![1.0, 2.0]), 0).is_empty());
    }

    #[test]
    fn borrowed_matrix_hashes_to_identical_signatures_and_hits() {
        let vectors = random_vectors(60, 8, 5);
        let matrix = EmbeddingMatrix::from_embeddings(&vectors);
        let owned = HyperplaneLsh::build(&vectors, LshConfig::default());
        let borrowed = HyperplaneLsh::from_matrix(&matrix, LshConfig::default());
        assert_eq!(owned.signatures(), borrowed.signatures());
        for v in &vectors {
            assert_eq!(owned.search(v, 5), borrowed.search(v, 5));
        }
    }

    #[test]
    fn gaussian_stream_is_roughly_standard() {
        let mut r = rng(7);
        let samples: Vec<f32> = (0..4000).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f32>() / samples.len() as f32;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / samples.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 1.0).abs() < 0.15, "variance {var}");
    }
}
