//! Distance metrics shared by every index.
//!
//! The paper's blocking experiments retrieve by cosine similarity over the
//! (often unnormalized) sentence embeddings, while the scalability study's
//! FAISS indices operate on (squared) Euclidean distance. Both are exposed
//! behind one enum so the indices and the blocker agree on what a returned
//! "distance" means: always *lower is closer*.

use er_core::Embedding;

/// The distance an index minimizes. Every [`crate::NnIndex`] reports which
/// one it was built with via [`crate::NnIndex::metric`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Metric {
    /// Squared Euclidean distance (monotone in Euclidean, cheaper — the
    /// FAISS convention the paper's blocking code relies on).
    #[default]
    Euclidean,
    /// Cosine *distance*, `1 − cos(a, b)`; zero vectors are maximally far
    /// (distance 1), matching `Embedding::cosine`'s zero-vector convention.
    Cosine,
}

impl Metric {
    /// Distance between two embeddings; lower is closer for both variants.
    pub fn distance(&self, a: &Embedding, b: &Embedding) -> f32 {
        match self {
            Metric::Euclidean => a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| (x - y) * (x - y))
                .sum(),
            Metric::Cosine => 1.0 - a.cosine(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Hand-computed three-vector fixture: a = (1,0), b = (0,2), c = (3,4).
    fn fixture() -> (Embedding, Embedding, Embedding) {
        (
            Embedding(vec![1.0, 0.0]),
            Embedding(vec![0.0, 2.0]),
            Embedding(vec![3.0, 4.0]),
        )
    }

    #[test]
    fn euclidean_is_squared() {
        let (a, b, c) = fixture();
        // |a-b|² = 1 + 4, |a-c|² = 4 + 16, |b-c|² = 9 + 4.
        assert_eq!(Metric::Euclidean.distance(&a, &b), 5.0);
        assert_eq!(Metric::Euclidean.distance(&a, &c), 20.0);
        assert_eq!(Metric::Euclidean.distance(&b, &c), 13.0);
        assert_eq!(Metric::Euclidean.distance(&a, &a), 0.0);
    }

    #[test]
    fn cosine_is_one_minus_similarity() {
        let (a, b, c) = fixture();
        // a ⊥ b ⇒ cos = 0 ⇒ distance 1.
        assert_eq!(Metric::Cosine.distance(&a, &b), 1.0);
        // cos(a, c) = 3 / (1·5) = 0.6; cos(b, c) = 8 / (2·5) = 0.8.
        assert!((Metric::Cosine.distance(&a, &c) - 0.4).abs() < 1e-6);
        assert!((Metric::Cosine.distance(&b, &c) - 0.2).abs() < 1e-6);
        assert!(Metric::Cosine.distance(&a, &a).abs() < 1e-6);
    }

    #[test]
    fn zero_vector_is_maximally_far_under_cosine() {
        let (a, _, _) = fixture();
        let z = Embedding::zeros(2);
        assert_eq!(Metric::Cosine.distance(&a, &z), 1.0);
        assert_eq!(Metric::Cosine.distance(&z, &z), 1.0);
    }

    #[test]
    fn metrics_rank_neighbours_differently() {
        // Under Euclidean, (10,0) is far from (1,0); under cosine they are
        // identical directions — the contract-drift case the blocker hit.
        let q = Embedding(vec![1.0, 0.0]);
        let scaled = Embedding(vec![10.0, 0.0]);
        let nearby = Embedding(vec![1.0, 1.0]);
        assert!(Metric::Euclidean.distance(&q, &scaled) > Metric::Euclidean.distance(&q, &nearby));
        assert!(Metric::Cosine.distance(&q, &scaled) < Metric::Cosine.distance(&q, &nearby));
    }
}
