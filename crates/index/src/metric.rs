//! Distance metrics shared by every index.
//!
//! [`Metric`] moved down into `er-core` with the
//! [`er_core::OperatingPoint`] redesign (the unified config names a metric
//! without depending on this crate); this module re-exports it so
//! `er_index::Metric` / `er_index::metric::Metric` imports keep compiling.

pub use er_core::Metric;
