//! er-index — nearest-neighbour search (DESIGN.md inventory rows 9–11b).
//!
//! This PR ships the [`NnIndex`] trait and the exact brute-force scan
//! (row 9, "Blocking on Clean-Clean data"); HNSW (row 10), LSH (row 11)
//! and IVF-Flat (row 11b) arrive with the blocking PR behind the same
//! trait, matching the `bench_indexing` contract.

pub mod exact;

pub use exact::ExactIndex;

use er_core::Embedding;

/// A nearest-neighbour index over a fixed set of embeddings. `search`
/// returns up to `k` `(vector index, squared Euclidean distance)` hits,
/// nearest first.
pub trait NnIndex {
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn search(&self, query: &Embedding, k: usize) -> Vec<(usize, f32)>;
}
