//! er-index — nearest-neighbour search (DESIGN.md inventory rows 9–11b).
//!
//! Ships the [`NnIndex`] trait, the exact brute-force scan (row 9), the
//! HNSW graph index (row 10) and hyperplane LSH with multi-table probing
//! (row 11), all deterministic under a fixed seed and generic over
//! [`Metric`]. IVF-Flat (row 11b) and cross-polytope LSH arrive with the
//! engine-ablation PR behind the same trait.

pub mod exact;
pub mod hnsw;
pub mod lsh;
pub mod metric;

pub use exact::ExactIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use lsh::{HyperplaneLsh, LshConfig};
pub use metric::Metric;

use er_core::Embedding;

/// A nearest-neighbour index over a fixed set of embeddings. `search`
/// returns up to `k` `(vector index, distance)` hits, nearest first, where
/// the distance semantics are given by [`NnIndex::metric`] (lower is
/// always closer).
pub trait NnIndex {
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distance this index was built to minimize.
    fn metric(&self) -> Metric;

    fn search(&self, query: &Embedding, k: usize) -> Vec<(usize, f32)>;

    /// Batched search over many queries, parallelized across a scoped-thread
    /// worker pool (no crates.io, so no rayon — plain `std::thread::scope`).
    ///
    /// Queries are split into contiguous chunks, one per worker, and the
    /// per-chunk results are reassembled in input order, so the output is
    /// *identical* to calling [`NnIndex::search`] sequentially — blocking an
    /// entire dataset saturates cores without sacrificing determinism.
    fn search_batch(&self, queries: &[Embedding], k: usize) -> Vec<Vec<(usize, f32)>>
    where
        Self: Sync + Sized,
    {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(queries.len());
        if workers <= 1 {
            return queries.iter().map(|q| self.search(q, k)).collect();
        }
        let chunk = queries.len().div_ceil(workers);
        let mut out = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = queries
                .chunks(chunk)
                .map(|chunk| {
                    scope.spawn(move || chunk.iter().map(|q| self.search(q, k)).collect::<Vec<_>>())
                })
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("search worker panicked"));
            }
        });
        out
    }
}
