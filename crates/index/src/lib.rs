//! er-index — nearest-neighbour search (DESIGN.md inventory rows 9–11b).
//!
//! Ships the [`NnIndex`] trait, the exact brute-force scan (row 9), the
//! HNSW graph index (row 10) and hyperplane LSH with multi-table probing
//! (row 11), all deterministic under a fixed seed and generic over
//! [`Metric`]. IVF-Flat (row 11b) and cross-polytope LSH arrive with the
//! engine-ablation PR behind the same trait.
//!
//! Mutation is layered: [`IndexReader`] is the immutable view concurrent
//! readers share, [`MutableIndex`] the writer handle with insert, delete
//! and tombstone-reclaiming [`MutableIndex::compact`].
//!
//! Storage is columnar: every index holds an [`er_core::VectorStore`] —
//! either an [`er_core::EmbeddingMatrix`] it owns (the legacy
//! `Vec<Embedding>` constructors copy once into one) or a matrix it
//! *borrows* from the pipeline (`from_matrix`, zero-copy; indices never
//! clone a borrowed matrix). Distances run over contiguous rows with
//! precomputed row norms, so a cosine scan touches each stored vector once.

pub mod exact;
pub mod hnsw;
pub mod lsh;
pub mod metric;
pub mod persist;

pub use exact::{ExactIndex, Quantization, ScanConfig};
pub use hnsw::{HnswConfig, HnswIndex};
pub use lsh::{HyperplaneLsh, LshConfig};
pub use metric::Metric;
// The runtime query-parameter overrides every `IndexReader` accepts (part
// of the `er_core::OperatingPoint` redesign).
pub use er_core::QueryParams;

use er_core::{Embedding, EmbeddingMatrix};

/// One search hit: the position of a stored vector and its distance from
/// the query under the index's [`Metric`] (lower is always closer).
///
/// This replaces the bare `(usize, f32)` tuples of the tuple era — the
/// distance is carried by the same field on every backend, so the blocker
/// can thread it into a [`er_core::ScoredPair`] without re-deriving it.
/// Equivalence tests pin the `distance` bits against a tuple-era oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Index of the stored vector (row in the indexed matrix).
    pub index: usize,
    /// Distance from the query under [`NnIndex::metric`].
    pub distance: f32,
}

impl Neighbor {
    pub fn new(index: usize, distance: f32) -> Neighbor {
        Neighbor { index, distance }
    }
}

/// The immutable, shareable view of a mutable index — everything a
/// concurrent reader needs on top of [`NnIndex`] searches. `er-serve` hands
/// `Arc`-wrapped snapshots implementing this to reader threads while a
/// writer prepares the next snapshot behind their backs.
///
/// Row ids are **stable**: a deleted row keeps its id (and, for HNSW, its
/// graph links, which still route searches); it is merely masked out of
/// every result set. [`NnIndex::len`] keeps counting *stored* rows;
/// [`IndexReader::live_count`] counts the searchable ones, and a search
/// with `k > live_count` truncates cleanly instead of surfacing tombstones.
pub trait IndexReader: NnIndex {
    /// Whether `index` is tombstoned (out-of-range ids are not).
    fn is_deleted(&self, index: usize) -> bool;

    /// Stored rows minus tombstones — the most hits any search can return.
    fn live_count(&self) -> usize;

    /// Search with runtime [`QueryParams`] overrides (HNSW beam width, LSH
    /// probes/tables — knobs that never rebuild the index), returning the
    /// hits **plus the number of full-width f32 distance evaluations** the
    /// search performed over stored rows — the measured quantity `er-tune`
    /// validates its cost estimates against.
    ///
    /// Contract: with `QueryParams::default()` the hits are bit-identical
    /// to [`NnIndex::search_slice`] (pinned by tests); a param the backend
    /// does not understand is ignored. Not counted: per-query setup (query
    /// norm, LSH signature dots, quantized first passes) — the cost model
    /// prices those from the kernel calibration tables instead.
    fn search_counted(&self, query: &[f32], k: usize, params: &QueryParams)
        -> (Vec<Neighbor>, u64);

    /// [`IndexReader::search_counted`] without the counter — the
    /// parameter-sweeping search entry point.
    fn search_params(&self, query: &[f32], k: usize, params: &QueryParams) -> Vec<Neighbor> {
        self.search_counted(query, k, params).0
    }
}

/// The writer handle on top of [`IndexReader`] — the `er-serve` mutation
/// contract. Only the owner of an index (in the serving layer: the shard
/// writer, holding the shard's write lock) sees these methods; readers hold
/// snapshots typed as [`IndexReader`] and can never mutate.
pub trait MutableIndex: IndexReader {
    /// Append one vector, returning its new row id.
    ///
    /// Fails if the index *borrows* its matrix (zero-copy stores stay
    /// frozen — see `er_core::VectorStore::matrix_mut`) or on a dimension
    /// mismatch. An index built over an empty dim-0 store adopts the first
    /// inserted row's dimension where nothing dimension-dependent was
    /// precomputed (exact, HNSW); LSH drew its hyperplanes at build time
    /// and rejects the mismatch instead.
    fn insert_row(&mut self, row: &[f32]) -> er_core::Result<usize>;

    /// Tombstone a row. Returns `false` when the id is out of range or
    /// already deleted. Deleted rows never appear in search results.
    fn delete_row(&mut self, index: usize) -> bool;

    /// Rebuild the index without its tombstoned rows, preserving the
    /// relative order of live rows, and return the new→old row mapping
    /// (`map[new_row] == old_row`; the identity when nothing was deleted).
    ///
    /// Live top-k answers are unaffected: exact and LSH backends copy every
    /// float and signature verbatim, and the HNSW rebuild reuses the
    /// incremental insert path so the compacted graph is bit-identical to a
    /// fresh batch build over the live rows in order. Compacting an index
    /// with no tombstones (including an empty one) is a no-op that still
    /// returns the identity mapping. Fails like [`MutableIndex::insert_row`]
    /// when the index borrows its matrix.
    fn compact(&mut self) -> er_core::Result<Vec<u32>>;
}

/// A nearest-neighbour index over a fixed set of embeddings. Searches
/// return up to `k` [`Neighbor`] hits, nearest first, where the distance
/// semantics are given by [`NnIndex::metric`] (lower is always closer).
pub trait NnIndex {
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The distance this index was built to minimize.
    fn metric(&self) -> Metric;

    /// Search with a raw query row — the allocation-free primitive every
    /// other search entry point funnels into.
    fn search_slice(&self, query: &[f32], k: usize) -> Vec<Neighbor>;

    fn search(&self, query: &Embedding, k: usize) -> Vec<Neighbor> {
        self.search_slice(query.as_slice(), k)
    }

    /// Batched search over many queries, parallelized across a scoped-thread
    /// worker pool (no crates.io, so no rayon — plain `std::thread::scope`).
    ///
    /// Queries are split into contiguous chunks, one per worker, and the
    /// per-chunk results are reassembled in input order, so the output is
    /// *identical* to calling [`NnIndex::search`] sequentially — blocking an
    /// entire dataset saturates cores without sacrificing determinism.
    fn search_batch(&self, queries: &[Embedding], k: usize) -> Vec<Vec<Neighbor>>
    where
        Self: Sync + Sized,
    {
        batch_by_chunks(queries.len(), |i| self.search(&queries[i], k))
    }

    /// [`NnIndex::search_batch`] over the rows of an [`EmbeddingMatrix`] —
    /// the pipeline's query path. Same chunking, same in-order reassembly,
    /// bit-identical to sequential [`NnIndex::search_slice`] calls.
    fn search_batch_rows(&self, queries: &EmbeddingMatrix, k: usize) -> Vec<Vec<Neighbor>>
    where
        Self: Sync + Sized,
    {
        batch_by_chunks(queries.len(), |i| self.search_slice(queries.row(i), k))
    }
}

/// Fan `0..n` out over scoped-thread workers in contiguous chunks and
/// reassemble the per-index results in input order.
fn batch_by_chunks<F>(n: usize, search_one: F) -> Vec<Vec<Neighbor>>
where
    F: Fn(usize) -> Vec<Neighbor> + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|w| w.get())
        .unwrap_or(1)
        .min(n);
    if workers <= 1 {
        return (0..n).map(&search_one).collect();
    }
    let chunk = n.div_ceil(workers);
    let search_one = &search_one;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .step_by(chunk)
            .map(|start| {
                let end = (start + chunk).min(n);
                scope.spawn(move || (start..end).map(search_one).collect::<Vec<_>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("search worker panicked"));
        }
    });
    out
}
