//! HNSW — Hierarchical Navigable Small World graphs (Malkov & Yashunin,
//! DESIGN.md inventory row 10; the FAISS-HNSW analogue of the paper's
//! scalability study, §4.3).
//!
//! A layered proximity graph: layer 0 holds every vector with up to `2·M`
//! links, each higher layer an exponentially thinner subset with up to `M`
//! links. Queries greedily descend from the sparse top layer, then run a
//! best-first beam of width `ef_search` on layer 0. Construction inserts
//! nodes one at a time with a beam of width `ef_construction` and the
//! heuristic neighbour selection of the paper's Algorithm 4.
//!
//! Vectors live in an [`EmbeddingMatrix`] (owned, or borrowed zero-copy via
//! [`HnswIndex::from_matrix`]); all distance evaluations run over
//! contiguous rows with precomputed norms, and the query norm is computed
//! once per search rather than once per comparison.
//!
//! Determinism: node levels are the only random choice, drawn from a
//! dedicated stream of `er_core::rng` seeded by `HnswConfig::seed`; every
//! heap and neighbour comparison tie-breaks on node id, so one
//! `(vectors, config)` pair always builds the bit-identical graph.
//!
//! Incremental mutation (the `er-serve` path): the level stream lives *in*
//! the index, and the batch build is nothing but a loop of single-node
//! inserts — so [`MutableIndex::insert_row`] calls after a build continue
//! the same stream, and inserting rows one at a time in build order
//! produces the bit-identical graph a batch build would (pinned by tests).
//! Deletions are tombstones: the node keeps its id and its links (it still
//! routes searches through the graph) but is masked out of results.

use crate::{IndexReader, Metric, MutableIndex, Neighbor, NnIndex};
use er_core::rng::{derive, DetRng};
use er_core::{Embedding, EmbeddingMatrix, ErError, QueryParams, VectorSource, VectorStore};
use rand::Rng;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// Levels are capped so a pathological RNG draw cannot allocate an
/// unbounded tower (16 layers already covers ~M^16 nodes).
pub(crate) const MAX_LEVEL: usize = 16;

/// Tunables of the graph (the paper sweeps `ef_search` in its FAISS
/// configuration ablation; see `bench_indexing`).
#[derive(Debug, Clone)]
pub struct HnswConfig {
    /// Max links per node on layers ≥ 1 (layer 0 allows `2·M`).
    pub m: usize,
    /// Beam width while inserting.
    pub ef_construction: usize,
    /// Beam width while querying (raised to `k` when `k` is larger).
    pub ef_search: usize,
    pub metric: Metric,
    /// Seed for the level-sampling stream.
    pub seed: u64,
    /// Kernel tier every graph distance runs on. `Reference` (the default)
    /// keeps builds bit-identical to the pre-tier index; `Lanes` speeds up
    /// construction and search, with the usual ≤-tolerance contract. The
    /// tier is persisted: a loaded graph searches with the tier it was
    /// built with.
    pub tier: er_core::KernelTier,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 16,
            ef_construction: 100,
            ef_search: 64,
            metric: Metric::Euclidean,
            seed: 42,
            tier: er_core::KernelTier::Reference,
        }
    }
}

/// A `(distance, id)` pair with a total, deterministic order: primary by
/// distance, ties by id. `BinaryHeap<Cand>` is a max-heap (worst on top),
/// `BinaryHeap<Reverse<Cand>>` a min-heap (best on top).
#[derive(Debug, Clone, Copy)]
struct Cand {
    dist: f32,
    id: u32,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Cand {}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

#[derive(Debug, Clone)]
pub struct HnswIndex<'a> {
    pub(crate) store: VectorStore<'a>,
    /// `neighbors[node][layer]` — adjacency lists, layer 0 first.
    pub(crate) neighbors: Vec<Vec<Vec<u32>>>,
    pub(crate) entry: u32,
    pub(crate) max_level: usize,
    pub(crate) config: HnswConfig,
    /// The level-sampling stream, positioned after one draw per stored
    /// node — a later `insert_row` continues exactly where the build left
    /// off (and persistence replays the stream to this position on load).
    pub(crate) level_rng: DetRng,
    /// Tombstones: `deleted[node]` masks the node out of search results
    /// while its links keep routing.
    pub(crate) deleted: Vec<bool>,
    pub(crate) deleted_count: usize,
}

impl HnswIndex<'static> {
    /// Legacy path: copy the embeddings once into an owned matrix.
    pub fn build(vectors: &[Embedding], config: HnswConfig) -> HnswIndex<'static> {
        HnswIndex::from_source(vectors, config)
    }
}

impl<'a> HnswIndex<'a> {
    /// Zero-copy: borrow a matrix the pipeline already built.
    pub fn from_matrix(matrix: &'a EmbeddingMatrix, config: HnswConfig) -> HnswIndex<'a> {
        HnswIndex::from_source(matrix, config)
    }

    /// The [`VectorSource`] seam: build the graph over any vector storage.
    ///
    /// The batch build *is* the incremental path — one level draw plus one
    /// insert per row — so `insert_row` calls afterwards continue the same
    /// level stream and the graph never depends on which path built it.
    pub fn from_source(source: impl VectorSource<'a>, config: HnswConfig) -> HnswIndex<'a> {
        assert!(config.m >= 2, "HNSW needs m >= 2");
        assert!(config.ef_construction >= 1 && config.ef_search >= 1);
        let store = source.into_store();
        let n = store.len();
        let level_rng = derive(config.seed, "hnsw-levels");
        let mut index = HnswIndex {
            store,
            neighbors: Vec::with_capacity(n),
            entry: 0,
            max_level: 0,
            config,
            level_rng,
            deleted: vec![false; n],
            deleted_count: 0,
        };
        let mut visited = vec![false; n];
        for id in 0..n as u32 {
            let level = index.draw_level();
            index.insert(id, level, &mut visited);
        }
        index
    }

    /// One draw from the level stream: the exponentially-decaying level
    /// distribution P(level ≥ l) = M^(-l), capped at [`MAX_LEVEL`].
    fn draw_level(&mut self) -> usize {
        let ml = 1.0 / (self.config.m as f64).ln();
        let u: f64 = self.level_rng.gen_range(0.0..1.0);
        // 1−u ∈ (0, 1] keeps ln finite; u = 0 maps to level 0.
        let level = ((-(1.0 - u).ln()) * ml) as usize;
        level.min(MAX_LEVEL)
    }

    /// Reposition a fresh level stream after `draws` nodes — how the
    /// persistence load path reconstitutes [`Self::level_rng`] without
    /// serializing generator internals: the draw count always equals the
    /// number of stored rows.
    pub(crate) fn level_rng_after(seed: u64, draws: usize) -> DetRng {
        let mut rng = derive(seed, "hnsw-levels");
        for _ in 0..draws {
            let _: f64 = rng.gen_range(0.0..1.0);
        }
        rng
    }

    pub fn config(&self) -> &HnswConfig {
        &self.config
    }

    /// The stored vectors (owned or borrowed).
    pub fn matrix(&self) -> &EmbeddingMatrix {
        self.store.matrix()
    }

    /// Adjust the *default* query-time beam width without rebuilding the
    /// graph. `ef_search` only affects [`NnIndex::search`], never the graph
    /// itself — the same knob FAISS exposes as a search-time parameter.
    ///
    /// Note: with the `er_core::OperatingPoint` redesign the preferred way
    /// to sweep the beam width is per query, via
    /// [`IndexReader::search_counted`] /
    /// [`IndexReader::search_params`] with
    /// `QueryParams { ef_search: Some(ef), .. }` — bit-identical to
    /// rebuilding through this setter (pinned by tests), without consuming
    /// the index.
    pub fn with_ef_search(mut self, ef_search: usize) -> Self {
        self.config.ef_search = ef_search;
        self
    }

    /// The adjacency structure, `[node][layer] -> neighbour ids` — exposed
    /// so determinism tests can assert bit-identical graphs.
    pub fn adjacency(&self) -> &[Vec<Vec<u32>>] {
        &self.neighbors
    }

    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// Distance from a query row (norm cached by the caller) to a stored row.
    #[inline]
    fn dist(&self, query: &[f32], query_norm: f32, id: u32) -> f32 {
        let m = self.store.matrix();
        self.config.metric.distance_prenorm_tier(
            self.config.tier,
            query,
            query_norm,
            m.row(id as usize),
            m.norm(id as usize),
        )
    }

    /// Distance between two stored rows — both norms come from the cache.
    #[inline]
    fn dist_rows(&self, a: u32, b: u32) -> f32 {
        let m = self.store.matrix();
        self.config.metric.distance_prenorm_tier(
            self.config.tier,
            m.row(a as usize),
            m.norm(a as usize),
            m.row(b as usize),
            m.norm(b as usize),
        )
    }

    fn insert(&mut self, id: u32, level: usize, visited: &mut [bool]) {
        self.neighbors.push(vec![Vec::new(); level + 1]);
        if id == 0 {
            self.entry = 0;
            self.max_level = level;
            return;
        }
        // The inserted row doubles as the query while its links are chosen;
        // copy it out so searches can mutate `self.neighbors` freely.
        let query: Vec<f32> = self.store.row(id as usize).to_vec();
        let query_norm = self.store.norm(id as usize);
        let mut cur = Cand {
            dist: self.dist(&query, query_norm, self.entry),
            id: self.entry,
        };
        // Construction reuses the search helpers; their eval counter only
        // matters on the query path.
        let mut evals = 0u64;
        // Greedy descent through layers above the new node's level.
        for layer in (level + 1..=self.max_level).rev() {
            cur = self.greedy_closest(&query, query_norm, cur, layer, &mut evals);
        }
        // Beam search + connect on each layer the node participates in.
        let mut entries = vec![cur];
        for layer in (0..=level.min(self.max_level)).rev() {
            let found = self.search_layer(
                &query,
                query_norm,
                &entries,
                self.config.ef_construction,
                layer,
                visited,
                &mut evals,
            );
            let max_conn = if layer == 0 {
                2 * self.config.m
            } else {
                self.config.m
            };
            let selected = self.select_neighbors(&found, self.config.m);
            for &nb in &selected {
                let mut conns = self.neighbors[nb as usize][layer].clone();
                conns.push(id);
                if conns.len() > max_conn {
                    conns = self.prune(nb, conns, max_conn);
                }
                self.neighbors[nb as usize][layer] = conns;
            }
            self.neighbors[id as usize][layer] = selected;
            entries = found;
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = id;
        }
    }

    /// Hill-climb to the locally closest node of one layer (beam width 1).
    /// `evals` counts every distance evaluation the climb performs.
    fn greedy_closest(
        &self,
        query: &[f32],
        query_norm: f32,
        mut cur: Cand,
        layer: usize,
        evals: &mut u64,
    ) -> Cand {
        loop {
            let mut best = cur;
            for &nb in &self.neighbors[cur.id as usize][layer] {
                *evals += 1;
                let cand = Cand {
                    dist: self.dist(query, query_norm, nb),
                    id: nb,
                };
                if cand < best {
                    best = cand;
                }
            }
            if best.id == cur.id {
                return cur;
            }
            cur = best;
        }
    }

    /// Best-first beam search of one layer (the paper's Algorithm 2),
    /// returning up to `ef` candidates sorted nearest-first. `evals`
    /// counts every distance evaluation of the beam.
    #[allow(clippy::too_many_arguments)]
    fn search_layer(
        &self,
        query: &[f32],
        query_norm: f32,
        entries: &[Cand],
        ef: usize,
        layer: usize,
        visited: &mut [bool],
        evals: &mut u64,
    ) -> Vec<Cand> {
        visited.iter_mut().for_each(|v| *v = false);
        let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        let mut results: BinaryHeap<Cand> = BinaryHeap::with_capacity(ef + 1);
        for &e in entries {
            if !std::mem::replace(&mut visited[e.id as usize], true) {
                frontier.push(Reverse(e));
                results.push(e);
            }
        }
        while results.len() > ef {
            results.pop();
        }
        while let Some(Reverse(cand)) = frontier.pop() {
            let worst = results.peek().expect("results non-empty").dist;
            if results.len() == ef && cand.dist > worst {
                break;
            }
            for &nb in &self.neighbors[cand.id as usize][layer] {
                if std::mem::replace(&mut visited[nb as usize], true) {
                    continue;
                }
                *evals += 1;
                let next = Cand {
                    dist: self.dist(query, query_norm, nb),
                    id: nb,
                };
                if results.len() < ef || next < *results.peek().expect("non-empty") {
                    frontier.push(Reverse(next));
                    results.push(next);
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out = results.into_vec();
        out.sort_unstable();
        out
    }

    /// Heuristic neighbour selection (Algorithm 4): walk candidates
    /// nearest-first, keeping one only if it is closer to the query than to
    /// every already-kept neighbour (diversity), then back-fill with the
    /// nearest rejected candidates (keep-pruned-connections).
    fn select_neighbors(&self, candidates: &[Cand], m: usize) -> Vec<u32> {
        let mut selected: Vec<Cand> = Vec::with_capacity(m);
        for &cand in candidates {
            if selected.len() == m {
                break;
            }
            let diverse = selected
                .iter()
                .all(|&kept| self.dist_rows(cand.id, kept.id) > cand.dist);
            if diverse {
                selected.push(cand);
            }
        }
        if selected.len() < m {
            for &cand in candidates {
                if selected.len() == m {
                    break;
                }
                if !selected.iter().any(|kept| kept.id == cand.id) {
                    selected.push(cand);
                }
            }
        }
        selected.into_iter().map(|c| c.id).collect()
    }

    /// Re-select a node's links after a back-link pushed it past `max_conn`.
    fn prune(&self, node: u32, conns: Vec<u32>, max_conn: usize) -> Vec<u32> {
        let mut cands: Vec<Cand> = conns
            .into_iter()
            .map(|id| Cand {
                dist: self.dist_rows(node, id),
                id,
            })
            .collect();
        cands.sort_unstable();
        self.select_neighbors(&cands, max_conn)
    }

    /// [`Self::search_layer`] with tombstone masking: deleted nodes are
    /// traversed (they keep routing the beam through the graph) but only
    /// live nodes may enter the result set, so the beam keeps `ef` *live*
    /// candidates and `k ≤ ef` hits never contain a deleted id.
    #[allow(clippy::too_many_arguments)]
    fn search_layer_masked(
        &self,
        query: &[f32],
        query_norm: f32,
        entries: &[Cand],
        ef: usize,
        layer: usize,
        visited: &mut [bool],
        evals: &mut u64,
    ) -> Vec<Cand> {
        visited.iter_mut().for_each(|v| *v = false);
        let mut frontier: BinaryHeap<Reverse<Cand>> = BinaryHeap::new();
        let mut results: BinaryHeap<Cand> = BinaryHeap::with_capacity(ef + 1);
        for &e in entries {
            if !std::mem::replace(&mut visited[e.id as usize], true) {
                frontier.push(Reverse(e));
                if !self.deleted[e.id as usize] {
                    results.push(e);
                }
            }
        }
        while results.len() > ef {
            results.pop();
        }
        while let Some(Reverse(cand)) = frontier.pop() {
            // Unlike the unmasked beam, `results` may still be empty here
            // (all entries deleted), so the cut-off only applies once full.
            if results.len() == ef && cand.dist > results.peek().expect("full").dist {
                break;
            }
            for &nb in &self.neighbors[cand.id as usize][layer] {
                if std::mem::replace(&mut visited[nb as usize], true) {
                    continue;
                }
                *evals += 1;
                let next = Cand {
                    dist: self.dist(query, query_norm, nb),
                    id: nb,
                };
                if results.len() < ef || next < *results.peek().expect("non-empty") {
                    frontier.push(Reverse(next));
                    if !self.deleted[nb as usize] {
                        results.push(next);
                        if results.len() > ef {
                            results.pop();
                        }
                    }
                }
            }
        }
        let mut out = results.into_vec();
        out.sort_unstable();
        out
    }
}

impl NnIndex for HnswIndex<'_> {
    fn len(&self) -> usize {
        self.store.len()
    }

    fn metric(&self) -> Metric {
        self.config.metric
    }

    fn search_slice(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        self.search_counted_inner(query, k, self.config.ef_search).0
    }
}

impl HnswIndex<'_> {
    /// The shared body of [`NnIndex::search_slice`] and
    /// [`IndexReader::search_counted`]: the graph search with an explicit
    /// beam width, counting every distance evaluation (entry distance,
    /// greedy descent, layer-0 beam).
    fn search_counted_inner(&self, query: &[f32], k: usize, ef: usize) -> (Vec<Neighbor>, u64) {
        if k == 0 || self.live_count() == 0 {
            return (Vec::new(), 0);
        }
        let query_norm = self.config.metric.query_norm_tier(self.config.tier, query);
        let mut evals = 1u64;
        let mut cur = Cand {
            dist: self.dist(query, query_norm, self.entry),
            id: self.entry,
        };
        // The greedy descent may pass through (or land on) deleted nodes —
        // they only route; layer 0 masks them out of the results.
        for layer in (1..=self.max_level).rev() {
            cur = self.greedy_closest(query, query_norm, cur, layer, &mut evals);
        }
        let ef = ef.max(k);
        let mut visited = vec![false; self.store.len()];
        let found = if self.deleted_count == 0 {
            self.search_layer(query, query_norm, &[cur], ef, 0, &mut visited, &mut evals)
        } else {
            self.search_layer_masked(query, query_norm, &[cur], ef, 0, &mut visited, &mut evals)
        };
        let hits = found
            .into_iter()
            .take(k)
            .map(|c| Neighbor::new(c.id as usize, c.dist))
            .collect();
        (hits, evals)
    }
}

impl IndexReader for HnswIndex<'_> {
    fn is_deleted(&self, index: usize) -> bool {
        self.deleted.get(index).copied().unwrap_or(false)
    }

    fn live_count(&self) -> usize {
        self.store.len() - self.deleted_count
    }

    /// Honors `params.ef_search` (the runtime beam width — bit-identical
    /// to rebuilding via [`HnswIndex::with_ef_search`]); other params are
    /// ignored.
    fn search_counted(
        &self,
        query: &[f32],
        k: usize,
        params: &QueryParams,
    ) -> (Vec<Neighbor>, u64) {
        let ef = params.ef_search.unwrap_or(self.config.ef_search);
        self.search_counted_inner(query, k, ef)
    }
}

impl MutableIndex for HnswIndex<'_> {
    fn insert_row(&mut self, row: &[f32]) -> er_core::Result<usize> {
        let matrix = self.store.matrix_mut().ok_or_else(|| {
            ErError::Model(
                "HnswIndex::insert_row: the index borrows its matrix; \
                 streaming mutation needs an owned store"
                    .into(),
            )
        })?;
        if matrix.is_empty() && matrix.dim() == 0 && !row.is_empty() {
            // An index built over nothing adopts the first row's dimension.
            *matrix = EmbeddingMatrix::new(row.len());
        }
        if matrix.dim() != row.len() {
            return Err(ErError::Model(format!(
                "HnswIndex::insert_row: pushed a {}-d row into a {}-d index",
                row.len(),
                matrix.dim()
            )));
        }
        matrix.push(row);
        let id = self.store.len() - 1;
        self.deleted.push(false);
        let level = self.draw_level();
        let mut visited = vec![false; self.store.len()];
        self.insert(id as u32, level, &mut visited);
        Ok(id)
    }

    fn delete_row(&mut self, index: usize) -> bool {
        if index >= self.deleted.len() || self.deleted[index] {
            return false;
        }
        self.deleted[index] = true;
        self.deleted_count += 1;
        true
    }

    /// Compaction rebuilds the graph from scratch over the live rows — and
    /// because the batch build *is* the incremental insert loop, the result
    /// is bit-identical to a fresh `from_source` build over the live rows
    /// in stable order (the level stream restarts from `config.seed` and is
    /// left positioned after one draw per live row, so later `insert_row`
    /// calls continue exactly like inserts into that fresh build). Row
    /// floats and their cached norms are copied verbatim.
    fn compact(&mut self) -> er_core::Result<Vec<u32>> {
        let keep: Vec<u32> = (0..self.store.len())
            .filter(|&i| !self.deleted[i])
            .map(|i| i as u32)
            .collect();
        if self.deleted_count == 0 {
            return Ok(keep);
        }
        let live = {
            let matrix = self.store.matrix_mut().ok_or_else(|| {
                ErError::Model(
                    "HnswIndex::compact: the index borrows its matrix; \
                     compaction needs an owned store"
                        .into(),
                )
            })?;
            let dim = matrix.dim();
            let mut data = Vec::with_capacity(keep.len() * dim);
            let mut norms = Vec::with_capacity(keep.len());
            for &old in &keep {
                data.extend_from_slice(matrix.row(old as usize));
                norms.push(matrix.norm(old as usize));
            }
            EmbeddingMatrix::from_parts(dim, data, norms)?
        };
        let rebuilt = HnswIndex::from_source(live, self.config.clone());
        self.store = rebuilt.store;
        self.neighbors = rebuilt.neighbors;
        self.entry = rebuilt.entry;
        self.max_level = rebuilt.max_level;
        self.level_rng = rebuilt.level_rng;
        self.deleted = rebuilt.deleted;
        self.deleted_count = 0;
        Ok(keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<Embedding> {
        // A 6×6 grid: nearest neighbours are unambiguous.
        (0..36)
            .map(|i| Embedding(vec![(i % 6) as f32, (i / 6) as f32]))
            .collect()
    }

    #[test]
    fn finds_exact_hits_on_small_data() {
        let index = HnswIndex::build(&grid(), HnswConfig::default());
        assert_eq!(index.len(), 36);
        // Query right on top of node 14 = (2, 2).
        let hits = index.search(&Embedding(vec![2.0, 2.0]), 5);
        assert_eq!(hits[0], Neighbor::new(14, 0.0));
        // The four direct grid neighbours are all at distance 1.
        let next: Vec<usize> = hits[1..].iter().map(|h| h.index).collect();
        assert_eq!(next, vec![8, 13, 15, 20]);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = HnswIndex::build(&[], HnswConfig::default());
        assert!(empty.is_empty());
        assert!(empty.search(&Embedding(vec![0.0]), 3).is_empty());

        let one = HnswIndex::build(&[Embedding(vec![1.0, 1.0])], HnswConfig::default());
        let hits = one.search(&Embedding(vec![0.0, 0.0]), 5);
        assert_eq!(hits, vec![Neighbor::new(0, 2.0)]);
        assert!(one.search(&Embedding(vec![0.0, 0.0]), 0).is_empty());
    }

    #[test]
    fn respects_cosine_metric() {
        let vectors = vec![
            Embedding(vec![1.0, 0.0]),
            Embedding(vec![0.0, 2.0]),
            Embedding(vec![3.0, 4.0]),
        ];
        let index = HnswIndex::build(
            &vectors,
            HnswConfig {
                metric: Metric::Cosine,
                ..HnswConfig::default()
            },
        );
        assert_eq!(index.metric(), Metric::Cosine);
        let hits = index.search(&Embedding(vec![1.0, 0.0]), 3);
        assert_eq!(hits[0].index, 0);
        assert_eq!(
            hits[1].index, 2,
            "cosine ranks colinear-ish above orthogonal"
        );
        assert!((hits[1].distance - 0.4).abs() < 1e-6);
    }

    #[test]
    fn graph_is_bounded_connected_and_self_link_free() {
        let index = HnswIndex::build(&grid(), HnswConfig::default());
        let adj = index.adjacency();
        for (id, layers) in adj.iter().enumerate() {
            assert!(!layers.is_empty());
            assert!(layers[0].len() <= 2 * index.config().m);
            if adj.len() > 1 {
                assert!(!layers[0].is_empty(), "node {id} isolated on layer 0");
            }
            for &nb in &layers[0] {
                assert_ne!(nb as usize, id, "no self-links");
                assert!((nb as usize) < adj.len());
            }
        }
        // Every node must be findable: querying a node's own vector with a
        // wide beam returns that node first.
        for (id, v) in grid().iter().enumerate() {
            let hits = index.search(v, 1);
            assert_eq!(
                hits[0],
                Neighbor::new(id, 0.0),
                "node {id} unreachable from entry"
            );
        }
    }

    #[test]
    fn borrowed_matrix_builds_the_bit_identical_graph() {
        let vectors = grid();
        let matrix = EmbeddingMatrix::from_embeddings(&vectors);
        for metric in [Metric::Euclidean, Metric::Cosine] {
            let config = HnswConfig {
                metric,
                ..HnswConfig::default()
            };
            let owned = HnswIndex::build(&vectors, config.clone());
            let borrowed = HnswIndex::from_matrix(&matrix, config);
            assert_eq!(owned.adjacency(), borrowed.adjacency());
            assert_eq!(owned.max_level(), borrowed.max_level());
            for v in &vectors {
                assert_eq!(owned.search(v, 5), borrowed.search(v, 5));
            }
        }
    }
}
