//! Streaming-mutation contract of [`MutableIndex`]: incremental insertion
//! equals batch construction, tombstones mask without destabilizing ids,
//! and the edge cases (empty index, all-deleted index, `k > live_count`)
//! return clean truncated results instead of panicking or leaking
//! deleted ids.

use er_core::{Embedding, EmbeddingMatrix, ErError};
use er_index::{
    ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, IndexReader, LshConfig, Metric, MutableIndex,
    NnIndex,
};
use rand::Rng;

fn vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
    let mut r = er_core::rng::rng(seed);
    (0..n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
        .collect()
}

/// The load-bearing equivalence of the serving path: building an HNSW
/// graph by streaming `insert_row` calls in build order is *bit-identical*
/// to the batch build — same adjacency, same entry point, same hits.
#[test]
fn hnsw_incremental_build_is_bit_identical_to_batch() {
    let vs = vectors(60, 8, 21);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        let config = HnswConfig {
            metric,
            ..HnswConfig::default()
        };
        let batch = HnswIndex::build(&vs, config.clone());
        let mut incremental = HnswIndex::from_source(EmbeddingMatrix::new(8), config);
        for v in &vs {
            incremental.insert_row(v.as_slice()).unwrap();
        }
        assert_eq!(batch.adjacency(), incremental.adjacency());
        assert_eq!(batch.max_level(), incremental.max_level());
        for v in &vs {
            assert_eq!(batch.search(v, 5), incremental.search(v, 5));
        }
    }
}

#[test]
fn exact_and_lsh_incremental_build_match_batch() {
    let vs = vectors(40, 6, 22);
    let batch_exact = ExactIndex::with_metric(&vs, Metric::Cosine);
    let mut inc_exact = ExactIndex::from_source(EmbeddingMatrix::new(6), Metric::Cosine);
    let batch_lsh = HyperplaneLsh::build(&vs, LshConfig::default());
    let mut inc_lsh = HyperplaneLsh::from_source(EmbeddingMatrix::new(6), LshConfig::default());
    for (i, v) in vs.iter().enumerate() {
        assert_eq!(inc_exact.insert_row(v.as_slice()).unwrap(), i);
        assert_eq!(inc_lsh.insert_row(v.as_slice()).unwrap(), i);
    }
    assert_eq!(batch_lsh.signatures(), inc_lsh.signatures());
    for v in &vs {
        assert_eq!(batch_exact.search(v, 7), inc_exact.search(v, 7));
        assert_eq!(batch_lsh.search(v, 7), inc_lsh.search(v, 7));
    }
}

/// Deleted ids never surface, and the remaining hits are exactly the
/// search over the surviving rows (ids unchanged — tombstones don't shift
/// positions).
#[test]
fn tombstones_mask_results_without_moving_ids() {
    let vs = vectors(30, 6, 23);
    let dropped = [0usize, 7, 15, 29];
    let mut exact = ExactIndex::build(&vs);
    let mut hnsw = HnswIndex::build(&vs, HnswConfig::default());
    let mut lsh = HyperplaneLsh::build(&vs, LshConfig::default());
    for &d in &dropped {
        assert!(exact.delete_row(d) && hnsw.delete_row(d) && lsh.delete_row(d));
        // Double deletion is a no-op, not a panic.
        assert!(!exact.delete_row(d) && !hnsw.delete_row(d) && !lsh.delete_row(d));
    }
    assert_eq!(exact.live_count(), 26);
    assert_eq!(hnsw.live_count(), 26);
    assert_eq!(lsh.live_count(), 26);
    for v in &vs {
        for hits in [exact.search(v, 30), hnsw.search(v, 30), lsh.search(v, 30)] {
            assert!(hits.iter().all(|h| !dropped.contains(&h.index)));
            assert!(hits.len() <= 26);
        }
    }
    // The exact scan over survivors is the ground truth the masked scan
    // must reproduce, modulo the stable original ids.
    let survivors: Vec<usize> = (0..vs.len()).filter(|i| !dropped.contains(i)).collect();
    let shrunk_vs: Vec<Embedding> = survivors.iter().map(|&i| vs[i].clone()).collect();
    let shrunk = ExactIndex::build(&shrunk_vs);
    for v in &vs {
        let masked = exact.search(v, 5);
        let oracle = shrunk.search(v, 5);
        assert_eq!(masked.len(), oracle.len());
        for (m, o) in masked.iter().zip(&oracle) {
            assert_eq!(m.index, survivors[o.index]);
            assert_eq!(m.distance.to_bits(), o.distance.to_bits());
        }
    }
}

#[test]
fn all_tombstoned_index_returns_empty_never_panics() {
    let vs = vectors(12, 4, 24);
    let q = Embedding(vec![0.1; 4]);
    let mut exact = ExactIndex::build(&vs);
    let mut hnsw = HnswIndex::build(&vs, HnswConfig::default());
    let mut lsh = HyperplaneLsh::build(&vs, LshConfig::default());
    for i in 0..vs.len() {
        exact.delete_row(i);
        hnsw.delete_row(i);
        lsh.delete_row(i);
    }
    assert_eq!(exact.live_count(), 0);
    assert!(exact.search(&q, 5).is_empty());
    assert!(hnsw.search(&q, 5).is_empty());
    assert!(lsh.search(&q, 5).is_empty());
    // The graph survives total deletion: re-inserting works and the new
    // row is findable.
    let id = hnsw.insert_row(q.as_slice()).unwrap();
    assert_eq!(id, vs.len());
    let hits = hnsw.search(&q, 3);
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].index, id);
}

#[test]
fn k_larger_than_live_count_truncates_cleanly() {
    let vs = vectors(10, 4, 25);
    let q = Embedding(vec![0.3; 4]);
    let mut exact = ExactIndex::build(&vs);
    let mut hnsw = HnswIndex::build(&vs, HnswConfig::default());
    let mut lsh = HyperplaneLsh::build(&vs, LshConfig::default());
    for d in [1usize, 4, 6] {
        exact.delete_row(d);
        hnsw.delete_row(d);
        lsh.delete_row(d);
    }
    assert_eq!(exact.search(&q, 100).len(), 7);
    assert_eq!(hnsw.search(&q, 100).len(), 7);
    assert!(
        lsh.search(&q, 100).len() <= 7,
        "LSH may return fewer (probing)"
    );
    // Out-of-range deletes are rejected, not panics.
    assert!(!exact.delete_row(10) && !hnsw.delete_row(999) && !lsh.delete_row(10));
    assert!(!exact.is_deleted(10) && !hnsw.is_deleted(999));
}

#[test]
fn borrowed_stores_reject_mutation_with_a_typed_error() {
    let vs = vectors(8, 4, 26);
    let matrix = EmbeddingMatrix::from_embeddings(&vs);
    let mut exact = ExactIndex::from_matrix(&matrix, Metric::Euclidean);
    let mut hnsw = HnswIndex::from_matrix(&matrix, HnswConfig::default());
    let mut lsh = HyperplaneLsh::from_matrix(&matrix, LshConfig::default());
    let row = [0.0f32; 4];
    assert!(matches!(exact.insert_row(&row), Err(ErError::Model(_))));
    assert!(matches!(hnsw.insert_row(&row), Err(ErError::Model(_))));
    assert!(matches!(lsh.insert_row(&row), Err(ErError::Model(_))));
    // Deletion is pure masking and stays legal on borrowed stores.
    assert!(exact.delete_row(0) && hnsw.delete_row(0) && lsh.delete_row(0));
}

#[test]
fn dimension_mismatches_are_typed_errors() {
    let mut exact = ExactIndex::from_source(EmbeddingMatrix::new(4), Metric::Euclidean);
    assert!(matches!(
        exact.insert_row(&[1.0; 3]),
        Err(ErError::Model(_))
    ));
    assert_eq!(exact.insert_row(&[1.0; 4]).unwrap(), 0);
    // Dim-0 empty stores adopt the first row's dimension (exact, HNSW)…
    let mut adopt = ExactIndex::build(&[]);
    assert_eq!(adopt.insert_row(&[1.0, 2.0]).unwrap(), 0);
    assert!(matches!(
        adopt.insert_row(&[1.0; 5]),
        Err(ErError::Model(_))
    ));
    let mut hnsw = HnswIndex::build(&[], HnswConfig::default());
    assert_eq!(hnsw.insert_row(&[1.0, 2.0]).unwrap(), 0);
    // …but LSH hashed nothing yet still fixed its hyperplane dimension.
    let mut lsh = HyperplaneLsh::build(&[], LshConfig::default());
    assert!(matches!(
        lsh.insert_row(&[1.0, 2.0]),
        Err(ErError::Model(_))
    ));
    let mut lsh = HyperplaneLsh::from_source(EmbeddingMatrix::new(2), LshConfig::default());
    assert_eq!(lsh.insert_row(&[1.0, 2.0]).unwrap(), 0);
    assert_eq!(lsh.search(&Embedding(vec![1.0, 2.0]), 1).len(), 1);
}

/// Queries stay legal between mutations: interleave inserts and deletes
/// and keep checking against a freshly built exact oracle.
#[test]
fn interleaved_mutations_keep_queries_consistent() {
    let vs = vectors(30, 5, 27);
    let q = Embedding(vec![0.2; 5]);
    let mut exact = ExactIndex::from_source(EmbeddingMatrix::new(5), Metric::Euclidean);
    let mut live: Vec<usize> = Vec::new();
    for (i, v) in vs.iter().enumerate() {
        exact.insert_row(v.as_slice()).unwrap();
        live.push(i);
        if i % 3 == 2 {
            let victim = live.remove(live.len() / 2);
            assert!(exact.delete_row(victim));
        }
        let hits = exact.search(&q, 4);
        let oracle_vs: Vec<Embedding> = live.iter().map(|&j| vs[j].clone()).collect();
        let oracle = ExactIndex::build(&oracle_vs).search(&q, 4);
        assert_eq!(hits.len(), oracle.len());
        for (h, o) in hits.iter().zip(&oracle) {
            assert_eq!(h.index, live[o.index]);
            assert_eq!(h.distance.to_bits(), o.distance.to_bits());
        }
    }
}
