//! Pins for the runtime query-parameter redesign (`er_core::QueryParams`):
//!
//! 1. Default-parameter counted searches are **bit-identical** to the
//!    pre-redesign `search_slice` path, on every backend.
//! 2. Sweeping HNSW `ef_search` / LSH `probes` at query time is
//!    bit-identical to building the index with those values — the property
//!    that lets the `er-tune` autotuner sweep without rebuilding.
//! 3. The eval counters report exactly what each backend's contract says
//!    (exact: live rows; LSH: gathered candidates).

use er_core::rng::rng;
use er_core::{Embedding, QueryParams};
use er_index::{
    ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, IndexReader, LshConfig, Metric, MutableIndex,
    NnIndex, Quantization, ScanConfig,
};
use rand::Rng;

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
        .collect()
}

fn assert_bit_identical(a: &[er_index::Neighbor], b: &[er_index::Neighbor], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: hit counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.index, y.index, "{label}");
        assert_eq!(x.distance.to_bits(), y.distance.to_bits(), "{label}");
    }
}

#[test]
fn default_params_match_search_slice_on_every_backend() {
    let vectors = random_vectors(120, 16, 11);
    let queries = random_vectors(20, 16, 12);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        let exact = ExactIndex::with_metric(&vectors, metric);
        let hnsw = HnswIndex::build(
            &vectors,
            HnswConfig {
                metric,
                ..HnswConfig::default()
            },
        );
        let lsh = HyperplaneLsh::build(
            &vectors,
            LshConfig {
                metric,
                ..LshConfig::default()
            },
        );
        for q in &queries {
            for k in [1usize, 5, 17] {
                let d = QueryParams::default();
                assert_bit_identical(
                    &exact.search_slice(q.as_slice(), k),
                    &exact.search_counted(q.as_slice(), k, &d).0,
                    "exact",
                );
                assert_bit_identical(
                    &hnsw.search_slice(q.as_slice(), k),
                    &hnsw.search_counted(q.as_slice(), k, &d).0,
                    "hnsw",
                );
                assert_bit_identical(
                    &lsh.search_slice(q.as_slice(), k),
                    &lsh.search_counted(q.as_slice(), k, &d).0,
                    "lsh",
                );
            }
        }
    }
}

#[test]
fn runtime_ef_search_matches_the_construction_time_setter() {
    let vectors = random_vectors(150, 12, 21);
    let queries = random_vectors(25, 12, 22);
    let base = HnswIndex::build(
        &vectors,
        HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        },
    );
    for ef in [4usize, 16, 48, 200] {
        let rebuilt = base.clone().with_ef_search(ef);
        let params = QueryParams::with_ef_search(ef);
        for q in &queries {
            assert_bit_identical(
                &rebuilt.search_slice(q.as_slice(), 5),
                &base.search_params(q.as_slice(), 5, &params),
                &format!("ef={ef}"),
            );
        }
    }
}

#[test]
fn runtime_probes_and_tables_match_a_matching_build() {
    let vectors = random_vectors(200, 10, 31);
    let queries = random_vectors(25, 10, 32);
    // One wide build; narrower settings are runtime overrides against it.
    let wide = HyperplaneLsh::build(
        &vectors,
        LshConfig {
            tables: 16,
            probes: 4,
            ..LshConfig::default()
        },
    );
    for (tables, probes) in [(4usize, 0usize), (8, 2), (16, 4), (3, 1)] {
        let narrow = HyperplaneLsh::build(
            &vectors,
            LshConfig {
                tables,
                probes,
                ..LshConfig::default()
            },
        );
        let params = QueryParams {
            probes: Some(probes),
            tables: Some(tables),
            ef_search: None,
        };
        for q in &queries {
            assert_eq!(
                narrow.candidates_slice(q.as_slice()),
                wide.candidates_slice_with(q.as_slice(), probes, tables),
                "tables={tables} probes={probes}: candidate sets differ"
            );
            assert_bit_identical(
                &narrow.search_slice(q.as_slice(), 5),
                &wide.search_params(q.as_slice(), 5, &params),
                &format!("tables={tables} probes={probes}"),
            );
        }
    }
}

#[test]
fn exact_counter_is_live_rows_and_respects_tombstones() {
    let vectors = random_vectors(80, 8, 41);
    let q = &vectors[0];
    let mut index = ExactIndex::with_metric(&vectors, Metric::Cosine);
    let (_, evals) = index.search_counted(q.as_slice(), 10, &QueryParams::default());
    assert_eq!(evals, 80);
    for dead in [3usize, 10, 77] {
        assert!(index.delete_row(dead));
    }
    let (_, evals) = index.search_counted(q.as_slice(), 10, &QueryParams::default());
    assert_eq!(evals, index.live_count() as u64);
    assert_eq!(evals, 77);
}

#[test]
fn quantized_exact_counter_is_the_rerank_set() {
    let vectors = random_vectors(100, 8, 51);
    let scan = ScanConfig {
        quant: Quantization::Int8 { rerank: 24 },
        ..ScanConfig::default()
    };
    let index =
        ExactIndex::from_source_scan(&vectors[..], Metric::Cosine, scan).expect("int8 builds");
    let (_, evals) = index.search_counted(vectors[3].as_slice(), 10, &QueryParams::default());
    // Full-width evals are the re-ranked candidates, not the whole matrix.
    assert_eq!(evals, 24);
    // With k above the rerank budget, the rerank set widens to k.
    let (_, evals) = index.search_counted(vectors[3].as_slice(), 40, &QueryParams::default());
    assert_eq!(evals, 40);
}

#[test]
fn lsh_counter_is_the_gathered_candidate_count() {
    let vectors = random_vectors(150, 10, 61);
    let lsh = HyperplaneLsh::build(&vectors, LshConfig::default());
    for q in random_vectors(10, 10, 62) {
        let (_, evals) = lsh.search_counted(q.as_slice(), 5, &QueryParams::default());
        assert_eq!(evals, lsh.candidates_slice(q.as_slice()).len() as u64);
    }
}

#[test]
fn hnsw_counter_grows_with_the_beam_and_is_deterministic() {
    let vectors = random_vectors(300, 12, 71);
    let hnsw = HnswIndex::build(
        &vectors,
        HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        },
    );
    let q = random_vectors(1, 12, 72).pop().unwrap();
    let evals_at = |ef: usize| {
        hnsw.search_counted(q.as_slice(), 5, &QueryParams::with_ef_search(ef))
            .1
    };
    let narrow = evals_at(4);
    let wide = evals_at(128);
    assert!(narrow > 0);
    assert!(
        wide > narrow,
        "a wider beam must evaluate more distances ({narrow} vs {wide})"
    );
    // The count is a pure function of (index, query, params).
    assert_eq!(evals_at(32), evals_at(32));
    // And never exceeds one evaluation per stored row plus revisits across
    // layers — sanity-bound it by a small multiple of n.
    assert!(wide <= 4 * vectors.len() as u64, "wide beam evals {wide}");
}
