//! The index determinism contract, mirroring `zoo_determinism.rs`: the
//! same seed builds the bit-identical structure across independent builds,
//! different seeds diverge, and the parallel batch path returns exactly
//! the sequential results.

use er_core::rng::rng;
use er_core::Embedding;
use er_index::{HnswConfig, HnswIndex, HyperplaneLsh, LshConfig, NnIndex};
use rand::Rng;

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
        .collect()
}

#[test]
fn same_seed_builds_bit_identical_hnsw_graphs() {
    let vectors = random_vectors(300, 12, 21);
    let a = HnswIndex::build(&vectors, HnswConfig::default());
    let b = HnswIndex::build(&vectors, HnswConfig::default());
    assert_eq!(a.adjacency(), b.adjacency());
    assert_eq!(a.max_level(), b.max_level());
    for q in random_vectors(10, 12, 22) {
        assert_eq!(a.search(&q, 10), b.search(&q, 10));
    }
}

#[test]
fn different_seeds_build_different_hnsw_graphs() {
    let vectors = random_vectors(300, 12, 23);
    let a = HnswIndex::build(&vectors, HnswConfig::default());
    let b = HnswIndex::build(
        &vectors,
        HnswConfig {
            seed: 43,
            ..HnswConfig::default()
        },
    );
    assert_ne!(
        a.adjacency(),
        b.adjacency(),
        "level sampling must depend on the seed"
    );
}

#[test]
fn same_seed_builds_bit_identical_lsh_signatures() {
    let vectors = random_vectors(200, 12, 24);
    let a = HyperplaneLsh::build(&vectors, LshConfig::default());
    let b = HyperplaneLsh::build(&vectors, LshConfig::default());
    assert_eq!(a.signatures(), b.signatures());
    for q in random_vectors(10, 12, 25) {
        assert_eq!(a.candidates(&q), b.candidates(&q));
        assert_eq!(a.search(&q, 5), b.search(&q, 5));
    }

    let c = HyperplaneLsh::build(
        &vectors,
        LshConfig {
            seed: 7,
            ..LshConfig::default()
        },
    );
    assert_ne!(a.signatures(), c.signatures());
}

#[test]
fn search_batch_matches_sequential_search() {
    let vectors = random_vectors(400, 12, 26);
    let queries = random_vectors(67, 12, 27);
    let hnsw = HnswIndex::build(&vectors, HnswConfig::default());
    let lsh = HyperplaneLsh::build(&vectors, LshConfig::default());
    let exact = er_index::ExactIndex::build(&vectors);

    let sequential: Vec<_> = queries.iter().map(|q| hnsw.search(q, 10)).collect();
    assert_eq!(hnsw.search_batch(&queries, 10), sequential);

    let sequential: Vec<_> = queries.iter().map(|q| lsh.search(q, 10)).collect();
    assert_eq!(lsh.search_batch(&queries, 10), sequential);

    let sequential: Vec<_> = queries.iter().map(|q| exact.search(q, 10)).collect();
    assert_eq!(exact.search_batch(&queries, 10), sequential);

    // Degenerate batch shapes.
    assert!(exact.search_batch(&[], 10).is_empty());
    assert_eq!(exact.search_batch(&queries[..1], 10).len(), 1);
}
