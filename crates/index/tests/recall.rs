//! Property/recall harness: the approximate indices are measured against
//! [`ExactIndex`] ground truth on seeded random vector sets, pinning the
//! quality contract the blocking experiments (paper Fig. 7) rely on.

use er_core::rng::rng;
use er_core::Embedding;
use er_index::{ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, LshConfig, Metric, NnIndex};
use rand::Rng;

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
        .collect()
}

/// Mean recall@k of `index` against exact ground truth under `metric`.
fn recall_at_k(
    index: &dyn NnIndex,
    vectors: &[Embedding],
    queries: &[Embedding],
    metric: Metric,
    k: usize,
) -> f64 {
    let exact = ExactIndex::with_metric(vectors, metric);
    let mut hit = 0usize;
    let mut total = 0usize;
    for q in queries {
        let truth: Vec<usize> = exact.search(q, k).into_iter().map(|n| n.index).collect();
        let approx: Vec<usize> = index.search(q, k).into_iter().map(|n| n.index).collect();
        total += truth.len();
        hit += truth.iter().filter(|i| approx.contains(i)).count();
    }
    hit as f64 / total as f64
}

#[test]
fn hnsw_recall_at_10_beats_090_with_ef_64() {
    let vectors = random_vectors(600, 16, 11);
    let queries = random_vectors(50, 16, 12);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        let index = HnswIndex::build(
            &vectors,
            HnswConfig {
                ef_search: 64,
                metric,
                ..HnswConfig::default()
            },
        );
        let recall = recall_at_k(&index, &vectors, &queries, metric, 10);
        assert!(
            recall >= 0.9,
            "HNSW recall@10 under {metric:?} was {recall:.3} (< 0.9)"
        );
    }
}

#[test]
fn hnsw_recall_grows_with_ef_search() {
    // ef_search is a query-time knob: one graph, re-tuned per measurement.
    let vectors = random_vectors(600, 16, 13);
    let queries = random_vectors(40, 16, 14);
    let index = HnswIndex::build(&vectors, HnswConfig::default()).with_ef_search(10);
    let narrow = recall_at_k(&index, &vectors, &queries, Metric::Euclidean, 10);
    let index = index.with_ef_search(256);
    let wide = recall_at_k(&index, &vectors, &queries, Metric::Euclidean, 10);
    assert!(
        wide >= narrow,
        "widening the beam must not lose recall ({narrow:.3} -> {wide:.3})"
    );
    assert!(wide >= 0.95, "ef=256 recall was {wide:.3}");
}

#[test]
fn lsh_recall_improves_monotonically_with_table_count() {
    // Tables are seeded per table index (`derive(seed, "lsh-table-{t}")`),
    // so a build with T tables contains the tables of every smaller build:
    // the candidate union — and hence recall — is non-decreasing in T.
    let vectors = random_vectors(400, 16, 15);
    let queries = random_vectors(40, 16, 16);
    let mut last = -1.0f64;
    let mut recalls = Vec::new();
    for tables in [1usize, 2, 4, 8, 16] {
        let lsh = HyperplaneLsh::build(
            &vectors,
            LshConfig {
                planes: 10,
                tables,
                probes: 1,
                metric: Metric::Cosine,
                seed: 42,
                ..LshConfig::default()
            },
        );
        let recall = recall_at_k(&lsh, &vectors, &queries, Metric::Cosine, 10);
        assert!(
            recall >= last,
            "recall dropped when adding tables: {recalls:?} then {recall:.3}"
        );
        last = recall;
        recalls.push(recall);
    }
    assert!(
        *recalls.last().expect("non-empty") > recalls[0],
        "16 tables should beat 1: {recalls:?}"
    );
    assert!(last >= 0.5, "16-table recall too low: {recalls:?}");
}

#[test]
fn lsh_candidate_sets_are_nested_across_table_counts() {
    // The structural fact behind the monotonicity property above.
    let vectors = random_vectors(300, 12, 17);
    let small = HyperplaneLsh::build(
        &vectors,
        LshConfig {
            tables: 2,
            ..LshConfig::default()
        },
    );
    let large = HyperplaneLsh::build(
        &vectors,
        LshConfig {
            tables: 6,
            ..LshConfig::default()
        },
    );
    assert_eq!(small.signatures()[0], large.signatures()[0]);
    assert_eq!(small.signatures()[1], large.signatures()[1]);
    for q in random_vectors(10, 12, 18) {
        let narrow = small.candidates(&q);
        let wide = large.candidates(&q);
        assert!(narrow.iter().all(|id| wide.contains(id)));
    }
}
