//! The zero-copy contract of the columnar refactor: for every backend and
//! metric, an index that *borrows* an [`EmbeddingMatrix`] returns exactly
//! the hits of the legacy index built from the same `Vec<Embedding>` —
//! same ids, bit-identical distances — and the batched matrix query path
//! equals sequential per-slice search.

use er_core::rng::rng;
use er_core::{kernels, Embedding, EmbeddingMatrix};
use er_index::{
    ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, LshConfig, Metric, Neighbor, NnIndex,
};
use rand::Rng;

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
        .collect()
}

/// Distances must match to the bit, not within an epsilon — the matrix
/// path re-orders no arithmetic.
fn assert_hits_bit_identical(a: &[Vec<Neighbor>], b: &[Vec<Neighbor>]) {
    assert_eq!(a.len(), b.len());
    for (qa, qb) in a.iter().zip(b) {
        assert_eq!(qa.len(), qb.len());
        for (na, nb) in qa.iter().zip(qb) {
            assert_eq!(na.index, nb.index);
            assert_eq!(
                na.distance.to_bits(),
                nb.distance.to_bits(),
                "distance drifted: {} vs {}",
                na.distance,
                nb.distance
            );
        }
    }
}

fn search_all<I: NnIndex>(index: &I, queries: &[Embedding], k: usize) -> Vec<Vec<Neighbor>> {
    queries.iter().map(|q| index.search(q, k)).collect()
}

#[test]
fn exact_matrix_path_equals_legacy_path() {
    let vectors = random_vectors(300, 24, 11);
    let queries = random_vectors(40, 24, 12);
    let matrix = EmbeddingMatrix::from_embeddings(&vectors);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        let legacy = ExactIndex::with_metric(&vectors, metric);
        let zero_copy = ExactIndex::from_matrix(&matrix, metric);
        assert_hits_bit_identical(
            &search_all(&legacy, &queries, 10),
            &search_all(&zero_copy, &queries, 10),
        );
    }
}

#[test]
fn hnsw_matrix_path_equals_legacy_path() {
    let vectors = random_vectors(250, 16, 21);
    let queries = random_vectors(32, 16, 22);
    let matrix = EmbeddingMatrix::from_embeddings(&vectors);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        let config = HnswConfig {
            metric,
            ..HnswConfig::default()
        };
        let legacy = HnswIndex::build(&vectors, config.clone());
        let zero_copy = HnswIndex::from_matrix(&matrix, config);
        assert_eq!(legacy.adjacency(), zero_copy.adjacency(), "graphs drifted");
        assert_hits_bit_identical(
            &search_all(&legacy, &queries, 10),
            &search_all(&zero_copy, &queries, 10),
        );
    }
}

#[test]
fn lsh_matrix_path_equals_legacy_path() {
    let vectors = random_vectors(250, 16, 31);
    let queries = random_vectors(32, 16, 32);
    let matrix = EmbeddingMatrix::from_embeddings(&vectors);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        let config = LshConfig {
            metric,
            ..LshConfig::default()
        };
        let legacy = HyperplaneLsh::build(&vectors, config.clone());
        let zero_copy = HyperplaneLsh::from_matrix(&matrix, config);
        assert_eq!(legacy.signatures(), zero_copy.signatures());
        assert_hits_bit_identical(
            &search_all(&legacy, &queries, 10),
            &search_all(&zero_copy, &queries, 10),
        );
    }
}

#[test]
fn batched_matrix_queries_equal_sequential_slice_search() {
    let vectors = random_vectors(300, 16, 41);
    let queries = random_vectors(64, 16, 42);
    let query_matrix = EmbeddingMatrix::from_embeddings(&queries);
    let index = HnswIndex::build(
        &vectors,
        HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        },
    );
    let sequential: Vec<_> = (0..query_matrix.len())
        .map(|i| index.search_slice(query_matrix.row(i), 10))
        .collect();
    assert_eq!(index.search_batch_rows(&query_matrix, 10), sequential);
    // And the legacy Vec<Embedding> batch API agrees with the matrix batch.
    assert_hits_bit_identical(&index.search_batch(&queries, 10), &sequential);
}

/// The tuple-era oracle: a verbatim brute-force scan returning the bare
/// `(usize, f32)` hits searches used to emit before [`Neighbor`].
fn tuple_era_scan(
    vectors: &[Embedding],
    query: &Embedding,
    metric: Metric,
    k: usize,
) -> Vec<(usize, f32)> {
    let mut hits: Vec<(usize, f32)> = vectors
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let dist = match metric {
                Metric::Euclidean => kernels::squared_euclidean(query.as_slice(), v.as_slice()),
                Metric::Cosine => 1.0 - kernels::cosine(query.as_slice(), v.as_slice()),
            };
            (i, dist)
        })
        .collect();
    hits.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    hits.truncate(k);
    hits
}

/// The `Neighbor` redesign must not perturb a single bit: every hit's
/// `(index, distance)` equals the tuple the old API returned.
#[test]
fn neighbor_hits_are_bit_identical_to_the_tuple_era() {
    let vectors = random_vectors(200, 24, 51);
    let queries = random_vectors(25, 24, 52);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        let index = ExactIndex::with_metric(&vectors, metric);
        for q in &queries {
            let hits = index.search(q, 10);
            let oracle = tuple_era_scan(&vectors, q, metric, 10);
            assert_eq!(hits.len(), oracle.len());
            for (n, (idx, dist)) in hits.iter().zip(&oracle) {
                assert_eq!(n.index, *idx, "{metric:?}");
                assert_eq!(
                    n.distance.to_bits(),
                    dist.to_bits(),
                    "{metric:?}: distance drifted from the tuple era"
                );
            }
        }
    }
}
