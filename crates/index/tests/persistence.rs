//! Persistence-format coverage (ISSUE 6 satellite): property-based
//! round-trips — save → load → bit-identical top-k for all three backends
//! × both metrics — plus corrupted-header and truncated-file loads
//! returning typed [`ErError::Corrupt`] instead of panicking.

use er_core::{Embedding, ErError};
use er_index::{
    ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, IndexReader, LshConfig, Metric, MutableIndex,
    NnIndex,
};
use proptest::prelude::*;
use rand::Rng;

fn vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
    let mut r = er_core::rng::rng(seed);
    (0..n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-4.0..4.0)).collect()))
        .collect()
}

fn assert_same_hits(a: &impl NnIndex, b: &impl NnIndex, queries: &[Embedding], k: usize) {
    for q in queries {
        let (ha, hb) = (a.search(q, k), b.search(q, k));
        assert_eq!(ha.len(), hb.len());
        for (x, y) in ha.iter().zip(&hb) {
            assert_eq!(x.index, y.index);
            assert_eq!(
                x.distance.to_bits(),
                y.distance.to_bits(),
                "distance drifted"
            );
        }
    }
}

proptest! {
    fn exact_round_trip_bit_identical(
        n in 0..40usize,
        dim in 1..12usize,
        seed in 0..100_000u64,
        metric_pick in 0..2usize,
        del_stride in 0..5usize,
    ) {
        let metric = [Metric::Euclidean, Metric::Cosine][metric_pick];
        let vs = vectors(n, dim, seed);
        let mut index = ExactIndex::with_metric(&vs, metric);
        if del_stride > 0 {
            for i in (0..n).step_by(del_stride) {
                index.delete_row(i);
            }
        }
        let back = ExactIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(back.metric(), metric);
        assert_eq!(back.live_count(), index.live_count());
        assert_same_hits(&index, &back, &vs, 6);
    }

    fn hnsw_round_trip_bit_identical(
        n in 0..30usize,
        dim in 1..10usize,
        seed in 0..100_000u64,
        metric_pick in 0..2usize,
    ) {
        let metric = [Metric::Euclidean, Metric::Cosine][metric_pick];
        let config = HnswConfig { metric, ..HnswConfig::default() };
        let vs = vectors(n, dim, seed);
        let mut index = HnswIndex::build(&vs, config);
        if n > 2 {
            index.delete_row(n / 2);
        }
        let back = HnswIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(index.adjacency(), back.adjacency());
        assert_same_hits(&index, &back, &vs, 5);
    }

    fn lsh_round_trip_bit_identical(
        n in 0..30usize,
        dim in 1..10usize,
        seed in 0..100_000u64,
        metric_pick in 0..2usize,
    ) {
        let metric = [Metric::Euclidean, Metric::Cosine][metric_pick];
        let config = LshConfig { metric, ..LshConfig::default() };
        let vs = vectors(n, dim, seed);
        let mut index = HyperplaneLsh::build(&vs, config);
        if n > 2 {
            index.delete_row(0);
        }
        let back = HyperplaneLsh::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(index.signatures(), back.signatures());
        assert_same_hits(&index, &back, &vs, 5);
    }

    /// Every truncation of a valid file fails with a typed Corrupt error —
    /// the loader never panics and never fabricates a partial index.
    fn truncated_files_fail_typed(cut_frac in 0.0f64..1.0) {
        let vs = vectors(12, 4, 99);
        let files = [
            ExactIndex::build(&vs).to_bytes(),
            HnswIndex::build(&vs, HnswConfig::default()).to_bytes(),
            HyperplaneLsh::build(&vs, LshConfig::default()).to_bytes(),
        ];
        for bytes in &files {
            let cut = ((bytes.len() as f64) * cut_frac) as usize;
            if cut >= bytes.len() {
                continue;
            }
            let short = &bytes[..cut];
            assert!(matches!(ExactIndex::from_bytes(short), Err(ErError::Corrupt(_))));
            assert!(matches!(HnswIndex::from_bytes(short), Err(ErError::Corrupt(_))));
            assert!(matches!(HyperplaneLsh::from_bytes(short), Err(ErError::Corrupt(_))));
        }
    }

    /// A single flipped bit anywhere — header or payload — is caught.
    fn flipped_bit_fails_typed(pos_frac in 0.0f64..1.0, bit in 0..8u32) {
        let vs = vectors(10, 4, 7);
        let mut bytes = HnswIndex::build(&vs, HnswConfig::default()).to_bytes();
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        assert!(matches!(HnswIndex::from_bytes(&bytes), Err(ErError::Corrupt(_))));
    }
}

#[test]
fn save_and_load_round_trip_through_the_filesystem() {
    let dir = std::env::temp_dir().join("er_index_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let vs = vectors(20, 6, 31);
    let queries = vectors(5, 6, 32);

    let exact = ExactIndex::with_metric(&vs, Metric::Cosine);
    let path = dir.join("exact.erbf");
    exact.save(&path).unwrap();
    assert_same_hits(&exact, &ExactIndex::load(&path).unwrap(), &queries, 5);

    let hnsw = HnswIndex::build(&vs, HnswConfig::default());
    let path = dir.join("hnsw.erbf");
    hnsw.save(&path).unwrap();
    assert_same_hits(&hnsw, &HnswIndex::load(&path).unwrap(), &queries, 5);

    let lsh = HyperplaneLsh::build(&vs, LshConfig::default());
    let path = dir.join("lsh.erbf");
    lsh.save(&path).unwrap();
    assert_same_hits(&lsh, &HyperplaneLsh::load(&path).unwrap(), &queries, 5);

    // Loading a missing file is an Io error, not a panic or Corrupt.
    assert!(matches!(
        ExactIndex::load(dir.join("absent.erbf")),
        Err(ErError::Io(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_headers_fail_typed() {
    let vs = vectors(8, 4, 33);
    let good = ExactIndex::build(&vs).to_bytes();
    // Bad magic.
    let mut bad = good.clone();
    bad[0..4].copy_from_slice(b"NOPE");
    assert!(matches!(
        ExactIndex::from_bytes(&bad),
        Err(ErError::Corrupt(_))
    ));
    // Future version.
    let mut bad = good.clone();
    bad[4] = 0xFF;
    assert!(matches!(
        ExactIndex::from_bytes(&bad),
        Err(ErError::Corrupt(_))
    ));
    // Lying payload length.
    let mut bad = good.clone();
    bad[12] ^= 0x01;
    assert!(matches!(
        ExactIndex::from_bytes(&bad),
        Err(ErError::Corrupt(_))
    ));
    // Wrong kind: an exact file refused by the other two loaders.
    assert!(matches!(
        HnswIndex::from_bytes(&good),
        Err(ErError::Corrupt(_))
    ));
    assert!(matches!(
        HyperplaneLsh::from_bytes(&good),
        Err(ErError::Corrupt(_))
    ));
    // Empty and header-only files.
    assert!(matches!(
        ExactIndex::from_bytes(&[]),
        Err(ErError::Corrupt(_))
    ));
    assert!(matches!(
        ExactIndex::from_bytes(&good[..28]),
        Err(ErError::Corrupt(_))
    ));
}

/// Serialization itself is byte-deterministic: the same index serializes
/// to the same bytes across independent builds.
#[test]
fn serialization_is_byte_deterministic() {
    let vs = vectors(15, 5, 34);
    assert_eq!(
        HnswIndex::build(&vs, HnswConfig::default()).to_bytes(),
        HnswIndex::build(&vs, HnswConfig::default()).to_bytes()
    );
    assert_eq!(
        HyperplaneLsh::build(&vs, LshConfig::default()).to_bytes(),
        HyperplaneLsh::build(&vs, LshConfig::default()).to_bytes()
    );
    assert_eq!(
        ExactIndex::build(&vs).to_bytes(),
        ExactIndex::build(&vs).to_bytes()
    );
}

// ---------------------------------------------------------------------------
// Quantized scans and kernel tiers through the ERBF container (PR 7): the
// scan config, the int8 codes and the PQ codebook all persist as their own
// checksummed sections; corruption anywhere surfaces as a typed error.
// ---------------------------------------------------------------------------

use er_core::pq::PqConfig;
use er_core::KernelTier;
use er_index::{Quantization, ScanConfig};

fn pq8() -> PqConfig {
    PqConfig {
        subspaces: 4,
        centroids: 16,
        iters: 3,
        seed: 5,
    }
}

/// Every scan configuration worth persisting, over an 8-d corpus.
fn scan_configs() -> Vec<ScanConfig> {
    let mut out = Vec::new();
    for tier in [KernelTier::Reference, KernelTier::Lanes] {
        for quant in [
            Quantization::None,
            Quantization::Int8 { rerank: 12 },
            Quantization::Pq {
                config: pq8(),
                rerank: 12,
            },
        ] {
            out.push(ScanConfig { tier, quant });
        }
    }
    out
}

#[test]
fn quantized_and_tiered_indices_round_trip_bit_identically() {
    let vs = vectors(30, 8, 41);
    let queries = vectors(6, 8, 42);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        for scan in scan_configs() {
            let mut index = ExactIndex::from_source_scan(vs.as_slice(), metric, scan).unwrap();
            index.delete_row(3);
            index.delete_row(17);
            let back = ExactIndex::from_bytes(&index.to_bytes()).unwrap();
            assert_eq!(back.scan_config(), scan, "scan config lost in transit");
            assert_eq!(back.live_count(), index.live_count());
            assert_same_hits(&index, &back, &queries, 5);
            // Byte determinism extends to the new sections.
            assert_eq!(index.to_bytes(), back.to_bytes());
        }
    }
}

#[test]
fn k_larger_than_rows_is_fine_in_every_scan_config() {
    let vs = vectors(7, 8, 43);
    for scan in scan_configs() {
        let index = ExactIndex::from_source_scan(vs.as_slice(), Metric::Cosine, scan).unwrap();
        let hits = index.search(&vs[0], 50);
        assert_eq!(hits.len(), 7, "{scan:?}");
        assert!(index.search(&vs[0], 0).is_empty());
    }
}

proptest! {
    /// A flipped bit anywhere in a quantized file — including inside the
    /// QUANT / CODEBOOK / PQ_CODES sections — fails typed, never panics.
    fn flipped_bit_in_quantized_sections_fails_typed(
        pos_frac in 0.0f64..1.0,
        bit in 0..8u32,
        pick in 0..2usize,
    ) {
        let vs = vectors(12, 8, 44);
        let scan = [
            ScanConfig { tier: KernelTier::Lanes, quant: Quantization::Int8 { rerank: 6 } },
            ScanConfig { tier: KernelTier::Reference, quant: Quantization::Pq { config: pq8(), rerank: 6 } },
        ][pick];
        let mut bytes = ExactIndex::from_source_scan(vs.as_slice(), Metric::Cosine, scan)
            .unwrap()
            .to_bytes();
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        bytes[pos] ^= 1 << bit;
        assert!(matches!(
            ExactIndex::from_bytes(&bytes),
            Err(ErError::Corrupt(_))
        ));
    }

    /// Truncating a quantized file anywhere fails typed.
    fn truncated_quantized_file_fails_typed(cut_frac in 0.0f64..1.0) {
        let vs = vectors(12, 8, 45);
        let scan = ScanConfig {
            tier: KernelTier::Lanes,
            quant: Quantization::Pq { config: pq8(), rerank: 6 },
        };
        let bytes = ExactIndex::from_source_scan(vs.as_slice(), Metric::Cosine, scan)
            .unwrap()
            .to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            assert!(matches!(
                ExactIndex::from_bytes(&bytes[..cut]),
                Err(ErError::Corrupt(_))
            ));
        }
    }
}

#[test]
fn quantized_round_trip_after_streaming_inserts() {
    // Inserts keep the quantized companion storage in sync; the persisted
    // file must reflect the post-insert state exactly.
    let vs = vectors(10, 8, 46);
    let extra = vectors(5, 8, 47);
    let scan = ScanConfig {
        tier: KernelTier::Lanes,
        quant: Quantization::Int8 { rerank: 8 },
    };
    let mut index = ExactIndex::from_source_scan(vs.as_slice(), Metric::Cosine, scan).unwrap();
    for e in &extra {
        index.insert_row(e.as_slice()).unwrap();
    }
    index.delete_row(2);
    let back = ExactIndex::from_bytes(&index.to_bytes()).unwrap();
    assert_eq!(back.len(), 15);
    assert_eq!(back.live_count(), 14);
    let queries = vectors(4, 8, 48);
    assert_same_hits(&index, &back, &queries, 6);
    assert_eq!(index.to_bytes(), back.to_bytes());
}
