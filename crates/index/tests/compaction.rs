//! Compaction coverage (ISSUE 8 satellite): [`MutableIndex::compact`]
//! drops tombstoned rows while leaving live top-k answers bit-identical,
//! for all three backends × both metrics, including quantized Exact
//! configurations; the new→old row mapping preserves live-row order; and
//! degenerate compactions (empty index, everything tombstoned, nothing
//! tombstoned) are panic-free no-ops.
//!
//! HNSW is the one backend where "unchanged answers" needs care: its
//! compaction is a *fresh batch build* over the live rows, so the graph —
//! and therefore approximate answers — is the one a from-scratch build
//! would produce. That stronger determinism claim is pinned directly
//! (adjacency equality against an actual fresh build); top-k equality is
//! pinned at sizes where the search is effectively exhaustive.

use er_core::pq::PqConfig;
use er_core::{Embedding, EntityId, KernelTier};
use er_index::{
    ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, IndexReader, LshConfig, Metric, MutableIndex,
    NnIndex, Quantization, ScanConfig,
};
use rand::Rng;

fn vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
    let mut r = er_core::rng::rng(seed);
    (0..n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-4.0..4.0)).collect()))
        .collect()
}

fn assert_same_hits(a: &impl NnIndex, b: &impl NnIndex, queries: &[Embedding], k: usize) {
    for q in queries {
        let ha = a.search(q, k);
        let hb = b.search(q, k);
        assert_eq!(ha.len(), hb.len(), "hit count drifted");
        for (x, y) in ha.iter().zip(&hb) {
            assert_eq!(
                x.distance.to_bits(),
                y.distance.to_bits(),
                "distance drifted"
            );
        }
    }
}

/// Distances of the live top-k, compared bit-for-bit across a compaction
/// (row positions shift, so only distances are comparable directly).
fn distances(index: &impl NnIndex, queries: &[Embedding], k: usize) -> Vec<Vec<u32>> {
    queries
        .iter()
        .map(|q| {
            index
                .search(q, k)
                .iter()
                .map(|h| h.distance.to_bits())
                .collect()
        })
        .collect()
}

fn delete_every_third(index: &mut impl MutableIndex, n: usize) -> Vec<usize> {
    let mut deleted = Vec::new();
    for i in (0..n).step_by(3) {
        assert!(index.delete_row(i));
        deleted.push(i);
    }
    deleted
}

#[test]
fn exact_compaction_is_bit_identical_for_both_metrics() {
    let vs = vectors(40, 9, 70);
    let queries = vectors(8, 9, 71);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        let mut index = ExactIndex::with_metric(&vs, metric);
        let deleted = delete_every_third(&mut index, vs.len());
        let before = distances(&index, &queries, 7);

        let mapping = index.compact().unwrap();

        assert_eq!(index.len(), vs.len() - deleted.len(), "tombstones remain");
        assert_eq!(index.live_count(), index.len());
        // The mapping lists exactly the surviving old rows, in order.
        let expected: Vec<u32> = (0..vs.len() as u32)
            .filter(|r| !deleted.contains(&(*r as usize)))
            .collect();
        assert_eq!(mapping, expected);
        assert_eq!(before, distances(&index, &queries, 7), "{metric:?}");
    }
}

fn pq8() -> PqConfig {
    PqConfig {
        subspaces: 4,
        centroids: 16,
        iters: 3,
        seed: 5,
    }
}

#[test]
fn quantized_exact_compaction_is_bit_identical() {
    // Compaction must filter the quantized companion storage (int8 codes,
    // PQ code rows) verbatim — codes are never recomputed, so re-ranked
    // answers cannot drift.
    let vs = vectors(36, 8, 72);
    let queries = vectors(6, 8, 73);
    let configs = [
        ScanConfig {
            tier: KernelTier::Lanes,
            quant: Quantization::Int8 { rerank: 8 },
        },
        ScanConfig {
            tier: KernelTier::Reference,
            quant: Quantization::Pq {
                config: pq8(),
                rerank: 8,
            },
        },
    ];
    for metric in [Metric::Euclidean, Metric::Cosine] {
        for scan in configs {
            let mut index = ExactIndex::from_source_scan(vs.as_slice(), metric, scan).unwrap();
            delete_every_third(&mut index, vs.len());
            let before = distances(&index, &queries, 6);
            index.compact().unwrap();
            assert_eq!(index.scan_config(), scan, "scan config lost");
            assert_eq!(
                before,
                distances(&index, &queries, 6),
                "{metric:?} {scan:?}"
            );
            // The compacted index persists and reloads like any other.
            let back = ExactIndex::from_bytes(&index.to_bytes()).unwrap();
            assert_same_hits(&index, &back, &queries, 6);
        }
    }
}

#[test]
fn hnsw_compaction_equals_fresh_batch_build() {
    let vs = vectors(30, 8, 74);
    let queries = vectors(6, 8, 75);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        let config = HnswConfig {
            metric,
            ..HnswConfig::default()
        };
        let mut index = HnswIndex::build(&vs, config.clone());
        let deleted = delete_every_third(&mut index, vs.len());
        let before = distances(&index, &queries, 5);

        index.compact().unwrap();

        // The pinned contract: compaction rebuilds the graph exactly as a
        // fresh batch build over the surviving rows (in order) would.
        let live: Vec<Embedding> = vs
            .iter()
            .enumerate()
            .filter(|(i, _)| !deleted.contains(i))
            .map(|(_, v)| v.clone())
            .collect();
        let fresh = HnswIndex::build(&live, config);
        assert_eq!(index.adjacency(), fresh.adjacency(), "{metric:?}");
        assert_eq!(index.len(), live.len());
        // At this size the search is effectively exhaustive, so masked
        // pre-compaction answers and rebuilt-graph answers coincide.
        assert_eq!(before, distances(&index, &queries, 5), "{metric:?}");
        assert_same_hits(&index, &fresh, &queries, 5);
    }
}

#[test]
fn lsh_compaction_is_bit_identical_for_both_metrics() {
    let vs = vectors(32, 8, 76);
    let queries = vectors(6, 8, 77);
    for metric in [Metric::Euclidean, Metric::Cosine] {
        let config = LshConfig {
            metric,
            ..LshConfig::default()
        };
        let mut index = HyperplaneLsh::build(&vs, config);
        delete_every_third(&mut index, vs.len());
        let before = distances(&index, &queries, 5);
        index.compact().unwrap();
        // Hyperplanes are kept and signatures filtered verbatim — the
        // candidate sets (hence answers) are exactly the pre-compaction
        // live ones.
        assert_eq!(before, distances(&index, &queries, 5), "{metric:?}");
    }
}

#[test]
fn compacting_with_no_tombstones_is_an_identity_no_op() {
    let vs = vectors(12, 6, 78);
    let mut exact = ExactIndex::build(&vs);
    let mut hnsw = HnswIndex::build(&vs, HnswConfig::default());
    let mut lsh = HyperplaneLsh::build(&vs, LshConfig::default());
    let bytes_before = (exact.to_bytes(), hnsw.to_bytes(), lsh.to_bytes());
    let identity: Vec<u32> = (0..vs.len() as u32).collect();
    assert_eq!(exact.compact().unwrap(), identity);
    assert_eq!(hnsw.compact().unwrap(), identity);
    assert_eq!(lsh.compact().unwrap(), identity);
    // Identity compaction never rebuilds: the bytes (HNSW graph included)
    // are untouched.
    assert_eq!(bytes_before.0, exact.to_bytes());
    assert_eq!(bytes_before.1, hnsw.to_bytes());
    assert_eq!(bytes_before.2, lsh.to_bytes());
}

#[test]
fn empty_and_all_tombstoned_compactions_are_panic_free() {
    let vs = vectors(9, 5, 79);
    // Empty index.
    let mut exact = ExactIndex::build(&[]);
    let mut hnsw = HnswIndex::build(&[], HnswConfig::default());
    let mut lsh = HyperplaneLsh::build(&[], LshConfig::default());
    assert!(exact.compact().unwrap().is_empty());
    assert!(hnsw.compact().unwrap().is_empty());
    assert!(lsh.compact().unwrap().is_empty());

    // Everything tombstoned: compaction leaves a valid, searchable,
    // zero-row index.
    let mut exact = ExactIndex::build(&vs);
    let mut hnsw = HnswIndex::build(&vs, HnswConfig::default());
    let mut lsh = HyperplaneLsh::build(&vs, LshConfig::default());
    for i in 0..vs.len() {
        exact.delete_row(i);
        hnsw.delete_row(i);
        lsh.delete_row(i);
    }
    assert!(exact.compact().unwrap().is_empty());
    assert!(hnsw.compact().unwrap().is_empty());
    assert!(lsh.compact().unwrap().is_empty());
    for q in &vs {
        assert!(exact.search(q, 3).is_empty());
        assert!(hnsw.search(q, 3).is_empty());
        assert!(lsh.search(q, 3).is_empty());
    }
    assert_eq!(exact.len(), 0);
    assert_eq!(hnsw.len(), 0);
    assert_eq!(lsh.len(), 0);
}

#[test]
fn compaction_supports_continued_mutation() {
    // Insert → delete → compact → insert again: row bookkeeping stays
    // coherent across the rebuild (the er-serve write path relies on
    // append positions matching `len()` after a compaction).
    let vs = vectors(20, 6, 80);
    let extra = vectors(4, 6, 81);
    let mut index = ExactIndex::with_metric(&vs, Metric::Cosine);
    delete_every_third(&mut index, vs.len());
    index.compact().unwrap();
    let base = index.len();
    for (i, e) in extra.iter().enumerate() {
        assert_eq!(index.insert_row(e.as_slice()).unwrap(), base + i);
    }
    assert_eq!(index.live_count(), base + extra.len());
    let _ = EntityId(0); // er-core linkage sanity (ids live a layer up)
    let hits = index.search(&extra[0], 3);
    assert_eq!(hits.len(), 3);
}
