//! Kernel-tier throughput benchmark, emitting the machine-readable
//! `BENCH_kernels.json` snapshot committed per PR (DESIGN.md §7): GB/s
//! and ns/row for every scan tier × metric × dimension.
//!
//! One cell = a full top-k-style scan: a handful of queries, each ranked
//! against every row of a seeded random matrix with precomputed row
//! norms, exactly the access pattern of `ExactIndex`. The f32 tiers
//! (`reference`, `lanes`) read `dim × 4` bytes per row; `int8` reads
//! `dim` bytes; `pq` reads `subspaces` bytes — the bandwidth column is
//! why the quantized tiers win on large scans.
//!
//! Modes:
//!
//! * default — 5 repetitions per cell, best time kept;
//! * `--quick` — single repetition (the CI smoke-pass mode);
//! * `--check <path>` — no timing: parse an existing snapshot and fail
//!   unless it has every tier × metric cell with positive numbers (the
//!   CI freshness gate for the committed `BENCH_kernels.json`).
//!
//! Run from the workspace root:
//! `cargo run --release -p er-bench --bin bench_kernels [out.json]`.

use er_core::json::Json;
use er_core::pq::{PqCodebook, PqConfig};
use er_core::rng::rng;
use er_core::{EmbeddingMatrix, KernelTier};
use rand::Rng;
use std::hint::black_box;
use std::time::Instant;

const SEED: u64 = 0x9e37_79b9;
const ROWS: usize = 12_000;
const DIMS: [usize; 3] = [48, 64, 96];
const QUERIES: usize = 4;
const PQ_SUBSPACES: usize = 8;

const TIERS: [&str; 4] = ["reference", "lanes", "int8", "pq"];
const METRICS: [&str; 3] = ["dot", "cosine", "sqeuclidean"];

fn random_matrix(rows: usize, dim: usize, seed: u64) -> EmbeddingMatrix {
    let mut r = rng(seed);
    let mut m = EmbeddingMatrix::new(dim);
    let mut row = vec![0.0f32; dim];
    for _ in 0..rows {
        for v in row.iter_mut() {
            *v = r.gen_range(-1.0f32..1.0);
        }
        m.push(&row);
    }
    m
}

/// Time `scan` (one full pass over the matrix per call) `reps` times and
/// keep the fastest, returning seconds per pass.
fn best_of<F: FnMut() -> f32>(reps: usize, mut scan: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let acc = scan();
        let elapsed = start.elapsed().as_secs_f64();
        black_box(acc);
        best = best.min(elapsed);
    }
    best
}

struct Cell {
    tier: &'static str,
    metric: &'static str,
    dim: usize,
    ns_per_row: f64,
    gb_per_s: f64,
}

fn cell(
    tier: &'static str,
    metric: &'static str,
    dim: usize,
    bytes_per_row: usize,
    seconds: f64,
) -> Cell {
    let scanned = (ROWS * QUERIES) as f64;
    Cell {
        tier,
        metric,
        dim,
        ns_per_row: seconds * 1e9 / scanned,
        gb_per_s: scanned * bytes_per_row as f64 / seconds / 1e9,
    }
}

/// All tier × metric cells for one dimension.
fn bench_dim(dim: usize, reps: usize) -> Vec<Cell> {
    let matrix = random_matrix(ROWS, dim, SEED ^ dim as u64);
    let queries = random_matrix(QUERIES, dim, SEED ^ 0xbeef);
    let mut cells = Vec::new();

    for tier in [KernelTier::Reference, KernelTier::Lanes] {
        let name = tier.name();
        let f32_bytes = dim * 4;
        let s = best_of(reps, || {
            let mut acc = 0.0f32;
            for q in queries.rows_iter() {
                for row in matrix.rows_iter() {
                    acc += tier.dot(q, row);
                }
            }
            acc
        });
        cells.push(cell(name, "dot", dim, f32_bytes, s));
        let s = best_of(reps, || {
            let mut acc = 0.0f32;
            for qi in 0..queries.len() {
                let q = queries.row(qi);
                let qn = tier.norm(q);
                for (i, row) in matrix.rows_iter().enumerate() {
                    acc += tier.cosine_prenorm(q, qn, row, matrix.norm(i));
                }
            }
            acc
        });
        cells.push(cell(name, "cosine", dim, f32_bytes, s));
        let s = best_of(reps, || {
            let mut acc = 0.0f32;
            for q in queries.rows_iter() {
                for row in matrix.rows_iter() {
                    acc += tier.squared_euclidean(q, row);
                }
            }
            acc
        });
        cells.push(cell(name, "sqeuclidean", dim, f32_bytes, s));
    }

    // int8: the scan reads dim bytes of codes per row (plus O(1) per-row
    // scalars), and every distance runs on the integer-accumulator dot.
    let qm = matrix.quantize();
    let s = best_of(reps, || {
        let mut acc = 0.0f32;
        for q in queries.rows_iter() {
            let qq = qm.quantize_query(q);
            for i in 0..qm.len() {
                acc += qm.dot(&qq, i);
            }
        }
        acc
    });
    cells.push(cell("int8", "dot", dim, dim, s));
    let s = best_of(reps, || {
        let mut acc = 0.0f32;
        for q in queries.rows_iter() {
            let qq = qm.quantize_query(q);
            for i in 0..qm.len() {
                acc += qm.cosine(&qq, i);
            }
        }
        acc
    });
    cells.push(cell("int8", "cosine", dim, dim, s));
    let s = best_of(reps, || {
        let mut acc = 0.0f32;
        for q in queries.rows_iter() {
            let qq = qm.quantize_query(q);
            for i in 0..qm.len() {
                acc += qm.squared_euclidean(&qq, i);
            }
        }
        acc
    });
    cells.push(cell("int8", "sqeuclidean", dim, dim, s));

    // PQ: the scan reads `subspaces` code bytes per row; the per-query ADC
    // table build is inside the timed region (it amortizes over the scan,
    // as it does in `ExactIndex::search_approx`).
    let config = PqConfig {
        subspaces: PQ_SUBSPACES,
        centroids: 256,
        iters: 4,
        seed: SEED,
    };
    let book = PqCodebook::train(&matrix, &config).expect("PQ training on the bench matrix");
    let codes = book.encode(&matrix);
    let k = book.centroids();
    let s = best_of(reps, || {
        let mut acc = 0.0f32;
        for q in queries.rows_iter() {
            let table = book.dot_tables(q);
            for i in 0..codes.len() {
                acc += codes.adc_sum(&table, k, i);
            }
        }
        acc
    });
    cells.push(cell("pq", "dot", dim, PQ_SUBSPACES, s));
    let s = best_of(reps, || {
        let mut acc = 0.0f32;
        for q in queries.rows_iter() {
            let table = book.dot_tables(q);
            let qn = er_core::kernels::norm(q);
            for i in 0..codes.len() {
                acc += codes.cosine(&table, k, i, qn);
            }
        }
        acc
    });
    cells.push(cell("pq", "cosine", dim, PQ_SUBSPACES, s));
    let s = best_of(reps, || {
        let mut acc = 0.0f32;
        for q in queries.rows_iter() {
            let table = book.l2_tables(q);
            for i in 0..codes.len() {
                acc += codes.adc_sum(&table, k, i);
            }
        }
        acc
    });
    cells.push(cell("pq", "sqeuclidean", dim, PQ_SUBSPACES, s));

    cells
}

fn cell_json(c: &Cell) -> Json {
    Json::Obj(vec![
        ("tier".into(), Json::from_str_value(c.tier)),
        ("metric".into(), Json::from_str_value(c.metric)),
        ("dim".into(), Json::from_usize(c.dim)),
        ("ns_per_row".into(), Json::from_f32(c.ns_per_row as f32)),
        ("gb_per_s".into(), Json::from_f32(c.gb_per_s as f32)),
    ])
}

/// `ns_per_row` of one cell, for the headline ratios.
fn ns_of(cells: &[Cell], tier: &str, metric: &str, dim: usize) -> f64 {
    cells
        .iter()
        .find(|c| c.tier == tier && c.metric == metric && c.dim == dim)
        .expect("ratio cell exists")
        .ns_per_row
}

/// `--check` mode: parse a committed snapshot and verify it is complete —
/// every tier × metric pair present with positive numbers.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let bench = doc
        .expect("bench")
        .and_then(|j| j.as_str().map(str::to_owned))
        .map_err(|e| format!("{path}: {e}"))?;
    if bench != "kernels" {
        return Err(format!("{path}: bench is {bench:?}, expected \"kernels\""));
    }
    let cells = doc
        .expect("cells")
        .and_then(Json::as_arr)
        .map_err(|e| format!("{path}: {e}"))?;
    let mut seen = Vec::new();
    for c in cells {
        let tier = c
            .expect("tier")
            .and_then(|j| j.as_str().map(str::to_owned))
            .map_err(|e| format!("{path}: cell tier: {e}"))?;
        let metric = c
            .expect("metric")
            .and_then(|j| j.as_str().map(str::to_owned))
            .map_err(|e| format!("{path}: cell metric: {e}"))?;
        let ns = c
            .expect("ns_per_row")
            .and_then(Json::as_f32)
            .map_err(|e| format!("{path}: cell ns_per_row: {e}"))?;
        let gb = c
            .expect("gb_per_s")
            .and_then(Json::as_f32)
            .map_err(|e| format!("{path}: cell gb_per_s: {e}"))?;
        c.expect("dim")
            .and_then(Json::as_usize)
            .map_err(|e| format!("{path}: cell dim: {e}"))?;
        if ns.is_nan() || ns <= 0.0 || gb.is_nan() || gb <= 0.0 {
            return Err(format!(
                "{path}: {tier}/{metric} has non-positive timings (ns={ns}, gb/s={gb})"
            ));
        }
        seen.push((tier, metric));
    }
    for tier in TIERS {
        for metric in METRICS {
            if !seen.iter().any(|(t, m)| t == tier && m == metric) {
                return Err(format!("{path}: missing cell {tier}/{metric}"));
            }
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_kernels.json");
        match check(path) {
            Ok(()) => {
                println!("{path}: complete kernel snapshot (all tier x metric cells)");
                return;
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".into());
    let reps = if quick { 1 } else { 5 };

    let mut cells = Vec::new();
    for dim in DIMS {
        cells.extend(bench_dim(dim, reps));
    }

    // The headline contracts: unrolled lanes vs the scalar fold on the
    // 64-d cosine scan, and the int8 scan vs lanes on the same cell.
    let ratios = Json::Obj(vec![
        (
            "lanes_vs_reference_cosine64".into(),
            Json::from_f32(
                (ns_of(&cells, "reference", "cosine", 64) / ns_of(&cells, "lanes", "cosine", 64))
                    as f32,
            ),
        ),
        (
            "int8_vs_lanes_cosine64".into(),
            Json::from_f32(
                (ns_of(&cells, "lanes", "cosine", 64) / ns_of(&cells, "int8", "cosine", 64)) as f32,
            ),
        ),
    ]);

    let doc = Json::Obj(vec![
        ("bench".into(), Json::from_str_value("kernels")),
        ("seed".into(), Json::from_u64(SEED)),
        ("rows".into(), Json::from_usize(ROWS)),
        ("queries".into(), Json::from_usize(QUERIES)),
        ("pq_subspaces".into(), Json::from_usize(PQ_SUBSPACES)),
        ("ratios".into(), ratios),
        (
            "cells".into(),
            Json::Arr(cells.iter().map(cell_json).collect()),
        ),
    ]);
    let text = format!("{doc}\n");
    std::fs::write(&out_path, &text).expect("write benchmark snapshot");
    print!("{text}");
}
