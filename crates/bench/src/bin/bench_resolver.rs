//! Sustained-throughput benchmark of the `er-serve` Resolver, emitting the
//! machine-readable `BENCH_resolver.json` snapshot the ROADMAP's per-PR
//! perf trajectory starts from.
//!
//! Three phases over a tiny-zoo FT model and synthetic entities:
//!
//! 1. **insert** — stream `N` fresh records into an empty service;
//! 2. **query-under-churn** — top-10 queries interleaved 1:1 with
//!    upsert/delete mutations against the live service;
//! 3. **save/load** — full `to_bytes` → `from_bytes` round trips of the
//!    populated service.
//!
//! Each phase reports wall-clock and ops/sec. Run from the workspace root
//! (`cargo run --release -p er-bench --bin bench_resolver`); pass a path
//! argument to redirect the JSON (default `BENCH_resolver.json`).

use embeddings4er::prelude::*;
use er_bench::SEED;
use er_core::json::Json;
use std::time::Instant;

const RECORDS: usize = 1_500;
const CHURN_OPS: usize = 600;
const ROUND_TRIPS: usize = 20;

fn entity(id: u32) -> Entity {
    Entity::new(
        EntityId(id),
        vec![
            ("name".into(), format!("establishment number {id}")),
            ("street".into(), format!("{} main street", id % 97)),
            ("city".into(), format!("district {}", id % 13)),
        ],
    )
}

fn phase(name: &str, ops: usize, wall_s: f64) -> Json {
    Json::Obj(vec![
        ("phase".into(), Json::from_str_value(name)),
        ("ops".into(), Json::from_usize(ops)),
        ("wall_s".into(), Json::from_f32(wall_s as f32)),
        (
            "ops_per_sec".into(),
            Json::from_f32((ops as f64 / wall_s) as f32),
        ),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_resolver.json".into());
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), SEED);
    let model = zoo.get(ModelCode::FT);
    let mut resolver = Resolver::new(
        model.as_ref(),
        SerializationMode::SchemaAgnostic,
        ServeConfig::new().shards(4),
    )
    .expect("default serve config");

    // Phase 1: streaming inserts into an empty service.
    let start = Instant::now();
    for id in 0..RECORDS as u32 {
        resolver.insert(&entity(id)).unwrap();
    }
    let insert_wall = start.elapsed().as_secs_f64();
    assert_eq!(resolver.len(), RECORDS);

    // Phase 2: queries interleaved 1:1 with mutations. Each iteration is
    // one top-10 query plus one churn op (upsert an existing id, or
    // delete + re-insert), so the index never goes quiet while serving.
    let start = Instant::now();
    let mut live_hits = 0usize;
    for i in 0..CHURN_OPS as u32 {
        let probe = entity(i % RECORDS as u32);
        live_hits += resolver.query(&probe, 10).len();
        let victim = EntityId((i * 7) % RECORDS as u32);
        if i % 2 == 0 {
            resolver.upsert(&entity(victim.0)).unwrap();
        } else {
            resolver.delete(victim);
            resolver.insert(&entity(victim.0)).unwrap();
        }
    }
    let churn_wall = start.elapsed().as_secs_f64();
    assert!(live_hits > 0, "queries under churn returned nothing");

    // Phase 3: whole-service persistence round trips.
    let start = Instant::now();
    let mut bytes = Vec::new();
    for _ in 0..ROUND_TRIPS {
        bytes = resolver.to_bytes();
        let back = Resolver::from_bytes(&bytes, model.as_ref()).unwrap();
        assert_eq!(back.len(), resolver.len());
    }
    let persist_wall = start.elapsed().as_secs_f64();

    let doc = Json::Obj(vec![
        ("bench".into(), Json::from_str_value("resolver")),
        ("seed".into(), Json::from_u64(SEED)),
        ("records".into(), Json::from_usize(RECORDS)),
        ("dim".into(), Json::from_usize(model.dim())),
        ("shards".into(), Json::from_usize(4)),
        ("snapshot_bytes".into(), Json::from_usize(bytes.len())),
        (
            "phases".into(),
            Json::Arr(vec![
                phase("insert", RECORDS, insert_wall),
                // A churn iteration is one query + one mutation = 2 ops.
                phase("query_under_churn", CHURN_OPS * 2, churn_wall),
                phase("save_load", ROUND_TRIPS, persist_wall),
            ]),
        ),
    ]);
    let text = format!("{doc}\n");
    std::fs::write(&out_path, &text).expect("write benchmark snapshot");
    print!("{text}");
}
