//! Sustained-throughput benchmark of the `er-serve` Resolver, emitting the
//! machine-readable `BENCH_resolver.json` snapshot the ROADMAP's per-PR
//! perf trajectory starts from.
//!
//! Four phases over a tiny-zoo FT model and synthetic entities:
//!
//! 1. **insert** — stream `N` fresh records into an empty service;
//! 2. **query-under-churn** — top-10 queries interleaved 1:1 with
//!    upsert/delete mutations against the live service, single-threaded;
//! 3. **concurrent-query-under-churn** — the snapshot-swap headline:
//!    reader threads run top-10 queries flat out against published
//!    snapshots while one writer thread churns mutations concurrently;
//! 4. **save/load** — full `to_bytes` → `from_bytes` round trips of the
//!    populated service.
//!
//! Each phase reports wall-clock and ops/sec. Run from the workspace root
//! (`cargo run --release -p er-bench --bin bench_resolver`); pass a path
//! argument to redirect the JSON (default `BENCH_resolver.json`).
//!
//! `--check <path>` — no timing: parse an existing snapshot and fail if a
//! phase is missing or carries non-positive numbers, so the committed
//! snapshot cannot silently go stale as phases are added.

use embeddings4er::prelude::*;
use er_bench::SEED;
use er_core::json::Json;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

const RECORDS: usize = 1_500;
const CHURN_OPS: usize = 600;
const CONCURRENT_READERS: usize = 3;
const ROUND_TRIPS: usize = 20;

/// Every phase a complete snapshot must report.
const PHASES: [&str; 4] = [
    "insert",
    "query_under_churn",
    "concurrent_query_under_churn",
    "save_load",
];

fn entity(id: u32) -> Entity {
    Entity::new(
        EntityId(id),
        vec![
            ("name".into(), format!("establishment number {id}")),
            ("street".into(), format!("{} main street", id % 97)),
            ("city".into(), format!("district {}", id % 13)),
        ],
    )
}

fn phase(name: &str, ops: usize, wall_s: f64) -> Json {
    Json::Obj(vec![
        ("phase".into(), Json::from_str_value(name)),
        ("ops".into(), Json::from_usize(ops)),
        ("wall_s".into(), Json::from_f32(wall_s as f32)),
        (
            "ops_per_sec".into(),
            Json::from_f32((ops as f64 / wall_s) as f32),
        ),
    ])
}

/// `--check` mode: parse a committed snapshot and verify it is complete —
/// every phase present with positive throughput.
fn check(path: &str) -> std::result::Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let bench = doc
        .expect("bench")
        .and_then(|j| j.as_str().map(str::to_owned))
        .map_err(|e| format!("{path}: {e}"))?;
    if bench != "resolver" {
        return Err(format!("{path}: bench is {bench:?}, expected \"resolver\""));
    }
    let phases = doc
        .expect("phases")
        .and_then(Json::as_arr)
        .map_err(|e| format!("{path}: {e}"))?;
    let mut seen = Vec::new();
    for p in phases {
        let name = p
            .expect("phase")
            .and_then(|j| j.as_str().map(str::to_owned))
            .map_err(|e| format!("{path}: phase name: {e}"))?;
        let ops = p
            .expect("ops")
            .and_then(Json::as_usize)
            .map_err(|e| format!("{path}: {name} ops: {e}"))?;
        let rate = p
            .expect("ops_per_sec")
            .and_then(Json::as_f32)
            .map_err(|e| format!("{path}: {name} ops_per_sec: {e}"))?;
        if ops == 0 || rate.is_nan() || rate <= 0.0 {
            return Err(format!(
                "{path}: phase {name} has non-positive numbers (ops={ops}, rate={rate})"
            ));
        }
        seen.push(name);
    }
    for required in PHASES {
        if !seen.iter().any(|n| n == required) {
            return Err(format!("{path}: missing phase {required}"));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_resolver.json");
        match check(path) {
            Ok(()) => {
                println!("{path}: complete resolver snapshot (all phases present)");
                return;
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_resolver.json".into());
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), SEED);
    let model = zoo.get(ModelCode::FT);
    let resolver = Resolver::new(
        model.as_ref(),
        SerializationMode::SchemaAgnostic,
        ServeConfig::new().shards(4),
    )
    .expect("default serve config");

    // Phase 1: streaming inserts into an empty service.
    let start = Instant::now();
    for id in 0..RECORDS as u32 {
        resolver.insert(&entity(id)).unwrap();
    }
    let insert_wall = start.elapsed().as_secs_f64();
    assert_eq!(resolver.len(), RECORDS);

    // Phase 2: queries interleaved 1:1 with mutations on one thread. Each
    // iteration is one top-10 query plus one churn op (upsert an existing
    // id, or delete + re-insert), so the index never goes quiet while
    // serving.
    let start = Instant::now();
    let mut live_hits = 0usize;
    for i in 0..CHURN_OPS as u32 {
        let probe = entity(i % RECORDS as u32);
        live_hits += resolver.query(&probe, 10).len();
        let victim = EntityId((i * 7) % RECORDS as u32);
        if i % 2 == 0 {
            resolver.upsert(&entity(victim.0)).unwrap();
        } else {
            resolver.delete(victim).expect("journal-free delete");
            resolver.insert(&entity(victim.0)).unwrap();
        }
    }
    let churn_wall = start.elapsed().as_secs_f64();
    assert!(live_hits > 0, "queries under churn returned nothing");

    // Phase 3: concurrent query-under-churn — the snapshot-swap headline.
    // Reader threads query published snapshots flat out (never blocking on
    // the writer); one writer thread runs the same churn mix concurrently.
    // Probe embeddings are precomputed so the phase times the serve path,
    // not the embedding.
    let probes: Vec<Embedding> = (0..64u32)
        .map(|i| resolver.embed(&entity(i * 11)))
        .collect();
    let queries_done = AtomicUsize::new(0);
    let writer_done = AtomicBool::new(false);
    let concurrent_hits = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for i in 0..CHURN_OPS as u32 {
                let victim = EntityId((i * 13) % RECORDS as u32);
                if i % 2 == 0 {
                    resolver.upsert(&entity(victim.0)).unwrap();
                } else {
                    resolver.delete(victim).expect("journal-free delete");
                    resolver.insert(&entity(victim.0)).unwrap();
                }
            }
            writer_done.store(true, Ordering::Release);
        });
        for reader in 0..CONCURRENT_READERS {
            let probes = &probes;
            let resolver = &resolver;
            let queries_done = &queries_done;
            let writer_done = &writer_done;
            let concurrent_hits = &concurrent_hits;
            scope.spawn(move || {
                let mut i = reader;
                let mut hits = 0usize;
                let mut queries = 0usize;
                while queries == 0 || !writer_done.load(Ordering::Acquire) {
                    hits += resolver
                        .query_embedding(&probes[i % probes.len()], 10)
                        .len();
                    queries += 1;
                    i += 1;
                }
                queries_done.fetch_add(queries, Ordering::Relaxed);
                concurrent_hits.fetch_add(hits, Ordering::Relaxed);
            });
        }
    });
    let concurrent_wall = start.elapsed().as_secs_f64();
    let concurrent_ops = queries_done.load(Ordering::Relaxed) + CHURN_OPS;
    assert!(
        concurrent_hits.load(Ordering::Relaxed) > 0,
        "concurrent queries returned nothing"
    );

    // Phase 4: whole-service persistence round trips.
    let start = Instant::now();
    let mut bytes = Vec::new();
    for _ in 0..ROUND_TRIPS {
        bytes = resolver.to_bytes();
        let back = Resolver::from_bytes(&bytes, model.as_ref()).unwrap();
        assert_eq!(back.len(), resolver.len());
    }
    let persist_wall = start.elapsed().as_secs_f64();

    let doc = Json::Obj(vec![
        ("bench".into(), Json::from_str_value("resolver")),
        ("seed".into(), Json::from_u64(SEED)),
        ("records".into(), Json::from_usize(RECORDS)),
        ("dim".into(), Json::from_usize(model.dim())),
        ("shards".into(), Json::from_usize(4)),
        (
            "concurrent_readers".into(),
            Json::from_usize(CONCURRENT_READERS),
        ),
        ("snapshot_bytes".into(), Json::from_usize(bytes.len())),
        (
            "phases".into(),
            Json::Arr(vec![
                phase("insert", RECORDS, insert_wall),
                // A churn iteration is one query + one mutation = 2 ops.
                phase("query_under_churn", CHURN_OPS * 2, churn_wall),
                phase(
                    "concurrent_query_under_churn",
                    concurrent_ops,
                    concurrent_wall,
                ),
                phase("save_load", ROUND_TRIPS, persist_wall),
            ]),
        ),
    ]);
    let text = format!("{doc}\n");
    std::fs::write(&out_path, &text).expect("write benchmark snapshot");
    print!("{text}");
}
