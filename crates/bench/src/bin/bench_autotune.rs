//! Autotuning benchmark: run the `er-tune` autotuner over D1/D3/D7,
//! emitting the machine-readable `BENCH_autotune.json` snapshot — tuning
//! wall-clock, trials swept, the chosen `OperatingPoint` per dataset, and
//! the chosen point's estimated-vs-measured distance evaluations.
//!
//! Run from the workspace root
//! (`cargo run --release -p er-bench --bin bench_autotune`); pass a path
//! argument to redirect the JSON (default `BENCH_autotune.json`).
//!
//! `--check <path>` — no tuning: parse an existing snapshot and fail if a
//! dataset is missing, a chosen point is absent, or any number is
//! non-positive, so the committed snapshot cannot silently go stale.

use embeddings4er::prelude::*;
use er_bench::SEED;
use er_core::json::Json;
use std::time::Instant;

const DATASETS: [DatasetId; 3] = [DatasetId::D1, DatasetId::D3, DatasetId::D7];
const RECALL_TARGET: f32 = 0.9;

/// `--check` mode: verify the committed snapshot is complete — every
/// dataset present with a chosen point, positive wall-clock and trials.
fn check(path: &str) -> std::result::Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let bench = doc
        .expect("bench")
        .and_then(|j| j.as_str().map(str::to_owned))
        .map_err(|e| format!("{path}: {e}"))?;
    if bench != "autotune" {
        return Err(format!("{path}: bench is {bench:?}, expected \"autotune\""));
    }
    let runs = doc
        .expect("datasets")
        .and_then(Json::as_arr)
        .map_err(|e| format!("{path}: {e}"))?;
    let mut seen = Vec::new();
    for run in runs {
        let name = run
            .expect("dataset")
            .and_then(|j| j.as_str().map(str::to_owned))
            .map_err(|e| format!("{path}: dataset name: {e}"))?;
        let wall = run
            .expect("tune_wall_s")
            .and_then(Json::as_f32)
            .map_err(|e| format!("{path}: {name} tune_wall_s: {e}"))?;
        let trials = run
            .expect("trials")
            .and_then(Json::as_usize)
            .map_err(|e| format!("{path}: {name} trials: {e}"))?;
        let measured = run
            .expect("measured_evals_per_query")
            .and_then(Json::as_f32)
            .map_err(|e| format!("{path}: {name} measured evals: {e}"))?;
        if run.get("chosen").is_none() {
            return Err(format!("{path}: {name} has no chosen point"));
        }
        if wall <= 0.0 || trials == 0 || measured <= 0.0 {
            return Err(format!(
                "{path}: {name} has non-positive numbers \
                 (wall={wall}, trials={trials}, measured={measured})"
            ));
        }
        seen.push(name);
    }
    for id in DATASETS {
        let want = format!("{id:?}");
        if !seen.contains(&want) {
            return Err(format!("{path}: missing dataset {want}"));
        }
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        let path = args
            .get(1)
            .map(String::as_str)
            .unwrap_or("BENCH_autotune.json");
        match check(path) {
            Ok(()) => {
                println!("{path}: complete autotune snapshot (all datasets present)");
                return;
            }
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(1);
            }
        }
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_autotune.json".into());
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), SEED);
    let model = zoo.get(ModelCode::FT);
    let mode = SerializationMode::SchemaAgnostic;
    let pipeline = Pipeline::new(model.as_ref(), mode);
    let goal = OperatingPoint::recall_target(RECALL_TARGET).metric(Metric::Cosine);
    let tuner = TunerConfig::default();
    let cost_model = CostModel::builtin();

    let mut runs = Vec::new();
    for id in DATASETS {
        let ds = CleanCleanDataset::generate(id, SEED);
        let queries = pipeline.vectorize(&ds.left);
        let rows = pipeline.vectorize(&ds.right);
        let start = Instant::now();
        let outcome = autotune(&queries, &rows, &goal, &tuner, &cost_model).expect("tunes");
        let wall = start.elapsed().as_secs_f64();
        let (_, measured_per_query) =
            measure_point(&queries, &rows, &outcome.chosen).expect("measures");
        let chosen_trial = outcome.chosen_trial();
        let chosen_json =
            Json::parse(&outcome.chosen.to_json()).expect("canonical point JSON parses");
        println!(
            "{id:?}: {} trials in {wall:.3}s -> {} ({:.1} est / {measured_per_query:.1} measured evals/query)",
            outcome.trials.len(),
            outcome.chosen.to_json(),
            chosen_trial.est_evals,
        );
        runs.push(Json::Obj(vec![
            ("dataset".into(), Json::from_str_value(&format!("{id:?}"))),
            ("tune_wall_s".into(), Json::from_f32(wall as f32)),
            ("trials".into(), Json::from_usize(outcome.trials.len())),
            ("sample_rows".into(), Json::from_usize(outcome.sample_rows)),
            (
                "sample_queries".into(),
                Json::from_usize(outcome.sample_queries),
            ),
            ("chosen".into(), chosen_json),
            ("proxy_recall".into(), Json::from_f32(chosen_trial.recall)),
            (
                "estimated_evals_per_query".into(),
                Json::from_f32(chosen_trial.est_evals as f32),
            ),
            (
                "measured_evals_per_query".into(),
                Json::from_f32(measured_per_query as f32),
            ),
            (
                "estimated_ns_per_query".into(),
                Json::from_f32(chosen_trial.est_ns as f32),
            ),
        ]));
    }

    let doc = Json::Obj(vec![
        ("bench".into(), Json::from_str_value("autotune")),
        ("seed".into(), Json::from_u64(SEED)),
        ("recall_target".into(), Json::from_f32(RECALL_TARGET)),
        ("datasets".into(), Json::Arr(runs)),
    ]);
    std::fs::write(&out_path, format!("{doc}\n")).expect("write snapshot");
    println!("wrote {out_path}");
}
