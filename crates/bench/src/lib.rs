//! er-bench — experiment binaries and Criterion benches (DESIGN.md §4).
//!
//! The benches under `benches/` are the API contracts for the full paper
//! reproduction; each is enabled in `Cargo.toml` as its subsystem lands.

/// The global experiment seed. Every table and figure regenerates from this
/// one value; changing it invalidates all cached zoo weights.
pub const SEED: u64 = 42;

#[cfg(test)]
mod tests {
    use super::SEED;
    use er_core::rng::rng;
    use rand::Rng;

    #[test]
    fn seed_drives_a_deterministic_stream() {
        let a: u64 = rng(SEED).gen_range(0..u64::MAX);
        let b: u64 = rng(SEED).gen_range(0..u64::MAX);
        assert_eq!(a, b);
    }
}
