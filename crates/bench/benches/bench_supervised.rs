//! Criterion benches behind Table 6 plus the pair-architecture ablation
//! (DESIGN.md §1): siamese-interaction vs cross-encoder training cost,
//! and per-pair prediction latency (the `t_e` column).

use criterion::{criterion_group, criterion_main, Criterion};
use er_bench::SEED;
use er_core::rng::rng;
use er_datasets::cleanclean::{generate, CleanCleanSpec, Domain};
use er_datasets::dsm::build_pair_dataset;
use er_datasets::PairDataset;
use er_embed::bert::{BertEncoder, BertTrainConfig, Objective};
use er_embed::transformer::TransformerConfig;
use er_embed::ModelCode;
use er_matching::supervised::{EmTransformerConfig, EmTransformerMatcher, PairArchitecture};
use er_text::corpus::synthetic_corpus;
use er_text::{Corpus, WordPiece};
use std::hint::black_box;
use std::sync::Arc;

fn fixture() -> (BertEncoder, PairDataset) {
    let base = generate(
        &CleanCleanSpec {
            name: "bench-pairs".into(),
            domain: Domain::Product,
            size1: 60,
            size2: 70,
            duplicates: 40,
            noise: 0.25,
            missing: 0.0,
            long_text: false,
        },
        SEED,
    );
    let data = build_pair_dataset("bench", base, 3.0, SEED);
    let mut corpus: Corpus = synthetic_corpus(60, &mut rng(31));
    for s in data
        .dataset
        .all_sentences(&er_core::SerializationMode::SchemaAgnostic)
    {
        corpus.push_text(&s);
    }
    let slices: Vec<&[String]> = corpus.sentences().iter().map(Vec::as_slice).collect();
    let wp = Arc::new(WordPiece::train(slices.into_iter(), 400));
    let cfg = BertTrainConfig {
        arch: TransformerConfig {
            dim: 32,
            layers: 2,
            heads: 2,
            ff_dim: 64,
            max_seq: 32,
            vocab_size: wp.vocab_size(),
            share_layers: false,
        },
        objective: Objective::Mlm { mask_prob: 0.15 },
        epochs: 1,
        lr: 1e-3,
        clip: 1.0,
        sentence_pair_task: true,
    };
    let encoder = BertEncoder::pretrain(&corpus, wp, &cfg, ModelCode::BT, SEED);
    (encoder, data)
}

fn bench_architecture_ablation(c: &mut Criterion) {
    let (encoder, data) = fixture();
    let mut group = c.benchmark_group("pair_architecture_ablation_train");
    group.sample_size(10);
    for (name, arch) in [
        ("siamese_interaction", PairArchitecture::SiameseInteraction),
        ("cross_encoder", PairArchitecture::CrossEncoder),
    ] {
        let cfg = EmTransformerConfig {
            epochs: 1,
            train_cap: 100,
            architecture: arch,
            ..Default::default()
        };
        group.bench_function(name, |b| {
            b.iter(|| black_box(EmTransformerMatcher::train(&encoder, &data, &cfg, SEED)));
        });
    }
    group.finish();
}

fn bench_prediction_latency(c: &mut Criterion) {
    let (encoder, data) = fixture();
    let cfg = EmTransformerConfig {
        epochs: 1,
        train_cap: 50,
        ..Default::default()
    };
    let (matcher, _) = EmTransformerMatcher::train(&encoder, &data, &cfg, SEED);
    let a = "wireless speaker stereo audio deluxe edition";
    let b = "wireless speker stereo audio deluxe";
    let mut group = c.benchmark_group("table6_prediction_latency");
    group.bench_function("predict_pair", |bch| {
        bch.iter(|| black_box(matcher.predict(black_box(a), black_box(b))));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_architecture_ablation,
    bench_prediction_latency
);
criterion_main!(benches);
