//! Criterion micro-benchmarks behind Table 4: per-sentence vectorization
//! cost per model category — static lookup vs transformer forward pass,
//! with the S-MiniLM-vs-full-size contrast.
//!
//! Roster status: WC/GE/FT (static lookup) and BT (the MLM-pre-trained
//! transformer, the first dynamic model — its forward pass is the
//! expensive category the table contrasts) are live in the zoo today;
//! DT/S5/SM stay in the list as the API contract for later PRs and make
//! `zoo.get` panic until they land, which is why this bench is gated
//! (`test = false`) rather than run by default.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_bench::SEED;
use er_core::rng::rng;
use er_embed::{LanguageModel, ModelCode, ModelZoo, ZooConfig};
use er_text::corpus::synthetic_corpus;
use std::hint::black_box;

fn bench_vectorization(c: &mut Criterion) {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::fast(), SEED);
    let corpus = synthetic_corpus(20, &mut rng(1));
    let sentence = corpus.sentences()[0].join(" ");
    let long_sentence = corpus
        .sentences()
        .iter()
        .take(5)
        .map(|s| s.join(" "))
        .collect::<Vec<_>>()
        .join(" ");

    let mut group = c.benchmark_group("table4_vectorization");
    for code in [
        ModelCode::WC,
        ModelCode::GE,
        ModelCode::FT,
        ModelCode::BT,
        ModelCode::DT,
        ModelCode::S5,
        ModelCode::SM,
    ] {
        let model = zoo.get(code).clone();
        group.bench_with_input(
            BenchmarkId::new("short", code.to_string()),
            &sentence,
            |b, s| {
                b.iter(|| black_box(model.embed(black_box(s))));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("long", code.to_string()),
            &long_sentence,
            |b, s| {
                b.iter(|| black_box(model.embed(black_box(s))));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_vectorization);
criterion_main!(benches);
