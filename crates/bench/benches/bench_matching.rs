//! Criterion micro-benchmarks behind Figures 14/15 and Table 5(b):
//! Unique Mapping Clustering throughput, the threshold sweep, the string
//! similarity features of ZeroER, and the k ∈ {1,5,10} blocking ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::rng::rng;
use er_core::{Embedding, EntityId, GroundTruth, ScoredPair};
use er_index::exact::ExactIndex;
use er_index::NnIndex;
use er_matching::similarity;
use er_matching::{unique_mapping_clustering, ThresholdSweep};
use rand::Rng;
use std::hint::black_box;

fn scored_pairs(n_left: u32, n_right: u32, seed: u64) -> Vec<ScoredPair> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity((n_left * n_right) as usize);
    for l in 0..n_left {
        for rr in 0..n_right {
            out.push(ScoredPair::new(
                EntityId(l),
                EntityId(rr),
                r.gen_range(0.0..1.0),
            ));
        }
    }
    out
}

fn bench_umc(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_umc");
    group.sample_size(20);
    for n in [100u32, 300] {
        let pairs = scored_pairs(n, n, 11);
        group.bench_with_input(BenchmarkId::new("all_pairs", n * n), &pairs, |b, pairs| {
            b.iter(|| black_box(unique_mapping_clustering(pairs, 0.5)))
        });
    }
    group.finish();
}

fn bench_threshold_sweep(c: &mut Criterion) {
    let pairs = scored_pairs(150, 150, 12);
    let gt = GroundTruth::clean_clean((0..150).map(|i| (EntityId(i), EntityId(i))));
    let mut group = c.benchmark_group("fig15_threshold_sweep");
    group.sample_size(10);
    group.bench_function("19_deltas_22k_pairs", |b| {
        b.iter(|| black_box(ThresholdSweep::run(&pairs, &gt)));
    });
    group.finish();
}

fn bench_string_similarities(c: &mut Criterion) {
    let a = "golden palace grill 123 main street springfield italian";
    let b = "goldn palace gril main street 123 springfeild restaurant";
    let mut group = c.benchmark_group("table5b_zeroer_features");
    group.bench_function("jaccard", |bch| {
        bch.iter(|| black_box(similarity::jaccard(a, b)))
    });
    group.bench_function("levenshtein", |bch| {
        bch.iter(|| black_box(similarity::levenshtein_sim(a, b)));
    });
    group.bench_function("jaro_winkler", |bch| {
        bch.iter(|| black_box(similarity::jaro_winkler(a, b)));
    });
    group.bench_function("monge_elkan", |bch| {
        bch.iter(|| black_box(similarity::monge_elkan(a, b)));
    });
    group.bench_function("full_feature_vector", |bch| {
        bch.iter(|| black_box(similarity::feature_vector(a, b)));
    });
    group.finish();
}

/// k ablation: cost of k ∈ {1, 5, 10} blocking queries (the Fig. 3 rows).
fn bench_knn_k_ablation(c: &mut Criterion) {
    let mut r = rng(13);
    let vectors: Vec<Embedding> = (0..3_000)
        .map(|_| Embedding((0..64).map(|_| r.gen_range(-1.0f32..1.0)).collect()))
        .collect();
    let queries: Vec<Embedding> = (0..16)
        .map(|_| Embedding((0..64).map(|_| r.gen_range(-1.0f32..1.0)).collect()))
        .collect();
    let index = ExactIndex::build(&vectors);
    let mut group = c.benchmark_group("knn_k_ablation");
    for k in [1usize, 5, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.search(q, k));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_umc,
    bench_threshold_sweep,
    bench_string_similarities,
    bench_knn_k_ablation
);
criterion_main!(benches);
