//! Ablation benches for the design choices called out in DESIGN.md §5:
//! CLS vs mean pooling, contrastive-budget sweep, and tensor-engine op
//! costs (the substrate beneath every dynamic model).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_bench::SEED;
use er_core::rng::rng;
use er_embed::bert::{BertEncoder, BertTrainConfig, Objective, Pooling};
use er_embed::sbert::{train_sbert, SbertConfig};
use er_embed::transformer::TransformerConfig;
use er_embed::{LanguageModel, ModelCode};
use er_tensor::{Graph, Tensor};
use er_text::corpus::synthetic_corpus;
use er_text::WordPiece;
use std::hint::black_box;
use std::sync::Arc;

fn setup_encoder() -> BertEncoder {
    let corpus = synthetic_corpus(80, &mut rng(21));
    let slices: Vec<&[String]> = corpus.sentences().iter().map(Vec::as_slice).collect();
    let wp = Arc::new(WordPiece::train(slices.into_iter(), 300));
    let cfg = BertTrainConfig {
        arch: TransformerConfig {
            dim: 32,
            layers: 2,
            heads: 2,
            ff_dim: 64,
            max_seq: 24,
            vocab_size: wp.vocab_size(),
            share_layers: false,
        },
        objective: Objective::Mlm { mask_prob: 0.15 },
        epochs: 1,
        lr: 1e-3,
        clip: 1.0,
        sentence_pair_task: false,
    };
    BertEncoder::pretrain(&corpus, wp, &cfg, ModelCode::BT, SEED)
}

/// Pooling ablation (§3.3): CLS vs mean pooling — same forward cost,
/// different quality; this measures the (identical) latency so the
/// quality experiments can attribute differences purely to geometry.
fn bench_pooling(c: &mut Criterion) {
    let encoder = setup_encoder();
    let mean = encoder.clone().with_pooling(Pooling::Mean);
    let cls = encoder.with_pooling(Pooling::Cls);
    let sentence = "digital camera with zoom lens and battery pack";
    let mut group = c.benchmark_group("pooling_ablation");
    group.bench_function("mean", |b| {
        b.iter(|| black_box(mean.embed(black_box(sentence))))
    });
    group.bench_function("cls", |b| {
        b.iter(|| black_box(cls.embed(black_box(sentence))))
    });
    group.finish();
}

/// Contrastive-budget ablation (the "wider corpus" lever of §5.1):
/// training cost as the pair budget grows.
fn bench_contrastive_budget(c: &mut Criterion) {
    let corpus = synthetic_corpus(60, &mut rng(22));
    let slices: Vec<&[String]> = corpus.sentences().iter().map(Vec::as_slice).collect();
    let wp = Arc::new(WordPiece::train(slices.into_iter(), 300));
    let arch = TransformerConfig {
        dim: 16,
        layers: 1,
        heads: 2,
        ff_dim: 32,
        max_seq: 20,
        vocab_size: wp.vocab_size(),
        share_layers: false,
    };
    let mut group = c.benchmark_group("contrastive_ablation");
    group.sample_size(10);
    for pairs in [10usize, 40] {
        let cfg = SbertConfig {
            arch: arch.clone(),
            mlm_epochs: 0,
            pairs,
            lr: 1e-3,
            noise: 0.5,
        };
        let wp = wp.clone();
        let corpus = corpus.clone();
        group.bench_with_input(BenchmarkId::from_parameter(pairs), &pairs, move |b, _| {
            b.iter(|| {
                black_box(train_sbert(&corpus, wp.clone(), &cfg, ModelCode::ST, SEED));
            });
        });
    }
    group.finish();
}

/// Tensor-engine op costs: the gemm and attention-shaped workloads at the
/// sizes the zoo uses.
fn bench_tensor_ops(c: &mut Criterion) {
    let mut r = rng(23);
    let a = Tensor::randn(48, 128, 1.0, &mut r);
    let w = Tensor::randn(128, 128, 1.0, &mut r);
    let mut group = c.benchmark_group("tensor_ops");
    group.bench_function("matmul_48x128x128", |b| {
        b.iter(|| black_box(er_tensor::tensor::matmul(&a, &w)));
    });
    group.bench_function("matmul_nt_48x128_48x128", |b| {
        b.iter(|| black_box(er_tensor::tensor::matmul_nt(&a, &a)));
    });
    group.bench_function("softmax_rows_48x48", |b| {
        let scores = er_tensor::tensor::matmul_nt(&a, &a);
        b.iter(|| {
            let mut g = Graph::new();
            let x = g.constant(scores.clone());
            black_box(g.softmax(x));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pooling,
    bench_contrastive_budget,
    bench_tensor_ops
);
criterion_main!(benches);
