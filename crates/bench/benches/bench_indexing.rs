//! Criterion micro-benchmarks behind Figures 12/13: NNS index build and
//! query cost — exact scan vs HNSW vs hyperplane LSH — plus the HNSW
//! parameter ablation (efSearch sweep) called out in DESIGN.md §5, the
//! columnar-vs-per-vector exact-scan comparison backing the
//! `EmbeddingMatrix` refactor, and the end-to-end `Pipeline::block` run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use embeddings4er::prelude::Pipeline;
use er_blocking::{BlockerBackend, TopKConfig};
use er_core::rng::rng;
use er_core::{Embedding, EmbeddingMatrix, SerializationMode};
use er_datasets::{CleanCleanDataset, DatasetId};
use er_embed::{ModelCode, ModelZoo, ZooConfig};
use er_index::exact::ExactIndex;
use er_index::hnsw::{HnswConfig, HnswIndex};
use er_index::lsh::{HyperplaneLsh, LshConfig};
use er_index::{Metric, NnIndex};
use rand::Rng;
use std::hint::black_box;

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let vectors = random_vectors(800, 64, 3);
    let mut group = c.benchmark_group("fig13_index_build");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| black_box(ExactIndex::build(&vectors)))
    });
    group.bench_function("hnsw", |b| {
        b.iter(|| black_box(HnswIndex::build(&vectors, HnswConfig::default())));
    });
    group.bench_function("hyperplane_lsh", |b| {
        b.iter(|| black_box(HyperplaneLsh::build(&vectors, LshConfig::default())));
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let vectors = random_vectors(1_200, 64, 4);
    let queries = random_vectors(16, 64, 5);
    let exact = ExactIndex::build(&vectors);
    let hnsw = HnswIndex::build(&vectors, HnswConfig::default());
    let lsh = HyperplaneLsh::build(&vectors, LshConfig::default());

    let mut group = c.benchmark_group("fig12_index_query_k10");
    group.bench_function("exact", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(exact.search(q, 10));
            }
        });
    });
    group.bench_function("hnsw", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(hnsw.search(q, 10));
            }
        });
    });
    group.bench_function("hyperplane_lsh", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(lsh.search(q, 10));
            }
        });
    });
    group.finish();
}

/// Sequential vs scoped-thread batched search over the same HNSW graph:
/// the blocker's query path (one query per left-side entity).
fn bench_batched_search(c: &mut Criterion) {
    let vectors = random_vectors(1_200, 64, 10);
    let queries = random_vectors(128, 64, 11);
    let index = HnswIndex::build(&vectors, HnswConfig::default());
    let mut group = c.benchmark_group("hnsw_batch_vs_sequential_128q");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.search(q, 10));
            }
        });
    });
    group.bench_function("search_batch", |b| {
        b.iter(|| black_box(index.search_batch(&queries, 10)));
    });
    group.finish();
}

/// HNSW ablation: recall/latency as efSearch grows (the FAISS
/// configuration choice of §4.3). One graph, query-time knob only.
fn bench_hnsw_ablation(c: &mut Criterion) {
    let vectors = random_vectors(1_200, 64, 6);
    let queries = random_vectors(16, 64, 7);
    let mut index = HnswIndex::build(&vectors, HnswConfig::default());
    let mut group = c.benchmark_group("hnsw_ablation_ef_search");
    for ef in [16usize, 64, 256] {
        index = index.with_ef_search(ef);
        let index = &index;
        group.bench_with_input(BenchmarkId::from_parameter(ef), &ef, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.search(q, 10));
                }
            });
        });
    }
    group.finish();
}

/// Dimensionality ablation: the 300-vs-768-d cost discussion of §6.2.
fn bench_dimension_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dimension_ablation_exact_query");
    for dim in [32usize, 64, 128, 256] {
        let vectors = random_vectors(1_500, dim, 8);
        let queries = random_vectors(16, dim, 9);
        let index = ExactIndex::build(&vectors);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.search(q, 10));
                }
            });
        });
    }
    group.finish();
}

/// The pre-refactor exact index, kept verbatim as the baseline: one heap
/// allocation per stored vector, distances recomputing both norms on
/// every comparison.
struct PerVecScan {
    vectors: Vec<Embedding>,
    metric: Metric,
}

impl PerVecScan {
    fn search(&self, query: &Embedding, k: usize) -> Vec<(usize, f32)> {
        let mut hits: Vec<(usize, f32)> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i, self.metric.distance(query, v)))
            .collect();
        hits.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        hits.truncate(k);
        hits
    }
}

/// The acceptance claim of the columnar refactor: the contiguous
/// `EmbeddingMatrix` scan with prenormed cosine must be no slower than the
/// per-`Vec<Embedding>` scan it replaced.
fn bench_matrix_vs_pervec_scan(c: &mut Criterion) {
    let vectors = random_vectors(1_500, 64, 12);
    let queries = random_vectors(16, 64, 13);
    let matrix = EmbeddingMatrix::from_embeddings(&vectors);
    let mut group = c.benchmark_group("exact_scan_matrix_vs_pervec");
    for metric in [Metric::Cosine, Metric::Euclidean] {
        let per_vec = PerVecScan {
            vectors: vectors.clone(),
            metric,
        };
        let columnar = ExactIndex::from_matrix(&matrix, metric);
        group.bench_function(BenchmarkId::new("per_vec", format!("{metric:?}")), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(per_vec.search(q, 10));
                }
            });
        });
        group.bench_function(BenchmarkId::new("matrix", format!("{metric:?}")), |b| {
            b.iter(|| {
                for q in &queries {
                    black_box(columnar.search(q, 10));
                }
            });
        });
    }
    group.finish();
}

/// End-to-end `Pipeline::block` on D1 — vectorize both sides once into
/// matrices, HNSW top-10 blocking, stage report included.
fn bench_pipeline_block_d1(c: &mut Criterion) {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let config = TopKConfig {
        k: 10,
        backend: BlockerBackend::Hnsw(HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        }),
        dirty: false,
        ..TopKConfig::default()
    };
    let pipeline = Pipeline::new(model.as_ref(), SerializationMode::SchemaAgnostic);
    let mut group = c.benchmark_group("pipeline_block_d1_e2e");
    group.sample_size(10);
    group.bench_function("fasttext_hnsw_k10", |b| {
        b.iter(|| black_box(pipeline.block(&ds.left, &ds.right, &config)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_query,
    bench_batched_search,
    bench_hnsw_ablation,
    bench_dimension_ablation,
    bench_matrix_vs_pervec_scan,
    bench_pipeline_block_d1
);
criterion_main!(benches);
