//! Criterion micro-benchmarks behind Figures 12/13: NNS index build and
//! query cost — exact scan vs HNSW vs hyperplane LSH — plus the HNSW
//! parameter ablation (efSearch sweep) called out in DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_core::rng::rng;
use er_core::Embedding;
use er_index::exact::ExactIndex;
use er_index::hnsw::{HnswConfig, HnswIndex};
use er_index::lsh::{HyperplaneLsh, LshConfig};
use er_index::NnIndex;
use rand::Rng;
use std::hint::black_box;

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Embedding> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| Embedding((0..dim).map(|_| r.gen_range(-1.0..1.0)).collect()))
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let vectors = random_vectors(800, 64, 3);
    let mut group = c.benchmark_group("fig13_index_build");
    group.sample_size(10);
    group.bench_function("exact", |b| {
        b.iter(|| black_box(ExactIndex::build(&vectors)))
    });
    group.bench_function("hnsw", |b| {
        b.iter(|| black_box(HnswIndex::build(&vectors, HnswConfig::default())));
    });
    group.bench_function("hyperplane_lsh", |b| {
        b.iter(|| black_box(HyperplaneLsh::build(&vectors, LshConfig::default())));
    });
    group.finish();
}

fn bench_query(c: &mut Criterion) {
    let vectors = random_vectors(1_200, 64, 4);
    let queries = random_vectors(16, 64, 5);
    let exact = ExactIndex::build(&vectors);
    let hnsw = HnswIndex::build(&vectors, HnswConfig::default());
    let lsh = HyperplaneLsh::build(&vectors, LshConfig::default());

    let mut group = c.benchmark_group("fig12_index_query_k10");
    group.bench_function("exact", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(exact.search(q, 10));
            }
        });
    });
    group.bench_function("hnsw", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(hnsw.search(q, 10));
            }
        });
    });
    group.bench_function("hyperplane_lsh", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(lsh.search(q, 10));
            }
        });
    });
    group.finish();
}

/// Sequential vs scoped-thread batched search over the same HNSW graph:
/// the blocker's query path (one query per left-side entity).
fn bench_batched_search(c: &mut Criterion) {
    let vectors = random_vectors(1_200, 64, 10);
    let queries = random_vectors(128, 64, 11);
    let index = HnswIndex::build(&vectors, HnswConfig::default());
    let mut group = c.benchmark_group("hnsw_batch_vs_sequential_128q");
    group.bench_function("sequential", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(index.search(q, 10));
            }
        });
    });
    group.bench_function("search_batch", |b| {
        b.iter(|| black_box(index.search_batch(&queries, 10)));
    });
    group.finish();
}

/// HNSW ablation: recall/latency as efSearch grows (the FAISS
/// configuration choice of §4.3). One graph, query-time knob only.
fn bench_hnsw_ablation(c: &mut Criterion) {
    let vectors = random_vectors(1_200, 64, 6);
    let queries = random_vectors(16, 64, 7);
    let mut index = HnswIndex::build(&vectors, HnswConfig::default());
    let mut group = c.benchmark_group("hnsw_ablation_ef_search");
    for ef in [16usize, 64, 256] {
        index = index.with_ef_search(ef);
        let index = &index;
        group.bench_with_input(BenchmarkId::from_parameter(ef), &ef, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.search(q, 10));
                }
            });
        });
    }
    group.finish();
}

/// Dimensionality ablation: the 300-vs-768-d cost discussion of §6.2.
fn bench_dimension_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("dimension_ablation_exact_query");
    for dim in [32usize, 64, 128, 256] {
        let vectors = random_vectors(1_500, dim, 8);
        let queries = random_vectors(16, dim, 9);
        let index = ExactIndex::build(&vectors);
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            b.iter(|| {
                for q in &queries {
                    black_box(index.search(q, 10));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_build,
    bench_query,
    bench_batched_search,
    bench_hnsw_ablation,
    bench_dimension_ablation
);
criterion_main!(benches);
