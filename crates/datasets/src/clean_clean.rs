//! Deterministic Clean-Clean dataset generators — the D1–D10 analogues of
//! the paper's Table 2(a) (DESIGN.md inventory row 23).
//!
//! Each dataset is two disjoint collections plus ground truth: the right
//! collection contains a *perturbed duplicate* of some left records
//! (typos, dropped words, reordered attributes — the noise classes the
//! real Abt-Buy / DBLP-ACM / … datasets exhibit) alongside non-matching
//! records. Record vocabulary reuses the word classes of
//! `er_text::corpus`'s training lexicon, so zoo models pre-trained on the
//! synthetic corpus see in-vocabulary tokens, exactly as the paper's
//! web-pre-trained models do on its real datasets.
//!
//! Everything is drawn from `derive(seed, "clean-clean-D<n>")`: one
//! `(DatasetId, seed)` pair always generates the byte-identical dataset.

use crate::{DatasetId, Domain};
use er_core::rng::derive;
use er_core::{Entity, EntityId, GroundTruth};
use er_text::corpus::inject_typo;
use rand::prelude::*;

/// Size/noise profile of one dataset (scaled down from Table 2a; the
/// relative contrasts — e.g. D10 noisy-and-sparse, D4 clean — survive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetProfile {
    pub domain: Domain,
    /// Records in the left / right collections.
    pub left: usize,
    pub right: usize,
    /// True matches (≤ min(left, right)); each is one left record with one
    /// perturbed duplicate on the right.
    pub matches: usize,
    /// Per-word probability of a character-level typo in a duplicate.
    pub typo_rate: f64,
    /// Per-word probability that a duplicate drops the word entirely
    /// (missing-token noise; at least one word always survives).
    pub drop_rate: f64,
}

impl DatasetProfile {
    /// Expected candidate-pair universe |left| × |right|.
    pub fn cross_product(&self) -> usize {
        self.left * self.right
    }
}

impl DatasetId {
    /// The generation profile for this dataset id.
    pub fn profile(&self) -> DatasetProfile {
        let (left, right, matches) = match self {
            DatasetId::D1 => (90, 90, 60),
            DatasetId::D2 => (120, 100, 70),
            DatasetId::D3 => (100, 120, 60),
            DatasetId::D4 => (140, 140, 100),
            DatasetId::D5 => (110, 130, 80),
            DatasetId::D6 => (100, 100, 65),
            DatasetId::D7 => (130, 110, 75),
            DatasetId::D8 => (120, 120, 85),
            DatasetId::D9 => (150, 130, 95),
            DatasetId::D10 => (110, 110, 55),
        };
        let (typo_rate, drop_rate) = if self.noisy() {
            (0.30, 0.20)
        } else {
            (0.10, 0.05)
        };
        DatasetProfile {
            domain: self.domain(),
            left,
            right,
            matches,
            typo_rate,
            drop_rate,
        }
    }
}

/// One generated Clean-Clean ER instance.
#[derive(Debug, Clone)]
pub struct CleanCleanDataset {
    pub id: DatasetId,
    pub left: Vec<Entity>,
    pub right: Vec<Entity>,
    /// `(left id, right id)` true matches.
    pub ground_truth: GroundTruth,
}

// Word pools per domain; drawn from the token classes the zoo's training
// corpus contains (er_text::corpus::LEXICON) so embeddings are meaningful.
const RESTAURANT_NAMES: &[&str] = &[
    "golden",
    "royal",
    "palace",
    "garden",
    "grill",
    "cafe",
    "bistro",
    "kitchen",
    "pizza",
    "sushi",
    "steak",
    "italian",
    "mexican",
    "french",
    "chinese",
    "thai",
    "indian",
    "restaurant",
];
const STREETS: &[&str] = &[
    "main", "park", "east", "west", "north", "south", "union", "lake", "river", "forest", "spring",
    "downtown",
];
const STREET_KINDS: &[&str] = &["street", "avenue", "road", "boulevard", "plaza", "square"];
const PRODUCT_WORDS: &[&str] = &[
    "digital", "camera", "lens", "zoom", "battery", "charger", "wireless", "speaker", "stereo",
    "laptop", "screen", "memory", "silver", "black", "compact", "deluxe", "edition", "series",
];
const BIB_WORDS: &[&str] = &[
    "system",
    "database",
    "query",
    "distributed",
    "parallel",
    "index",
    "analysis",
    "learning",
    "network",
    "data",
    "entity",
    "resolution",
    "matching",
    "embedding",
];
const BIB_VENUES: &[&str] = &["journal", "proceedings"];
const MOVIE_WORDS: &[&str] = &[
    "story", "night", "dark", "star", "return", "last", "first", "king", "world", "love", "river",
    "golden",
];
const FIRST_NAMES: &[&str] = &[
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael", "linda", "david",
    "barbara", "taylor", "morgan",
];
const SURNAMES: &[&str] = &[
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller", "davis", "wilson",
    "anderson", "hill", "dover",
];

fn phrase(pool: &[&str], words: usize, rng: &mut impl RngCore) -> String {
    // Sample distinct indices so names like "golden golden" don't occur.
    let mut picked: Vec<usize> = Vec::with_capacity(words);
    while picked.len() < words.min(pool.len()) {
        let i = rng.gen_range(0..pool.len());
        if !picked.contains(&i) {
            picked.push(i);
        }
    }
    picked
        .into_iter()
        .map(|i| pool[i])
        .collect::<Vec<_>>()
        .join(" ")
}

fn person(rng: &mut impl RngCore) -> String {
    format!(
        "{} {}",
        FIRST_NAMES.choose(rng).expect("non-empty"),
        SURNAMES.choose(rng).expect("non-empty")
    )
}

/// A fresh record of the given domain. Attribute schemas mirror the real
/// datasets: a title-like attribute, a descriptive one, and numerics.
fn record(domain: Domain, id: EntityId, rng: &mut impl RngCore) -> Entity {
    let attributes = match domain {
        Domain::Restaurants => vec![
            ("name".to_string(), phrase(RESTAURANT_NAMES, 3, rng)),
            (
                "address".to_string(),
                format!(
                    "{} {} {}",
                    rng.gen_range(1..999u32),
                    STREETS.choose(rng).expect("non-empty"),
                    STREET_KINDS.choose(rng).expect("non-empty"),
                ),
            ),
            (
                "phone".to_string(),
                format!("{:010}", rng.gen_range(2_000_000_000u64..9_999_999_999)),
            ),
        ],
        Domain::Products => vec![
            ("title".to_string(), phrase(PRODUCT_WORDS, 4, rng)),
            (
                "model".to_string(),
                format!(
                    "{}{}{}",
                    (b'a' + rng.gen_range(0..26u8)) as char,
                    (b'a' + rng.gen_range(0..26u8)) as char,
                    rng.gen_range(100..10_000u32)
                ),
            ),
            ("price".to_string(), rng.gen_range(10..2_000u32).to_string()),
        ],
        Domain::Bibliographic => vec![
            ("title".to_string(), phrase(BIB_WORDS, 5, rng)),
            (
                "authors".to_string(),
                format!("{} {}", person(rng), person(rng)),
            ),
            (
                "venue".to_string(),
                format!(
                    "{} {}",
                    BIB_VENUES.choose(rng).expect("non-empty"),
                    BIB_WORDS.choose(rng).expect("non-empty")
                ),
            ),
            ("year".to_string(), rng.gen_range(1980..2024u32).to_string()),
        ],
        Domain::Movies => vec![
            ("title".to_string(), phrase(MOVIE_WORDS, 3, rng)),
            ("director".to_string(), person(rng)),
            ("year".to_string(), rng.gen_range(1950..2024u32).to_string()),
        ],
    };
    Entity::new(id, attributes)
}

/// Perturb one textual value: per-word typo injection and word drops.
fn perturb_text(value: &str, profile: &DatasetProfile, rng: &mut impl RngCore) -> String {
    let words: Vec<&str> = value.split_whitespace().collect();
    let mut out: Vec<String> = Vec::with_capacity(words.len());
    for (i, word) in words.iter().enumerate() {
        // Never drop every word: keep the first one unconditionally.
        if i > 0 && rng.gen_bool(profile.drop_rate) {
            continue;
        }
        if rng.gen_bool(profile.typo_rate) {
            out.push(inject_typo(word, rng));
        } else {
            out.push(word.to_string());
        }
    }
    out.join(" ")
}

/// A duplicate of `original`: textual attributes perturbed; numeric-looking
/// ones kept verbatim on clean profiles and occasionally blanked on noisy
/// ones (the missing-value noise of D3/D10).
fn duplicate(
    original: &Entity,
    id: EntityId,
    profile: &DatasetProfile,
    rng: &mut impl RngCore,
) -> Entity {
    let attributes = original
        .attributes
        .iter()
        .map(|(name, value)| {
            let numeric = value.chars().all(|c| c.is_ascii_digit());
            let new_value = if numeric {
                if rng.gen_bool(profile.drop_rate) {
                    String::new()
                } else {
                    value.clone()
                }
            } else {
                perturb_text(value, profile, rng)
            };
            (name.clone(), new_value)
        })
        .collect();
    Entity::new(id, attributes)
}

impl CleanCleanDataset {
    /// Generate the dataset for `id` deterministically from `seed`.
    pub fn generate(id: DatasetId, seed: u64) -> CleanCleanDataset {
        let profile = id.profile();
        assert!(profile.matches <= profile.left.min(profile.right));
        let mut rng = derive(seed, &format!("clean-clean-{id}"));

        let left: Vec<Entity> = (0..profile.left)
            .map(|i| record(profile.domain, EntityId(i as u32), &mut rng))
            .collect();

        // Duplicates of the first `matches` left records, then fresh
        // non-matching records; shuffled so match position carries no signal.
        let mut right: Vec<Entity> = left[..profile.matches]
            .iter()
            .map(|original| duplicate(original, EntityId(0), &profile, &mut rng))
            .collect();
        for _ in profile.matches..profile.right {
            right.push(record(profile.domain, EntityId(0), &mut rng));
        }
        // `matched_left[j]` is Some(left id) if right slot j duplicates it.
        let mut matched_left: Vec<Option<u32>> = (0..profile.right)
            .map(|j| (j < profile.matches).then_some(j as u32))
            .collect();
        let mut order: Vec<usize> = (0..profile.right).collect();
        order.shuffle(&mut rng);
        let mut shuffled: Vec<Entity> = Vec::with_capacity(profile.right);
        let mut pairs: Vec<(EntityId, EntityId)> = Vec::with_capacity(profile.matches);
        for (new_pos, &old_pos) in order.iter().enumerate() {
            let mut entity = std::mem::replace(
                &mut right[old_pos],
                Entity::new(EntityId(u32::MAX), Vec::new()),
            );
            entity.id = EntityId(new_pos as u32);
            if let Some(left_id) = matched_left[old_pos].take() {
                pairs.push((EntityId(left_id), entity.id));
            }
            shuffled.push(entity);
        }

        CleanCleanDataset {
            id,
            left,
            right: shuffled,
            ground_truth: GroundTruth::clean_clean(pairs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_declared_sizes() {
        for id in DatasetId::ALL {
            let profile = id.profile();
            let ds = CleanCleanDataset::generate(id, 42);
            assert_eq!(ds.left.len(), profile.left, "{id}");
            assert_eq!(ds.right.len(), profile.right, "{id}");
            assert_eq!(ds.ground_truth.len(), profile.matches, "{id}");
            assert!(profile.cross_product() > 0);
        }
    }

    #[test]
    fn ids_are_dense_and_ground_truth_in_range() {
        let ds = CleanCleanDataset::generate(DatasetId::D6, 7);
        for (i, e) in ds.left.iter().enumerate() {
            assert_eq!(e.id, EntityId(i as u32));
        }
        for (i, e) in ds.right.iter().enumerate() {
            assert_eq!(e.id, EntityId(i as u32));
        }
        for (l, r) in ds.ground_truth.iter() {
            assert!((l.0 as usize) < ds.left.len());
            assert!((r.0 as usize) < ds.right.len());
        }
    }

    #[test]
    fn same_seed_generates_identical_datasets() {
        let a = CleanCleanDataset::generate(DatasetId::D3, 42);
        let b = CleanCleanDataset::generate(DatasetId::D3, 42);
        assert_eq!(a.left, b.left);
        assert_eq!(a.right, b.right);
        assert_eq!(a.ground_truth, b.ground_truth);

        let c = CleanCleanDataset::generate(DatasetId::D3, 43);
        assert_ne!(a.left, c.left, "different seeds must diverge");
    }

    #[test]
    fn datasets_differ_per_id_under_one_seed() {
        let d1 = CleanCleanDataset::generate(DatasetId::D1, 42);
        let d7 = CleanCleanDataset::generate(DatasetId::D7, 42);
        assert_ne!(
            d1.left[0].attributes, d7.left[0].attributes,
            "per-dataset RNG streams must be independent"
        );
    }

    #[test]
    fn duplicates_share_most_surface_with_their_original() {
        use er_core::SerializationMode;
        let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
        let mut overlaps = Vec::new();
        for (l, r) in ds.ground_truth.iter() {
            let left = ds.left[l.0 as usize].serialize(&SerializationMode::SchemaAgnostic);
            let right = ds.right[r.0 as usize].serialize(&SerializationMode::SchemaAgnostic);
            let lw: std::collections::BTreeSet<&str> = left.split_whitespace().collect();
            let rw: std::collections::BTreeSet<&str> = right.split_whitespace().collect();
            let shared = lw.intersection(&rw).count();
            overlaps.push(shared as f64 / lw.len().max(1) as f64);
        }
        let mean = overlaps.iter().sum::<f64>() / overlaps.len() as f64;
        assert!(
            mean > 0.6,
            "clean-profile duplicates should keep most tokens (mean overlap {mean:.2})"
        );
        // But perturbation must actually happen somewhere.
        assert!(
            overlaps.iter().any(|&o| o < 1.0),
            "no duplicate was perturbed at all"
        );
    }

    #[test]
    fn noisy_profiles_are_noisier() {
        use er_core::SerializationMode;
        let overlap_of = |id: DatasetId| {
            let ds = CleanCleanDataset::generate(id, 42);
            let mut total = 0.0;
            let mut n = 0;
            for (l, r) in ds.ground_truth.iter() {
                let left = ds.left[l.0 as usize].serialize(&SerializationMode::SchemaAgnostic);
                let right = ds.right[r.0 as usize].serialize(&SerializationMode::SchemaAgnostic);
                let lw: std::collections::BTreeSet<&str> = left.split_whitespace().collect();
                let rw: std::collections::BTreeSet<&str> = right.split_whitespace().collect();
                total += lw.intersection(&rw).count() as f64 / lw.len().max(1) as f64;
                n += 1;
            }
            total / n as f64
        };
        let clean = overlap_of(DatasetId::D4);
        let noisy = overlap_of(DatasetId::D10);
        assert!(
            noisy < clean,
            "D10 (noisy) overlap {noisy:.2} should be below D4 (clean) {clean:.2}"
        );
    }
}
