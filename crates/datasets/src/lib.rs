//! er-datasets — dataset generators (DESIGN.md inventory rows 22–24:
//! Febrl-style Dirty-ER, Clean-Clean D1–D10 analogues, DSM labeled pairs).
//!
//! Ships the dataset identifiers with their domain/size profiles and the
//! deterministic Clean-Clean generators (row 23). The Febrl-style Dirty-ER
//! generator (row 22) and the DSM labeled-pair sets (row 24) land with the
//! scalability and supervised-matching PRs.

pub mod clean_clean;

pub use clean_clean::{CleanCleanDataset, DatasetProfile};

use std::fmt;

/// The four entity domains of the paper's Table 2(a) datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    Restaurants,
    Products,
    Bibliographic,
    Movies,
}

/// The ten Clean-Clean dataset analogues (paper Table 2a). Profiles mirror
/// the real datasets' domain and noise character; sizes are scaled down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DatasetId {
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
    D7,
    D8,
    D9,
    D10,
}

impl DatasetId {
    pub const ALL: [DatasetId; 10] = [
        DatasetId::D1,
        DatasetId::D2,
        DatasetId::D3,
        DatasetId::D4,
        DatasetId::D5,
        DatasetId::D6,
        DatasetId::D7,
        DatasetId::D8,
        DatasetId::D9,
        DatasetId::D10,
    ];

    pub fn domain(&self) -> Domain {
        match self {
            DatasetId::D1 => Domain::Restaurants,
            DatasetId::D2 | DatasetId::D3 | DatasetId::D10 => Domain::Products,
            DatasetId::D4 | DatasetId::D5 | DatasetId::D9 => Domain::Bibliographic,
            DatasetId::D6 | DatasetId::D7 | DatasetId::D8 => Domain::Movies,
        }
    }

    /// Whether the profile is extra noisy/sparse (the paper's hard cases).
    pub fn noisy(&self) -> bool {
        matches!(self, DatasetId::D3 | DatasetId::D10)
    }
}

impl fmt::Display for DatasetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", *self as u8 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display_like_the_paper() {
        assert_eq!(DatasetId::D1.to_string(), "D1");
        assert_eq!(DatasetId::D10.to_string(), "D10");
        assert_eq!(DatasetId::ALL.len(), 10);
    }

    #[test]
    fn profiles_cover_all_domains() {
        for domain in [
            Domain::Restaurants,
            Domain::Products,
            Domain::Bibliographic,
            Domain::Movies,
        ] {
            assert!(
                DatasetId::ALL.iter().any(|d| d.domain() == domain),
                "{domain:?} missing"
            );
        }
        assert!(DatasetId::D10.noisy());
        assert!(!DatasetId::D4.noisy());
    }
}
