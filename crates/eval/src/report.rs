//! Per-stage pipeline instrumentation (DESIGN.md inventory row 25's
//! timers): the facade `Pipeline` records one [`StageStats`] entry per
//! stage — vectorize left, vectorize right, block — into a
//! [`StageReport`], giving every experiment the paper's Table 4-style
//! wall-clock split plus candidate counts without ad-hoc `Instant`
//! plumbing at call sites.

use er_core::json::Json;
use std::time::Duration;

/// One pipeline stage: what ran, how long it took, and how many items
/// (entities embedded, candidate pairs emitted, …) it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageStats {
    pub stage: String,
    pub wall: Duration,
    /// Stage-defined item count — rows written for vectorization stages,
    /// candidate pairs for blocking.
    pub items: usize,
}

/// An append-only log of [`StageStats`], in execution order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageReport {
    stages: Vec<StageStats>,
}

impl StageReport {
    pub fn new() -> StageReport {
        StageReport::default()
    }

    /// Append a stage entry.
    pub fn record(&mut self, stage: impl Into<String>, wall: Duration, items: usize) {
        self.stages.push(StageStats {
            stage: stage.into(),
            wall,
            items,
        });
    }

    /// Run `f`, timing it, and record the stage with the item count `f`
    /// reports alongside its result.
    pub fn time<T>(&mut self, stage: impl Into<String>, f: impl FnOnce() -> (T, usize)) -> T {
        let start = std::time::Instant::now();
        let (value, items) = f();
        self.record(stage, start.elapsed(), items);
        value
    }

    /// All recorded stages, in execution order.
    pub fn stages(&self) -> &[StageStats] {
        &self.stages
    }

    /// The first stage recorded under `name`, if any.
    pub fn get(&self, name: &str) -> Option<&StageStats> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Sum of all stage wall-clocks.
    pub fn total_wall(&self) -> Duration {
        self.stages.iter().map(|s| s.wall).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Item count of the first stage recorded under `name` (0 if absent) —
    /// the record/candidate counts callers grep a report for.
    pub fn items_of(&self, name: &str) -> usize {
        self.get(name).map(|s| s.items).unwrap_or(0)
    }

    /// The report as a machine-readable JSON object:
    ///
    /// ```json
    /// {"stages": [{"stage": "block", "wall_us": 1532, "items": 412}, ...],
    ///  "total_wall_us": 98211}
    /// ```
    ///
    /// Wall-clocks are integral microseconds so the document is
    /// byte-deterministic for a given set of durations (no float
    /// formatting involved).
    pub fn to_json(&self) -> Json {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("stage".into(), Json::from_str_value(&s.stage)),
                    ("wall_us".into(), Json::from_u64(s.wall.as_micros() as u64)),
                    ("items".into(), Json::from_usize(s.items)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("stages".into(), Json::Arr(stages)),
            (
                "total_wall_us".into(),
                Json::from_u64(self.total_wall().as_micros() as u64),
            ),
        ])
    }
}

impl std::fmt::Display for StageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for s in &self.stages {
            writeln!(
                f,
                "{:<24} {:>10.3?}  {:>10} items",
                s.stage, s.wall, s.items
            )?;
        }
        write!(f, "{:<24} {:>10.3?}", "total", self.total_wall())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_stages_in_order_and_sums_wall_clock() {
        let mut report = StageReport::new();
        report.record("vectorize-left", Duration::from_millis(30), 100);
        report.record("vectorize-right", Duration::from_millis(20), 80);
        report.record("block", Duration::from_millis(5), 412);
        assert_eq!(
            report
                .stages()
                .iter()
                .map(|s| s.stage.as_str())
                .collect::<Vec<_>>(),
            vec!["vectorize-left", "vectorize-right", "block"]
        );
        assert_eq!(report.total_wall(), Duration::from_millis(55));
        assert_eq!(report.get("block").unwrap().items, 412);
        assert!(report.get("match").is_none());
    }

    #[test]
    fn time_captures_the_closure_result_and_item_count() {
        let mut report = StageReport::new();
        let doubled = report.time("double", || {
            let v: Vec<i32> = (0..5).map(|x| x * 2).collect();
            let n = v.len();
            (v, n)
        });
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
        let stage = report.get("double").unwrap();
        assert_eq!(stage.items, 5);
        assert!(!report.is_empty());
    }

    #[test]
    fn to_json_round_trips_counts_and_microsecond_walls() {
        let mut report = StageReport::new();
        report.record("vectorize", Duration::from_micros(1500), 90);
        report.record("block", Duration::from_micros(250), 412);
        let json = report.to_json();
        let text = json.to_string();
        // Machine-readable and re-parseable with the workspace parser.
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, json);
        let stages = parsed.expect("stages").unwrap().as_arr().unwrap();
        assert_eq!(stages.len(), 2);
        assert_eq!(
            stages[1].expect("stage").unwrap().as_str().unwrap(),
            "block"
        );
        assert_eq!(stages[1].expect("items").unwrap().as_usize().unwrap(), 412);
        assert_eq!(stages[0].expect("wall_us").unwrap().as_u64().unwrap(), 1500);
        assert_eq!(
            parsed.expect("total_wall_us").unwrap().as_u64().unwrap(),
            1750
        );
        // Same durations, same bytes.
        assert_eq!(text, report.to_json().to_string());
        assert_eq!(report.items_of("block"), 412);
        assert_eq!(report.items_of("missing"), 0);
    }

    #[test]
    fn display_renders_one_line_per_stage_plus_total() {
        let mut report = StageReport::new();
        report.record("vectorize", Duration::from_millis(1), 10);
        report.record("block", Duration::from_millis(2), 20);
        let rendered = report.to_string();
        assert_eq!(rendered.lines().count(), 3);
        assert!(rendered.contains("vectorize"));
        assert!(rendered.lines().last().unwrap().starts_with("total"));
    }
}
