//! er-eval — evaluation machinery (DESIGN.md inventory row 25: PC /
//! precision / F1, Pearson, rankings, discriminativeness histograms,
//! timers, report writers).
//!
//! This PR ships the core [`Metrics`] triple every experiment reports and
//! the per-stage [`StageReport`] timers the facade `Pipeline` fills in;
//! statistics and report writers land with the experiment-binary PR.

pub mod report;

pub use report::{StageReport, StageStats};

use er_core::{EntityId, GroundTruth, ScoredPair};

/// Precision / recall (the paper's "pairs completeness" for blocking) / F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl Metrics {
    /// From raw counts. Degenerate denominators score 0, not NaN.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Metrics {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Metrics {
            precision,
            recall,
            f1,
        }
    }

    /// Score an unscored candidate set (a blocker's output) against the
    /// ground truth. `recall` is the paper's *pairs completeness* — the
    /// fraction of true matches surviving blocking — and `precision` is
    /// the candidate-set quality (≈ 1 / pairs-quality denominator).
    pub fn of_candidates(candidates: &[(EntityId, EntityId)], gt: &GroundTruth) -> Metrics {
        let tp = candidates
            .iter()
            .filter(|(l, r)| gt.contains(*l, *r))
            .count();
        let fp = candidates.len() - tp;
        let fn_ = gt.len().saturating_sub(tp);
        Metrics::from_counts(tp, fp, fn_)
    }

    /// Score a predicted pair set against the ground truth.
    pub fn of_pairs(predicted: &[ScoredPair], gt: &GroundTruth) -> Metrics {
        let tp = predicted
            .iter()
            .filter(|p| gt.contains(p.left, p.right))
            .count();
        let fp = predicted.len() - tp;
        let fn_ = gt.len().saturating_sub(tp);
        Metrics::from_counts(tp, fp, fn_)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::EntityId;

    #[test]
    fn counts_map_to_the_usual_formulas() {
        let m = Metrics::from_counts(8, 2, 8);
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.f1 - 2.0 * 0.8 * 0.5 / 1.3).abs() < 1e-12);
        let zero = Metrics::from_counts(0, 0, 0);
        assert_eq!(zero, Metrics::from_counts(0, 5, 5));
        assert_eq!(zero.f1, 0.0);
    }

    #[test]
    fn degenerate_denominators_score_zero_not_nan() {
        // No predictions at all: precision undefined -> 0, recall 0.
        let none = Metrics::from_counts(0, 0, 7);
        assert_eq!((none.precision, none.recall, none.f1), (0.0, 0.0, 0.0));
        // No true matches exist: recall undefined -> 0.
        let no_gt = Metrics::from_counts(0, 7, 0);
        assert_eq!((no_gt.precision, no_gt.recall, no_gt.f1), (0.0, 0.0, 0.0));
        // Perfect prediction: both denominators collapse to tp.
        let perfect = Metrics::from_counts(7, 0, 0);
        assert_eq!(
            (perfect.precision, perfect.recall, perfect.f1),
            (1.0, 1.0, 1.0)
        );
        for m in [none, no_gt, perfect] {
            assert!(m.precision.is_finite() && m.recall.is_finite() && m.f1.is_finite());
        }
    }

    #[test]
    fn scores_candidates_for_pairs_completeness() {
        let gt = GroundTruth::clean_clean([
            (EntityId(0), EntityId(5)),
            (EntityId(1), EntityId(6)),
            (EntityId(2), EntityId(7)),
        ]);
        let candidates = vec![
            (EntityId(0), EntityId(5)),
            (EntityId(1), EntityId(6)),
            (EntityId(1), EntityId(7)), // near-miss: not in gt
            (EntityId(3), EntityId(9)),
        ];
        let m = Metrics::of_candidates(&candidates, &gt);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12, "PC = 2 of 3 matches");
        assert!((m.precision - 0.5).abs() < 1e-12);

        // Empty candidate set against empty ground truth stays finite.
        let zero = Metrics::of_candidates(&[], &GroundTruth::default());
        assert_eq!(zero, Metrics::from_counts(0, 0, 0));
    }

    #[test]
    fn scores_pairs_against_ground_truth() {
        let gt = GroundTruth::clean_clean((0..4).map(|i| (EntityId(i), EntityId(i))));
        let predicted = vec![
            ScoredPair::new(EntityId(0), EntityId(0), 0.9),
            ScoredPair::new(EntityId(1), EntityId(1), 0.8),
            ScoredPair::new(EntityId(2), EntityId(3), 0.7),
        ];
        let m = Metrics::of_pairs(&predicted, &gt);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }
}
