//! er-eval — evaluation machinery (DESIGN.md inventory row 25: PC /
//! precision / F1, Pearson, rankings, discriminativeness histograms,
//! timers, report writers).
//!
//! This PR ships the core [`Metrics`] triple every experiment reports;
//! statistics and report writers land with the experiment-binary PR.

use er_core::{GroundTruth, ScoredPair};

/// Precision / recall (the paper's "pairs completeness" for blocking) / F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl Metrics {
    /// From raw counts. Degenerate denominators score 0, not NaN.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Metrics {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Metrics {
            precision,
            recall,
            f1,
        }
    }

    /// Score a predicted pair set against the ground truth.
    pub fn of_pairs(predicted: &[ScoredPair], gt: &GroundTruth) -> Metrics {
        let tp = predicted
            .iter()
            .filter(|p| gt.contains(p.left, p.right))
            .count();
        let fp = predicted.len() - tp;
        let fn_ = gt.len().saturating_sub(tp);
        Metrics::from_counts(tp, fp, fn_)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::EntityId;

    #[test]
    fn counts_map_to_the_usual_formulas() {
        let m = Metrics::from_counts(8, 2, 8);
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.f1 - 2.0 * 0.8 * 0.5 / 1.3).abs() < 1e-12);
        let zero = Metrics::from_counts(0, 0, 0);
        assert_eq!(zero, Metrics::from_counts(0, 5, 5));
        assert_eq!(zero.f1, 0.0);
    }

    #[test]
    fn scores_pairs_against_ground_truth() {
        let gt = GroundTruth::clean_clean((0..4).map(|i| (EntityId(i), EntityId(i))));
        let predicted = vec![
            ScoredPair::new(EntityId(0), EntityId(0), 0.9),
            ScoredPair::new(EntityId(1), EntityId(1), 0.8),
            ScoredPair::new(EntityId(2), EntityId(3), 0.7),
        ];
        let m = Metrics::of_pairs(&predicted, &gt);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }
}
