//! er-eval — evaluation machinery (DESIGN.md inventory row 25: PC /
//! precision / F1, Pearson, rankings, discriminativeness histograms,
//! timers, report writers).
//!
//! This PR ships the core [`Metrics`] triple every experiment reports and
//! the per-stage [`StageReport`] timers the facade `Pipeline` fills in;
//! statistics and report writers land with the experiment-binary PR.

pub mod report;
pub mod stats;

pub use report::{StageReport, StageStats};
pub use stats::pearson;

use er_core::{EntityId, GroundTruth, ScoredPair};
use std::collections::BTreeSet;

/// Precision / recall (the paper's "pairs completeness" for blocking) / F1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

impl Metrics {
    /// From raw counts. Degenerate denominators score 0, not NaN.
    pub fn from_counts(tp: usize, fp: usize, fn_: usize) -> Metrics {
        let precision = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let recall = if tp + fn_ == 0 {
            0.0
        } else {
            tp as f64 / (tp + fn_) as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Metrics {
            precision,
            recall,
            f1,
        }
    }

    /// Score an unscored candidate set (a blocker's output) against the
    /// ground truth. `recall` is the paper's *pairs completeness* — the
    /// fraction of true matches surviving blocking — and `precision` is
    /// the candidate-set quality (≈ 1 / pairs-quality denominator).
    ///
    /// Duplicate predictions are counted **once**: pairs are
    /// order-normalized to the ground truth's convention (Dirty ER is
    /// order-free) and deduplicated before counting. The pre-dedup
    /// implementation counted each duplicate as a fresh true positive,
    /// letting `tp` exceed `gt.len()` while a `saturating_sub` silently
    /// clamped the false-negative count — inflating both precision and
    /// recall.
    pub fn of_candidates(candidates: &[(EntityId, EntityId)], gt: &GroundTruth) -> Metrics {
        Metrics::of_unique_pairs(candidates.iter().copied(), gt)
    }

    /// Score a predicted pair set against the ground truth. Deduplicates
    /// exactly like [`Metrics::of_candidates`]; scores are ignored.
    pub fn of_pairs(predicted: &[ScoredPair], gt: &GroundTruth) -> Metrics {
        Metrics::of_unique_pairs(predicted.iter().map(|p| (p.left, p.right)), gt)
    }

    fn of_unique_pairs(
        predicted: impl IntoIterator<Item = (EntityId, EntityId)>,
        gt: &GroundTruth,
    ) -> Metrics {
        let unique: BTreeSet<(EntityId, EntityId)> = predicted
            .into_iter()
            .map(|(l, r)| {
                if gt.is_dirty() && l > r {
                    (r, l)
                } else {
                    (l, r)
                }
            })
            .collect();
        let tp = unique.iter().filter(|(l, r)| gt.contains(*l, *r)).count();
        let fp = unique.len() - tp;
        // Distinct normalized pairs hit distinct ground-truth entries, so
        // tp ≤ gt.len() holds and the subtraction cannot underflow.
        let fn_ = gt.len() - tp;
        Metrics::from_counts(tp, fp, fn_)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::EntityId;

    #[test]
    fn counts_map_to_the_usual_formulas() {
        let m = Metrics::from_counts(8, 2, 8);
        assert!((m.precision - 0.8).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
        assert!((m.f1 - 2.0 * 0.8 * 0.5 / 1.3).abs() < 1e-12);
        let zero = Metrics::from_counts(0, 0, 0);
        assert_eq!(zero, Metrics::from_counts(0, 5, 5));
        assert_eq!(zero.f1, 0.0);
    }

    #[test]
    fn degenerate_denominators_score_zero_not_nan() {
        // No predictions at all: precision undefined -> 0, recall 0.
        let none = Metrics::from_counts(0, 0, 7);
        assert_eq!((none.precision, none.recall, none.f1), (0.0, 0.0, 0.0));
        // No true matches exist: recall undefined -> 0.
        let no_gt = Metrics::from_counts(0, 7, 0);
        assert_eq!((no_gt.precision, no_gt.recall, no_gt.f1), (0.0, 0.0, 0.0));
        // Perfect prediction: both denominators collapse to tp.
        let perfect = Metrics::from_counts(7, 0, 0);
        assert_eq!(
            (perfect.precision, perfect.recall, perfect.f1),
            (1.0, 1.0, 1.0)
        );
        for m in [none, no_gt, perfect] {
            assert!(m.precision.is_finite() && m.recall.is_finite() && m.f1.is_finite());
        }
    }

    #[test]
    fn scores_candidates_for_pairs_completeness() {
        let gt = GroundTruth::clean_clean([
            (EntityId(0), EntityId(5)),
            (EntityId(1), EntityId(6)),
            (EntityId(2), EntityId(7)),
        ]);
        let candidates = vec![
            (EntityId(0), EntityId(5)),
            (EntityId(1), EntityId(6)),
            (EntityId(1), EntityId(7)), // near-miss: not in gt
            (EntityId(3), EntityId(9)),
        ];
        let m = Metrics::of_candidates(&candidates, &gt);
        assert!((m.recall - 2.0 / 3.0).abs() < 1e-12, "PC = 2 of 3 matches");
        assert!((m.precision - 0.5).abs() < 1e-12);

        // Empty candidate set against empty ground truth stays finite.
        let zero = Metrics::of_candidates(&[], &GroundTruth::default());
        assert_eq!(zero, Metrics::from_counts(0, 0, 0));
    }

    #[test]
    fn duplicate_predictions_no_longer_inflate_the_metrics() {
        // Regression: the pre-dedup counter saw the same true pair three
        // times, reported tp = 3 > gt.len() = 2, and saturating_sub hid
        // the inflation (fn = 0 ⇒ recall 1.0, precision 0.75).
        let gt = GroundTruth::clean_clean([(EntityId(0), EntityId(0)), (EntityId(1), EntityId(1))]);
        let predicted = vec![
            ScoredPair::new(EntityId(0), EntityId(0), 0.9),
            ScoredPair::new(EntityId(0), EntityId(0), 0.9),
            ScoredPair::new(EntityId(0), EntityId(0), 0.8),
            ScoredPair::new(EntityId(5), EntityId(5), 0.7),
        ];
        let m = Metrics::of_pairs(&predicted, &gt);
        assert!((m.precision - 0.5).abs() < 1e-12, "1 unique tp of 2 unique");
        assert!((m.recall - 0.5).abs() < 1e-12, "1 of 2 true matches found");

        let candidates: Vec<(EntityId, EntityId)> =
            predicted.iter().map(|p| (p.left, p.right)).collect();
        assert_eq!(Metrics::of_candidates(&candidates, &gt), m);
    }

    #[test]
    fn dirty_ground_truth_merges_flipped_duplicates() {
        // (2,7) and (7,2) are the same Dirty-ER pair: one tp, not two.
        let gt = GroundTruth::dirty([(EntityId(2), EntityId(7))]);
        let predicted = vec![
            ScoredPair::new(EntityId(2), EntityId(7), 0.9),
            ScoredPair::new(EntityId(7), EntityId(2), 0.9),
        ];
        let m = Metrics::of_pairs(&predicted, &gt);
        assert_eq!((m.precision, m.recall, m.f1), (1.0, 1.0, 1.0));
        // Clean-Clean keeps direction: (7,2) is a distinct (false) pair.
        let cc = GroundTruth::clean_clean([(EntityId(2), EntityId(7))]);
        let m = Metrics::of_pairs(&predicted, &cc);
        assert!((m.precision - 0.5).abs() < 1e-12);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn scores_pairs_against_ground_truth() {
        let gt = GroundTruth::clean_clean((0..4).map(|i| (EntityId(i), EntityId(i))));
        let predicted = vec![
            ScoredPair::new(EntityId(0), EntityId(0), 0.9),
            ScoredPair::new(EntityId(1), EntityId(1), 0.8),
            ScoredPair::new(EntityId(2), EntityId(3), 0.7),
        ];
        let m = Metrics::of_pairs(&predicted, &gt);
        assert!((m.precision - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall - 0.5).abs() < 1e-12);
    }
}
