//! Sweep statistics (DESIGN.md inventory row 25). The paper's Fig. 2
//! argues clusterer choice barely matters by showing the per-δ F1 curves
//! of UMC, Connected Components and Kiraly are strongly *correlated* —
//! this module ships the Pearson coefficient that check runs on.

/// Pearson correlation coefficient of two equal-length samples.
///
/// Returns 0.0 when either sample is constant (zero variance) or shorter
/// than two points — the "no linear relationship measurable" convention,
/// which keeps sweep comparisons NaN-free when a clusterer flatlines.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "samples differ in length");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean_x = xs.iter().sum::<f64>() / n as f64;
    let mean_y = ys.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mean_x;
        let dy = y - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x == 0.0 || var_y == 0.0 {
        return 0.0;
    }
    cov / (var_x * var_y).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_relationships_score_plus_minus_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let down: Vec<f64> = xs.iter().map(|x| -0.5 * x + 3.0).collect();
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn hand_computed_fixture() {
        // xs = [1,2,3], ys = [1,3,2]: deviations (−1,0,1) and (−1,1,0)
        // give Σdxdy = 1, Σdx² = Σdy² = 2, so r = 1/√(2·2) = 0.5.
        let r = pearson(&[1.0, 2.0, 3.0], &[1.0, 3.0, 2.0]);
        assert!((r - 0.5).abs() < 1e-12, "{r}");
    }

    #[test]
    fn degenerate_samples_score_zero_not_nan() {
        assert_eq!(pearson(&[], &[]), 0.0);
        assert_eq!(pearson(&[1.0], &[2.0]), 0.0);
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert!(pearson(&[1.0, 2.0], &[5.0, 5.0]).is_finite());
    }
}
