//! The cost-estimate accuracy suite (ISSUE 9 acceptance): on D1/D3/D7,
//! for both metrics, every backend's estimated distance-evaluation count
//! stays within 25% of the measured `search_counted` totals.
//!
//! Exact estimates are analytic and must be *exactly* right; HNSW and LSH
//! estimates are model-based (probed anchors / bucket occupancy) and get
//! the full 25% margin. HNSW is deliberately probed with a *subset* of
//! the queries and validated against all of them — the estimator must
//! generalize, not memorize.

use er_core::{
    EmbeddingMatrix, KernelTier, Metric, Quantization, QueryParams, ScanConfig, SerializationMode,
};
use er_datasets::{CleanCleanDataset, DatasetId};
use er_embed::{LanguageModel, ModelCode, ModelZoo, ZooConfig};
use er_index::{ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, IndexReader, LshConfig};
use er_tune::CostModel;

const K: usize = 10;
const MARGIN: f64 = 0.25;

fn embed(ds: &CleanCleanDataset) -> (EmbeddingMatrix, EmbeddingMatrix) {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let mode = SerializationMode::SchemaAgnostic;
    let to_matrix = |entities: &[er_core::Entity]| {
        let rows: Vec<er_core::Embedding> = entities
            .iter()
            .map(|e| model.embed(&e.serialize(&mode)))
            .collect();
        EmbeddingMatrix::from_embeddings(&rows)
    };
    (to_matrix(&ds.left), to_matrix(&ds.right))
}

fn assert_within(estimated: f64, measured: f64, label: &str) {
    assert!(
        measured > 0.0,
        "{label}: measured no evaluations — the comparison is vacuous"
    );
    let error = (estimated - measured).abs() / measured;
    assert!(
        error <= MARGIN,
        "{label}: estimated {estimated:.1} vs measured {measured:.1} evals \
         ({:.1}% > {:.0}%)",
        error * 100.0,
        MARGIN * 100.0
    );
}

fn mean_measured(index: &dyn IndexReader, queries: &EmbeddingMatrix, params: &QueryParams) -> f64 {
    let total: u64 = queries
        .rows_iter()
        .map(|q| index.search_counted(q, K, params).1)
        .sum();
    total as f64 / queries.len() as f64
}

/// Every `stride`-th query — the probe sample the estimators are built
/// from (they must generalize to the full query set).
fn probe_sample(queries: &EmbeddingMatrix, stride: usize) -> Vec<&[f32]> {
    (0..queries.len())
        .step_by(stride)
        .map(|i| queries.row(i))
        .collect()
}

fn check_dataset(id: DatasetId) {
    let ds = CleanCleanDataset::generate(id, 42);
    let (queries, rows) = embed(&ds);
    let model = CostModel::builtin();
    let dim = rows.dim();

    for metric in [Metric::Euclidean, Metric::Cosine] {
        let label = |what: &str| format!("{id:?}/{metric:?}/{what}");

        // --- Exact: analytic, must match the counter contract exactly.
        for scan in [
            ScanConfig::default(),
            ScanConfig {
                tier: KernelTier::Lanes,
                quant: Quantization::Int8 { rerank: 4 * K },
            },
        ] {
            let index = ExactIndex::from_source_scan(&rows, metric, scan).expect("builds");
            let measured = mean_measured(&index, &queries, &QueryParams::default());
            let est = model
                .exact(rows.len(), dim, metric, &scan, K)
                .expect("cells");
            assert_within(est.evals, measured, &label("exact"));
            assert_eq!(
                est.evals,
                measured,
                "{}: the analytic exact estimate must be exact",
                label("exact")
            );
        }

        // --- HNSW: probed on a query subset, validated on all queries,
        // including beam widths *between* the probe anchors.
        let hnsw = HnswIndex::from_source(
            &rows,
            HnswConfig {
                metric,
                ..HnswConfig::default()
            },
        );
        let curve = model
            .probe_hnsw(
                &hnsw,
                probe_sample(&queries, 4).into_iter(),
                K,
                &[16, 32, 64, 128],
            )
            .expect("probe");
        for ef in [16usize, 24, 48, 96, 128] {
            let measured = mean_measured(&hnsw, &queries, &QueryParams::with_ef_search(ef));
            assert_within(
                curve.estimate(ef).evals,
                measured,
                &label(&format!("hnsw ef={ef}")),
            );
        }

        // --- LSH: expected-occupancy estimate (a hash-only dry gather on
        // every other query — no distance evaluations) vs the measured
        // full-width evaluations of real searches over all queries.
        let lsh = HyperplaneLsh::from_source(
            &rows,
            LshConfig {
                tables: 16,
                probes: 4,
                metric,
                ..LshConfig::default()
            },
        );
        for (tables, probes) in [(4usize, 2usize), (8, 2), (16, 4)] {
            let params = QueryParams {
                probes: Some(probes),
                tables: Some(tables),
                ef_search: None,
            };
            let measured = mean_measured(&lsh, &queries, &params);
            let est = model
                .lsh(&lsh, probe_sample(&queries, 2).into_iter(), probes, tables)
                .expect("cells");
            assert_within(
                est.evals,
                measured,
                &label(&format!("lsh t={tables} p={probes}")),
            );
            // The occupancy hook bounds the union from above: gathering
            // dedups across tables, raw occupancies do not.
            for q in probe_sample(&queries, 2) {
                let union = lsh.candidates_slice_with(q, probes, tables).len();
                let mass: usize = lsh.probed_occupancy(q, probes, tables).iter().sum();
                assert!(
                    union <= mass,
                    "{}: union {union} > occupancy mass {mass}",
                    label("lsh")
                );
            }
        }
    }
}

#[test]
fn d1_estimates_are_within_25_percent_of_measured_evals() {
    check_dataset(DatasetId::D1);
}

#[test]
fn d3_estimates_are_within_25_percent_of_measured_evals() {
    check_dataset(DatasetId::D3);
}

#[test]
fn d7_estimates_are_within_25_percent_of_measured_evals() {
    check_dataset(DatasetId::D7);
}
