//! Autotuner behavior: determinism (same seed + sample ⇒ byte-identical
//! chosen `OperatingPoint`), target-respecting choices, and estimate
//! accuracy for the chosen point against the measured twin.

use er_core::{EmbeddingMatrix, Metric, OperatingPoint, SerializationMode};
use er_datasets::{CleanCleanDataset, DatasetId};
use er_embed::{LanguageModel, ModelCode, ModelZoo, ZooConfig};
use er_tune::{autotune, measure_point, CostModel, TunerConfig};

fn embed(id: DatasetId) -> (EmbeddingMatrix, EmbeddingMatrix) {
    let ds = CleanCleanDataset::generate(id, 42);
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let mode = SerializationMode::SchemaAgnostic;
    let to_matrix = |entities: &[er_core::Entity]| {
        let rows: Vec<er_core::Embedding> = entities
            .iter()
            .map(|e| model.embed(&e.serialize(&mode)))
            .collect();
        EmbeddingMatrix::from_embeddings(&rows)
    };
    (to_matrix(&ds.left), to_matrix(&ds.right))
}

#[test]
fn same_seed_and_sample_choose_a_byte_identical_point() {
    let (queries, rows) = embed(DatasetId::D1);
    let goal = OperatingPoint::recall_target(0.9).metric(Metric::Cosine);
    let config = TunerConfig::default();
    let model = CostModel::builtin();

    let first = autotune(&queries, &rows, &goal, &config, &model).expect("tunes");
    let second = autotune(&queries, &rows, &goal, &config, &model).expect("tunes");
    assert_eq!(
        first.chosen.to_json(),
        second.chosen.to_json(),
        "the tuner must be a pure function of (inputs, seed)"
    );
    // Not just the winner: the whole sweep replays identically.
    assert_eq!(first.trials.len(), second.trials.len());
    for (a, b) in first.trials.iter().zip(&second.trials) {
        assert_eq!(a.point.to_json(), b.point.to_json());
        assert_eq!(a.recall.to_bits(), b.recall.to_bits());
        assert_eq!(a.est_ns.to_bits(), b.est_ns.to_bits());
    }

    // Fully independent inputs (fresh dataset, fresh zoo pretrain)
    // reproduce the same choice too — nothing ambient leaks in.
    let (queries2, rows2) = embed(DatasetId::D1);
    let third = autotune(&queries2, &rows2, &goal, &config, &model).expect("tunes");
    assert_eq!(first.chosen.to_json(), third.chosen.to_json());
}

#[test]
fn chosen_point_meets_the_proxy_target_and_beats_the_exact_scan() {
    let (queries, rows) = embed(DatasetId::D1);
    let goal = OperatingPoint::recall_target(0.9).metric(Metric::Cosine);
    let outcome = autotune(
        &queries,
        &rows,
        &goal,
        &TunerConfig::default(),
        &CostModel::builtin(),
    )
    .expect("tunes");

    let chosen = outcome.chosen_trial();
    assert!(
        chosen.recall >= 0.9,
        "chosen proxy recall {} below target",
        chosen.recall
    );
    // The exact Reference scan is always a feasible trial; choosing
    // anything means it was no more expensive than that.
    let exact_ns = outcome.trials[0].est_ns;
    assert!(
        chosen.est_ns <= exact_ns,
        "chosen {} ns/query > exact scan {exact_ns} ns/query",
        chosen.est_ns
    );
    // The goal's intent fields survive into the chosen point.
    assert_eq!(outcome.chosen.k, goal.k);
    assert_eq!(outcome.chosen.metric, goal.metric);
    assert_eq!(outcome.chosen.recall_target, Some(0.9));
}

#[test]
fn chosen_estimate_matches_the_measured_twin_within_margin() {
    // The repo's datasets fit inside the tuner sample, so the chosen
    // trial's estimate must agree with a from-scratch measured build.
    let (queries, rows) = embed(DatasetId::D7);
    let goal = OperatingPoint::recall_target(0.9).metric(Metric::Cosine);
    let outcome = autotune(
        &queries,
        &rows,
        &goal,
        &TunerConfig::default(),
        &CostModel::builtin(),
    )
    .expect("tunes");
    let (_, measured_per_query) =
        measure_point(&queries, &rows, &outcome.chosen).expect("measures");
    let est = outcome.chosen_trial().est_evals;
    let error = (est - measured_per_query).abs() / measured_per_query;
    assert!(
        error <= 0.25,
        "chosen point: estimated {est:.1} vs measured {measured_per_query:.1} evals/query"
    );
}

#[test]
fn an_unreachable_budget_falls_back_to_the_exact_reference_scan() {
    let (queries, rows) = embed(DatasetId::D1);
    // A budget no real configuration can meet: nothing is feasible, so
    // the tuner returns the always-correct exact Reference scan.
    let goal = OperatingPoint::recall_target(0.9)
        .metric(Metric::Cosine)
        .budget(1e-6);
    let outcome = autotune(
        &queries,
        &rows,
        &goal,
        &TunerConfig::default(),
        &CostModel::builtin(),
    )
    .expect("tunes");
    assert!(outcome.trials.iter().all(|t| !t.feasible));
    assert_eq!(outcome.chosen.backend.name(), "exact");
    assert_eq!(outcome.chosen.scan, er_core::ScanConfig::default());
}
