//! Calibration tables: nanoseconds-per-row microbench cells in the
//! `BENCH_kernels.json` format, keyed by `(cost tier, metric, dim)`.
//!
//! The cost model prices a query as *distance evaluations × ns-per-row*,
//! so everything hinges on knowing what one row costs on this machine.
//! That number comes from the committed kernel microbenchmark snapshot:
//! [`Calibration::from_json`] parses a `BENCH_kernels.json` document
//! (`bench_kernels --check` keeps it honest in CI), and
//! [`Calibration::builtin`] carries the snapshot's cells compiled in, so
//! the tuner works without touching the filesystem.
//!
//! Lookups interpolate linearly between the two bracketing benched
//! dimensions; outside the benched range the nearest cell is scaled by
//! the dim ratio (row cost is linear in dim for every kernel here).

use er_core::json::Json;
use er_core::{ErError, KernelTier, Metric, Quantization, Result, ScanConfig};

/// The kernel a scan's *first pass* runs on — [`KernelTier`] widened with
/// the quantized tiers, matching the `tier` column of `BENCH_kernels.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostTier {
    Reference,
    Lanes,
    Int8,
    Pq,
}

impl CostTier {
    /// The `BENCH_kernels.json` tier name.
    pub fn name(self) -> &'static str {
        match self {
            CostTier::Reference => "reference",
            CostTier::Lanes => "lanes",
            CostTier::Int8 => "int8",
            CostTier::Pq => "pq",
        }
    }

    pub fn from_name(name: &str) -> Option<CostTier> {
        match name {
            "reference" => Some(CostTier::Reference),
            "lanes" => Some(CostTier::Lanes),
            "int8" => Some(CostTier::Int8),
            "pq" => Some(CostTier::Pq),
            _ => None,
        }
    }

    /// The tier a [`ScanConfig`]'s first pass runs on: the quantized tier
    /// when quantization is set, the full-width kernel tier otherwise.
    pub fn of_scan(scan: &ScanConfig) -> CostTier {
        match scan.quant {
            Quantization::None => CostTier::of_kernel(scan.tier),
            Quantization::Int8 { .. } => CostTier::Int8,
            Quantization::Pq { .. } => CostTier::Pq,
        }
    }

    /// The full-width tier (what re-ranking and graph distances run on).
    pub fn of_kernel(tier: KernelTier) -> CostTier {
        match tier {
            KernelTier::Reference => CostTier::Reference,
            KernelTier::Lanes => CostTier::Lanes,
        }
    }
}

/// The `BENCH_kernels.json` metric column name for a [`Metric`].
pub fn metric_name(metric: Metric) -> &'static str {
    match metric {
        Metric::Euclidean => "sqeuclidean",
        Metric::Cosine => "cosine",
    }
}

/// One microbench cell: what one row of a `dim`-dimensional scan costs
/// under `(tier, metric)` on the benched machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    pub tier: CostTier,
    /// `"dot"`, `"cosine"` or `"sqeuclidean"` — kept as the raw bench
    /// name because the hash-cost lookup needs `"dot"`, which has no
    /// [`Metric`] variant.
    pub metric: &'static str,
    pub dim: usize,
    pub ns_per_row: f64,
}

/// A full `(tier, metric, dim)` table of ns-per-row cells.
#[derive(Debug, Clone)]
pub struct Calibration {
    cells: Vec<Cell>,
}

/// The committed `BENCH_kernels.json` snapshot, compiled in. Regenerate
/// with `cargo run --release --bin bench_kernels` if the numbers drift.
const BUILTIN: &[(CostTier, &str, usize, f64)] = &[
    (CostTier::Reference, "dot", 48, 23.868397),
    (CostTier::Reference, "cosine", 48, 25.780834),
    (CostTier::Reference, "sqeuclidean", 48, 27.776),
    (CostTier::Lanes, "dot", 48, 13.102708),
    (CostTier::Lanes, "cosine", 48, 12.514688),
    (CostTier::Lanes, "sqeuclidean", 48, 15.775354),
    (CostTier::Int8, "dot", 48, 7.3765),
    (CostTier::Int8, "cosine", 48, 8.043167),
    (CostTier::Int8, "sqeuclidean", 48, 8.47425),
    (CostTier::Pq, "dot", 48, 5.1401668),
    (CostTier::Pq, "cosine", 48, 6.4361873),
    (CostTier::Pq, "sqeuclidean", 48, 5.064271),
    (CostTier::Reference, "dot", 64, 36.832645),
    (CostTier::Reference, "cosine", 64, 40.547585),
    (CostTier::Reference, "sqeuclidean", 64, 47.59342),
    (CostTier::Lanes, "dot", 64, 20.300125),
    (CostTier::Lanes, "cosine", 64, 18.14148),
    (CostTier::Lanes, "sqeuclidean", 64, 21.86329),
    (CostTier::Int8, "dot", 64, 5.8832707),
    (CostTier::Int8, "cosine", 64, 6.7543125),
    (CostTier::Int8, "sqeuclidean", 64, 6.630375),
    (CostTier::Pq, "dot", 64, 5.1114583),
    (CostTier::Pq, "cosine", 64, 6.5704165),
    (CostTier::Pq, "sqeuclidean", 64, 5.0927916),
    (CostTier::Reference, "dot", 96, 55.922314),
    (CostTier::Reference, "cosine", 96, 56.78425),
    (CostTier::Reference, "sqeuclidean", 96, 68.10485),
    (CostTier::Lanes, "dot", 96, 28.092522),
    (CostTier::Lanes, "cosine", 96, 28.066626),
    (CostTier::Lanes, "sqeuclidean", 96, 33.56194),
    (CostTier::Int8, "dot", 96, 7.306354),
    (CostTier::Int8, "cosine", 96, 9.330521),
    (CostTier::Int8, "sqeuclidean", 96, 8.638729),
    (CostTier::Pq, "dot", 96, 5.29),
    (CostTier::Pq, "cosine", 96, 6.833875),
    (CostTier::Pq, "sqeuclidean", 96, 5.395604),
];

impl Calibration {
    /// The compiled-in copy of the committed kernel snapshot.
    pub fn builtin() -> Calibration {
        Calibration {
            cells: BUILTIN
                .iter()
                .map(|&(tier, metric, dim, ns_per_row)| Cell {
                    tier,
                    metric,
                    dim,
                    ns_per_row,
                })
                .collect(),
        }
    }

    /// Parse a `BENCH_kernels.json` document (the `cells` array; other
    /// fields are ignored). Cells with an unknown tier or metric name are
    /// skipped — forward compatibility with new bench columns.
    pub fn from_json(doc: &Json) -> Result<Calibration> {
        let cells_json = doc
            .get("cells")
            .and_then(|c| c.as_arr().ok())
            .ok_or_else(|| ErError::Config("calibration document has no cells array".into()))?;
        let mut cells = Vec::new();
        for cell in cells_json {
            let tier = cell.get("tier").and_then(|v| v.as_str().ok());
            let metric = cell.get("metric").and_then(|v| v.as_str().ok());
            let dim = cell.get("dim").and_then(|v| v.as_usize().ok());
            let ns = cell.get("ns_per_row").and_then(|v| v.as_f32().ok());
            let (Some(tier), Some(metric), Some(dim), Some(ns)) = (tier, metric, dim, ns) else {
                return Err(ErError::Config(format!(
                    "malformed calibration cell: {cell}"
                )));
            };
            let Some(tier) = CostTier::from_name(tier) else {
                continue;
            };
            let metric = match metric {
                "dot" => "dot",
                "cosine" => "cosine",
                "sqeuclidean" => "sqeuclidean",
                _ => continue,
            };
            if ns <= 0.0 || dim == 0 {
                return Err(ErError::Config(format!(
                    "degenerate calibration cell: tier={} metric={metric} dim={dim} ns={ns}",
                    tier.name()
                )));
            }
            cells.push(Cell {
                tier,
                metric,
                dim,
                ns_per_row: ns as f64,
            });
        }
        if cells.is_empty() {
            return Err(ErError::Config(
                "calibration document has no usable cells".into(),
            ));
        }
        Ok(Calibration { cells })
    }

    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Ns-per-row for one stored row under `(tier, metric)` at `dim`:
    /// linear interpolation between the bracketing benched dims, nearest
    /// cell scaled by the dim ratio outside the benched range.
    pub fn ns_per_row(&self, tier: CostTier, metric: &str, dim: usize) -> Result<f64> {
        let mut matching: Vec<&Cell> = self
            .cells
            .iter()
            .filter(|c| c.tier == tier && c.metric == metric)
            .collect();
        if matching.is_empty() {
            return Err(ErError::Config(format!(
                "no calibration cells for tier={} metric={metric}",
                tier.name()
            )));
        }
        matching.sort_by_key(|c| c.dim);
        let d = dim as f64;
        let first = matching[0];
        let last = matching[matching.len() - 1];
        if dim <= first.dim {
            return Ok(first.ns_per_row * d / first.dim as f64);
        }
        if dim >= last.dim {
            return Ok(last.ns_per_row * d / last.dim as f64);
        }
        let hi = matching
            .iter()
            .position(|c| c.dim >= dim)
            .expect("in range");
        let (lo, hi) = (matching[hi - 1], matching[hi]);
        if hi.dim == dim {
            return Ok(hi.ns_per_row);
        }
        let t = (d - lo.dim as f64) / (hi.dim - lo.dim) as f64;
        Ok(lo.ns_per_row + t * (hi.ns_per_row - lo.ns_per_row))
    }

    /// Convenience: ns-per-row for a [`Metric`] (not the raw bench name).
    pub fn ns_per_row_metric(&self, tier: CostTier, metric: Metric, dim: usize) -> Result<f64> {
        self.ns_per_row(tier, metric_name(metric), dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_round_trips_through_the_bench_json_format() {
        let builtin = Calibration::builtin();
        // Render a minimal BENCH_kernels-shaped document and parse it back.
        let cells: Vec<Json> = builtin
            .cells()
            .iter()
            .map(|c| {
                Json::Obj(vec![
                    ("tier".into(), Json::from_str_value(c.tier.name())),
                    ("metric".into(), Json::from_str_value(c.metric)),
                    ("dim".into(), Json::from_usize(c.dim)),
                    ("ns_per_row".into(), Json::from_f32(c.ns_per_row as f32)),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![("cells".into(), Json::Arr(cells))]);
        let parsed = Calibration::from_json(&doc).expect("parses");
        assert_eq!(parsed.cells().len(), builtin.cells().len());
        for (a, b) in parsed.cells().iter().zip(builtin.cells()) {
            assert_eq!(a.tier, b.tier);
            assert_eq!(a.metric, b.metric);
            assert_eq!(a.dim, b.dim);
            // from_f32 narrows; allow the f32 round-trip wobble.
            assert!((a.ns_per_row - b.ns_per_row).abs() < 1e-3);
        }
    }

    #[test]
    fn lookup_interpolates_between_benched_dims_and_scales_outside() {
        let cal = Calibration::builtin();
        let at48 = cal.ns_per_row(CostTier::Reference, "cosine", 48).unwrap();
        let at64 = cal.ns_per_row(CostTier::Reference, "cosine", 64).unwrap();
        assert!((at48 - 25.780834).abs() < 1e-9);
        // Midpoint of the 48..64 bracket.
        let at56 = cal.ns_per_row(CostTier::Reference, "cosine", 56).unwrap();
        assert!((at56 - 0.5 * (at48 + at64)).abs() < 1e-9);
        // Below the range: scaled from the dim-48 cell.
        let at24 = cal.ns_per_row(CostTier::Reference, "cosine", 24).unwrap();
        assert!((at24 - at48 * 0.5).abs() < 1e-9);
        // Above the range: scaled from the dim-96 cell.
        let at96 = cal.ns_per_row(CostTier::Reference, "cosine", 96).unwrap();
        let at192 = cal.ns_per_row(CostTier::Reference, "cosine", 192).unwrap();
        assert!((at192 - at96 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn scan_config_maps_to_its_first_pass_tier() {
        assert_eq!(
            CostTier::of_scan(&ScanConfig::default()),
            CostTier::Reference
        );
        assert_eq!(
            CostTier::of_scan(&ScanConfig::with_tier(KernelTier::Lanes)),
            CostTier::Lanes
        );
        let int8 = ScanConfig {
            tier: KernelTier::Lanes,
            quant: Quantization::Int8 { rerank: 8 },
        };
        assert_eq!(CostTier::of_scan(&int8), CostTier::Int8);
    }

    #[test]
    fn missing_cells_and_malformed_documents_are_typed_errors() {
        let cal = Calibration::builtin();
        assert!(matches!(
            cal.ns_per_row(CostTier::Reference, "hamming", 64),
            Err(ErError::Config(_))
        ));
        assert!(matches!(
            Calibration::from_json(&Json::Obj(vec![])),
            Err(ErError::Config(_))
        ));
    }
}
