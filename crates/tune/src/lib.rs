//! er-tune — query-cost model + parameter autotuner (ROADMAP item 4).
//!
//! The paper hand-picks blocking parameters globally; this crate chooses
//! them per dataset. Three pieces:
//!
//! * [`Calibration`] — ns-per-row microbench cells in the
//!   `BENCH_kernels.json` format (compiled-in snapshot via
//!   [`Calibration::builtin`], or parsed from a fresh bench run).
//! * [`CostModel`] — per-backend query-cost estimators: exact scans
//!   analytically (`rows × ns_per_row(dim, tier, quant)`), HNSW from
//!   measured distance-evaluation counts at anchor beam widths
//!   ([`HnswCostModel`]), LSH from expected bucket occupancy. Each is
//!   validated against measured `search_counted` evaluations within 25%
//!   in `tests/cost_accuracy.rs`.
//! * [`autotune()`] — sample the collection, sweep
//!   `(backend, M, ef_search, tables, probes, tier, quant)` with
//!   ground-truth-free recall proxies, and return the cheapest
//!   [`er_core::OperatingPoint`] meeting the recall target;
//!   [`measure_point`] is the measured twin the acceptance tests compare
//!   against.
//!
//! The output type is `er_core::OperatingPoint` — the unified config the
//! blocking (`top_k_blocking_point`), serving (`ServeConfig::from_point`)
//! and pipeline (`Pipeline::resolve_tuned`) layers all accept.

pub mod autotune;
pub mod calibrate;
pub mod cost;

pub use autotune::{autotune, measure_point, Trial, TuneOutcome, TunerConfig};
pub use calibrate::{metric_name, Calibration, Cell, CostTier};
pub use cost::{CostEstimate, CostModel, HnswCostModel};
