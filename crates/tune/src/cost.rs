//! The per-backend query-cost estimators.
//!
//! Every estimate is in the same currency: **full-width distance
//! evaluations per query** (the `u64` that `IndexReader::search_counted`
//! reports) and **estimated nanoseconds per query** (evaluations priced by
//! the [`Calibration`] table, plus each backend's setup terms — the
//! quantized first pass for exact scans, the signature dots for LSH).
//!
//! - **Exact** is analytic: a pure scan evaluates every live row; a
//!   quantized scan runs a cheap first pass over every row and re-ranks
//!   `max(rerank, k)` survivors at full width.
//! - **HNSW** has no closed form — beam search's evaluation count depends
//!   on the graph actually built. [`CostModel::probe_hnsw`] *measures*
//!   mean evaluations at a few anchor `ef_search` values on a query
//!   sample (cheap: the sample index is small) and interpolates piecewise
//!   linearly in `ef` between them.
//! - **LSH** follows expected bucket occupancy: a *dry gather* of the
//!   probed buckets on sample queries — signature dots and bucket
//!   lookups only, zero distance evaluations — yields the expected
//!   unique candidate count (the union of probed-bucket occupancies;
//!   tables overlap far too much for an independence correction, since a
//!   true near-duplicate collides in every table at once). On top the
//!   query pays `tables × planes` signature dots.
//!
//! Accuracy is pinned in `tests/cost_accuracy.rs`: each estimator stays
//! within 25% of measured evaluation counts on D1/D3/D7 for both metrics.

use crate::calibrate::{Calibration, CostTier};
use er_core::{ErError, Metric, Quantization, QueryParams, Result, ScanConfig};
use er_index::{HnswIndex, HyperplaneLsh, IndexReader};

/// One backend configuration's predicted per-query cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Predicted full-width distance evaluations per query — the number
    /// `search_counted` is expected to report.
    pub evals: f64,
    /// Predicted nanoseconds per query: `evals` priced by the calibration
    /// table, plus setup terms (quantized first pass, LSH signature dots)
    /// that `evals` deliberately excludes.
    pub ns: f64,
}

/// The estimator bundle: a [`Calibration`] table plus the per-backend
/// formulas.
#[derive(Debug, Clone)]
pub struct CostModel {
    pub calibration: Calibration,
}

impl CostModel {
    pub fn new(calibration: Calibration) -> CostModel {
        CostModel { calibration }
    }

    /// The compiled-in calibration snapshot.
    pub fn builtin() -> CostModel {
        CostModel::new(Calibration::builtin())
    }

    /// Exact scan over `rows` live rows of width `dim`: analytic.
    ///
    /// Pure scans evaluate every live row at full width. Quantized scans
    /// run the quantized kernel over every row, then re-rank
    /// `max(rerank, k)` candidates (clamped to `rows`) at full width —
    /// only the re-rank counts as full-width evaluations, matching the
    /// counter contract.
    pub fn exact(
        &self,
        rows: usize,
        dim: usize,
        metric: Metric,
        scan: &ScanConfig,
        k: usize,
    ) -> Result<CostEstimate> {
        let full =
            self.calibration
                .ns_per_row_metric(CostTier::of_kernel(scan.tier), metric, dim)?;
        Ok(match scan.quant {
            Quantization::None => CostEstimate {
                evals: rows as f64,
                ns: rows as f64 * full,
            },
            Quantization::Int8 { rerank } | Quantization::Pq { rerank, .. } => {
                let first_pass =
                    self.calibration
                        .ns_per_row_metric(CostTier::of_scan(scan), metric, dim)?;
                let rerank = rerank.max(k).min(rows) as f64;
                CostEstimate {
                    evals: rerank,
                    ns: rows as f64 * first_pass + rerank * full,
                }
            }
        })
    }

    /// Probe an HNSW index into an [`HnswCostModel`]: measure mean
    /// evaluation counts at each `anchor_efs` value over `queries`, and
    /// price rows by the index's metric/tier/dim.
    pub fn probe_hnsw(
        &self,
        index: &HnswIndex,
        queries: impl Iterator<Item = impl AsRef<[f32]>> + Clone,
        k: usize,
        anchor_efs: &[usize],
    ) -> Result<HnswCostModel> {
        let config = index.config();
        let ns_per_row = self.calibration.ns_per_row_metric(
            CostTier::of_kernel(config.tier),
            config.metric,
            index.matrix().dim(),
        )?;
        if anchor_efs.is_empty() {
            return Err(ErError::Config(
                "probe_hnsw needs at least one anchor ef".into(),
            ));
        }
        let mut anchors: Vec<(f64, f64)> = Vec::with_capacity(anchor_efs.len());
        for &ef in anchor_efs {
            let mut total = 0u64;
            let mut count = 0usize;
            for q in queries.clone() {
                let (_, evals) =
                    index.search_counted(q.as_ref(), k, &QueryParams::with_ef_search(ef));
                total += evals;
                count += 1;
            }
            if count == 0 {
                return Err(ErError::Config(
                    "probe_hnsw needs at least one query".into(),
                ));
            }
            anchors.push((ef as f64, total as f64 / count as f64));
        }
        anchors.sort_by(|a, b| a.0.total_cmp(&b.0));
        anchors.dedup_by(|a, b| a.0 == b.0);
        Ok(HnswCostModel {
            anchors,
            ns_per_row,
        })
    }

    /// LSH cost under runtime `(probes, tables)` from expected bucket
    /// occupancy, averaged over `queries`.
    ///
    /// Per query the probed buckets are dry-gathered — signature dots and
    /// bucket lookups, **no distance evaluations** — into the unique
    /// candidate count (the union of the probed occupancies; an
    /// independence correction over `probed_occupancy` badly over-counts
    /// because a near-duplicate collides in every table at once, so the
    /// union is taken exactly). Candidates are re-ranked at full width
    /// (= the counted evaluations); on top the query pays
    /// `tables × planes` signature dot products.
    pub fn lsh(
        &self,
        index: &HyperplaneLsh,
        queries: impl Iterator<Item = impl AsRef<[f32]>>,
        probes: usize,
        tables: usize,
    ) -> Result<CostEstimate> {
        let config = index.config();
        let dim = index.matrix().dim();
        let tier = CostTier::of_kernel(config.tier);
        let rerank_ns = self
            .calibration
            .ns_per_row_metric(tier, config.metric, dim)?;
        let hash_ns = self.calibration.ns_per_row(tier, "dot", dim)?;
        let mut total_expected = 0.0f64;
        let mut count = 0usize;
        for q in queries {
            total_expected += index
                .candidates_slice_with(q.as_ref(), probes, tables)
                .len() as f64;
            count += 1;
        }
        if count == 0 {
            return Err(ErError::Config(
                "lsh estimate needs at least one query".into(),
            ));
        }
        let evals = total_expected / count as f64;
        let tables = tables.clamp(1, config.tables);
        let hashes = (tables * config.planes) as f64;
        Ok(CostEstimate {
            evals,
            ns: evals * rerank_ns + hashes * hash_ns,
        })
    }
}

/// A probed HNSW cost curve: mean measured evaluations at anchor
/// `ef_search` values, interpolated piecewise linearly in `ef`.
///
/// Beam width is the only runtime knob, and measured evaluation counts
/// grow monotonically (and sub-linearly) with it; a handful of anchors
/// brackets the sweep grid, so linear interpolation stays well inside the
/// 25% accuracy budget. Outside the anchor range the nearest segment is
/// extended (clamped below at the smallest anchor's count — a narrower
/// beam never evaluates more).
#[derive(Debug, Clone)]
pub struct HnswCostModel {
    /// `(ef, mean evals)` sorted by ef.
    anchors: Vec<(f64, f64)>,
    ns_per_row: f64,
}

impl HnswCostModel {
    pub fn anchors(&self) -> &[(f64, f64)] {
        &self.anchors
    }

    /// Predicted cost at beam width `ef`.
    pub fn estimate(&self, ef: usize) -> CostEstimate {
        let evals = self.evals_at(ef as f64);
        CostEstimate {
            evals,
            ns: evals * self.ns_per_row,
        }
    }

    fn evals_at(&self, ef: f64) -> f64 {
        let a = &self.anchors;
        if a.len() == 1 {
            return a[0].1;
        }
        // Pick the segment to interpolate (or extrapolate) on.
        let seg = if ef <= a[0].0 {
            (a[0], a[1])
        } else if ef >= a[a.len() - 1].0 {
            (a[a.len() - 2], a[a.len() - 1])
        } else {
            let hi = a.iter().position(|&(x, _)| x >= ef).expect("in range");
            (a[hi - 1], a[hi])
        };
        let ((x0, y0), (x1, y1)) = seg;
        let t = (ef - x0) / (x1 - x0);
        // Never predict below the narrowest measured beam: evals are
        // monotone in ef, so left-extrapolation clamps at the first anchor.
        (y0 + t * (y1 - y0)).max(a[0].1.min(y0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::KernelTier;

    #[test]
    fn pure_exact_scan_costs_one_full_width_eval_per_row() {
        let model = CostModel::builtin();
        let est = model
            .exact(1000, 64, Metric::Cosine, &ScanConfig::default(), 10)
            .unwrap();
        assert_eq!(est.evals, 1000.0);
        assert!((est.ns - 1000.0 * 40.547585).abs() < 1e-3);
    }

    #[test]
    fn quantized_scan_charges_the_first_pass_plus_the_rerank() {
        let model = CostModel::builtin();
        let scan = ScanConfig {
            tier: KernelTier::Lanes,
            quant: Quantization::Int8 { rerank: 40 },
        };
        let est = model.exact(1000, 64, Metric::Cosine, &scan, 10).unwrap();
        assert_eq!(est.evals, 40.0);
        let expected = 1000.0 * 6.7543125 + 40.0 * 18.14148;
        assert!((est.ns - expected).abs() < 1e-3, "{} vs {expected}", est.ns);
        // k above the rerank budget widens the re-rank set; tiny
        // collections clamp it at the row count.
        let est = model.exact(1000, 64, Metric::Cosine, &scan, 100).unwrap();
        assert_eq!(est.evals, 100.0);
        let est = model.exact(30, 64, Metric::Cosine, &scan, 100).unwrap();
        assert_eq!(est.evals, 30.0);
    }

    #[test]
    fn hnsw_model_interpolates_between_its_anchors() {
        let model = HnswCostModel {
            anchors: vec![(16.0, 100.0), (64.0, 220.0), (128.0, 300.0)],
            ns_per_row: 10.0,
        };
        assert_eq!(model.estimate(16).evals, 100.0);
        assert_eq!(model.estimate(40).evals, 160.0);
        assert_eq!(model.estimate(128).evals, 300.0);
        assert_eq!(model.estimate(128).ns, 3000.0);
        // Right-extrapolation continues the last segment; left clamps at
        // the narrowest measured beam.
        assert_eq!(model.estimate(192).evals, 380.0);
        assert_eq!(model.estimate(4).evals, 100.0);
    }
}
