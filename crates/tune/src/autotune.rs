//! The parameter autotuner: sweep backend configurations on a sample of
//! the collection, score each by a ground-truth-free recall proxy and the
//! cost model, and return the cheapest [`OperatingPoint`] meeting the
//! recall target.
//!
//! The sweep never rebuilds an index per knob: HNSW is built once per `M`
//! and `ef_search` varies at query time; LSH is built once at the widest
//! table count and `(tables, probes)` vary at query time — the runtime
//! [`QueryParams`] redesign exists exactly for this loop.
//!
//! **Recall proxy.** The tuner has no ground truth, so it uses the exact
//! scan's top-k on the sample as reference: a trial's recall is the mean
//! overlap of its top-k with the exact top-k over the sampled queries.
//! Exact trials therefore sit at proxy recall 1.0 by construction (kernel
//! tiers agree to within ordering tolerance; quantized re-ranks are
//! measured like every other trial).
//!
//! **Extrapolation.** Costs are estimated for the *full* collection:
//! exact analytically at the full row count; LSH candidate counts scale
//! with collection size (bucket occupancy is proportional to rows); HNSW
//! evaluation counts scale with the depth ratio `ln N / ln n` — the
//! logarithmic-descent heuristic. On collections small enough for the
//! sample to cover everything (the repo's datasets), every scale factor
//! is exactly 1 and estimates are pure measurements.
//!
//! Determinism: sampling is stride-based (no RNG), trial order is fixed,
//! and index builds take their seed from [`TunerConfig::seed`] — the same
//! inputs always yield a byte-identical chosen point (pinned by
//! `tests/autotune.rs`).

use crate::calibrate::CostTier;
use crate::cost::CostModel;
use er_core::{
    EmbeddingMatrix, ErError, HnswParams, LshParams, OperatingPoint, QueryParams, Result,
    ScanConfig,
};
use er_index::{
    ExactIndex, HnswConfig, HnswIndex, HyperplaneLsh, IndexReader, LshConfig, Neighbor, NnIndex,
};

/// What the tuner sweeps and how it samples. The defaults mirror the
/// paper's parameter ranges scaled to the repo's dataset sizes.
#[derive(Debug, Clone)]
pub struct TunerConfig {
    /// Max rows sampled (stride-sampled, deterministic) to build trial
    /// indices over.
    pub sample_rows: usize,
    /// Max queries sampled to score recall proxies with.
    pub sample_queries: usize,
    /// HNSW graph degrees to build (one build each).
    pub hnsw_ms: Vec<usize>,
    /// HNSW beam widths, swept at query time against each build.
    pub ef_grid: Vec<usize>,
    /// LSH table counts, swept at query time against one widest build.
    pub lsh_tables: Vec<usize>,
    /// LSH multi-probe depths, swept at query time.
    pub lsh_probes: Vec<usize>,
    /// Hyperplanes per LSH table.
    pub lsh_planes: usize,
    /// Seed for every trial index build.
    pub seed: u64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            sample_rows: 256,
            sample_queries: 64,
            hnsw_ms: vec![8, 16],
            ef_grid: vec![16, 32, 64, 128],
            lsh_tables: vec![4, 8, 16],
            lsh_probes: vec![0, 2],
            lsh_planes: 12,
            seed: 42,
        }
    }
}

/// One swept configuration with its proxy recall and estimated full-
/// collection cost.
#[derive(Debug, Clone)]
pub struct Trial {
    pub point: OperatingPoint,
    /// Mean overlap@k with the exact-scan reference on the sample.
    pub recall: f32,
    /// Estimated full-width distance evaluations per query on the full
    /// collection.
    pub est_evals: f64,
    /// Estimated nanoseconds per query on the full collection.
    pub est_ns: f64,
    /// Whether the trial meets the recall target (and budget, if set).
    pub feasible: bool,
}

/// The tuner's verdict: the chosen point plus every trial it considered,
/// in sweep order.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    pub chosen: OperatingPoint,
    pub trials: Vec<Trial>,
    /// Rows actually sampled (≤ `TunerConfig::sample_rows`).
    pub sample_rows: usize,
    /// Queries actually sampled (≤ `TunerConfig::sample_queries`).
    pub sample_queries: usize,
}

impl TuneOutcome {
    /// The trial the chosen point came from.
    pub fn chosen_trial(&self) -> &Trial {
        let chosen_json = self.chosen.to_json();
        self.trials
            .iter()
            .find(|t| t.point.to_json() == chosen_json)
            .expect("chosen point is always one of the trials")
    }
}

/// Stride-sample up to `max` row indices from `0..n` — deterministic,
/// evenly spread, first row always included.
fn stride_sample(n: usize, max: usize) -> Vec<usize> {
    if n == 0 || max == 0 {
        return Vec::new();
    }
    if n <= max {
        return (0..n).collect();
    }
    let stride = n as f64 / max as f64;
    (0..max).map(|i| (i as f64 * stride) as usize).collect()
}

fn gather(matrix: &EmbeddingMatrix, indices: &[usize]) -> EmbeddingMatrix {
    let mut out = EmbeddingMatrix::with_capacity(matrix.dim(), indices.len());
    for &i in indices {
        out.push(matrix.row(i));
    }
    out
}

fn overlap(reference: &[Neighbor], hits: &[Neighbor]) -> f32 {
    if reference.is_empty() {
        return 1.0;
    }
    let shared = hits
        .iter()
        .filter(|h| reference.iter().any(|r| r.index == h.index))
        .count();
    shared as f32 / reference.len() as f32
}

/// Tune `(backend, parameters, scan)` for searching `rows` with `queries`
/// under the goal's `k`, `metric`, `recall_target` and optional
/// `budget_ns`: sweep the [`TunerConfig`] grid on a sample and return the
/// cheapest estimated configuration whose proxy recall meets the target.
///
/// The `goal` carries intent (k, metric, target, budget, dirty); its
/// backend field is ignored — choosing the backend is the tuner's job.
/// A goal without a recall target defaults to 0.95. When no trial is
/// feasible the exact Reference scan (proxy recall 1.0) is chosen, so the
/// tuner always returns a valid point.
pub fn autotune(
    queries: &EmbeddingMatrix,
    rows: &EmbeddingMatrix,
    goal: &OperatingPoint,
    config: &TunerConfig,
    model: &CostModel,
) -> Result<TuneOutcome> {
    if rows.is_empty() || queries.is_empty() {
        return Err(ErError::Config(
            "autotune needs non-empty query and row collections".into(),
        ));
    }
    if rows.dim() != queries.dim() {
        return Err(ErError::Config(format!(
            "autotune dim mismatch: rows dim {} vs queries dim {}",
            rows.dim(),
            queries.dim()
        )));
    }
    if goal.k == 0 {
        return Err(ErError::Config("autotune needs k >= 1".into()));
    }
    let k = goal.k;
    let metric = goal.metric;
    let target = goal.recall_target.unwrap_or(0.95);
    let dim = rows.dim();
    let full_rows = rows.len();

    let row_sample = stride_sample(rows.len(), config.sample_rows);
    let query_sample = stride_sample(queries.len(), config.sample_queries);
    let sample = gather(rows, &row_sample);
    let probes: Vec<&[f32]> = query_sample.iter().map(|&i| queries.row(i)).collect();

    // Ground-truth-free reference: the exact scan's top-k on the sample.
    let exact_ref = ExactIndex::from_matrix(&sample, metric);
    let reference: Vec<Vec<Neighbor>> = probes
        .iter()
        .map(|q| exact_ref.search_slice(q, k))
        .collect();

    let mut trials: Vec<Trial> = Vec::new();
    let mut push_trial = |point: OperatingPoint, recall: f32, est_evals: f64, est_ns: f64| {
        let feasible = recall >= target
            && goal
                .budget_ns
                .map(|budget| est_ns <= budget)
                .unwrap_or(true);
        trials.push(Trial {
            point,
            recall,
            est_evals,
            est_ns,
            feasible,
        });
    };

    // --- Exact scans: analytic cost, measured recall. -------------------
    let exact_scans = [
        ScanConfig::default(),
        ScanConfig::with_tier(er_core::KernelTier::Lanes),
        ScanConfig {
            tier: er_core::KernelTier::Lanes,
            quant: er_core::Quantization::Int8 { rerank: 4 * k },
        },
    ];
    for scan in exact_scans {
        let index = ExactIndex::from_source_scan(&sample, metric, scan)?;
        let recall = probes
            .iter()
            .zip(&reference)
            .map(|(q, r)| overlap(r, &index.search_slice(q, k)))
            .sum::<f32>()
            / probes.len() as f32;
        let est = model.exact(full_rows, dim, metric, &scan, k)?;
        let point = goal.clone().exact().scan(scan);
        push_trial(point, recall, est.evals, est.ns);
    }

    // --- HNSW: one build per M, beam width swept at query time. ---------
    // Depth heuristic: evaluation counts grow with graph depth ~ ln n.
    let hnsw_scale = if full_rows > sample.len() && sample.len() >= 2 {
        (full_rows as f64).ln() / (sample.len() as f64).ln()
    } else {
        1.0
    };
    for &m in &config.hnsw_ms {
        let index = HnswIndex::from_source(
            &sample,
            HnswConfig {
                m,
                metric,
                seed: config.seed,
                tier: goal.scan.tier,
                ..HnswConfig::default()
            },
        );
        let curve = model.probe_hnsw(&index, probes.iter().copied(), k, &config.ef_grid)?;
        for &ef in &config.ef_grid {
            let recall = probes
                .iter()
                .zip(&reference)
                .map(|(q, r)| {
                    overlap(
                        r,
                        &index.search_params(q, k, &QueryParams::with_ef_search(ef)),
                    )
                })
                .sum::<f32>()
                / probes.len() as f32;
            let est = curve.estimate(ef);
            let point = goal
                .clone()
                .hnsw(HnswParams {
                    m,
                    ef_search: ef,
                    seed: config.seed,
                    ..HnswParams::default()
                })
                .scan(ScanConfig::with_tier(goal.scan.tier));
            push_trial(point, recall, est.evals * hnsw_scale, est.ns * hnsw_scale);
        }
    }

    // --- LSH: one widest build, (tables, probes) swept at query time. ---
    let max_tables = config.lsh_tables.iter().copied().max().unwrap_or(0);
    if max_tables > 0 {
        let index = HyperplaneLsh::from_source(
            &sample,
            LshConfig {
                planes: config.lsh_planes,
                tables: max_tables,
                probes: config.lsh_probes.iter().copied().max().unwrap_or(0),
                metric,
                seed: config.seed,
                tier: goal.scan.tier,
            },
        );
        // Occupancy (and hence candidate count) is proportional to rows.
        let lsh_scale = full_rows as f64 / sample.len() as f64;
        let rerank_ns = model.calibration.ns_per_row_metric(
            CostTier::of_kernel(goal.scan.tier),
            metric,
            dim,
        )?;
        for &tables in &config.lsh_tables {
            for &probe_depth in &config.lsh_probes {
                let params = QueryParams {
                    probes: Some(probe_depth),
                    tables: Some(tables),
                    ef_search: None,
                };
                let recall = probes
                    .iter()
                    .zip(&reference)
                    .map(|(q, r)| overlap(r, &index.search_params(q, k, &params)))
                    .sum::<f32>()
                    / probes.len() as f32;
                let est = model.lsh(&index, probes.iter().copied(), probe_depth, tables)?;
                // Scale the re-ranked candidates to the full collection;
                // the signature-hash term is row-count independent.
                let est_evals = est.evals * lsh_scale;
                let est_ns = est.ns + (est_evals - est.evals) * rerank_ns;
                let point = goal
                    .clone()
                    .lsh(LshParams {
                        planes: config.lsh_planes,
                        tables,
                        probes: probe_depth,
                        seed: config.seed,
                    })
                    .scan(ScanConfig::with_tier(goal.scan.tier));
                push_trial(point, recall, est_evals, est_ns);
            }
        }
    }

    // Cheapest feasible trial wins; strict comparison keeps the earliest
    // trial on ties, so the outcome is deterministic. The exact Reference
    // scan (always recall 1.0, modulo tie-ordering noise) is the fallback
    // when nothing is feasible.
    let chosen = trials
        .iter()
        .filter(|t| t.feasible)
        .fold(None::<&Trial>, |best, t| match best {
            Some(b) if b.est_ns <= t.est_ns => Some(b),
            _ => Some(t),
        })
        .map(|t| t.point.clone())
        .unwrap_or_else(|| goal.clone().exact().scan(ScanConfig::default()));
    chosen.validate()?;

    Ok(TuneOutcome {
        chosen,
        trials,
        sample_rows: row_sample.len(),
        sample_queries: query_sample.len(),
    })
}

/// The measured twin of the estimates: build the index `point` describes
/// over `rows`, run every query through `search_counted`, and return
/// `(total, per-query mean)` full-width distance evaluations. This is
/// what the acceptance tests compare the tuner's choices against.
pub fn measure_point(
    queries: &EmbeddingMatrix,
    rows: &EmbeddingMatrix,
    point: &OperatingPoint,
) -> Result<(u64, f64)> {
    point.validate()?;
    if queries.is_empty() {
        return Err(ErError::Config(
            "measure_point needs at least one query".into(),
        ));
    }
    let params = point.query_params();
    let index: Box<dyn IndexReader + '_> = if let Some(p) = point.backend.hnsw() {
        Box::new(HnswIndex::from_source(
            rows,
            HnswConfig {
                m: p.m,
                ef_construction: p.ef_construction,
                ef_search: p.ef_search,
                metric: point.metric,
                seed: p.seed,
                tier: point.scan.tier,
            },
        ))
    } else if let Some(p) = point.backend.lsh() {
        Box::new(HyperplaneLsh::from_source(
            rows,
            LshConfig {
                planes: p.planes,
                tables: p.tables,
                probes: p.probes,
                metric: point.metric,
                seed: p.seed,
                tier: point.scan.tier,
            },
        ))
    } else {
        Box::new(ExactIndex::from_source_scan(
            rows,
            point.metric,
            point.scan,
        )?)
    };
    let mut total = 0u64;
    for q in queries.rows_iter() {
        total += index.search_counted(q, point.k, &params).1;
    }
    Ok((total, total as f64 / queries.len() as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_sampling_is_even_deterministic_and_covers_small_inputs() {
        assert_eq!(stride_sample(5, 10), vec![0, 1, 2, 3, 4]);
        assert_eq!(stride_sample(10, 10), (0..10).collect::<Vec<_>>());
        let s = stride_sample(1000, 4);
        assert_eq!(s, vec![0, 250, 500, 750]);
        assert_eq!(s, stride_sample(1000, 4));
        assert!(stride_sample(0, 4).is_empty());
        assert!(stride_sample(4, 0).is_empty());
    }

    #[test]
    fn empty_inputs_and_degenerate_goals_are_typed_errors() {
        let empty = EmbeddingMatrix::new(4);
        let mut one = EmbeddingMatrix::new(4);
        one.push(&[1.0, 0.0, 0.0, 0.0]);
        let goal = OperatingPoint::recall_target(0.9);
        let model = CostModel::builtin();
        let config = TunerConfig::default();
        assert!(matches!(
            autotune(&one, &empty, &goal, &config, &model),
            Err(ErError::Config(_))
        ));
        assert!(matches!(
            autotune(&empty, &one, &goal, &config, &model),
            Err(ErError::Config(_))
        ));
        let mut wide = EmbeddingMatrix::new(8);
        wide.push(&[0.0; 8]);
        assert!(matches!(
            autotune(&wide, &one, &goal, &config, &model),
            Err(ErError::Config(_))
        ));
        let zero_k = goal.clone().k(0);
        assert!(matches!(
            autotune(&one, &one, &zero_k, &config, &model),
            Err(ErError::Config(_))
        ));
    }
}
