//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so the workspace vendors the
//! slice of `rand` it actually uses: [`RngCore`], [`Rng`] (`gen_range`,
//! `gen`, `gen_bool`), [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom`]. Unlike upstream `StdRng` (explicitly not portable
//! across releases), this generator is xoshiro256++ seeded through SplitMix64
//! and is guaranteed stable, which the reproduction relies on for
//! byte-identical experiment tables.

/// Core source of randomness: everything else is derived from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            let len = rem.len();
            rem.copy_from_slice(&bytes[..len]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range (`a..b` / `a..=b`) that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                ((self.start as i128).wrapping_add(v as i128)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                ((start as i128).wrapping_add(v as i128)) as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform in `[0, 1)` with 24 bits of precision (matches upstream's layout).
#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f32(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

/// Types producible by [`Rng::gen`] (upstream's `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding interface: only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Named generators (only `StdRng` is provided).

    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded through SplitMix64. Portable and stable.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::{Rng, RngCore};

    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&v));
            let i = r.gen_range(5..10usize);
            assert!((5..10).contains(&i));
            let n = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&n));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
