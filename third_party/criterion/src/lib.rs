//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build container has no crates.io access, so this crate mirrors the
//! small slice of the criterion 0.5 API the workspace benches use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros) with plain wall-clock
//! timing: a short warm-up, then `sample_size` timed batches, reporting
//! min / mean / max per iteration to stdout. As with real criterion, full
//! sampling only happens under `cargo bench` (which passes `--bench` to the
//! binary); under `cargo test` — no `--bench`, or an explicit `--test` —
//! each benchmark body runs exactly once so test runs stay fast.

use std::fmt::Display;
use std::time::{Duration, Instant};

const DEFAULT_SAMPLE_SIZE: usize = 30;

/// Entry point handed to every `criterion_group!` target.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror real criterion: `cargo bench` passes `--bench` to the
        // binary; anything else (notably `cargo test`) is test mode.
        let mut bench_mode = false;
        let mut test_mode = false;
        for arg in std::env::args() {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => test_mode = true,
                _ => {}
            }
        }
        Criterion {
            test_mode: test_mode || !bench_mode,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        let mut group = self.benchmark_group("ungrouped");
        group.sample_size(if test_mode { 1 } else { DEFAULT_SAMPLE_SIZE });
        group.bench_function(id, &mut f);
        group.finish();
    }
}

/// Identifier combining a function name and a parameter, as in criterion.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Anything accepted as a benchmark id (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_id(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("bench {full}: ok (test mode, 1 iteration)");
            return;
        }
        // Warm-up pass, also used to pick an iteration count per sample.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        let iters = (target.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0f64, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "bench {full}: [{} {} {}] ({} samples x {iters} iters)",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max),
            samples.len(),
        );
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Passed to each benchmark body; [`Bencher::iter`] times the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut ran = 0usize;
        let mut group = c.benchmark_group("unit");
        group.sample_size(2);
        group.bench_function("noop", |b| b.iter(|| ran += 0));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).into_id(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").into_id(), "x");
    }
}
