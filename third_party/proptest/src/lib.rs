//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no crates.io access, so this crate provides the
//! minimal property-testing machinery the workspace needs: a [`proptest!`]
//! macro with the upstream `fn name(arg in strategy) { .. }` shape, a
//! [`Strategy`] trait, and strategies for numeric ranges and arbitrary
//! strings. Differences from upstream, by design:
//!
//! * cases are generated from a fixed seed (deterministic CI; override the
//!   count with `PROPTEST_CASES`);
//! * string strategies emit a curated list of edge cases (empty, whitespace,
//!   punctuation-only, unicode) before random cases;
//! * no shrinking — failures report the offending input via normal
//!   `assert!` panics, which is enough at this input size.

use rand::prelude::*;

/// Default number of cases per property (upstream default is 256; these
/// properties run against real model training fixtures, so keep it tighter).
pub const DEFAULT_CASES: usize = 64;

/// Drives one property: a seeded RNG plus the current case index.
pub struct TestRunner {
    rng: StdRng,
    case: usize,
}

impl TestRunner {
    pub fn new(name: &str) -> Self {
        // Stable per-test seed so failures reproduce run-to-run.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            rng: StdRng::seed_from_u64(h),
            case: 0,
        }
    }

    pub fn cases() -> usize {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES)
    }

    pub fn next_case(&mut self) {
        self.case += 1;
    }

    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// Produces one value per test case.
pub trait Strategy {
    type Value;

    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn new_value(&self, runner: &mut TestRunner) -> f32 {
        runner.rng().gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, runner: &mut TestRunner) -> f64 {
        runner.rng().gen_range(self.clone())
    }
}

/// Edge cases every string strategy emits before random generation.
const STRING_EDGE_CASES: &[&str] = &[
    "",
    " ",
    "   \t\n  ",
    ".,;:!?-_()[]{}",
    "!!!???...",
    "\"quoted\" \\back\\slash",
    "ÆØÅ æøå ü ß é ñ",
    "日本語 住所 名前",
    "🦀🚀",
    "a",
    "1234567890",
    "MiXeD CaSe ToKeNs 42",
];

/// Arbitrary strings: curated edge cases first, then random mixtures of
/// letters, digits, punctuation, whitespace and non-ASCII characters.
pub struct AnyString {
    max_len: usize,
}

pub fn any_string(max_len: usize) -> AnyString {
    AnyString { max_len }
}

impl Strategy for AnyString {
    type Value = String;

    fn new_value(&self, runner: &mut TestRunner) -> String {
        if runner.case < STRING_EDGE_CASES.len() {
            return STRING_EDGE_CASES[runner.case].to_string();
        }
        let rng = runner.rng();
        let len = rng.gen_range(0..=self.max_len);
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            let c = match rng.gen_range(0..10u32) {
                0..=3 => rng.gen_range(b'a'..=b'z') as char,
                4 => rng.gen_range(b'A'..=b'Z') as char,
                5 => rng.gen_range(b'0'..=b'9') as char,
                6 => *[' ', ' ', '\t'].choose(rng).expect("non-empty"),
                7 => *['.', ',', '-', '_', '!', '?', '\'', '"', '/']
                    .choose(rng)
                    .expect("non-empty"),
                8 => *['é', 'ü', 'ß', 'ø', 'ñ', 'ç']
                    .choose(rng)
                    .expect("non-empty"),
                _ => *['中', 'の', 'ع', 'д', '🦀'].choose(rng).expect("non-empty"),
            };
            s.push(c);
        }
        s
    }
}

/// Upstream-shaped macro: expands each `fn name(arg in strategy, ..) { .. }`
/// into a `#[test]` running [`TestRunner::cases`] cases.
#[macro_export]
macro_rules! proptest {
    () => {};
    ($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        #[test]
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new(stringify!($name));
            for _ in 0..$crate::TestRunner::cases() {
                $(let $arg = $crate::Strategy::new_value(&$strat, &mut runner);)+
                $body
                runner.next_case();
            }
        }
        $crate::proptest! { $($rest)* }
    };
}

pub mod prelude {
    pub use crate::{any_string, proptest, AnyString, Strategy, TestRunner};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        fn ranges_stay_in_bounds(n in 0..100usize, x in -1.0f32..1.0) {
            assert!(n < 100);
            assert!((-1.0..1.0).contains(&x));
        }

        fn strings_respect_max_len(s in any_string(16)) {
            assert!(s.chars().count() <= 32, "edge cases are short, random capped");
        }
    }

    #[test]
    fn edge_cases_come_first() {
        let mut runner = TestRunner::new("edge");
        let s = any_string(8).new_value(&mut runner);
        assert_eq!(s, "");
        runner.next_case();
        let s = any_string(8).new_value(&mut runner);
        assert_eq!(s, " ");
    }
}
