//! End-to-end blocking (the acceptance contract of the ANN PR): generate a
//! D1-profile Clean-Clean dataset, vectorize with FastText, block with
//! HNSW top-10, and check pairs-completeness, candidate-set reduction and
//! run-to-run determinism — the paper's Fig. 3 pipeline in miniature.

use embeddings4er::prelude::*;

fn d1_candidates(
    zoo: &ModelZoo,
    config: &TopKConfig,
) -> (CleanCleanDataset, Vec<(EntityId, EntityId)>) {
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let model = zoo.get(ModelCode::FT);
    let candidates = block(
        model.as_ref(),
        &ds.left,
        &ds.right,
        &SerializationMode::SchemaAgnostic,
        config,
    );
    (ds, candidates)
}

fn hnsw_config() -> TopKConfig {
    TopKConfig::new(10).backend(BlockerBackend::Hnsw(HnswConfig {
        metric: Metric::Cosine,
        ..HnswConfig::default()
    }))
}

#[test]
fn d1_fasttext_hnsw_blocking_hits_090_pairs_completeness() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let (ds, candidates) = d1_candidates(&zoo, &hnsw_config());

    let metrics = Metrics::of_candidates(&candidates, &ds.ground_truth);
    assert!(
        metrics.recall >= 0.9,
        "pairs-completeness {:.3} < 0.9 over {} candidates",
        metrics.recall,
        candidates.len()
    );
    let cross = ds.id.profile().cross_product();
    assert!(
        (candidates.len() as f64) < 0.25 * cross as f64,
        "blocking emitted {} of {cross} pairs (>= 25% of the cross-product)",
        candidates.len()
    );
}

#[test]
fn end_to_end_blocking_is_deterministic_across_runs() {
    // Two fully independent runs: fresh zoo pretrain, fresh dataset, fresh
    // index build — candidate lists must be identical.
    let first = {
        let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
        d1_candidates(&zoo, &hnsw_config()).1
    };
    let second = {
        let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
        d1_candidates(&zoo, &hnsw_config()).1
    };
    assert_eq!(first, second);
    assert!(!first.is_empty());
}

#[test]
fn batched_blocking_queries_match_sequential_search() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let model = zoo.get(ModelCode::FT);
    let mode = SerializationMode::SchemaAgnostic;
    let left = vectorize(model.as_ref(), &ds.left, &mode);
    let right = vectorize(model.as_ref(), &ds.right, &mode);
    let index = HnswIndex::build(
        &right,
        HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        },
    );
    let sequential: Vec<_> = left.iter().map(|q| index.search(q, 10)).collect();
    assert_eq!(index.search_batch(&left, 10), sequential);
}

#[test]
fn exact_backend_is_at_least_as_complete_as_hnsw() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let (ds, hnsw) = d1_candidates(&zoo, &hnsw_config());
    let exact_config = TopKConfig::new(10).backend(BlockerBackend::Exact(Metric::Cosine));
    let (_, exact) = d1_candidates(&zoo, &exact_config);
    let pc_hnsw = Metrics::of_candidates(&hnsw, &ds.ground_truth).recall;
    let pc_exact = Metrics::of_candidates(&exact, &ds.ground_truth).recall;
    assert!(
        pc_exact >= pc_hnsw,
        "exact k-NN ({pc_exact:.3}) cannot trail its approximation ({pc_hnsw:.3})"
    );
}
