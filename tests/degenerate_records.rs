//! Degenerate-record sweep: a record whose every attribute is empty (or
//! all-OOV after tokenization) must flow through the *entire* pipeline —
//! zero embedding, 0.0 cosine against everything, threshold sweep, UMC —
//! without a single NaN or panic. Regression net for the zero-vector
//! handling in `er_core::kernels::cosine` and the empty-text paths of
//! every model's `embed_into`.

use embeddings4er::prelude::*;

/// D1 with one left record's attributes blanked out. Returns the dataset
/// and the victim's row index (D1 ids are dense row indices).
fn d1_with_empty_record() -> (CleanCleanDataset, usize) {
    let mut ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let idx = 3;
    let id = ds.left[idx].id;
    ds.left[idx] = Entity::new(id, vec![("name".into(), String::new())]);
    (ds, idx)
}

#[test]
fn empty_record_flows_through_sweep_and_umc_without_nans() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let (ds, idx) = d1_with_empty_record();
    let empty_id = ds.left[idx].id;
    // One static subword model and the dynamic transformer: both must
    // degrade to the zero vector, not to garbage.
    for code in [ModelCode::FT, ModelCode::BT] {
        let model = zoo.get(code);
        let pipeline = Pipeline::new(model.as_ref(), SerializationMode::SchemaAgnostic);

        let matrix = pipeline.vectorize(&ds.left);
        assert!(
            matrix.row(idx).iter().all(|&x| x == 0.0),
            "{code}: empty record must embed to the zero vector"
        );

        let outcome = pipeline.resolve(
            &ds.left,
            &ds.right,
            &ds.ground_truth,
            &ResolveConfig {
                blocking: TopKConfig::new(10).backend(BlockerBackend::Exact(Metric::Cosine)),
                ..ResolveConfig::default()
            },
        );
        for p in &outcome.candidates {
            assert!(
                p.score.is_finite(),
                "{code}: non-finite candidate score on {:?}",
                p.id_pair()
            );
            if p.left == empty_id {
                assert_eq!(
                    p.score, 0.0,
                    "{code}: zero embedding scored {} against {:?}",
                    p.score, p.right
                );
            }
        }
        for point in &outcome.sweep.points {
            assert!(point.delta.is_finite(), "{code}: non-finite δ");
            assert!(
                point.metrics.precision.is_finite()
                    && point.metrics.recall.is_finite()
                    && point.metrics.f1.is_finite(),
                "{code}: non-finite metrics at δ={}",
                point.delta
            );
        }
        assert!(outcome.best_delta.is_finite());
        assert!(outcome.matches.iter().all(|p| p.score.is_finite()));
        // UMC at any positive δ can never pair the zero record: its only
        // scores are 0.0.
        assert!(
            outcome
                .matches
                .iter()
                .all(|p| p.left != empty_id || p.score > 0.0 || outcome.best_delta == 0.0),
            "{code}: the empty record matched at δ={}",
            outcome.best_delta
        );
    }
}
