//! Acceptance contract of the transformer (BT) PR: the paper's anisotropy
//! finding (§5.1) reproduced in miniature. Raw BERT-style token states are
//! notoriously anisotropic — mean-pooled sentence vectors crowd a narrow
//! cone, so cosine top-k blocking over *raw* BT embeddings separates
//! matches from non-matches worse than humble FastText, whose subword
//! n-grams additionally embed the typo'd variants BT's closed vocabulary
//! drops as OOV. On D1 with the tiny zoo, BT's k=10 blocking recall must
//! sit strictly below FastText's, and the whole comparison must be
//! byte-deterministic across fully independent runs.

use embeddings4er::prelude::*;

fn k10_exact() -> TopKConfig {
    TopKConfig::new(10).backend(BlockerBackend::Exact(Metric::Cosine))
}

struct AnisotropyRun {
    ft_recall: f64,
    bt_recall: f64,
    ft_candidates: Vec<(EntityId, EntityId)>,
    bt_candidates: Vec<(EntityId, EntityId)>,
}

/// One fully independent run: fresh zoo pretrain (statics + MLM), fresh
/// dataset, fresh exact index per model.
fn run_d1() -> AnisotropyRun {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let candidates_of = |code: ModelCode| {
        let model = zoo.get(code);
        block(
            model.as_ref(),
            &ds.left,
            &ds.right,
            &SerializationMode::SchemaAgnostic,
            &k10_exact(),
        )
    };
    let ft_candidates = candidates_of(ModelCode::FT);
    let bt_candidates = candidates_of(ModelCode::BT);
    AnisotropyRun {
        ft_recall: Metrics::of_candidates(&ft_candidates, &ds.ground_truth).recall,
        bt_recall: Metrics::of_candidates(&bt_candidates, &ds.ground_truth).recall,
        ft_candidates,
        bt_candidates,
    }
}

#[test]
fn raw_bt_blocking_recall_trails_fasttext_on_d1() {
    let run = run_d1();
    assert!(
        run.bt_recall < run.ft_recall,
        "anisotropy finding violated: raw BT recall {:.3} not below FastText's {:.3}",
        run.bt_recall,
        run.ft_recall
    );
    // FastText keeps the static-model bar of tests/blocking.rs; BT still
    // retrieves *something* — degraded, not broken.
    assert!(
        run.ft_recall >= 0.9,
        "FastText pairs-completeness regressed to {:.3}",
        run.ft_recall
    );
    assert!(
        !run.bt_candidates.is_empty(),
        "BT blocking emitted no candidates at all"
    );
}

#[test]
fn anisotropy_gap_is_deterministic_across_independent_runs() {
    let first = run_d1();
    let second = run_d1();
    assert_eq!(
        first.ft_recall.to_bits(),
        second.ft_recall.to_bits(),
        "FastText recall drifted between runs"
    );
    assert_eq!(
        first.bt_recall.to_bits(),
        second.bt_recall.to_bits(),
        "BT recall drifted between runs"
    );
    assert_eq!(first.ft_candidates, second.ft_candidates);
    assert_eq!(first.bt_candidates, second.bt_candidates);
}
