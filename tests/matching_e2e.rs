//! Acceptance contract of the unsupervised matching PR: on the D1
//! dataset with tiny FastText and exact-cosine top-10 blocking,
//! [`Pipeline::resolve`] with a UMC threshold sweep reaches F1 ≥ 0.8 at
//! its best δ, is byte-deterministic across two fully independent runs,
//! and every scored candidate's similarity is bit-identical to
//! `er_matching::similarity::cosine` recomputed from the embedding
//! matrices — no kernel drift, no re-scoring.

use embeddings4er::matching::similarity;
use embeddings4er::prelude::*;

fn resolve_config() -> ResolveConfig {
    ResolveConfig {
        blocking: TopKConfig::new(10).backend(BlockerBackend::Exact(Metric::Cosine)),
        ..ResolveConfig::default()
    }
}

/// One fully independent run: fresh zoo pretrain, fresh dataset, fresh
/// index build.
fn resolve_d1() -> (CleanCleanDataset, ResolveOutcome) {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let outcome = Pipeline::new(model.as_ref(), SerializationMode::SchemaAgnostic).resolve(
        &ds.left,
        &ds.right,
        &ds.ground_truth,
        &resolve_config(),
    );
    (ds, outcome)
}

#[test]
fn umc_sweep_on_d1_reaches_f1_080_at_its_best_delta() {
    let (_, outcome) = resolve_d1();
    let best = outcome.sweep.best().expect("non-empty paper grid");
    assert!(
        best.metrics.f1 >= 0.8,
        "best F1 {:.3} at δ={:.2} below the acceptance bar",
        best.metrics.f1,
        best.delta
    );
    assert_eq!(best.delta, outcome.best_delta);
    // resolve's matches are the clusterer re-run at the best δ; UMC is
    // deterministic, so they equal the sweep point's matches exactly.
    assert_eq!(outcome.matches, best.matches);
    // Clean-Clean UMC output is one-to-one: no entity matched twice.
    let mut lefts: Vec<_> = outcome.matches.iter().map(|p| p.left).collect();
    let mut rights: Vec<_> = outcome.matches.iter().map(|p| p.right).collect();
    lefts.sort_unstable();
    lefts.dedup();
    rights.sort_unstable();
    rights.dedup();
    assert_eq!(lefts.len(), outcome.matches.len());
    assert_eq!(rights.len(), outcome.matches.len());
}

#[test]
fn resolve_is_byte_deterministic_across_independent_runs() {
    let (_, first) = resolve_d1();
    let (_, second) = resolve_d1();
    assert!(!first.matches.is_empty());
    assert_pairs_bit_identical(&first.matches, &second.matches, "matches");
    assert_pairs_bit_identical(&first.candidates, &second.candidates, "candidates");
    assert_eq!(first.best_delta.to_bits(), second.best_delta.to_bits());
    assert_eq!(first.sweep.points.len(), second.sweep.points.len());
    for (a, b) in first.sweep.points.iter().zip(&second.sweep.points) {
        assert_eq!(a.delta.to_bits(), b.delta.to_bits());
        assert_eq!(a.metrics.f1.to_bits(), b.metrics.f1.to_bits());
        assert_pairs_bit_identical(&a.matches, &b.matches, "sweep matches");
    }
}

fn assert_pairs_bit_identical(a: &[ScoredPair], b: &[ScoredPair], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: lengths diverged");
    for (pa, pb) in a.iter().zip(b) {
        assert_eq!(pa.id_pair(), pb.id_pair(), "{what}: ids diverged");
        assert_eq!(
            pa.score.to_bits(),
            pb.score.to_bits(),
            "{what}: score drifted on {:?}",
            pa.id_pair()
        );
    }
}

/// The scored-candidate contract: blocking's similarities must be
/// bit-identical to the matcher-side cosine recomputed from the raw
/// embedding matrices. D1 ids are dense and equal to row indices on both
/// sides, so `p.left.0` / `p.right.0` address the matrices directly.
#[test]
fn candidate_scores_are_bit_identical_to_matcher_side_cosine() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let mode = SerializationMode::SchemaAgnostic;
    let pipeline = Pipeline::new(model.as_ref(), mode.clone());
    let left = pipeline.vectorize(&ds.left);
    let right = pipeline.vectorize(&ds.right);
    let outcome = pipeline.block(&ds.left, &ds.right, &resolve_config().blocking);
    assert!(!outcome.scored.is_empty());
    for p in &outcome.scored {
        let expected =
            similarity::cosine_slices(left.row(p.left.0 as usize), right.row(p.right.0 as usize));
        assert_eq!(
            p.score.to_bits(),
            expected.to_bits(),
            "score drifted from the cosine kernel on {:?}: {} vs {expected}",
            p.id_pair(),
            p.score
        );
    }
}
