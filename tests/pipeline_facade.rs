//! Acceptance contract of the columnar-pipeline refactor: on the D1
//! dataset, [`Pipeline::block`] emits candidate pairs byte-identical to
//! the pre-refactor `block()` recipe (sequential per-entity vectorize +
//! legacy `Vec<Embedding>` blocker), Dirty ER embeds its shared
//! collection once, and the stage report accounts for every stage.

use embeddings4er::prelude::*;

/// The pre-refactor `block()` body, kept verbatim as the oracle:
/// sequential vectorization of both sides into `Vec<Embedding>` and the
/// legacy per-vec blocker entry point.
fn pre_refactor_block(
    model: &dyn LanguageModel,
    left: &[Entity],
    right: &[Entity],
    mode: &SerializationMode,
    config: &TopKConfig,
) -> Vec<(EntityId, EntityId)> {
    let left_vectors = vectorize(model, left, mode);
    let right_vectors = vectorize(model, right, mode);
    let left_ids: Vec<EntityId> = left.iter().map(|e| e.id).collect();
    let right_ids: Vec<EntityId> = right.iter().map(|e| e.id).collect();
    top_k_blocking(&left_ids, &left_vectors, &right_ids, &right_vectors, config)
}

fn d1_config() -> TopKConfig {
    TopKConfig {
        k: 10,
        backend: BlockerBackend::Hnsw(HnswConfig {
            metric: Metric::Cosine,
            ..HnswConfig::default()
        }),
        dirty: false,
        ..TopKConfig::default()
    }
}

#[test]
fn pipeline_block_is_byte_identical_to_the_pre_refactor_path_on_d1() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let mode = SerializationMode::SchemaAgnostic;
    let config = d1_config();

    let outcome = Pipeline::new(model.as_ref(), mode.clone()).block(&ds.left, &ds.right, &config);
    let oracle = pre_refactor_block(model.as_ref(), &ds.left, &ds.right, &mode, &config);
    assert_eq!(outcome.candidates(), oracle);
    assert!(!outcome.scored.is_empty());

    // The free function is a wrapper over the Pipeline — same bytes again.
    let wrapped = block(model.as_ref(), &ds.left, &ds.right, &mode, &config);
    assert_eq!(outcome.candidates(), wrapped);
}

#[test]
fn pipeline_reports_every_stage_with_wall_clock_and_counts() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let outcome = Pipeline::new(model.as_ref(), SerializationMode::SchemaAgnostic).block(
        &ds.left,
        &ds.right,
        &d1_config(),
    );
    let stages: Vec<&str> = outcome
        .report
        .stages()
        .iter()
        .map(|s| s.stage.as_str())
        .collect();
    assert_eq!(stages, vec!["vectorize-left", "vectorize-right", "block"]);
    assert_eq!(
        outcome.report.get("vectorize-left").unwrap().items,
        ds.left.len()
    );
    assert_eq!(
        outcome.report.get("vectorize-right").unwrap().items,
        ds.right.len()
    );
    assert_eq!(
        outcome.report.get("block").unwrap().items,
        outcome.scored.len()
    );
    assert!(outcome.report.total_wall() > std::time::Duration::ZERO);
}

#[test]
fn dirty_er_pipeline_embeds_once_and_matches_the_double_embed_oracle() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    // A Dirty collection: both sides of D1 concatenated with distinct ids.
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let mut collection = ds.left.clone();
    collection.extend(ds.right.iter().map(|e| {
        let mut shifted = e.clone();
        shifted.id = EntityId(e.id.0 + ds.left.len() as u32);
        shifted
    }));
    let mode = SerializationMode::SchemaAgnostic;
    let config = TopKConfig {
        dirty: true,
        ..d1_config()
    };

    let outcome =
        Pipeline::new(model.as_ref(), mode.clone()).block(&collection, &collection, &config);
    let oracle = pre_refactor_block(model.as_ref(), &collection, &collection, &mode, &config);
    assert_eq!(outcome.candidates(), oracle);

    // The shared collection was detected by identity: one vectorize stage.
    let stages: Vec<&str> = outcome
        .report
        .stages()
        .iter()
        .map(|s| s.stage.as_str())
        .collect();
    assert_eq!(stages, vec!["vectorize", "block"]);
    assert!(outcome.scored.iter().all(|p| p.left < p.right));
}
