//! Bounded recall-loss contract of the quantized scans (PR 7 satellite),
//! measured end to end on D1 embeddings from a pre-trained tiny zoo.
//!
//! Two halves:
//!
//! * **Recall floors** — the int8 and PQ first passes, re-ranked exactly,
//!   must recover at least a pinned fraction of the true top-10 on every
//!   metric. Everything is seeded, so the floors are deterministic: a drop
//!   below them is a quantizer regression, not noise.
//! * **Re-rank identity** — with the re-rank budget covering every live
//!   row, the quantized scan only *reorders the candidate discovery*, so
//!   its output must be bit-identical to the pure exact scan. And for any
//!   budget, the re-ranked prefix carries exact f32 distances.

use embeddings4er::prelude::*;

/// Pinned on the seeded D1 run (recall@10 vs the exact oracle, both
/// metrics): int8 and PQ with a re-rank budget of 30 both measure 1.0000
/// (`measured_recalls_for_the_record` prints them). The floors sit below
/// the measurement so only a real quantizer regression trips them.
const INT8_FLOOR: f64 = 0.97;
const PQ_FLOOR: f64 = 0.80;

const K: usize = 10;
const RERANK: usize = 30;

fn d1_embeddings() -> (EmbeddingMatrix, EmbeddingMatrix) {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let pipeline = Pipeline::new(model.as_ref(), SerializationMode::SchemaAgnostic);
    (pipeline.vectorize(&ds.right), pipeline.vectorize(&ds.left))
}

/// `subspaces` must divide the model dimension; derive it.
fn pq_config(dim: usize) -> PqConfig {
    let subspaces = [8usize, 4, 2, 1]
        .into_iter()
        .find(|s| dim.is_multiple_of(*s))
        .expect("1 divides everything");
    PqConfig {
        subspaces,
        centroids: 64,
        iters: 6,
        seed: 42,
    }
}

fn recall_vs_exact(
    corpus: &EmbeddingMatrix,
    queries: &EmbeddingMatrix,
    scan: ScanConfig,
    metric: Metric,
) -> f64 {
    let exact = ExactIndex::from_source(corpus, metric);
    let approx = ExactIndex::from_source_scan(corpus, metric, scan).unwrap();
    let mut hit = 0usize;
    let mut total = 0usize;
    for q in queries.rows_iter() {
        let truth: Vec<usize> = exact.search_slice(q, K).iter().map(|n| n.index).collect();
        let got: Vec<usize> = approx.search_slice(q, K).iter().map(|n| n.index).collect();
        total += truth.len();
        hit += truth.iter().filter(|i| got.contains(i)).count();
    }
    hit as f64 / total as f64
}

#[test]
fn int8_rerank_recall_stays_above_the_pinned_floor() {
    let (corpus, queries) = d1_embeddings();
    for metric in [Metric::Cosine, Metric::Euclidean] {
        let scan = ScanConfig {
            tier: KernelTier::Reference,
            quant: Quantization::Int8 { rerank: RERANK },
        };
        let recall = recall_vs_exact(&corpus, &queries, scan, metric);
        assert!(
            recall >= INT8_FLOOR,
            "int8 recall@{K} under {metric:?} fell to {recall:.4} (< {INT8_FLOOR})"
        );
    }
}

#[test]
fn pq_rerank_recall_stays_above_the_pinned_floor() {
    let (corpus, queries) = d1_embeddings();
    for metric in [Metric::Cosine, Metric::Euclidean] {
        let scan = ScanConfig {
            tier: KernelTier::Reference,
            quant: Quantization::Pq {
                config: pq_config(corpus.dim()),
                rerank: RERANK,
            },
        };
        let recall = recall_vs_exact(&corpus, &queries, scan, metric);
        assert!(
            recall >= PQ_FLOOR,
            "PQ recall@{K} under {metric:?} fell to {recall:.4} (< {PQ_FLOOR})"
        );
    }
}

#[test]
fn full_rerank_budget_is_bit_identical_to_the_pure_exact_scan() {
    let (corpus, queries) = d1_embeddings();
    let n = corpus.len();
    for metric in [Metric::Cosine, Metric::Euclidean] {
        let exact = ExactIndex::from_source(&corpus, metric);
        for quant in [
            Quantization::Int8 { rerank: n },
            Quantization::Pq {
                config: pq_config(corpus.dim()),
                rerank: n,
            },
        ] {
            let scan = ScanConfig {
                tier: KernelTier::Reference,
                quant,
            };
            let quantized = ExactIndex::from_source_scan(&corpus, metric, scan).unwrap();
            for q in queries.rows_iter() {
                let a = exact.search_slice(q, K);
                let b = quantized.search_slice(q, K);
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.index, y.index, "{metric:?}: candidate set diverged");
                    assert_eq!(
                        x.distance.to_bits(),
                        y.distance.to_bits(),
                        "{metric:?}: re-ranked distance is not the exact f32 distance"
                    );
                }
            }
        }
    }
}

#[test]
fn reranked_prefix_carries_exact_distances_at_any_budget() {
    // Even a tiny budget returns distances computed by the f32 kernels:
    // every (index, distance) pair the quantized scan emits must equal the
    // exact scan's distance *for that row*.
    let (corpus, queries) = d1_embeddings();
    let metric = Metric::Cosine;
    let exact = ExactIndex::from_source(&corpus, metric);
    let scan = ScanConfig {
        tier: KernelTier::Reference,
        quant: Quantization::Int8 { rerank: 0 }, // clamps up to k at query time
    };
    let quantized = ExactIndex::from_source_scan(&corpus, metric, scan).unwrap();
    for q in queries.rows_iter().take(50) {
        let oracle = exact.search_slice(q, corpus.len());
        for hit in quantized.search_slice(q, K) {
            let want = oracle
                .iter()
                .find(|n| n.index == hit.index)
                .expect("every returned row exists");
            assert_eq!(hit.distance.to_bits(), want.distance.to_bits());
        }
    }
}

#[test]
fn measured_recalls_for_the_record() {
    // Not an assertion — prints the seeded recalls the floors were pinned
    // from (`cargo test -q measured_recalls -- --nocapture`).
    let (corpus, queries) = d1_embeddings();
    for metric in [Metric::Cosine, Metric::Euclidean] {
        let int8 = recall_vs_exact(
            &corpus,
            &queries,
            ScanConfig {
                tier: KernelTier::Reference,
                quant: Quantization::Int8 { rerank: RERANK },
            },
            metric,
        );
        let pq = recall_vs_exact(
            &corpus,
            &queries,
            ScanConfig {
                tier: KernelTier::Reference,
                quant: Quantization::Pq {
                    config: pq_config(corpus.dim()),
                    rerank: RERANK,
                },
            },
            metric,
        );
        println!("D1 {metric:?}: int8 recall@{K} = {int8:.4}, pq recall@{K} = {pq:.4}");
    }
}
