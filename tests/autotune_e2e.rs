//! End-to-end autotuning acceptance (ISSUE 9): on D1 and D7, the chosen
//! `OperatingPoint` meets its recall target measured against ground truth
//! post-hoc — its blocking pairs-completeness stays within the target
//! factor of the exact-scan ceiling at the same k — while costing no more
//! measured distance evaluations than the default global config.

use embeddings4er::prelude::*;

const TARGET: f32 = 0.9;

struct TunedRun {
    ds: CleanCleanDataset,
    queries: EmbeddingMatrix,
    rows: EmbeddingMatrix,
    outcome: TuneOutcome,
}

fn tuned_run(id: DatasetId) -> TunedRun {
    let ds = CleanCleanDataset::generate(id, 42);
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let mode = SerializationMode::SchemaAgnostic;
    let pipeline = Pipeline::new(model.as_ref(), mode);
    let queries = pipeline.vectorize(&ds.left);
    let rows = pipeline.vectorize(&ds.right);
    let goal = OperatingPoint::recall_target(TARGET).metric(Metric::Cosine);
    let outcome = autotune(
        &queries,
        &rows,
        &goal,
        &TunerConfig::default(),
        &CostModel::builtin(),
    )
    .expect("tunes");
    TunedRun {
        ds,
        queries,
        rows,
        outcome,
    }
}

fn blocking_recall(run: &TunedRun, point: &OperatingPoint) -> f32 {
    let left_ids: Vec<EntityId> = run.ds.left.iter().map(|e| e.id).collect();
    let right_ids: Vec<EntityId> = run.ds.right.iter().map(|e| e.id).collect();
    let scored = top_k_blocking_point(&left_ids, &run.queries, &right_ids, &run.rows, point)
        .expect("blocks");
    let candidates: Vec<(EntityId, EntityId)> = scored.iter().map(|p| p.id_pair()).collect();
    Metrics::of_candidates(&candidates, &run.ds.ground_truth).recall as f32
}

fn check_dataset(id: DatasetId) {
    let run = tuned_run(id);
    let chosen = &run.outcome.chosen;
    eprintln!(
        "{id:?}: chosen {} | trials {}",
        chosen.to_json(),
        run.outcome.trials.len()
    );

    // Post-hoc ground-truth recall: the chosen point must retain at least
    // the target fraction of what the exact scan achieves at the same k —
    // the proxy's promise, restated against real labels.
    let exact_point = chosen.clone().exact().scan(ScanConfig::default());
    let exact_recall = blocking_recall(&run, &exact_point);
    let chosen_recall = blocking_recall(&run, chosen);
    eprintln!("{id:?}: gt recall chosen {chosen_recall:.3} exact {exact_recall:.3}");
    assert!(
        chosen_recall >= TARGET * exact_recall,
        "{id:?}: chosen point keeps {chosen_recall:.3} pairs-completeness, \
         below {TARGET} x exact ceiling {exact_recall:.3}"
    );

    // Cost: measured full-width distance evaluations of the chosen point
    // must not exceed the default global config's measured scan count.
    let default_point = OperatingPoint::from(&TopKConfig::default())
        .k(chosen.k)
        .metric(chosen.metric);
    let (chosen_evals, _) = measure_point(&run.queries, &run.rows, chosen).expect("measures");
    let (default_evals, _) =
        measure_point(&run.queries, &run.rows, &default_point).expect("measures");
    eprintln!("{id:?}: measured evals chosen {chosen_evals} default {default_evals}");
    assert!(
        chosen_evals <= default_evals,
        "{id:?}: chosen point costs {chosen_evals} evals, default config {default_evals}"
    );
}

#[test]
fn d1_tuned_point_meets_target_and_costs_no_more_than_the_default() {
    check_dataset(DatasetId::D1);
}

#[test]
fn d7_tuned_point_meets_target_and_costs_no_more_than_the_default() {
    check_dataset(DatasetId::D7);
}

#[test]
fn resolve_tuned_matches_resolve_under_the_chosen_point() {
    // The pipeline facade twin: resolve_tuned's blocking must be
    // byte-identical to a plain resolve configured with the point the
    // tuner chose, and its report must carry the tune stage.
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let pipeline = Pipeline::new(model.as_ref(), SerializationMode::SchemaAgnostic);
    let goal = OperatingPoint::recall_target(TARGET).metric(Metric::Cosine);
    let (outcome, tune) = pipeline
        .resolve_tuned(
            &ds.left,
            &ds.right,
            &ds.ground_truth,
            &goal,
            &TunerConfig::default(),
        )
        .expect("resolves");
    assert!(outcome.report.get("tune").is_some(), "missing tune stage");
    assert_eq!(outcome.report.items_of("tune"), tune.trials.len());

    let config = ResolveConfig {
        blocking: TopKConfig::from_point(&tune.chosen).expect("valid point"),
        ..ResolveConfig::default()
    };
    let plain = pipeline.resolve(&ds.left, &ds.right, &ds.ground_truth, &config);
    assert_eq!(outcome.candidates, plain.candidates);
    assert_eq!(outcome.best_delta, plain.best_delta);
    assert_eq!(outcome.matches, plain.matches);
}
