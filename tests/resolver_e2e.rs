//! The PR's acceptance equivalence suite, run end to end on D1 with a
//! pre-trained tiny zoo: incremental HNSW vs batch recall, whole-resolver
//! persistence bit-identity, shard scatter-gather equivalence, and byte
//! determinism across independent runs.

use embeddings4er::prelude::*;
use rand::Rng;

/// Pinned bound for the incremental-vs-batch HNSW equivalence: building
/// the same graph by streaming a shuffled permutation may route
/// differently, but its recall@10 against the exact oracle must stay
/// within this margin of the batch build's recall.
const RECALL_MARGIN: f64 = 0.05;

fn d1_embeddings() -> (EmbeddingMatrix, EmbeddingMatrix) {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);
    let mode = SerializationMode::SchemaAgnostic;
    let pipeline = Pipeline::new(model.as_ref(), mode);
    (pipeline.vectorize(&ds.right), pipeline.vectorize(&ds.left))
}

fn shuffled(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut r = rng(seed);
    for i in (1..n).rev() {
        perm.swap(i, r.gen_range(0..i + 1));
    }
    perm
}

/// Fraction of the exact top-k an index recovers, averaged over queries.
fn recall_at_k(hits_per_query: &[Vec<usize>], oracle_per_query: &[Vec<usize>], k: usize) -> f64 {
    let mut found = 0usize;
    let mut total = 0usize;
    for (hits, oracle) in hits_per_query.iter().zip(oracle_per_query) {
        total += oracle.len().min(k);
        found += oracle.iter().take(k).filter(|o| hits.contains(o)).count();
    }
    found as f64 / total as f64
}

#[test]
fn incremental_hnsw_over_a_shuffled_order_stays_within_the_recall_bound() {
    let (corpus, queries) = d1_embeddings();
    let k = 10;
    let config = HnswConfig {
        metric: Metric::Cosine,
        ..HnswConfig::default()
    };

    let exact = ExactIndex::from_source(&corpus, Metric::Cosine);
    let oracle: Vec<Vec<usize>> = queries
        .rows_iter()
        .map(|q| exact.search_slice(q, k).iter().map(|n| n.index).collect())
        .collect();

    // Batch: the one-shot constructor over the frozen matrix.
    let batch = HnswIndex::from_source(&corpus, config.clone());
    let batch_hits: Vec<Vec<usize>> = queries
        .rows_iter()
        .map(|q| batch.search_slice(q, k).iter().map(|n| n.index).collect())
        .collect();

    // Incremental: stream the same rows in a shuffled order through
    // insert_row, then map row positions back to original ids.
    let perm = shuffled(corpus.len(), 7);
    let mut incremental = HnswIndex::from_source(EmbeddingMatrix::new(corpus.dim()), config);
    for &row in &perm {
        incremental.insert_row(corpus.row(row)).unwrap();
    }
    assert_eq!(incremental.len(), corpus.len());
    let inc_hits: Vec<Vec<usize>> = queries
        .rows_iter()
        .map(|q| {
            incremental
                .search_slice(q, k)
                .iter()
                .map(|n| perm[n.index])
                .collect()
        })
        .collect();

    let batch_recall = recall_at_k(&batch_hits, &oracle, k);
    let inc_recall = recall_at_k(&inc_hits, &oracle, k);
    assert!(
        batch_recall > 0.9,
        "batch HNSW recall collapsed: {batch_recall}"
    );
    assert!(
        inc_recall >= batch_recall - RECALL_MARGIN,
        "incremental recall {inc_recall} fell more than {RECALL_MARGIN} below batch {batch_recall}"
    );
}

#[test]
fn n_shard_exact_resolver_answers_bit_identically_to_one_shard() {
    let (corpus, queries) = d1_embeddings();
    let backend = BlockerBackend::Exact(Metric::Cosine);
    let single = ShardedIndex::new(corpus.dim(), 1, backend.clone());
    let sharded = ShardedIndex::new(corpus.dim(), 5, backend);
    for (i, row) in corpus.rows_iter().enumerate() {
        single.insert(EntityId(i as u32), row).unwrap();
        sharded.insert(EntityId(i as u32), row).unwrap();
    }
    for q in queries.rows_iter() {
        let a = single.search_ids(q, 10);
        let b = sharded.search_ids(q, 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
        }
    }
}

#[test]
fn resolver_persistence_and_serialization_are_byte_deterministic_on_d1() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);
    let ds = CleanCleanDataset::generate(DatasetId::D1, 42);

    let build = || {
        let resolver = Resolver::new(
            model.as_ref(),
            SerializationMode::SchemaAgnostic,
            ServeConfig::new().shards(3),
        )
        .unwrap();
        for e in &ds.right {
            resolver.insert(e).unwrap();
        }
        resolver
    };
    // Two independent runs serialize to the same bytes.
    let resolver = build();
    let bytes = resolver.to_bytes();
    assert_eq!(bytes, build().to_bytes());

    // Save → load answers every D1 query bit-identically.
    let loaded = Resolver::from_bytes(&bytes, model.as_ref()).unwrap();
    assert_eq!(loaded.len(), resolver.len());
    for e in &ds.left {
        let a = resolver.query(e, 10);
        let b = loaded.query(e, 10);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.distance.to_bits(), y.distance.to_bits());
        }
    }
    // And the loaded service serializes back to the identical document.
    assert_eq!(loaded.to_bytes(), bytes);
}
