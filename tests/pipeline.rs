//! Cross-crate integration: the Figure-1 pipeline front half — serialize
//! entities, embed them with a pre-trained zoo model, index the right side
//! and retrieve the matching record for a noisy query.

use embeddings4er::prelude::*;

fn restaurant(id: u32, name: &str, street: &str) -> Entity {
    Entity::new(
        EntityId(id),
        vec![
            ("name".into(), name.into()),
            ("street".into(), street.into()),
        ],
    )
}

#[test]
fn noisy_duplicate_retrieves_its_clean_record() {
    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    let model = zoo.get(ModelCode::FT);

    let right = vec![
        restaurant(0, "golden palace grill", "123 main street"),
        restaurant(1, "ocean breeze sushi", "77 harbor road"),
        restaurant(2, "casa verde tacos", "9 elm avenue"),
    ];
    let vectors = vectorize(model.as_ref(), &right, &SerializationMode::SchemaAgnostic);
    let index = ExactIndex::build(&vectors);

    // The left record is a typo'd duplicate of right#0; FastText's subword
    // buckets must still place it nearest its clean counterpart.
    let query = restaurant(100, "goldn palace gril", "123 main street");
    let q = model.embed(&query.serialize(&SerializationMode::SchemaAgnostic));
    let hits = index.search(&q, 1);
    assert_eq!(hits.len(), 1);
    assert_eq!(
        hits[0].index, 0,
        "nearest neighbour should be the clean duplicate"
    );
}

#[test]
fn schema_based_serialization_narrows_the_text() {
    let e = restaurant(0, "golden palace grill", "123 main street");
    let agnostic = e.serialize(&SerializationMode::SchemaAgnostic);
    let based = e.serialize(&SerializationMode::SchemaBased("name".into()));
    assert!(agnostic.contains("main street"));
    assert_eq!(based, "golden palace grill");

    let zoo = ModelZoo::pretrain(None, &ZooConfig::tiny(), 42);
    for m in zoo.models() {
        assert_eq!(m.embed(&agnostic).dim(), m.dim());
        assert_eq!(m.embed(&based).dim(), m.dim());
    }
}
